#include "accel/layer.hh"

#include "common/logging.hh"

namespace multitree::accel {

Layer
convLayer(const std::string &name, int out_h, int out_w, int c_in,
          int k_h, int k_w, int c_out)
{
    MT_ASSERT(out_h > 0 && out_w > 0 && c_in > 0 && c_out > 0,
              "bad conv shape for ", name);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Conv;
    l.m = static_cast<std::uint64_t>(out_h) * out_w;
    l.n = static_cast<std::uint64_t>(c_out);
    l.k = static_cast<std::uint64_t>(k_h) * k_w * c_in;
    l.params = l.k * l.n;
    return l;
}

Layer
fcLayer(const std::string &name, int in_features, int out_features)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::FullyConnected;
    l.m = 1;
    l.n = static_cast<std::uint64_t>(out_features);
    l.k = static_cast<std::uint64_t>(in_features);
    l.params = l.k * l.n;
    return l;
}

Layer
embeddingLayer(const std::string &name, std::int64_t rows, int dim)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::Embedding;
    // A lookup touches one row: negligible GEMM work.
    l.m = 1;
    l.n = static_cast<std::uint64_t>(dim);
    l.k = 1;
    l.params = static_cast<std::uint64_t>(rows) * dim;
    return l;
}

Layer
attentionLayer(const std::string &name, int seq, int head_dim,
               int heads)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::Attention;
    l.m = static_cast<std::uint64_t>(seq) * heads;
    l.n = static_cast<std::uint64_t>(seq);
    l.k = static_cast<std::uint64_t>(head_dim);
    l.params = 0; // scores/context carry no trainable weights
    return l;
}

std::uint64_t
DnnModel::totalParams() const
{
    std::uint64_t total = 0;
    for (const auto &l : layers)
        total += l.params;
    return total;
}

std::uint64_t
DnnModel::forwardMacs() const
{
    std::uint64_t total = 0;
    for (const auto &l : layers)
        total += l.forwardMacs();
    return total;
}

} // namespace multitree::accel
