/**
 * @file
 * Output-stationary systolic array timing model (SCALE-Sim [35],
 * extended for back-propagation as §V-A describes).
 *
 * A GEMM of M x N x K maps onto an R x C MAC array in
 * ceil(M/R) * ceil(N/C) folds; with the output-stationary dataflow a
 * fold streams its K-deep inputs through the array in
 * 2R + C + K - 2 cycles (fill, K multiply-accumulate beats, drain).
 * The paper's accelerator is 16 such PEs of 32x32 per node, double
 * buffered with enough memory bandwidth to keep the arrays busy, so
 * a mini-batch of B samples spreads over the PEs at ceil(B/PEs)
 * sequential sample slots.
 *
 * Backward pass per layer = dW GEMM (K x N, inner M) + dX GEMM
 * (M x K, inner N, the transposed convolution); the first layer
 * skips dX.
 */

#ifndef MULTITREE_ACCEL_SYSTOLIC_HH
#define MULTITREE_ACCEL_SYSTOLIC_HH

#include "accel/layer.hh"
#include "common/units.hh"

namespace multitree::accel {

/**
 * Systolic dataflow (SCALE-Sim's three mappings). The paper uses
 * output stationary; the other two are provided for dataflow
 * sensitivity studies.
 */
enum class Dataflow {
    OutputStationary, ///< outputs pinned; K streams through (paper)
    WeightStationary, ///< weights pinned per fold; M rows stream
    InputStationary,  ///< inputs pinned per fold; N columns stream
};

/** Accelerator configuration (Table III). */
struct AcceleratorConfig {
    int rows = 32;       ///< MAC array rows
    int cols = 32;       ///< MAC array columns
    int pes = 16;        ///< systolic PEs per accelerator
    int batch = 16;      ///< samples per accelerator per iteration
    Dataflow dataflow = Dataflow::OutputStationary;
};

/** Cycles for one M x N x K GEMM fold set on one PE. */
Tick gemmCycles(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                const AcceleratorConfig &cfg);

/** Forward cycles of @p layer for the configured mini-batch. */
Tick forwardCycles(const Layer &layer, const AcceleratorConfig &cfg);

/**
 * Backward cycles of @p layer (dW + dX) for the mini-batch.
 * @param first_layer Skip the input-gradient GEMM for the first
 *        layer, which has no upstream to propagate to.
 */
Tick backwardCycles(const Layer &layer, const AcceleratorConfig &cfg,
                    bool first_layer = false);

/** Whole-model per-iteration compute split. */
struct ComputeBreakdown {
    Tick fwd = 0;
    Tick bwd = 0;
    /** Backward completion offset of each layer, front to back:
     *  bwd_finish[i] = cycles after backward starts until layer i's
     *  gradient is ready (backward runs last layer first). */
    std::vector<Tick> bwd_finish;
};

/** Compute the per-iteration timing of @p model on one accelerator. */
ComputeBreakdown modelCompute(const DnnModel &model,
                              const AcceleratorConfig &cfg);

} // namespace multitree::accel

#endif // MULTITREE_ACCEL_SYSTOLIC_HH
