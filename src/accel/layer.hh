/**
 * @file
 * DNN layer descriptions in the GEMM view SCALE-Sim uses.
 *
 * Every layer is characterized by its per-sample forward GEMM after
 * im2col lowering — (M x K) activations times (K x N) weights — plus
 * its weight count, which fixes the gradient bytes the all-reduce
 * must move. The two backward GEMMs follow from the forward shape:
 * the weight gradient dW = X^T dY is (K x N) with inner dimension M,
 * and the input gradient dX = dY W^T (the transposed convolution for
 * conv layers) is (M x K) with inner dimension N.
 */

#ifndef MULTITREE_ACCEL_LAYER_HH
#define MULTITREE_ACCEL_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace multitree::accel {

/** Broad layer families (reported in model summaries). */
enum class LayerKind {
    Conv,      ///< convolution (im2col GEMM)
    FullyConnected,
    Embedding, ///< table lookup: huge weights, negligible compute
    Attention, ///< attention score/context GEMMs (no weights)
};

/** One layer in the GEMM view. */
struct Layer {
    std::string name;
    LayerKind kind = LayerKind::Conv;
    std::uint64_t m = 0; ///< per-sample GEMM rows (output pixels)
    std::uint64_t n = 0; ///< GEMM cols (filters / output features)
    std::uint64_t k = 0; ///< reduction dim (window x channels)
    std::uint64_t params = 0; ///< trainable weights (elements)

    /** Gradient bytes this layer contributes to the all-reduce. */
    std::uint64_t gradientBytes() const { return params * 4; }

    /** Per-sample forward multiply-accumulate count. */
    std::uint64_t forwardMacs() const { return m * n * k; }
};

/** Convolution layer from spatial dimensions. */
Layer convLayer(const std::string &name, int out_h, int out_w,
                int c_in, int k_h, int k_w, int c_out);

/** Fully connected layer. */
Layer fcLayer(const std::string &name, int in_features,
              int out_features);

/** Embedding table: @p rows x @p dim weights, lookup-only compute. */
Layer embeddingLayer(const std::string &name, std::int64_t rows,
                     int dim);

/** Attention score/context GEMM: seq x seq x head_dim, no weights. */
Layer attentionLayer(const std::string &name, int seq, int head_dim,
                     int heads);

/** A whole network: ordered layers, first backs the input. */
struct DnnModel {
    std::string name;
    std::vector<Layer> layers;

    /** Total trainable parameters. */
    std::uint64_t totalParams() const;

    /** Total gradient bytes per iteration (float32). */
    std::uint64_t gradientBytes() const { return totalParams() * 4; }

    /** Total per-sample forward MACs. */
    std::uint64_t forwardMacs() const;
};

} // namespace multitree::accel

#endif // MULTITREE_ACCEL_LAYER_HH
