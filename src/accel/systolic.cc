#include "accel/systolic.hh"

#include "common/logging.hh"

namespace multitree::accel {

Tick
gemmCycles(std::uint64_t m, std::uint64_t n, std::uint64_t k,
           const AcceleratorConfig &cfg)
{
    if (m == 0 || n == 0 || k == 0)
        return 0;
    auto r = static_cast<std::uint64_t>(cfg.rows);
    auto c = static_cast<std::uint64_t>(cfg.cols);
    switch (cfg.dataflow) {
      case Dataflow::OutputStationary:
        // Outputs pinned to an R x C tile; the K-deep inputs stream
        // through with array fill and drain (SCALE-Sim's formula).
        return ceilDiv(m, r) * ceilDiv(n, c) * (2 * r + c + k - 2);
      case Dataflow::WeightStationary:
        // An R x C weight tile stays put (R-cycle load) while all M
        // activation rows stream past and drain across C columns.
        return ceilDiv(k, r) * ceilDiv(n, c) * (r + m + c - 1);
      case Dataflow::InputStationary:
        // Symmetric to WS with inputs pinned and N columns streaming.
        return ceilDiv(k, r) * ceilDiv(m, c) * (r + n + c - 1);
    }
    return 0;
}

Tick
forwardCycles(const Layer &layer, const AcceleratorConfig &cfg)
{
    // Samples spread across the PEs; each PE runs its share of the
    // batch back to back (double buffering hides the memory system).
    std::uint64_t rounds = ceilDiv(
        static_cast<std::uint64_t>(cfg.batch),
        static_cast<std::uint64_t>(cfg.pes));
    return rounds * gemmCycles(layer.m, layer.n, layer.k, cfg);
}

Tick
backwardCycles(const Layer &layer, const AcceleratorConfig &cfg,
               bool first_layer)
{
    std::uint64_t rounds = ceilDiv(
        static_cast<std::uint64_t>(cfg.batch),
        static_cast<std::uint64_t>(cfg.pes));
    // Weight gradient: dW = X^T dY, a (K x N) GEMM with inner M.
    Tick dw = gemmCycles(layer.k, layer.n, layer.m, cfg);
    // Input gradient: dX = dY W^T, an (M x K) GEMM with inner N —
    // the transposed convolution the paper calls out for CNNs.
    Tick dx = first_layer ? 0 : gemmCycles(layer.m, layer.k, layer.n,
                                           cfg);
    // Embedding tables propagate sparse updates: no dense GEMMs.
    if (layer.kind == LayerKind::Embedding)
        return rounds;
    return rounds * (dw + dx);
}

ComputeBreakdown
modelCompute(const DnnModel &model, const AcceleratorConfig &cfg)
{
    ComputeBreakdown out;
    std::vector<Tick> bwd(model.layers.size(), 0);
    for (std::size_t i = 0; i < model.layers.size(); ++i) {
        out.fwd += forwardCycles(model.layers[i], cfg);
        bwd[i] = backwardCycles(model.layers[i], cfg, i == 0);
        out.bwd += bwd[i];
    }
    // Backward sweeps from the last layer toward the first.
    out.bwd_finish.assign(model.layers.size(), 0);
    Tick acc = 0;
    for (std::size_t i = model.layers.size(); i-- > 0;) {
        acc += bwd[i];
        out.bwd_finish[i] = acc;
    }
    return out;
}

} // namespace multitree::accel
