/**
 * @file
 * The seven DNN workloads of the paper's §V-B (the SCALE-Sim model
 * set): AlexNet, AlphaGoZero, FasterRCNN, GoogLeNet, NCF, ResNet50
 * and Transformer.
 *
 * Layer tables are reconstructed from the published architectures in
 * the GEMM view (DESIGN.md documents this substitution for
 * SCALE-Sim's CSV files). What matters for the paper's communication
 * study is preserved: each model's parameter count — hence gradient
 * volume — and its compute-versus-communication balance, which makes
 * the CNNs compute-heavy and NCF/Transformer communication-dominant.
 */

#ifndef MULTITREE_ACCEL_MODEL_ZOO_HH
#define MULTITREE_ACCEL_MODEL_ZOO_HH

#include <vector>

#include "accel/layer.hh"

namespace multitree::accel {

/** AlexNet convolutional trunk (SCALE-Sim's conv workload). */
DnnModel makeAlexNet();

/** AlphaGoZero: 20 residual blocks of 3x3x256 on a 19x19 board. */
DnnModel makeAlphaGoZero();

/** FasterRCNN: VGG-16 trunk + region proposal network. */
DnnModel makeFasterRCNN();

/** GoogLeNet (Inception v1), stem + 9 inception modules + classifier. */
DnnModel makeGoogLeNet();

/** Neural collaborative filtering: embeddings + MLP tower. */
DnnModel makeNCF();

/** ResNet-50 with the standard (3,4,6,3) bottleneck stages. */
DnnModel makeResNet50();

/** Transformer base: 6 encoder + 6 decoder layers, d=512. */
DnnModel makeTransformer();

/**
 * DLRM (Facebook's recommendation model [51]): sparse embedding
 * tables plus bottom/top MLPs. An extension workload — its hybrid
 * data/model parallelism pairs the all-reduce with the §VII-B
 * all-to-all (see examples/dlrm_hybrid.cpp).
 */
DnnModel makeDLRM();

/** Build a model by its lowercase name ("resnet50", "ncf", ...). */
DnnModel makeModel(const std::string &name);

/** All model names in the paper's Fig. 11 order. */
std::vector<std::string> modelNames();

} // namespace multitree::accel

#endif // MULTITREE_ACCEL_MODEL_ZOO_HH
