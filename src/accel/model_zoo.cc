#include "accel/model_zoo.hh"

#include "common/logging.hh"

namespace multitree::accel {

namespace {

/** General GEMM layer for sequence models. */
Layer
gemmLayer(const std::string &name, std::uint64_t m, std::uint64_t n,
          std::uint64_t k, std::uint64_t params, LayerKind kind)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.m = m;
    l.n = n;
    l.k = k;
    l.params = params;
    return l;
}

/** One ResNet bottleneck: 1x1 down, 3x3, 1x1 up (+ optional proj). */
void
bottleneck(DnnModel &model, const std::string &name, int hw, int c_in,
           int c_mid, int c_out, bool project)
{
    model.layers.push_back(
        convLayer(name + ".conv1", hw, hw, c_in, 1, 1, c_mid));
    model.layers.push_back(
        convLayer(name + ".conv2", hw, hw, c_mid, 3, 3, c_mid));
    model.layers.push_back(
        convLayer(name + ".conv3", hw, hw, c_mid, 1, 1, c_out));
    if (project) {
        model.layers.push_back(convLayer(name + ".proj", hw, hw, c_in,
                                         1, 1, c_out));
    }
}

/** One GoogLeNet inception module from its branch channel spec. */
void
inception(DnnModel &model, const std::string &name, int hw, int c_in,
          int c1, int c3r, int c3, int c5r, int c5, int cp)
{
    model.layers.push_back(
        convLayer(name + ".1x1", hw, hw, c_in, 1, 1, c1));
    model.layers.push_back(
        convLayer(name + ".3x3r", hw, hw, c_in, 1, 1, c3r));
    model.layers.push_back(
        convLayer(name + ".3x3", hw, hw, c3r, 3, 3, c3));
    model.layers.push_back(
        convLayer(name + ".5x5r", hw, hw, c_in, 1, 1, c5r));
    model.layers.push_back(
        convLayer(name + ".5x5", hw, hw, c5r, 5, 5, c5));
    model.layers.push_back(
        convLayer(name + ".pool_proj", hw, hw, c_in, 1, 1, cp));
}

} // namespace

DnnModel
makeAlexNet()
{
    DnnModel m;
    m.name = "AlexNet";
    m.layers = {
        convLayer("conv1", 55, 55, 3, 11, 11, 96),
        convLayer("conv2", 27, 27, 96, 5, 5, 256),
        convLayer("conv3", 13, 13, 256, 3, 3, 384),
        convLayer("conv4", 13, 13, 384, 3, 3, 384),
        convLayer("conv5", 13, 13, 384, 3, 3, 256),
    };
    return m;
}

DnnModel
makeAlphaGoZero()
{
    DnnModel m;
    m.name = "AlphaGoZero";
    m.layers.push_back(convLayer("stem", 19, 19, 17, 3, 3, 256));
    for (int b = 0; b < 20; ++b) {
        std::string name = "res" + std::to_string(b);
        m.layers.push_back(
            convLayer(name + ".conv1", 19, 19, 256, 3, 3, 256));
        m.layers.push_back(
            convLayer(name + ".conv2", 19, 19, 256, 3, 3, 256));
    }
    m.layers.push_back(convLayer("policy.conv", 19, 19, 256, 1, 1, 2));
    m.layers.push_back(fcLayer("policy.fc", 19 * 19 * 2, 362));
    m.layers.push_back(convLayer("value.conv", 19, 19, 256, 1, 1, 1));
    m.layers.push_back(fcLayer("value.fc1", 19 * 19, 256));
    m.layers.push_back(fcLayer("value.fc2", 256, 1));
    return m;
}

DnnModel
makeFasterRCNN()
{
    // VGG-16 trunk at 224x224 plus the region proposal network.
    DnnModel m;
    m.name = "FasterRCNN";
    struct Block {
        int hw, c_in, c_out, repeat;
    };
    const Block blocks[] = {
        {224, 3, 64, 1},   {224, 64, 64, 1},  {112, 64, 128, 1},
        {112, 128, 128, 1}, {56, 128, 256, 1}, {56, 256, 256, 2},
        {28, 256, 512, 1},  {28, 512, 512, 2}, {14, 512, 512, 3},
    };
    int idx = 0;
    for (const auto &b : blocks) {
        for (int r = 0; r < b.repeat; ++r) {
            m.layers.push_back(convLayer(
                "vgg.conv" + std::to_string(idx++), b.hw, b.hw,
                b.c_in, 3, 3, b.c_out));
        }
    }
    m.layers.push_back(convLayer("rpn.conv", 14, 14, 512, 3, 3, 512));
    m.layers.push_back(convLayer("rpn.cls", 14, 14, 512, 1, 1, 18));
    m.layers.push_back(convLayer("rpn.reg", 14, 14, 512, 1, 1, 36));
    return m;
}

DnnModel
makeGoogLeNet()
{
    DnnModel m;
    m.name = "GoogLeNet";
    m.layers.push_back(convLayer("stem.7x7", 112, 112, 3, 7, 7, 64));
    m.layers.push_back(convLayer("stem.1x1", 56, 56, 64, 1, 1, 64));
    m.layers.push_back(convLayer("stem.3x3", 56, 56, 64, 3, 3, 192));
    inception(m, "3a", 28, 192, 64, 96, 128, 16, 32, 32);
    inception(m, "3b", 28, 256, 128, 128, 192, 32, 96, 64);
    inception(m, "4a", 14, 480, 192, 96, 208, 16, 48, 64);
    inception(m, "4b", 14, 512, 160, 112, 224, 24, 64, 64);
    inception(m, "4c", 14, 512, 128, 128, 256, 24, 64, 64);
    inception(m, "4d", 14, 512, 112, 144, 288, 32, 64, 64);
    inception(m, "4e", 14, 528, 256, 160, 320, 32, 128, 128);
    inception(m, "5a", 7, 832, 256, 160, 320, 32, 128, 128);
    inception(m, "5b", 7, 832, 384, 192, 384, 48, 128, 128);
    m.layers.push_back(fcLayer("classifier", 1024, 1000));
    return m;
}

DnnModel
makeNCF()
{
    // MovieLens-20M scale NCF (NeuMF): GMF + MLP embedding pairs and
    // a small MLP tower — tiny compute atop large embedding tables.
    DnnModel m;
    m.name = "NCF";
    m.layers.push_back(embeddingLayer("gmf.user", 138493, 64));
    m.layers.push_back(embeddingLayer("gmf.item", 26744, 64));
    m.layers.push_back(embeddingLayer("mlp.user", 138493, 128));
    m.layers.push_back(embeddingLayer("mlp.item", 26744, 128));
    m.layers.push_back(fcLayer("mlp.fc1", 256, 256));
    m.layers.push_back(fcLayer("mlp.fc2", 256, 128));
    m.layers.push_back(fcLayer("mlp.fc3", 128, 64));
    m.layers.push_back(fcLayer("neumf", 128, 1));
    return m;
}

DnnModel
makeResNet50()
{
    DnnModel m;
    m.name = "ResNet50";
    m.layers.push_back(convLayer("conv1", 112, 112, 3, 7, 7, 64));
    struct Stage {
        int hw, c_in, c_mid, c_out, blocks;
    };
    const Stage stages[] = {
        {56, 64, 64, 256, 3},
        {28, 256, 128, 512, 4},
        {14, 512, 256, 1024, 6},
        {7, 1024, 512, 2048, 3},
    };
    for (int s = 0; s < 4; ++s) {
        const auto &st = stages[s];
        for (int b = 0; b < st.blocks; ++b) {
            int c_in = b == 0 ? st.c_in : st.c_out;
            bottleneck(m,
                       "stage" + std::to_string(s + 2) + ".block"
                           + std::to_string(b),
                       st.hw, c_in, st.c_mid, st.c_out, b == 0);
        }
    }
    m.layers.push_back(fcLayer("classifier", 2048, 1000));
    return m;
}

DnnModel
makeTransformer()
{
    // Transformer base (Vaswani et al.): d=512, ff=2048, 8 heads,
    // 6 encoder + 6 decoder layers, shared 37k-token embedding,
    // modeled at sequence length 64 per sample.
    DnnModel m;
    m.name = "Transformer";
    const int seq = 64, d = 512, ff = 2048, heads = 8, vocab = 37000;
    m.layers.push_back(embeddingLayer("embedding", vocab, d));
    auto addBlock = [&](const std::string &base, bool cross) {
        // Self-attention projections Q,K,V,O.
        for (const char *p : {"q", "k", "v", "o"}) {
            m.layers.push_back(gemmLayer(
                base + ".attn." + p, seq, d, d,
                static_cast<std::uint64_t>(d) * d,
                LayerKind::FullyConnected));
        }
        m.layers.push_back(
            attentionLayer(base + ".attn.score", seq, d / heads,
                           heads));
        m.layers.push_back(
            attentionLayer(base + ".attn.ctx", seq, d / heads,
                           heads));
        if (cross) {
            for (const char *p : {"q", "k", "v", "o"}) {
                m.layers.push_back(gemmLayer(
                    base + ".xattn." + p, seq, d, d,
                    static_cast<std::uint64_t>(d) * d,
                    LayerKind::FullyConnected));
            }
            m.layers.push_back(attentionLayer(base + ".xattn.score",
                                              seq, d / heads, heads));
            m.layers.push_back(attentionLayer(base + ".xattn.ctx",
                                              seq, d / heads, heads));
        }
        m.layers.push_back(gemmLayer(
            base + ".ff1", seq, ff, d,
            static_cast<std::uint64_t>(d) * ff,
            LayerKind::FullyConnected));
        m.layers.push_back(gemmLayer(
            base + ".ff2", seq, d, ff,
            static_cast<std::uint64_t>(ff) * d,
            LayerKind::FullyConnected));
    };
    for (int i = 0; i < 6; ++i)
        addBlock("enc" + std::to_string(i), false);
    for (int i = 0; i < 6; ++i)
        addBlock("dec" + std::to_string(i), true);
    m.layers.push_back(gemmLayer("generator", seq, vocab, d,
                                 0, // weights shared with embedding
                                 LayerKind::FullyConnected));
    return m;
}

DnnModel
makeDLRM()
{
    // DLRM-small scale: 8 sparse features of 1M rows x 64, bottom
    // MLP 13-512-256-64, top MLP 512-256-1 over pairwise feature
    // interactions.
    DnnModel m;
    m.name = "DLRM";
    for (int f = 0; f < 8; ++f) {
        m.layers.push_back(embeddingLayer(
            "emb" + std::to_string(f), 1'000'000, 64));
    }
    m.layers.push_back(fcLayer("bot.fc1", 13, 512));
    m.layers.push_back(fcLayer("bot.fc2", 512, 256));
    m.layers.push_back(fcLayer("bot.fc3", 256, 64));
    m.layers.push_back(fcLayer("top.fc1", 512, 256));
    m.layers.push_back(fcLayer("top.fc2", 256, 128));
    m.layers.push_back(fcLayer("top.fc3", 128, 1));
    return m;
}

DnnModel
makeModel(const std::string &name)
{
    if (name == "alexnet")
        return makeAlexNet();
    if (name == "alphagozero")
        return makeAlphaGoZero();
    if (name == "fasterrcnn")
        return makeFasterRCNN();
    if (name == "googlenet")
        return makeGoogLeNet();
    if (name == "ncf")
        return makeNCF();
    if (name == "resnet50")
        return makeResNet50();
    if (name == "transformer")
        return makeTransformer();
    if (name == "dlrm")
        return makeDLRM();
    MT_FATAL("unknown model '", name, "'");
}

std::vector<std::string>
modelNames()
{
    return {"alexnet",   "alphagozero", "fasterrcnn", "googlenet",
            "ncf",       "resnet50",    "transformer"};
}

} // namespace multitree::accel
