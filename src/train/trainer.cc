#include "train/trainer.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "coll/algorithm.hh"
#include "coll/schedule.hh"
#include "common/logging.hh"
#include "runtime/machine.hh"
#include "topo/topology.hh"

namespace multitree::train {

namespace {

/**
 * One persistent fabric serving every all-reduce of an iteration
 * evaluation. Schedules are compiled once per distinct payload size —
 * layer sizes repeat heavily (ResNet stages, Transformer blocks) —
 * and isolated single-shot timings are memoized; the same compiled
 * schedules then feed the event-driven overlap session.
 */
class AllReduceSession
{
  public:
    AllReduceSession(const topo::Topology &topo,
                     const std::string &algo,
                     const runtime::RunOptions &run)
        : machine_(topo, run),
          variant_(coll::findAlgorithmVariant(algo)),
          algorithm_(coll::makeAlgorithm(variant_.base))
    {
        MT_ASSERT(algorithm_->supports(topo), algo,
                  " does not support topology ", topo.name());
    }

    /** Round up to whole elements; tiny layers still pay latency. */
    static std::uint64_t
    roundBytes(std::uint64_t bytes)
    {
        return std::max<std::uint64_t>(4, (bytes + 3) / 4 * 4);
    }

    /** The compiled schedule for a @p bytes all-reduce (cached). */
    const coll::Schedule &
    schedule(std::uint64_t bytes)
    {
        bytes = roundBytes(bytes);
        auto it = schedules_.find(bytes);
        if (it == schedules_.end()) {
            it = schedules_
                     .emplace(bytes, algorithm_->build(
                                         machine_.topology(), bytes))
                     .first;
        }
        return it->second;
    }

    /** Isolated (fresh-epoch) completion time of one all-reduce. */
    Tick
    time(std::uint64_t bytes)
    {
        if (bytes == 0)
            return 0;
        auto it = times_.find(roundBytes(bytes));
        if (it != times_.end())
            return it->second;
        Tick t = machine_.run(schedule(bytes), overrides()).time;
        times_.emplace(roundBytes(bytes), t);
        return t;
    }

    runtime::RunOverrides
    overrides() const
    {
        runtime::RunOverrides ov;
        ov.flow_control = variant_.flow_control;
        return ov;
    }

    runtime::Machine &machine() { return machine_; }

  private:
    runtime::Machine machine_;
    coll::AlgorithmVariant variant_;
    std::unique_ptr<coll::Algorithm> algorithm_;
    std::map<std::uint64_t, coll::Schedule> schedules_;
    std::map<std::uint64_t, Tick> times_;
};

} // namespace

IterationTiming
evaluateIteration(const accel::DnnModel &model,
                  const topo::Topology &topo, const std::string &algo,
                  const TrainOptions &opts)
{
    IterationTiming t;
    auto compute = accel::modelCompute(model, opts.accel);
    t.fwd = compute.fwd;
    t.bwd = compute.bwd;
    AllReduceSession session(topo, algo, opts.run);

    // Non-overlapped: one all-reduce of the full gradient.
    t.allreduce = session.time(model.gradientBytes());
    t.total_nonoverlap = t.fwd + t.bwd + t.allreduce;

    // Overlapped: layers enter the all-reduce queue as their backward
    // finishes (last layer first). With bucketing, consecutive layers
    // fuse until the bucket fills; a bucket is ready when its
    // *last-finishing* (front-most) layer finishes backward.
    struct Bucket {
        std::uint64_t bytes = 0;
        Tick ready = 0;
    };
    std::vector<Bucket> buckets;
    Bucket cur;
    for (std::size_t i = model.layers.size(); i-- > 0;) {
        const auto &layer = model.layers[i];
        if (layer.params == 0)
            continue;
        // bwd_finish[i] is the offset from backward start.
        cur.bytes += layer.gradientBytes();
        cur.ready =
            std::max(cur.ready, t.fwd + compute.bwd_finish[i]);
        if (opts.bucket_bytes == 0 || cur.bytes >= opts.bucket_bytes) {
            buckets.push_back(cur);
            cur = Bucket{};
        }
    }
    if (cur.bytes > 0)
        buckets.push_back(cur);

    // The layer-wise sum uses isolated timings (this also compiles
    // and caches every distinct bucket schedule up front).
    for (const auto &b : buckets)
        t.comm_layerwise += session.time(b.bytes);

    // Event-driven overlap on one shared time axis: each bucket's
    // collective is posted at its gradient-ready tick and the fabric
    // serializes them back-to-back, exactly the behaviour of a
    // persistent NI under a training framework's comm thread.
    Tick comm_end = 0;
    if (!buckets.empty()) {
        auto &m = session.machine();
        m.beginEpoch();
        for (const auto &b : buckets) {
            const coll::Schedule &sched = session.schedule(b.bytes);
            m.scheduleAt(
                b.ready, [&m, &sched, &comm_end,
                          ov = session.overrides()] {
                    m.post(
                        sched,
                        [&m, &comm_end](const runtime::RunResult &) {
                            comm_end = m.eventQueue().now();
                        },
                        ov);
                });
        }
        m.drain();
    }

    Tick compute_end = t.fwd + compute.bwd;
    t.total_overlap = std::max(compute_end, comm_end);
    t.exposed_comm = t.total_overlap - compute_end;
    t.overlap_hidden = t.comm_layerwise - t.exposed_comm;
    return t;
}

} // namespace multitree::train
