#include "train/trainer.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "topo/topology.hh"

namespace multitree::train {

namespace {

/**
 * All-reduce simulation memoized by payload size — layer sizes repeat
 * heavily (ResNet stages, Transformer blocks), and each distinct size
 * only needs one simulation per (topology, algorithm).
 */
class AllReduceOracle
{
  public:
    AllReduceOracle(const topo::Topology &topo, std::string algo,
                    const runtime::RunOptions &run)
        : topo_(topo), algo_(std::move(algo)), run_(run)
    {}

    Tick
    time(std::uint64_t bytes)
    {
        if (bytes == 0)
            return 0;
        // Round up to whole elements; tiny layers still pay latency.
        bytes = std::max<std::uint64_t>(4, (bytes + 3) / 4 * 4);
        auto it = cache_.find(bytes);
        if (it != cache_.end())
            return it->second;
        Tick t = runtime::runAllReduce(topo_, algo_, bytes, run_).time;
        cache_.emplace(bytes, t);
        return t;
    }

  private:
    const topo::Topology &topo_;
    std::string algo_;
    runtime::RunOptions run_;
    std::map<std::uint64_t, Tick> cache_;
};

} // namespace

IterationTiming
evaluateIteration(const accel::DnnModel &model,
                  const topo::Topology &topo, const std::string &algo,
                  const TrainOptions &opts)
{
    IterationTiming t;
    auto compute = accel::modelCompute(model, opts.accel);
    t.fwd = compute.fwd;
    t.bwd = compute.bwd;
    AllReduceOracle oracle(topo, algo, opts.run);

    // Non-overlapped: one all-reduce of the full gradient.
    t.allreduce = oracle.time(model.gradientBytes());
    t.total_nonoverlap = t.fwd + t.bwd + t.allreduce;

    // Overlapped: layers enter the all-reduce queue as their backward
    // finishes (last layer first); the network runs them in order.
    // With bucketing, consecutive layers fuse until the bucket fills;
    // a bucket is ready when its *last-finishing* (front-most) layer
    // finishes backward.
    Tick comm_end = 0;
    Tick bwd_total = compute.bwd;
    std::uint64_t bucket = 0;
    Tick bucket_ready = 0;
    auto flush = [&](std::uint64_t bytes, Tick ready) {
        if (bytes == 0)
            return;
        Tick ar = oracle.time(bytes);
        t.comm_layerwise += ar;
        comm_end = std::max(comm_end, ready) + ar;
    };
    for (std::size_t i = model.layers.size(); i-- > 0;) {
        const auto &layer = model.layers[i];
        if (layer.params == 0)
            continue;
        // bwd_finish[i] is the offset from backward start.
        Tick ready = t.fwd + compute.bwd_finish[i];
        bucket += layer.gradientBytes();
        bucket_ready = std::max(bucket_ready, ready);
        if (opts.bucket_bytes == 0 || bucket >= opts.bucket_bytes) {
            flush(bucket, bucket_ready);
            bucket = 0;
            bucket_ready = 0;
        }
    }
    flush(bucket, bucket_ready);
    Tick compute_end = t.fwd + bwd_total;
    t.total_overlap = std::max(compute_end, comm_end);
    t.exposed_comm = t.total_overlap - compute_end;
    t.overlap_hidden = t.comm_layerwise - t.exposed_comm;
    return t;
}

} // namespace multitree::train
