/**
 * @file
 * Distributed training iteration timing (§V-B, Fig. 11).
 *
 * Combines the systolic compute model with simulated all-reduces:
 *
 *  - Non-overlapped training: forward + backward compute, then one
 *    all-reduce of the full gradient (Fig. 11a).
 *  - Overlapped training with layer-wise all-reduce: each layer is
 *    queued for all-reduce the moment its backward pass finishes, so
 *    communication hides under the remaining back-propagation
 *    (Fig. 11b). The network serializes the queued collectives.
 *
 * Both modes share one persistent runtime::Machine per evaluation.
 * Isolated per-layer timings come from fresh-epoch session runs
 * (memoized by payload size); the overlapped mode then replays the
 * cached schedules event-driven on the shared time axis — gradient-
 * ready compute events post collectives onto the live fabric, which
 * executes them back-to-back.
 */

#ifndef MULTITREE_TRAIN_TRAINER_HH
#define MULTITREE_TRAIN_TRAINER_HH

#include <string>

#include "accel/model_zoo.hh"
#include "accel/systolic.hh"
#include "runtime/allreduce_runtime.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::train {

/** Per-iteration timing of one (model, topology, algorithm) triple. */
struct IterationTiming {
    Tick fwd = 0;          ///< forward compute
    Tick bwd = 0;          ///< backward compute
    Tick allreduce = 0;    ///< single full-gradient all-reduce
    Tick total_nonoverlap = 0; ///< fwd + bwd + allreduce

    Tick comm_layerwise = 0;   ///< sum of per-layer all-reduce times
    Tick overlap_hidden = 0;   ///< comm time hidden under backward
    Tick exposed_comm = 0;     ///< comm left after backward finishes
    Tick total_overlap = 0;    ///< fwd + bwd + exposed_comm
};

/** Knobs for a training-time evaluation. */
struct TrainOptions {
    accel::AcceleratorConfig accel; ///< batch = 16 per node (§V-B)
    runtime::RunOptions run;        ///< network backend + flow control
    /**
     * Gradient bucketing for the overlapped mode (Horovod-style
     * tensor fusion): consecutive backward layers coalesce until a
     * bucket reaches this size, then the bucket is queued as one
     * all-reduce. 0 = one all-reduce per layer (the paper's
     * layer-wise scheme). Bucketing trades overlap granularity for
     * fewer latency-bound small collectives.
     */
    std::uint64_t bucket_bytes = 0;
};

/**
 * Evaluate one training iteration of @p model over all nodes of
 * @p topo using all-reduce algorithm @p algo ("multitree-msg"
 * selects MultiTree with message-based flow control).
 */
IterationTiming evaluateIteration(const accel::DnnModel &model,
                                  const topo::Topology &topo,
                                  const std::string &algo,
                                  const TrainOptions &opts = {});

} // namespace multitree::train

#endif // MULTITREE_TRAIN_TRAINER_HH
