/**
 * @file
 * The MultiTree all-reduce algorithm — the paper's core contribution
 * (§III, Algorithm 1).
 *
 * MultiTree builds one spanning tree per node (that node is the root)
 * top-down, level by level, coupling tree construction with message
 * scheduling: every logical time step works on a fresh copy of the
 * topology graph and allocates each physical channel to at most one
 * tree edge, so the resulting schedule is contention-free by
 * construction. Trees take turns adding one node at a time, which
 * keeps them balanced, and parents are examined in the order they
 * joined (breadth-first), which makes levels near the roots denser —
 * the paper's key insight for balancing communication across levels.
 *
 * The same allocator covers both network classes:
 *  - Direct networks (Torus/Mesh): every vertex is a node; a child
 *    must be a free one-hop neighbor, examined Y-dimension first.
 *  - Indirect networks (Fat-Tree/BiGraph): a child is found by
 *    breadth-first search from the parent through switch vertices
 *    over still-available channels (§III-C3), consuming the
 *    node-to-switch, switch-to-switch and switch-to-node links of the
 *    discovered path. The allocated path is recorded as the edge's
 *    explicit source route (§IV-B).
 */

#ifndef MULTITREE_CORE_MULTITREE_HH
#define MULTITREE_CORE_MULTITREE_HH

#include "coll/algorithm.hh"

namespace multitree::core {

/** Tunables for MultiTree construction. */
struct MultiTreeOptions {
    /**
     * Insert lockstep NOP pacing in the network interface (§IV-A).
     * On by default; the ablation bench switches it off.
     */
    bool lockstep = true;

    /**
     * Prioritize trees with the most missing nodes (the larger
     * remaining height) instead of plain ascending root id when
     * taking turns — the refinement the paper suggests for
     * asymmetric/irregular networks (§III-C1). A stable sort keeps
     * ascending-root order whenever trees are balanced (all direct
     * symmetric networks, and the paper's worked example), while on
     * stage-asymmetric networks like BiGraph it prevents one stage's
     * trees from being starved of links and stretching the schedule
     * tail: BiGraph-4x8 builds in 32 steps with this on versus 43
     * with it off (31 is the NIC-bandwidth lower bound).
     */
    bool prioritize_deep_trees = true;

    /**
     * Number of trees (chunks) to build; 0 means one per node, the
     * paper's default. Fewer trees trade aggregate bandwidth for
     * schedule size and small-message latency — the direction §VII-C
     * points at (Blink's tree-count reduction). Roots are spread
     * evenly over the node ids.
     */
    int num_trees = 0;
};

/** MultiTree all-reduce (Algorithm 1 + indirect-network extension). */
class MultiTreeAllReduce : public coll::Algorithm
{
  public:
    explicit MultiTreeAllReduce(MultiTreeOptions opts = {})
        : opts_(opts)
    {}

    std::string name() const override { return "multitree"; }

    /** MultiTree generalizes to every connected topology. */
    bool supports(const topo::Topology &) const override { return true; }

    coll::Schedule build(const topo::Topology &topo,
                         std::uint64_t total_bytes) const override;

    /** Options in effect. */
    const MultiTreeOptions &options() const { return opts_; }

  private:
    MultiTreeOptions opts_;
};

} // namespace multitree::core

#endif // MULTITREE_CORE_MULTITREE_HH
