#include "core/multitree.hh"

#include <algorithm>
#include <deque>
#include <numeric>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "topo/topology.hh"

namespace multitree::core {

namespace {

using topo::Topology;
using topo::VertexKind;

/** One tree under construction. */
struct Tree {
    int root = -1;
    /** Members in the order they joined (breadth-first examination). */
    std::vector<int> order;
    /** Time step at which each member joined (root joins at step 0). */
    std::vector<int> joined_step;
    /** Membership bitmap over nodes. */
    std::vector<char> member;
    /** Gather edges: parent → child with step and allocated route. */
    std::vector<coll::ScheduledEdge> edges;
    /** Height: max joined_step (proxy for remaining depth need). */
    int height = 0;

    bool complete(int n) const
    {
        return static_cast<int>(order.size()) == n;
    }
};

/** A located child: node id plus the allocated channel path. */
struct Placement {
    int child;
    std::vector<int> route;
};

/**
 * Find a child for parent @p p of tree @p tree: the nearest pending
 * node reachable from p through still-available channels whose
 * intermediate vertices are all switches. On direct networks this
 * degenerates to scanning p's free one-hop neighbors in the
 * topology's preferred (Y-then-X) order; on indirect networks it is
 * the breadth-first switch walk of §III-C3.
 *
 * When several pending nodes sit at the same (minimal) distance on an
 * indirect network, the one missing from the most trees wins
 * (@p deficit). This is the algorithm's global-utilization awareness
 * applied to the "pick a node" freedom of §III-C3 step 2: every node
 * must receive once per step for the schedule to stay fully packed,
 * so nodes lagging in tree membership must not be starved — without
 * this, stage-asymmetric networks like BiGraph accumulate a backlog
 * on one stage and stretch the schedule tail.
 */
std::optional<Placement>
findChild(const Topology &topo, const Tree &tree, int p,
          const std::vector<char> &avail,
          const std::vector<int> &deficit)
{
    // Order p's outgoing channels by the preferred-neighbor ranking,
    // keeping every parallel channel of a multigraph link so wider
    // links (§VII-B) contribute their full per-step capacity.
    std::vector<int> first_hops;
    for (int nb : topo.preferredNeighbors(p)) {
        for (int cid : topo.outChannels(p)) {
            if (topo.channel(cid).dst == nb)
                first_hops.push_back(cid);
        }
    }

    struct Item {
        int vertex;
        std::vector<int> route;
    };
    std::deque<Item> frontier;
    std::vector<char> seen(
        static_cast<std::size_t>(topo.numVertices()), 0);
    seen[static_cast<std::size_t>(p)] = 1;

    std::optional<Placement> best;
    std::vector<char> candidate_seen(
        static_cast<std::size_t>(topo.numVertices()), 0);
    auto consider = [&](int cid,
                        const std::vector<int> &route_so_far) {
        if (!avail[static_cast<std::size_t>(cid)])
            return;
        const auto &ch = topo.channel(cid);
        int w = ch.dst;
        if (seen[static_cast<std::size_t>(w)])
            return;
        if (topo.isNode(w)) {
            // Nodes never relay traffic: they are candidate children
            // only. Prefer the largest deficit; BFS order means the
            // first (nearest) candidate wins ties, preserving the
            // same-switch / Y-before-X preference.
            if (tree.member[static_cast<std::size_t>(w)])
                return;
            if (candidate_seen[static_cast<std::size_t>(w)])
                return;
            candidate_seen[static_cast<std::size_t>(w)] = 1;
            if (!best
                || deficit[static_cast<std::size_t>(w)]
                       > deficit[static_cast<std::size_t>(
                           best->child)]) {
                std::vector<int> route = route_so_far;
                route.push_back(cid);
                best = Placement{w, std::move(route)};
            }
            return;
        }
        seen[static_cast<std::size_t>(w)] = 1;
        std::vector<int> route = route_so_far;
        route.push_back(cid);
        frontier.push_back(Item{w, std::move(route)});
    };

    // Breadth-first over the still-available channels through switch
    // vertices, scanning every reachable candidate: a deeper pending
    // node only beats a nearer one when it is strictly more starved.
    for (int cid : first_hops)
        consider(cid, {});
    while (!frontier.empty()) {
        Item item = std::move(frontier.front());
        frontier.pop_front();
        for (int cid : topo.outChannels(item.vertex))
            consider(cid, item.route);
    }
    return best;
}

/**
 * Reverse an allocated route: child → parent channel path. Uses the
 * paired reverse channel of each hop so parallel links (multigraph
 * bandwidth modeling) reverse onto their own partners and stay
 * contention-free in the reduce phase.
 */
std::vector<int>
reverseRoute(const Topology &topo, const std::vector<int> &route)
{
    std::vector<int> rev;
    rev.reserve(route.size());
    for (auto it = route.rbegin(); it != route.rend(); ++it)
        rev.push_back(topo.reverseChannel(*it));
    return rev;
}

} // namespace

coll::Schedule
MultiTreeAllReduce::build(const topo::Topology &topo,
                          std::uint64_t total_bytes) const
{
    const int n = topo.numNodes();
    MT_ASSERT(n >= 2, "multitree needs at least two nodes");
    const int k = opts_.num_trees > 0 && opts_.num_trees < n
                      ? opts_.num_trees
                      : n;

    // --- initialization (Algorithm 1, lines 1-3) ---
    // One tree per node by default; with a reduced tree count the
    // roots spread evenly over the node ids (§VII-C trade-off).
    std::vector<Tree> trees(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
        Tree &t = trees[static_cast<std::size_t>(i)];
        t.root = static_cast<int>(
            (static_cast<std::int64_t>(i) * n) / k);
        t.order.push_back(t.root);
        t.joined_step.push_back(0);
        t.member.assign(static_cast<std::size_t>(n), 0);
        t.member[static_cast<std::size_t>(t.root)] = 1;
    }
    auto all_complete = [&] {
        return std::all_of(trees.begin(), trees.end(),
                           [&](const Tree &t) { return t.complete(n); });
    };
    // Trees a node still has to join; feeds the child-selection
    // tie-break (see findChild).
    std::vector<int> deficit(static_cast<std::size_t>(n), k);
    for (const Tree &t : trees)
        --deficit[static_cast<std::size_t>(t.root)];

    // --- all-gather tree construction (lines 4-14) ---
    int t_step = 0;
    std::vector<char> avail;
    while (!all_complete()) {
        ++t_step;
        MT_ASSERT(t_step <= 4 * n,
                  "multitree failed to converge on ", topo.name());
        // A fresh topology graph G' for this time step (line 6).
        avail.assign(static_cast<std::size_t>(topo.numChannels()), 1);

        // Turn order for this step: ascending root id, or deepest-
        // remaining trees first for asymmetric networks.
        std::vector<int> turn(static_cast<std::size_t>(k));
        std::iota(turn.begin(), turn.end(), 0);
        if (opts_.prioritize_deep_trees) {
            std::stable_sort(
                turn.begin(), turn.end(), [&](int a, int b) {
                    auto missing = [&](int r) {
                        return n - static_cast<int>(
                                   trees[static_cast<std::size_t>(r)]
                                       .order.size());
                    };
                    return missing(a) > missing(b);
                });
        }

        // Trees take turns adding one node each until a full pass
        // makes no progress (line 7's "free edges" condition).
        bool progress = true;
        while (progress) {
            progress = false;
            for (int r : turn) {
                Tree &tree = trees[static_cast<std::size_t>(r)];
                if (tree.complete(n))
                    continue;
                // Parents in join order, previous steps only (line 9).
                for (std::size_t pi = 0; pi < tree.order.size(); ++pi) {
                    if (tree.joined_step[pi] >= t_step)
                        break; // later entries joined this step too
                    int p = tree.order[pi];
                    auto hit =
                        findChild(topo, tree, p, avail, deficit);
                    if (!hit)
                        continue;
                    // Allocate the path's channels (lines 11-13).
                    for (int cid : hit->route)
                        avail[static_cast<std::size_t>(cid)] = 0;
                    --deficit[static_cast<std::size_t>(hit->child)];
                    tree.order.push_back(hit->child);
                    tree.joined_step.push_back(t_step);
                    tree.member[static_cast<std::size_t>(hit->child)] =
                        1;
                    tree.edges.push_back(coll::ScheduledEdge{
                        p, hit->child, t_step, std::move(hit->route)});
                    tree.height = t_step;
                    progress = true;
                    break; // line 14: one node per turn
                }
            }
        }
    }
    const int tot_t = t_step; // line 15

    // --- derive reduce-scatter + adjusted all-gather (lines 16-18) ---
    coll::Schedule sched;
    sched.algorithm = name();
    sched.num_nodes = n;
    sched.lockstep = opts_.lockstep;
    for (const Tree &tree : trees) {
        coll::ChunkFlow flow;
        flow.flow_id = tree.root;
        flow.root = tree.root;
        flow.fraction = 1.0 / k;
        for (const auto &e : tree.edges) {
            flow.reduce.push_back(coll::ScheduledEdge{
                e.dst, e.src, tot_t - e.step + 1,
                reverseRoute(topo, e.route)});
            flow.gather.push_back(coll::ScheduledEdge{
                e.src, e.dst, tot_t + e.step, e.route});
        }
        sched.flows.push_back(std::move(flow));
    }
    sched.assignBytes(total_bytes);
    sched.checkBasicShape();
    return sched;
}

} // namespace multitree::core
