#include "coll/algorithm.hh"

#include "coll/dbtree.hh"
#include "coll/halving_doubling.hh"
#include "coll/hdrm.hh"
#include "coll/hierarchical.hh"
#include "coll/ring.hh"
#include "coll/ring2d.hh"
#include "common/logging.hh"
#include "core/multitree.hh"
#include "topo/hierarchical.hh"

namespace multitree::coll {

std::unique_ptr<Algorithm>
makeAlgorithm(const std::string &name)
{
    if (name == "ring")
        return std::make_unique<RingAllReduce>();
    if (name == "dbtree")
        return std::make_unique<DBTreeAllReduce>();
    if (name == "ring2d")
        return std::make_unique<Ring2DAllReduce>();
    if (name == "hd")
        return std::make_unique<HalvingDoublingAllReduce>();
    if (name == "hdrm")
        return std::make_unique<HDRMAllReduce>();
    if (name == "multitree")
        return std::make_unique<core::MultiTreeAllReduce>();
    if (name == "multitree-nolockstep") {
        core::MultiTreeOptions opts;
        opts.lockstep = false;
        return std::make_unique<core::MultiTreeAllReduce>(opts);
    }
    MT_FATAL("unknown all-reduce algorithm '", name, "'");
}

std::vector<std::string>
algorithmNames()
{
    return {"ring", "dbtree", "ring2d", "hd", "hdrm", "multitree"};
}

const std::vector<AlgorithmVariant> &
algorithmVariants()
{
    // The one place a public algorithm name maps to (schedule
    // builder, flow-control override). "multitree-msg" is the
    // paper's co-designed pairing: MultiTree schedules over
    // message-based flow control.
    static const std::vector<AlgorithmVariant> variants = {
        {"ring", "ring", std::nullopt},
        {"dbtree", "dbtree", std::nullopt},
        {"ring2d", "ring2d", std::nullopt},
        {"hd", "hd", std::nullopt},
        {"hdrm", "hdrm", std::nullopt},
        {"multitree", "multitree", std::nullopt},
        {"multitree-nolockstep", "multitree-nolockstep",
         std::nullopt},
        {"multitree-msg", "multitree",
         net::FlowControlMode::MessageBased},
    };
    return variants;
}

const AlgorithmVariant &
findAlgorithmVariant(const std::string &name)
{
    for (const auto &v : algorithmVariants()) {
        if (v.name == name)
            return v;
    }
    MT_FATAL("unknown all-reduce algorithm '", name, "'");
}

Schedule
composeHierarchical(const topo::HierarchicalTopology &topo,
                    const std::string &island_algo,
                    const std::string &spine_algo,
                    std::uint64_t total_bytes)
{
    // Variant names resolve to their base schedule builder; any
    // flow-control tweak a variant carries is a transport option and
    // has no meaning inside a schedule composition.
    auto ia = makeAlgorithm(findAlgorithmVariant(island_algo).base);
    auto sa = makeAlgorithm(findAlgorithmVariant(spine_algo).base);
    return composeHierarchical(topo, *ia, *sa, total_bytes);
}

} // namespace multitree::coll
