#include "coll/algorithm.hh"

#include "coll/dbtree.hh"
#include "coll/halving_doubling.hh"
#include "coll/hdrm.hh"
#include "coll/ring.hh"
#include "coll/ring2d.hh"
#include "common/logging.hh"
#include "core/multitree.hh"

namespace multitree::coll {

std::unique_ptr<Algorithm>
makeAlgorithm(const std::string &name)
{
    if (name == "ring")
        return std::make_unique<RingAllReduce>();
    if (name == "dbtree")
        return std::make_unique<DBTreeAllReduce>();
    if (name == "ring2d")
        return std::make_unique<Ring2DAllReduce>();
    if (name == "hd")
        return std::make_unique<HalvingDoublingAllReduce>();
    if (name == "hdrm")
        return std::make_unique<HDRMAllReduce>();
    if (name == "multitree")
        return std::make_unique<core::MultiTreeAllReduce>();
    if (name == "multitree-nolockstep") {
        core::MultiTreeOptions opts;
        opts.lockstep = false;
        return std::make_unique<core::MultiTreeAllReduce>(opts);
    }
    MT_FATAL("unknown all-reduce algorithm '", name, "'");
}

std::vector<std::string>
algorithmNames()
{
    return {"ring", "dbtree", "ring2d", "hd", "hdrm", "multitree"};
}

} // namespace multitree::coll
