/**
 * @file
 * Chrome/Perfetto trace-event JSON exporter.
 *
 * Renders a recorded obs::Trace as the JSON trace-event format that
 * chrome://tracing and https://ui.perfetto.dev load directly. Track
 * layout: one process for the collectives (run begin/end markers),
 * one process with a thread per node/NIC (message lifecycle, NOP
 * stalls, reduction occupancy), and one process with a thread per
 * directed channel (busy spans, queueing). Span events use complete
 * ("X") records; point events use instants ("i"). Timestamps are
 * emitted in microseconds (1 tick = 1 ns), sorted per track.
 */

#ifndef MULTITREE_OBS_PERFETTO_HH
#define MULTITREE_OBS_PERFETTO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace multitree::obs {

class Sampler;

/** Write @p events as trace-event JSON for the @p fabric layout. */
void writePerfettoTrace(std::ostream &os, const FabricInfo &fabric,
                        const std::vector<TraceEvent> &events);

/**
 * Same, plus counter tracks ("ph":"C") rendered from @p sampler's
 * time series: fabric occupancy, reliability activity per window and
 * per-rail traffic/queueing. @p sampler may be null.
 */
void writePerfettoTrace(std::ostream &os, const FabricInfo &fabric,
                        const std::vector<TraceEvent> &events,
                        const Sampler *sampler);

/** Convenience: the same JSON as a string. */
std::string perfettoTraceJson(const FabricInfo &fabric,
                              const std::vector<TraceEvent> &events);

} // namespace multitree::obs

#endif // MULTITREE_OBS_PERFETTO_HH
