/**
 * @file
 * Structured observability: typed lifecycle events and trace sinks.
 *
 * Every layer of the stack — the network backends, the NIC engines
 * and the runtime Machine — emits TraceEvents into one TraceSink.
 * The taxonomy covers the quantities the paper's evaluation reasons
 * about: message lifecycle (inject / queue / deliver / drop /
 * corrupt / retransmit / ack), per-link occupancy spans (Table I
 * contention), NI timestep advances and lockstep NOP stalls (§IV-A),
 * and reduction-unit occupancy (Fig. 6 step 4).
 *
 * Overhead contract: a component holds a raw `TraceSink *` that is
 * nullptr when observability is off, and every emission site is
 * guarded by that single pointer test — no event is constructed, no
 * virtual call is made. Sinks only observe; they never schedule
 * events or touch simulation state, so enabling one cannot change a
 * single tick of any run (asserted by tests/test_obs.cc).
 */

#ifndef MULTITREE_OBS_TRACE_HH
#define MULTITREE_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace multitree::obs {

/** What a TraceEvent describes. */
enum class EventKind {
    MsgInject,     ///< message handed to the transport
    MsgQueue,      ///< time spent waiting for wire/injection capacity
    MsgDeliver,    ///< tail arrival at the destination NI
    MsgDrop,       ///< lost to an injected fault (never traverses)
    MsgCorrupt,    ///< traverses with its integrity flag set
    MsgRetransmit, ///< reliability timer re-injected a copy
    MsgAck,        ///< receiver returned an acknowledgement
    LinkBusy,      ///< a channel carried flits for [tick, tick+dur)
    StepAdvance,   ///< NI timestep counter moved to `step`
    LockstepStall, ///< NOP window: NI idle for [tick, tick+dur)
    ReductionBusy, ///< reduction unit aggregating for [tick, tick+dur)
    RunBegin,      ///< a collective started on the machine
    RunEnd,        ///< a collective completed (duration = run time)
    LinkDead,      ///< health monitor confirmed `channel` dead
    RailFailover,  ///< dead rail `channel` masked from its group
    ResumeEpoch,   ///< repair pass `step` re-issued open transfers
};

/** Stable lower-case name of @p kind (exporters, CSV columns). */
const char *kindName(EventKind kind);

/**
 * One lifecycle event. Instant events carry duration 0; span events
 * (LinkBusy, LockstepStall, ReductionBusy, MsgQueue) cover
 * [tick, tick + duration). Unused fields keep their defaults; which
 * fields are meaningful depends on the kind:
 *  - Msg*:  node = source, peer = destination, plus flow/bytes/tag/
 *           seq/attempt/corrupted copied from the net::Message.
 *  - LinkBusy / MsgQueue: channel identifies the link.
 *  - StepAdvance / LockstepStall: node + step.
 *  - Run*: bytes = collective payload, duration (RunEnd) = run time.
 *  - LinkDead / RailFailover: channel = the affected link.
 *  - ResumeEpoch: step = recovery round, bytes = transfers
 *    re-issued by it.
 */
struct TraceEvent {
    EventKind kind = EventKind::MsgInject;
    Tick tick = 0;     ///< event time (span start for span kinds)
    Tick duration = 0; ///< span length; 0 for instant events
    int node = -1;     ///< owning node / NI (source for messages)
    int peer = -1;     ///< destination node for message events
    int channel = -1;  ///< link id for LinkBusy / MsgQueue
    int flow = -1;     ///< tree/chunk id
    int step = -1;     ///< schedule timestep (StepAdvance/Stall)
    std::uint64_t bytes = 0;
    std::uint64_t tag = 0; ///< NI wire tag (reduce/gather/ack)
    std::uint64_t seq = 0; ///< reliability sequence number
    std::uint32_t attempt = 0; ///< 0 = original transmission
    bool corrupted = false;
    /** Schedule phase of the message (hierarchical attribution;
     *  0 for single-phase schedules and non-message events). */
    int phase = 0;
};

/**
 * Receiver of lifecycle events. Implementations must not mutate
 * simulation state: the overhead contract promises a sink changes
 * nothing about a run's timing.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Observe one event. Called in simulation-event order per
     *  component; ticks are monotone per emitting track. */
    virtual void onEvent(const TraceEvent &ev) = 0;
};

/** In-memory recording sink: the substrate every exporter reads. */
class Trace final : public TraceSink
{
  public:
    void onEvent(const TraceEvent &ev) override
    {
        events_.push_back(ev);
    }

    /** Everything recorded so far, in emission order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Number of recorded events of @p kind. */
    std::size_t countOf(EventKind kind) const;

    /** Drop all recorded events. */
    void clear() { events_.clear(); }

  private:
    std::vector<TraceEvent> events_;
};

/** Fan-out sink: forwards every event to two downstream sinks. */
class TeeSink final : public TraceSink
{
  public:
    TeeSink(TraceSink *a, TraceSink *b) : a_(a), b_(b) {}

    void onEvent(const TraceEvent &ev) override
    {
        if (a_ != nullptr)
            a_->onEvent(ev);
        if (b_ != nullptr)
            b_->onEvent(ev);
    }

  private:
    TraceSink *a_;
    TraceSink *b_;
};

/**
 * Static description of the fabric a trace was recorded on — what
 * the exporters need to label tracks without depending on the
 * topology library. runtime::Machine::fabricInfo() fills one.
 */
struct FabricInfo {
    /** One directed channel of the topology. */
    struct Link {
        int id = -1;
        int src = -1;
        int dst = -1;
        /** Rail index among parallel links sharing this link's
         *  endpoints; 0 when the link has no parallel sibling. */
        int rail = 0;
    };
    std::string name;  ///< topology name, e.g. "torus-8x8"
    int num_nodes = 0; ///< end nodes (NIC tracks)
    std::vector<Link> links; ///< dense by id, [0, links.size())
    /** Widest parallel-link bundle in the fabric (1 = single-rail). */
    int rails = 1;
    /** Hierarchical (island+spine) composition metadata; 0 when the
     *  fabric is flat. */
    int num_islands = 0;
    int island_size = 0;
    /** Grid geometry when the fabric is a 2D mesh/torus (row-major
     *  node ids); 0 when the topology has no grid embedding. Lets
     *  the heatmap renderers draw an ASCII floor plan without a
     *  dependency on the topology library. */
    int grid_width = 0;
    int grid_height = 0;
    /** Whether the grid wraps (torus) — wrap links are drawn as
     *  margins rather than in-grid connectors. */
    bool grid_wraps = false;
};

/** JSON string literal of @p s: quoted, with escapes. */
std::string jsonQuote(const std::string &s);

} // namespace multitree::obs

#endif // MULTITREE_OBS_TRACE_HH
