/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * Just enough JSON to read back the files this project itself writes
 * — metrics snapshots, profile dumps, BENCH_results.json — in tools
 * like examples/mtdiff that must load two runs and attribute their
 * differences. Numbers are doubles (the writers emit nothing that
 * needs 64-bit-exact integers beyond 2^53 — ticks and byte counts in
 * practice stay far below), object keys keep insertion order, and
 * parsing failures return std::nullopt rather than throwing: a
 * malformed input is an input problem to report, not a crash.
 */

#ifndef MULTITREE_OBS_JSON_HH
#define MULTITREE_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace multitree::obs::json {

/** One JSON value; which member is meaningful depends on kind. */
struct Value {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<Value> arr;
    /** Key/value pairs in document order. */
    std::vector<std::pair<std::string, Value>> obj;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member @p key of an object, or nullptr. */
    const Value *find(const std::string &key) const;

    /** Number member @p key, or @p fallback when absent/not one. */
    double num(const std::string &key, double fallback = 0) const;

    /** String member @p key, or @p fallback when absent/not one. */
    std::string text(const std::string &key,
                     const std::string &fallback = {}) const;
};

/** Parse @p text; std::nullopt on any syntax error. */
std::optional<Value> parse(const std::string &text);

/** Read and parse @p path; std::nullopt when unreadable/invalid. */
std::optional<Value> parseFile(const std::string &path);

} // namespace multitree::obs::json

#endif // MULTITREE_OBS_JSON_HH
