/**
 * @file
 * Benchmark-results JSON: the one reader/writer for
 * BENCH_results.json.
 *
 * Several producers append rows to the same results file — every
 * bench binary's atexit hook, and each worker of an examples/mtsweep
 * campaign. Writing therefore always goes through the merge-then-
 * rename discipline here: read whatever rows the file already holds,
 * upsert the new rows by name, write to a sibling temp file and
 * rename it over the target. A crash mid-write leaves the previous
 * file intact, and two binaries run back to back both keep their
 * rows instead of the second truncating the first's.
 *
 * Speedup columns are derived, not stored: writeResultRows() computes
 * speedup_vs_ring at write time against the ring row with the same
 * (topology, bytes, mode) — mode matters because a dense-scheduler
 * row must not be scored against an active-scheduler ring baseline.
 */

#ifndef MULTITREE_OBS_RESULTS_HH
#define MULTITREE_OBS_RESULTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace multitree::obs {

/**
 * Version stamp of the results JSON layout, bumped on breaking
 * changes. The reader treats a file stamped with a different version
 * like a missing file (caches regenerate); mtdiff refuses to compare
 * across versions.
 */
inline constexpr int kResultsSchemaVersion = 1;

/** One benchmark point, as serialized in BENCH_results.json. */
struct ResultRow {
    std::string name;     ///< unique row key, e.g. "fig9/torus-8x8/..."
    std::string topology;
    std::string algorithm;
    std::uint64_t bytes = 0;
    std::uint64_t cycles = 0;
    double bandwidth_gbps = 0;
    std::uint64_t messages = 0;
    double wall_ms = 0;    ///< wall-clock spent simulating (simspeed)
    double msim_cps = 0;   ///< millions of simulated cycles per second
    std::string mode;      ///< "flow" / "active" / "dense" / ...
    std::string commit;    ///< git short SHA of the producing build
};

/**
 * Parse the rows of a BENCH_results.json-format file. Returns an
 * empty vector when the file is absent or unparseable (a results
 * file is a cache, never an input that may fail the run); unknown
 * keys are skipped, the derived speedup column is ignored.
 */
std::vector<ResultRow> readResultRows(const std::string &path);

/**
 * Upsert @p incoming into @p base by row name: a matching name
 * replaces that row in place (a re-run refreshes its old result),
 * anything else appends in order.
 */
void mergeResultRows(std::vector<ResultRow> &base,
                     const std::vector<ResultRow> &incoming);

/**
 * Serialize @p rows to @p path atomically: write "<path>.tmp.<pid>",
 * then rename over @p path. @return false when the file could not be
 * written (the previous contents are left untouched).
 */
bool writeResultRows(const std::string &path,
                     const std::vector<ResultRow> &rows);

/**
 * The standard read-merge-write cycle every producer uses: merge
 * @p rows over the rows already in @p path and write back atomically.
 */
bool mergeResultsFile(const std::string &path,
                      const std::vector<ResultRow> &rows);

/**
 * Git short SHA the binary was built from (the MT_GIT_SHA compile
 * definition, stamped by CMake), or "unknown" outside a git checkout.
 * Row producers stamp ResultRow::commit with it so a regression diff
 * can name the build behind each side.
 */
std::string buildCommit();

/** FNV-1a 64-bit hash of @p key (sweep cache names, config hashes). */
std::uint64_t fnv1a(const std::string &key);

/**
 * Every axis that determines one sweep point's simulation result.
 * The cache key MUST cover each of these: an axis missing from the
 * key aliases two different configurations onto one cache entry and
 * silently serves stale rows (tests/test_obs.cc proves each axis
 * produces a distinct key). Deliberately excludes thread/worker
 * counts — the parallel flit engine is bit-identical at any thread
 * count.
 */
struct SweepPointConfig {
    std::string topo;
    std::string algo;
    std::uint64_t bytes = 0;
    std::uint64_t seed = 0;
    std::string backend = "flit";
    double drop = 0;
    double corrupt = 0;
    bool reliable = false;
    bool dense = false;
    std::string rail_policy = "roundrobin";
    std::string recovery = "off";
    std::string in_network = "off"; ///< off | mcast | mcast+reduce
    /** Switch combining-buffer entries per router (0 = default). */
    std::uint32_t combiner_entries = 0;
};

/** Canonical cache-key string of @p cfg ("mtsweep-v2|..."). */
std::string sweepConfigKey(const SweepPointConfig &cfg);

/** fnv1a(sweepConfigKey(cfg)): the cache-file content hash. */
std::uint64_t sweepConfigHash(const SweepPointConfig &cfg);

} // namespace multitree::obs

#endif // MULTITREE_OBS_RESULTS_HH
