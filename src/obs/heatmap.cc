#include "obs/heatmap.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <ostream>
#include <string>

namespace multitree::obs {

namespace {

/** Ten-level glyph ramp, blank = idle, '@' = peak. */
constexpr char kRamp[] = " .:-=+*#%@";

char
glyphOf(double load)
{
    int level = static_cast<int>(std::lround(load * 9.0));
    level = std::clamp(level, 0, 9);
    return kRamp[level];
}

int
percentOf(double load)
{
    return static_cast<int>(std::lround(load * 100.0));
}

/** Ten-character bar for the list renderers. */
std::string
barOf(double load)
{
    int fill = std::clamp(
        static_cast<int>(std::lround(load * 10.0)), 0, 10);
    std::string bar(static_cast<std::size_t>(fill), '#');
    bar.resize(10, ' ');
    return bar;
}

/** Whether @p fabric embeds as a full 2D grid we can draw. */
bool
isGrid(const FabricInfo &fabric)
{
    return fabric.grid_width > 0 && fabric.grid_height > 0
           && fabric.grid_width * fabric.grid_height
                  == fabric.num_nodes;
}

} // namespace

CongestionMap
buildCongestionMap(const FabricInfo &fabric, const Profiler &prof)
{
    CongestionMap map;
    const auto &chans = prof.channels();
    map.links.reserve(fabric.links.size());
    int max_vertex = fabric.num_nodes - 1;
    for (const auto &link : fabric.links)
        max_vertex = std::max({max_vertex, link.src, link.dst});
    map.routers.resize(static_cast<std::size_t>(max_vertex + 1));
    for (std::size_t v = 0; v < map.routers.size(); ++v)
        map.routers[v].vertex = static_cast<int>(v);

    for (const auto &link : fabric.links) {
        CongestionMap::LinkLoad ll;
        ll.id = link.id;
        ll.src = link.src;
        ll.dst = link.dst;
        ll.rail = link.rail;
        auto idx = static_cast<std::size_t>(link.id);
        if (idx < chans.size()) {
            ll.flits = chans[idx].flits;
            ll.messages = chans[idx].messages;
            ll.busy = chans[idx].busy;
            ll.queue = chans[idx].queue;
        }
        map.peak_link_flits =
            std::max(map.peak_link_flits, ll.flits);
        auto &router =
            map.routers[static_cast<std::size_t>(link.dst)];
        router.through_flits += ll.flits;
        map.links.push_back(ll);
    }
    if (map.peak_link_flits > 0) {
        for (auto &ll : map.links) {
            ll.load = static_cast<double>(ll.flits)
                      / static_cast<double>(map.peak_link_flits);
        }
    }
    const auto &routers = prof.routers();
    for (auto &rl : map.routers) {
        auto idx = static_cast<std::size_t>(rl.vertex);
        if (idx < routers.size()) {
            rl.sa_denied = routers[idx].sa_denied;
            rl.credit_stalls = routers[idx].credit_stalls;
            rl.combiner_groups = routers[idx].combiner_groups;
            rl.combiner_fallbacks = routers[idx].combiner_fallbacks;
            rl.combiner_peak_open = routers[idx].combiner_peak_open;
        }
        map.peak_router_flits =
            std::max(map.peak_router_flits, rl.through_flits);
    }
    if (map.peak_router_flits > 0) {
        for (auto &rl : map.routers) {
            rl.load =
                static_cast<double>(rl.through_flits)
                / static_cast<double>(map.peak_router_flits);
        }
    }
    return map;
}

namespace {

void
renderLinkGrid(std::ostream &os, const FabricInfo &fabric,
               const CongestionMap &map)
{
    const int w = fabric.grid_width;
    const int h = fabric.grid_height;
    // Max directed load per undirected node pair.
    std::map<std::pair<int, int>, double> pair_load;
    std::vector<const CongestionMap::LinkLoad *> wraps;
    for (const auto &ll : map.links) {
        const int a = std::min(ll.src, ll.dst);
        const int b = std::max(ll.src, ll.dst);
        const int dx = std::abs(a % w - b % w);
        const int dy = std::abs(a / w - b / w);
        if (dx + dy != 1) {
            wraps.push_back(&ll);
            continue;
        }
        auto &slot = pair_load[{a, b}];
        slot = std::max(slot, ll.load);
    }
    auto edge = [&](int a, int b) {
        auto it = pair_load.find({std::min(a, b), std::max(a, b)});
        return it == pair_load.end() ? 0.0 : it->second;
    };
    os << "link heatmap (" << fabric.name << ", peak "
       << map.peak_link_flits << " flits/link; ramp \"" << kRamp
       << "\"):\n";
    for (int y = 0; y < h; ++y) {
        os << "  ";
        for (int x = 0; x < w; ++x) {
            os << "+";
            if (x + 1 < w) {
                const char g =
                    glyphOf(edge(y * w + x, y * w + x + 1));
                os << g << g << g;
            }
        }
        os << "\n";
        if (y + 1 >= h)
            continue;
        os << "  ";
        for (int x = 0; x < w; ++x) {
            os << glyphOf(edge(y * w + x, (y + 1) * w + x));
            if (x + 1 < w)
                os << "   ";
        }
        os << "\n";
    }
    if (!wraps.empty()) {
        // One line per undirected wrap pair, busiest direction.
        std::map<std::pair<int, int>, double> wrap_load;
        for (const auto *ll : wraps) {
            auto key = std::make_pair(std::min(ll->src, ll->dst),
                                      std::max(ll->src, ll->dst));
            auto &slot = wrap_load[key];
            slot = std::max(slot, ll->load);
        }
        os << "  wrap links:";
        for (const auto &[pair, load] : wrap_load) {
            os << " " << pair.first << "<->" << pair.second << " "
               << glyphOf(load);
        }
        os << "\n";
    }
}

void
renderLinkBars(std::ostream &os, const FabricInfo &fabric,
               const CongestionMap &map)
{
    os << "link heatmap (" << fabric.name << ", peak "
       << map.peak_link_flits << " flits/link, busiest first):\n";
    std::vector<const CongestionMap::LinkLoad *> sorted;
    sorted.reserve(map.links.size());
    for (const auto &ll : map.links)
        sorted.push_back(&ll);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) {
                  if (a->flits != b->flits)
                      return a->flits > b->flits;
                  return a->id < b->id;
              });
    const std::size_t shown =
        std::min<std::size_t>(sorted.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
        const auto &ll = *sorted[i];
        os << "  link " << ll.id << " " << ll.src << "->" << ll.dst;
        if (fabric.rails > 1)
            os << " rail" << ll.rail;
        os << " [" << barOf(ll.load) << "] " << percentOf(ll.load)
           << "% (" << ll.flits << " flits, queue " << ll.queue
           << ")\n";
    }
    if (sorted.size() > shown)
        os << "  ... " << sorted.size() - shown << " more\n";
    if (fabric.rails > 1) {
        // Multi-rail fabrics get a per-rail rollup so striping
        // imbalance is visible at a glance.
        std::vector<std::uint64_t> rail_flits(
            static_cast<std::size_t>(fabric.rails), 0);
        for (const auto &ll : map.links) {
            if (ll.rail >= 0 && ll.rail < fabric.rails)
                rail_flits[static_cast<std::size_t>(ll.rail)] +=
                    ll.flits;
        }
        os << "  per-rail totals:";
        for (int r = 0; r < fabric.rails; ++r) {
            os << " rail" << r << "="
               << rail_flits[static_cast<std::size_t>(r)];
        }
        os << "\n";
    }
}

} // namespace

void
renderLinkHeatmapAscii(std::ostream &os, const FabricInfo &fabric,
                       const CongestionMap &map)
{
    if (isGrid(fabric))
        renderLinkGrid(os, fabric, map);
    else
        renderLinkBars(os, fabric, map);
}

void
renderRouterHeatmapAscii(std::ostream &os, const FabricInfo &fabric,
                         const CongestionMap &map)
{
    if (isGrid(fabric)) {
        const int w = fabric.grid_width;
        const int h = fabric.grid_height;
        os << "router heatmap (through-flit deciles, peak "
           << map.peak_router_flits << "):\n";
        for (int y = 0; y < h; ++y) {
            os << "  ";
            for (int x = 0; x < w; ++x) {
                const auto &rl = map.routers[static_cast<std::size_t>(
                    y * w + x)];
                const int decile = std::clamp(
                    static_cast<int>(std::lround(rl.load * 9.0)), 0,
                    9);
                os << (x > 0 ? " " : "") << decile;
            }
            os << "\n";
        }
        return;
    }
    os << "router heatmap (through flits, busiest first):\n";
    std::vector<const CongestionMap::RouterLoad *> sorted;
    sorted.reserve(map.routers.size());
    for (const auto &rl : map.routers)
        sorted.push_back(&rl);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) {
                  if (a->through_flits != b->through_flits)
                      return a->through_flits > b->through_flits;
                  return a->vertex < b->vertex;
              });
    const std::size_t shown =
        std::min<std::size_t>(sorted.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
        const auto &rl = *sorted[i];
        os << "  router " << rl.vertex << " [" << barOf(rl.load)
           << "] " << rl.through_flits << " flits";
        if (rl.sa_denied > 0 || rl.credit_stalls > 0) {
            os << " (sa_denied " << rl.sa_denied
               << ", credit_stalls " << rl.credit_stalls << ")";
        }
        if (rl.combiner_groups > 0 || rl.combiner_fallbacks > 0) {
            os << " (combiner: " << rl.combiner_groups
               << " groups, peak open " << rl.combiner_peak_open
               << ", fallbacks " << rl.combiner_fallbacks << ")";
        }
        os << "\n";
    }
    if (sorted.size() > shown)
        os << "  ... " << sorted.size() - shown << " more\n";
}

void
writeHeatmapCsv(std::ostream &os, const FabricInfo &,
                const CongestionMap &map)
{
    os << "channel,src,dst,rail,flits,messages,busy,queue,load\n";
    for (const auto &ll : map.links) {
        os << ll.id << "," << ll.src << "," << ll.dst << ","
           << ll.rail << "," << ll.flits << "," << ll.messages << ","
           << ll.busy << "," << ll.queue << "," << ll.load << "\n";
    }
}

} // namespace multitree::obs
