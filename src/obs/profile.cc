#include "obs/profile.hh"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>
#include <utility>

#include "obs/results.hh"

namespace multitree::obs {

namespace {

// NI wire tags, mirrored from ni::nic_engine.hh (the obs layer stays
// independent of the NI library; the values are part of the wire
// contract the trace taxonomy already relies on).
constexpr std::uint64_t kReduceTag = 0;
constexpr std::uint64_t kGatherTag = 1;
constexpr std::uint64_t kFirstNonDataTag = 2; ///< acks and above

bool
isData(const LatencyRecord &r)
{
    return r.tag < kFirstNonDataTag;
}

} // namespace

const char *
categoryName(LatencyCategory c)
{
    switch (c) {
      case LatencyCategory::NicWait:
        return "nic_wait";
      case LatencyCategory::InjQueue:
        return "inj_queue";
      case LatencyCategory::HeadRoute:
        return "head_route";
      case LatencyCategory::Serialization:
        return "serialization";
      case LatencyCategory::CreditStall:
        return "credit_stall";
      case LatencyCategory::Reduction:
        return "reduction";
      case LatencyCategory::McastBranch:
        return "mcast_branch";
    }
    return "unknown";
}

void
Profiler::onRunBegin(Tick now)
{
    records_.clear();
    issues_.clear();
    reductions_.clear();
    channels_.clear();
    routers_.clear();
    by_track_.clear();
    phase_names_.clear();
    cur_issue_ = -1;
    run_begin_ = now;
    run_end_ = now;
    run_complete_ = false;
}

void
Profiler::onRunEnd(Tick now)
{
    run_end_ = now;
    run_complete_ = true;
}

void
Profiler::beginIssue(int node, int entry, int flow, int step,
                     bool gather, int parent, bool dep_on_parent,
                     const std::vector<int> &deps, int phase,
                     Tick now)
{
    IssueRecord ir;
    ir.node = node;
    ir.entry = entry;
    ir.flow = flow;
    ir.step = step;
    ir.gather = gather;
    ir.parent = parent;
    ir.dep_on_parent = dep_on_parent;
    ir.deps = deps;
    ir.phase = phase;
    ir.tick = now;
    cur_issue_ = static_cast<int>(issues_.size());
    issues_.push_back(std::move(ir));
}

void
Profiler::onReduction(int node, int src, int flow, Tick start,
                      Tick duration)
{
    reductions_.push_back(
        ReductionRecord{node, src, flow, start, duration});
}

void
Profiler::onInject(std::uint64_t track_id, int src, int dst, int flow,
                   std::uint64_t tag, std::uint64_t bytes, int hops,
                   std::uint64_t wire_flits, int phase, Tick now)
{
    LatencyRecord r;
    r.track_id = track_id;
    r.src = src;
    r.dst = dst;
    r.flow = flow;
    r.tag = tag;
    r.bytes = bytes;
    r.hops = hops;
    r.wire_flits = wire_flits;
    r.injected = now;
    r.issue_index = cur_issue_;
    r.phase = phase;
    by_track_[track_id] = records_.size();
    records_.push_back(std::move(r));
}

LatencyRecord *
Profiler::find(std::uint64_t track_id)
{
    auto it = by_track_.find(track_id);
    if (it == by_track_.end())
        return nullptr;
    return &records_[it->second];
}

void
Profiler::onInjectStart(std::uint64_t track_id, Tick now)
{
    if (LatencyRecord *r = find(track_id))
        r->inj_start = now;
}

void
Profiler::onHeadArrival(std::uint64_t track_id, Tick now)
{
    LatencyRecord *r = find(track_id);
    // Only the first head matters (message-based mode has one; in
    // packet-based mode subsequent per-packet heads ride mid-stream).
    if (r != nullptr && r->head_arrival == 0)
        r->head_arrival = now;
}

void
Profiler::setAnalyticBreakdown(std::uint64_t track_id, Tick inj_queue,
                               Tick head_route, Tick serialization)
{
    LatencyRecord *r = find(track_id);
    if (r == nullptr)
        return;
    r->analytic = true;
    r->inj_queue = inj_queue;
    r->head_route = head_route;
    r->serialization = serialization;
}

void
Profiler::onMcastRole(std::uint64_t track_id, McastRole role)
{
    if (LatencyRecord *r = find(track_id))
        r->mcast_role = role;
}

void
Profiler::onDeliver(std::uint64_t track_id, Tick now)
{
    LatencyRecord *r = find(track_id);
    if (r == nullptr)
        return;
    r->delivered = now;
    r->done = true;
    const Tick total = r->delivered - r->injected;
    if (r->analytic) {
        // The flow model fixed everything but downstream queueing at
        // inject time; the residual (plus any fault-injected delivery
        // delay) is backpressure along the route. For an in-network
        // leg the analytic split describes only the final wire
        // segment, so the residual is replication-tree / combining
        // time and is relabeled mcast_branch.
        const Tick known =
            r->inj_queue + r->head_route + r->serialization;
        const Tick residual = total > known ? total - known : 0;
        if (r->mcast_role != McastRole::None)
            r->mcast_branch = residual;
        else
            r->credit_stall = residual;
        return;
    }
    // Flit backend: derive the split from observed milestones,
    // clamped into [injected, delivered] so the sum is exact even if
    // a milestone was missed.
    Tick start = std::max(r->inj_start, r->injected);
    start = std::min(start, r->delivered);
    Tick head = std::max(r->head_arrival, start);
    head = std::min(head, r->delivered);
    r->inj_queue = start - r->injected;
    r->head_route = head - start;
    const Tick drain = r->delivered - head;
    const Tick ser =
        r->wire_flits > 0
            ? std::min<Tick>(drain, static_cast<Tick>(r->wire_flits)
                                        - 1)
            : 0;
    r->serialization = ser;
    r->credit_stall = drain - ser;
    // In-network relabeling, sum-preserving by construction. A
    // multicast branch's inj_start milestone is its *terminal*
    // segment's injection at the last replication point, so the span
    // recorded as inj_queue is the upstream replication tree. A
    // combining contribution's head milestone is its arrival at the
    // combiner, so the post-serialization drain is sibling wait plus
    // the combined final hop.
    if (r->mcast_role == McastRole::Branch) {
        r->mcast_branch = r->inj_queue;
        r->inj_queue = 0;
    } else if (r->mcast_role == McastRole::Combine) {
        r->mcast_branch = r->credit_stall;
        r->credit_stall = 0;
    }
}

void
Profiler::ingestChannel(int cid, const ChannelProfile &cp)
{
    auto idx = static_cast<std::size_t>(cid);
    if (channels_.size() <= idx)
        channels_.resize(idx + 1);
    channels_[idx] = cp;
}

void
Profiler::ingestRouter(int vertex, const RouterProfile &rp)
{
    auto idx = static_cast<std::size_t>(vertex);
    if (routers_.size() <= idx)
        routers_.resize(idx + 1);
    // Preserve combiner counters a prior noteCombiner() installed:
    // backends flush arbitration counters and combiner telemetry
    // through separate paths.
    RouterProfile merged = rp;
    merged.combiner_groups = routers_[idx].combiner_groups;
    merged.combiner_combined = routers_[idx].combiner_combined;
    merged.combiner_absorbed = routers_[idx].combiner_absorbed;
    merged.combiner_fallbacks = routers_[idx].combiner_fallbacks;
    merged.combiner_dissolved = routers_[idx].combiner_dissolved;
    merged.combiner_peak_open = routers_[idx].combiner_peak_open;
    routers_[idx] = merged;
}

void
Profiler::noteCombiner(int vertex, std::uint64_t groups,
                       std::uint64_t combined, std::uint64_t absorbed,
                       std::uint64_t fallbacks,
                       std::uint64_t dissolved,
                       std::uint32_t peak_open)
{
    auto idx = static_cast<std::size_t>(vertex);
    if (routers_.size() <= idx)
        routers_.resize(idx + 1);
    RouterProfile &rp = routers_[idx];
    rp.combiner_groups = groups;
    rp.combiner_combined = combined;
    rp.combiner_absorbed = absorbed;
    rp.combiner_fallbacks = fallbacks;
    rp.combiner_dissolved = dissolved;
    rp.combiner_peak_open = peak_open;
}

ProfileSummary
Profiler::summary() const
{
    ProfileSummary s;
    for (const auto &r : records_) {
        if (!r.done || !isData(r))
            continue;
        ++s.messages;
        s.total_latency += r.total();
        s.inj_queue += r.inj_queue;
        s.head_route += r.head_route;
        s.serialization += r.serialization;
        s.credit_stall += r.credit_stall;
        s.mcast_branch += r.mcast_branch;
        s.max_latency = std::max(s.max_latency, r.total());
    }
    return s;
}

std::vector<ProfileSummary>
Profiler::summaryByPhase() const
{
    std::size_t num_phases = std::max<std::size_t>(
        phase_names_.empty() ? 1 : phase_names_.size(), 1);
    for (const auto &r : records_) {
        if (r.phase >= 0)
            num_phases = std::max(
                num_phases, static_cast<std::size_t>(r.phase) + 1);
    }
    std::vector<ProfileSummary> out(num_phases);
    for (const auto &r : records_) {
        if (!r.done || !isData(r) || r.phase < 0)
            continue;
        ProfileSummary &s = out[static_cast<std::size_t>(r.phase)];
        ++s.messages;
        s.total_latency += r.total();
        s.inj_queue += r.inj_queue;
        s.head_route += r.head_route;
        s.serialization += r.serialization;
        s.credit_stall += r.credit_stall;
        s.mcast_branch += r.mcast_branch;
        s.max_latency = std::max(s.max_latency, r.total());
    }
    return out;
}

namespace {

Tick &
cat(CategoryRollup &rollup, LatencyCategory c)
{
    return rollup[static_cast<std::size_t>(c)];
}

} // namespace

CriticalPath
extractCriticalPath(const Profiler &prof)
{
    CriticalPath cp;
    if (!prof.runComplete()) {
        cp.error = "no completed run recorded";
        return cp;
    }
    cp.total = prof.runEnd() - prof.runBegin();

    const auto &records = prof.records();
    const auto &issues = prof.issues();
    const auto &reductions = prof.reductions();

    // Index deliveries by schedule edge. A lossless run delivers
    // each (src, dst, flow, phase) edge exactly once; duplicates
    // (retransmissions) make dependency resolution ambiguous and are
    // reported instead of guessed at.
    constexpr int kDuplicate = -2;
    std::map<std::tuple<int, int, int, std::uint64_t>, int> by_edge;
    int terminal = -1;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const LatencyRecord &r = records[i];
        if (!isData(r) || !r.done)
            continue;
        auto key = std::make_tuple(r.src, r.dst, r.flow, r.tag);
        auto [it, inserted] =
            by_edge.emplace(key, static_cast<int>(i));
        if (!inserted)
            it->second = kDuplicate;
        if (terminal < 0
            || r.delivered
                   > records[static_cast<std::size_t>(terminal)]
                         .delivered) {
            terminal = static_cast<int>(i);
        }
    }
    if (terminal < 0) {
        cp.error = "no data deliveries recorded";
        return cp;
    }

    std::map<std::pair<int, int>, int> issue_at;
    for (std::size_t i = 0; i < issues.size(); ++i)
        issue_at[{issues[i].node, issues[i].entry}] =
            static_cast<int>(i);
    std::map<std::tuple<int, int, int>, int> reduction_at;
    for (std::size_t i = 0; i < reductions.size(); ++i) {
        const ReductionRecord &rr = reductions[i];
        reduction_at[{rr.node, rr.src, rr.flow}] =
            static_cast<int>(i);
    }

    cp.tail_wait =
        prof.runEnd()
        - records[static_cast<std::size_t>(terminal)].delivered;
    cat(cp.by_category, LatencyCategory::NicWait) += cp.tail_wait;

    // Backward greedy walk: at every message, find the latest of its
    // issue's enablers (previous table entry, dependency clears, run
    // begin); the gaps are NI waits, a gating reduction contributes
    // its occupancy, and the walk recurses into the binding delivery.
    // Every charged segment abuts the next, so the rollup tiles
    // [runBegin, runEnd] exactly.
    std::size_t guard = records.size() + issues.size() + 2;
    int rec = terminal;
    Tick pending_reduction = 0;
    for (;;) {
        if (guard-- == 0) {
            cp.error = "critical-path walk did not terminate";
            return cp;
        }
        const LatencyRecord &r =
            records[static_cast<std::size_t>(rec)];
        CriticalPath::Hop hop;
        hop.src = r.src;
        hop.dst = r.dst;
        hop.flow = r.flow;
        hop.gather = r.tag == kGatherTag;
        hop.reduction_after = pending_reduction;
        pending_reduction = 0;
        hop.injected = r.injected;
        hop.delivered = r.delivered;
        hop.inj_queue = r.inj_queue;
        hop.head_route = r.head_route;
        hop.serialization = r.serialization;
        hop.credit_stall = r.credit_stall;
        hop.mcast_branch = r.mcast_branch;
        cat(cp.by_category, LatencyCategory::InjQueue) += r.inj_queue;
        cat(cp.by_category, LatencyCategory::HeadRoute) +=
            r.head_route;
        cat(cp.by_category, LatencyCategory::Serialization) +=
            r.serialization;
        cat(cp.by_category, LatencyCategory::CreditStall) +=
            r.credit_stall;
        cat(cp.by_category, LatencyCategory::McastBranch) +=
            r.mcast_branch;

        if (r.issue_index < 0
            || static_cast<std::size_t>(r.issue_index)
                   >= issues.size()) {
            cp.error = "delivery without an issue record (profiler "
                       "attached mid-run?)";
            return cp;
        }
        int is = r.issue_index;
        bool at_begin = false;
        int next_rec = -1;
        Tick gating_reduction = 0;
        for (;;) {
            if (guard-- == 0) {
                cp.error = "critical-path walk did not terminate";
                return cp;
            }
            const IssueRecord &I =
                issues[static_cast<std::size_t>(is)];
            hop.step = std::max(hop.step, I.step);
            Tick best = prof.runBegin();
            enum { Begin, PrevIssue, Dep } kind = Begin;
            int best_issue = -1;
            int best_rec = -1;
            Tick best_red = 0;
            if (I.entry > 0) {
                auto pit = issue_at.find({I.node, I.entry - 1});
                if (pit == issue_at.end()) {
                    cp.error = "missing issue record for table "
                               "ordering dependency";
                    return cp;
                }
                const Tick t =
                    issues[static_cast<std::size_t>(pit->second)]
                        .tick;
                if (t >= best) {
                    best = t;
                    kind = PrevIssue;
                    best_issue = pit->second;
                }
            }
            std::vector<std::pair<int, std::uint64_t>> dep_edges;
            if (I.dep_on_parent) {
                dep_edges.emplace_back(I.parent, kGatherTag);
            } else {
                for (int child : I.deps)
                    dep_edges.emplace_back(child, kReduceTag);
            }
            for (const auto &[peer, tag] : dep_edges) {
                auto dit = by_edge.find(
                    std::make_tuple(peer, I.node, I.flow, tag));
                if (dit == by_edge.end()) {
                    cp.error = "dependency delivery not recorded "
                               "(lossy run?)";
                    return cp;
                }
                if (dit->second == kDuplicate) {
                    cp.error = "ambiguous dependency: duplicate "
                               "deliveries on one schedule edge";
                    return cp;
                }
                const LatencyRecord &d =
                    records[static_cast<std::size_t>(dit->second)];
                Tick clear = d.delivered;
                Tick rdur = 0;
                auto rit =
                    reduction_at.find({I.node, peer, I.flow});
                if (rit != reduction_at.end()) {
                    const ReductionRecord &rr =
                        reductions[static_cast<std::size_t>(
                            rit->second)];
                    clear = rr.start + rr.duration;
                    rdur = rr.duration;
                }
                if (clear >= best) {
                    best = clear;
                    kind = Dep;
                    best_rec = dit->second;
                    best_red = rdur;
                }
            }
            if (best > I.tick) {
                cp.error = "non-causal enabler (dependency cleared "
                           "after its dependent issued)";
                return cp;
            }
            cat(cp.by_category, LatencyCategory::NicWait) +=
                I.tick - best;
            hop.wait += I.tick - best;
            if (kind == PrevIssue) {
                is = best_issue;
                continue;
            }
            if (kind == Dep) {
                next_rec = best_rec;
                gating_reduction = best_red;
            } else {
                at_begin = true;
            }
            break;
        }
        cp.hops.push_back(std::move(hop));
        if (at_begin)
            break;
        cat(cp.by_category, LatencyCategory::Reduction) +=
            gating_reduction;
        pending_reduction = gating_reduction;
        rec = next_rec;
    }
    std::reverse(cp.hops.begin(), cp.hops.end());
    cp.ok = true;
    return cp;
}

namespace {

void
writeRollup(std::ostream &os, const CategoryRollup &rollup)
{
    os << "{";
    for (std::size_t c = 0; c < kNumLatencyCategories; ++c) {
        if (c > 0)
            os << ", ";
        os << jsonQuote(
                  categoryName(static_cast<LatencyCategory>(c)))
           << ": " << rollup[c];
    }
    os << "}";
}

} // namespace

void
writeProfileJson(std::ostream &os, const FabricInfo &fabric,
                 const Profiler &prof, const CriticalPath &cp,
                 std::size_t max_records)
{
    const ProfileSummary s = prof.summary();
    os << "{\n";
    os << "  \"schema_version\": " << kProfileSchemaVersion << ",\n";
    os << "  \"commit\": " << jsonQuote(buildCommit()) << ",\n";
    os << "  \"fabric\": " << jsonQuote(fabric.name) << ",\n";
    os << "  \"nodes\": " << fabric.num_nodes << ",\n";
    os << "  \"channels\": " << fabric.links.size() << ",\n";
    os << "  \"run\": {\"begin\": " << prof.runBegin()
       << ", \"end\": " << prof.runEnd() << ", \"cycles\": "
       << (prof.runEnd() - prof.runBegin()) << ", \"complete\": "
       << (prof.runComplete() ? "true" : "false") << "},\n";
    os << "  \"summary\": {\"messages\": " << s.messages
       << ", \"total_latency\": " << s.total_latency
       << ", \"inj_queue\": " << s.inj_queue << ", \"head_route\": "
       << s.head_route << ", \"serialization\": " << s.serialization
       << ", \"credit_stall\": " << s.credit_stall
       << ", \"max_latency\": " << s.max_latency << "},\n";

    const auto by_phase = prof.summaryByPhase();
    const auto &phase_names = prof.phaseNames();
    os << "  \"phases\": [";
    for (std::size_t p = 0; p < by_phase.size(); ++p) {
        const ProfileSummary &ps = by_phase[p];
        const std::string name =
            p < phase_names.size() ? phase_names[p] : "phase-"
                                         + std::to_string(p);
        os << (p > 0 ? ",\n    " : "\n    ");
        os << "{\"phase\": " << p << ", \"name\": " << jsonQuote(name)
           << ", \"messages\": " << ps.messages
           << ", \"total_latency\": " << ps.total_latency
           << ", \"inj_queue\": " << ps.inj_queue
           << ", \"head_route\": " << ps.head_route
           << ", \"serialization\": " << ps.serialization
           << ", \"credit_stall\": " << ps.credit_stall
           << ", \"mcast_branch\": " << ps.mcast_branch
           << ", \"max_latency\": " << ps.max_latency << "}";
    }
    os << "\n  ],\n";

    os << "  \"critical_path\": {\n";
    os << "    \"ok\": " << (cp.ok ? "true" : "false") << ",\n";
    os << "    \"error\": " << jsonQuote(cp.error) << ",\n";
    os << "    \"total\": " << cp.total << ",\n";
    os << "    \"tail_wait\": " << cp.tail_wait << ",\n";
    os << "    \"rollup\": ";
    writeRollup(os, cp.by_category);
    os << ",\n    \"hops\": [";
    for (std::size_t i = 0; i < cp.hops.size(); ++i) {
        const auto &h = cp.hops[i];
        os << (i > 0 ? ",\n      " : "\n      ");
        os << "{\"src\": " << h.src << ", \"dst\": " << h.dst
           << ", \"flow\": " << h.flow << ", \"step\": " << h.step
           << ", \"kind\": "
           << (h.gather ? "\"gather\"" : "\"reduce\"")
           << ", \"wait\": " << h.wait << ", \"reduction_after\": "
           << h.reduction_after << ", \"injected\": " << h.injected
           << ", \"delivered\": " << h.delivered
           << ", \"inj_queue\": " << h.inj_queue
           << ", \"head_route\": " << h.head_route
           << ", \"serialization\": " << h.serialization
           << ", \"credit_stall\": " << h.credit_stall
           << ", \"mcast_branch\": " << h.mcast_branch << "}";
    }
    os << "\n    ]\n  },\n";

    os << "  \"channel_profile\": [";
    const auto &chans = prof.channels();
    for (std::size_t i = 0; i < fabric.links.size(); ++i) {
        const ChannelProfile cpch =
            i < chans.size() ? chans[i] : ChannelProfile{};
        const auto &link = fabric.links[i];
        os << (i > 0 ? ",\n    " : "\n    ");
        os << "{\"id\": " << link.id << ", \"src\": " << link.src
           << ", \"dst\": " << link.dst << ", \"flits\": "
           << cpch.flits << ", \"messages\": " << cpch.messages
           << ", \"busy\": " << cpch.busy << ", \"queue\": "
           << cpch.queue << "}";
    }
    os << "\n  ],\n";

    os << "  \"router_profile\": [";
    const auto &routers = prof.routers();
    for (std::size_t i = 0; i < routers.size(); ++i) {
        const RouterProfile &rp = routers[i];
        os << (i > 0 ? ",\n    " : "\n    ");
        os << "{\"vertex\": " << i << ", \"sa_grants\": "
           << rp.sa_grants << ", \"sa_denied\": " << rp.sa_denied
           << ", \"credit_stalls\": " << rp.credit_stalls
           << ", \"combiner_groups\": " << rp.combiner_groups
           << ", \"combiner_combined\": " << rp.combiner_combined
           << ", \"combiner_absorbed\": " << rp.combiner_absorbed
           << ", \"combiner_fallbacks\": " << rp.combiner_fallbacks
           << ", \"combiner_dissolved\": " << rp.combiner_dissolved
           << ", \"combiner_peak_open\": " << rp.combiner_peak_open
           << ", \"occupancy\": [";
        for (std::size_t b = 0; b < kOccupancyBuckets; ++b)
            os << (b > 0 ? ", " : "") << rp.occupancy[b];
        os << "]}";
    }
    os << "\n  ],\n";

    os << "  \"records\": [";
    std::size_t emitted = 0;
    std::size_t finished = 0;
    for (const auto &r : prof.records()) {
        if (!r.done)
            continue;
        ++finished;
        if (emitted >= max_records)
            continue;
        os << (emitted > 0 ? ",\n    " : "\n    ");
        os << "{\"track\": " << r.track_id << ", \"src\": " << r.src
           << ", \"dst\": " << r.dst << ", \"flow\": " << r.flow
           << ", \"phase\": " << r.phase << ", \"tag\": " << r.tag
           << ", \"bytes\": " << r.bytes
           << ", \"hops\": " << r.hops << ", \"injected\": "
           << r.injected << ", \"delivered\": " << r.delivered
           << ", \"inj_queue\": " << r.inj_queue
           << ", \"head_route\": " << r.head_route
           << ", \"serialization\": " << r.serialization
           << ", \"credit_stall\": " << r.credit_stall
           << ", \"mcast_branch\": " << r.mcast_branch << "}";
        ++emitted;
    }
    os << "\n  ],\n";
    os << "  \"records_truncated\": "
       << (finished > emitted ? "true" : "false") << "\n";
    os << "}\n";
}

void
renderCriticalPath(std::ostream &os, const CriticalPath &cp)
{
    if (!cp.ok) {
        os << "critical path: unavailable (" << cp.error << ")\n";
        return;
    }
    os << "critical path: " << cp.total << " cycles over "
       << cp.hops.size() << " message hop(s)\n  ";
    for (std::size_t c = 0; c < kNumLatencyCategories; ++c) {
        if (c > 0)
            os << " | ";
        os << categoryName(static_cast<LatencyCategory>(c)) << " "
           << cp.by_category[c];
    }
    os << "\n";
    for (const auto &h : cp.hops) {
        os << "  ";
        if (h.wait > 0)
            os << "wait " << h.wait << " -> ";
        os << (h.gather ? "gather " : "reduce ") << h.src << "->"
           << h.dst << " flow " << h.flow << " step " << h.step
           << ": q" << h.inj_queue << " route" << h.head_route
           << " ser" << h.serialization << " stall"
           << h.credit_stall << " @" << h.delivered;
        if (h.mcast_branch > 0)
            os << " mcast" << h.mcast_branch;
        if (h.reduction_after > 0)
            os << " -> reduce-unit " << h.reduction_after;
        os << "\n";
    }
    if (cp.tail_wait > 0)
        os << "  tail wait " << cp.tail_wait << " to run end\n";
}

} // namespace multitree::obs
