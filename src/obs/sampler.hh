/**
 * @file
 * Fixed-cadence time-series telemetry for one collective run.
 *
 * Per-run totals answer "how much"; the sampler answers "when". The
 * runtime Machine arms a self-re-arming High-priority sample event
 * every RunOptions::sample_every cycles and snapshots the fabric into
 * one SampleFrame: in-flight census, NIC scoreboard occupancy,
 * reduction-unit occupancy, reliability counters and per-channel
 * traffic/queueing from the backend (net::Network::sampleChannels).
 * Transients a whole-run aggregate averages away — a rail imbalance
 * that only exists while a fault window is open, a retransmit storm
 * confined to one phase — show up as windows in the series.
 *
 * Overhead contract (same as TraceSink/Profiler): components hold a
 * raw `Sampler *` that is nullptr when sampling is off, and the
 * sample events are pure observers — they read state, never mutate
 * it — so an attached sampler cannot change a single tick of any run
 * (asserted by tests/test_obs.cc). Sampling happens on the event
 * queue's coordinator thread between cycle events, so the series is
 * bit-identical across `threads` counts and across the active-set /
 * dense schedulers (asserted by tests/test_activeset.cc).
 */

#ifndef MULTITREE_OBS_SAMPLER_HH
#define MULTITREE_OBS_SAMPLER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hh"
#include "obs/trace.hh"

namespace multitree::obs {

/** One snapshot of the fabric at a sample tick. Counter fields are
 *  cumulative since run begin (consumers difference adjacent frames
 *  for rates); occupancy fields are instantaneous. */
struct SampleFrame {
    Tick tick = 0;
    // --- instantaneous occupancy ---
    std::uint64_t in_flight_msgs = 0;  ///< transport census size
    std::uint64_t in_flight_bytes = 0; ///< payload bytes in flight
    std::uint64_t nic_outstanding = 0; ///< unacked sends, all NICs
    std::uint64_t active_reductions = 0; ///< busy reduction units
    /** Open switch-resident reduction groups across every switch
     *  (in-network MulticastReduce; 0 otherwise). */
    std::uint64_t combiner_open = 0;
    // --- cumulative counters ---
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    /** Combining groups denied a buffer entry (forced unicast). */
    std::uint64_t combiner_fallbacks = 0;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    /** Per-channel cumulative traffic (wire flits on the flit
     *  backend, busy cycles on the flow backend). */
    std::vector<std::uint64_t> link_flits;
    /** Per-channel instantaneous queueing at the sample tick. */
    std::vector<std::uint64_t> link_queue;
    /** Cumulative delivered payload bytes per schedule phase. */
    std::vector<std::uint64_t> phase_bytes;
};

/**
 * Passive frame store plus the CSV/JSON exporters. The Machine owns
 * the sampling cadence and fills frames; the sampler never touches
 * simulation state.
 */
class Sampler
{
  public:
    /** Start a new series: forget previous frames, remember the
     *  fabric layout, phase names and cadence for export. */
    void onRunBegin(FabricInfo fabric,
                    std::vector<std::string> phase_names,
                    Tick cadence, Tick now);

    /** Append one snapshot (ticks must be nondecreasing). */
    void addFrame(SampleFrame frame);

    /** Close the series at the run's completion tick. */
    void onRunEnd(Tick now);

    const std::vector<SampleFrame> &frames() const { return frames_; }
    const FabricInfo &fabric() const { return fabric_; }
    const std::vector<std::string> &phaseNames() const
    {
        return phase_names_;
    }
    Tick cadence() const { return cadence_; }
    Tick runBegin() const { return run_begin_; }
    Tick runEnd() const { return run_end_; }

    /** Parallel-rail count of the sampled fabric (>= 1). */
    int numRails() const;

    /** Roll @p frame's per-channel values up by rail index. */
    std::vector<std::uint64_t>
    railTotals(const std::vector<std::uint64_t> &per_link) const;

    /**
     * Wide CSV of the whole series: one row per frame; totals
     * columns, then per-phase delivered bytes, per-rail rollups and
     * per-channel columns. Counters stay cumulative (column names
     * carry a _cum suffix); consumers difference adjacent rows.
     */
    void writeCsv(std::ostream &os) const;

    /** The same series as one JSON object (the "timeseries" section
     *  of the metrics snapshot). @p indent prefixes every line. */
    void writeJson(std::ostream &os,
                   const std::string &indent = {}) const;

    /** The CSV as a string (tests, tools). */
    std::string csv() const;

    /** The JSON object as a string (tests, tools). */
    std::string json() const;

  private:
    FabricInfo fabric_;
    std::vector<std::string> phase_names_;
    Tick cadence_ = 0;
    Tick run_begin_ = 0;
    Tick run_end_ = 0;
    std::vector<SampleFrame> frames_;
};

} // namespace multitree::obs

#endif // MULTITREE_OBS_SAMPLER_HH
