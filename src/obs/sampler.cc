#include "obs/sampler.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace multitree::obs {

void
Sampler::onRunBegin(FabricInfo fabric,
                    std::vector<std::string> phase_names,
                    Tick cadence, Tick now)
{
    fabric_ = std::move(fabric);
    phase_names_ = std::move(phase_names);
    if (phase_names_.empty())
        phase_names_.push_back("run");
    cadence_ = cadence;
    run_begin_ = now;
    run_end_ = now;
    frames_.clear();
}

void
Sampler::addFrame(SampleFrame frame)
{
    MT_ASSERT(frames_.empty() || frame.tick >= frames_.back().tick,
              "sample ticks must be nondecreasing: ", frame.tick,
              " after ", frames_.back().tick);
    frames_.push_back(std::move(frame));
}

void
Sampler::onRunEnd(Tick now)
{
    run_end_ = now;
}

int
Sampler::numRails() const
{
    return std::max(fabric_.rails, 1);
}

std::vector<std::uint64_t>
Sampler::railTotals(const std::vector<std::uint64_t> &per_link) const
{
    std::vector<std::uint64_t> out(
        static_cast<std::size_t>(numRails()), 0);
    for (const auto &link : fabric_.links) {
        const auto c = static_cast<std::size_t>(link.id);
        if (c < per_link.size())
            out[static_cast<std::size_t>(link.rail)] += per_link[c];
    }
    return out;
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "tick,in_flight_msgs,in_flight_bytes,nic_outstanding,"
          "active_reductions,combiner_open,retransmits_cum,"
          "timeouts_cum,combiner_fallbacks_cum,"
          "injected_cum,delivered_cum,dropped_cum";
    for (std::size_t p = 0; p < phase_names_.size(); ++p)
        os << ",phase" << p << "_bytes_cum";
    const int rails = numRails();
    for (int r = 0; r < rails; ++r)
        os << ",rail" << r << "_flits_cum,rail" << r << "_queue";
    for (const auto &link : fabric_.links)
        os << ",link" << link.id << "_flits_cum,link" << link.id
           << "_queue";
    os << "\n";
    for (const SampleFrame &f : frames_) {
        os << f.tick << "," << f.in_flight_msgs << ","
           << f.in_flight_bytes << "," << f.nic_outstanding << ","
           << f.active_reductions << "," << f.combiner_open << ","
           << f.retransmits << "," << f.timeouts << ","
           << f.combiner_fallbacks << "," << f.injected << ","
           << f.delivered << "," << f.dropped;
        for (std::size_t p = 0; p < phase_names_.size(); ++p) {
            os << ","
               << (p < f.phase_bytes.size() ? f.phase_bytes[p] : 0);
        }
        const auto rf = railTotals(f.link_flits);
        const auto rq = railTotals(f.link_queue);
        for (int r = 0; r < rails; ++r) {
            const auto ri = static_cast<std::size_t>(r);
            os << "," << rf[ri] << "," << rq[ri];
        }
        for (const auto &link : fabric_.links) {
            const auto c = static_cast<std::size_t>(link.id);
            os << ","
               << (c < f.link_flits.size() ? f.link_flits[c] : 0)
               << ","
               << (c < f.link_queue.size() ? f.link_queue[c] : 0);
        }
        os << "\n";
    }
}

namespace {

void
writeU64Array(std::ostream &os, const std::vector<std::uint64_t> &v)
{
    os << "[";
    const char *sep = "";
    for (std::uint64_t x : v) {
        os << sep << x;
        sep = ", ";
    }
    os << "]";
}

} // namespace

void
Sampler::writeJson(std::ostream &os, const std::string &indent) const
{
    os << "{\n";
    os << indent << "  \"cadence\": " << cadence_ << ",\n";
    os << indent << "  \"run_begin\": " << run_begin_ << ",\n";
    os << indent << "  \"run_end\": " << run_end_ << ",\n";
    os << indent << "  \"rails\": " << numRails() << ",\n";
    os << indent << "  \"phases\": [";
    const char *sep = "";
    for (const auto &name : phase_names_) {
        os << sep << jsonQuote(name);
        sep = ", ";
    }
    os << "],\n";
    os << indent << "  \"frames\": [";
    sep = "\n";
    for (const SampleFrame &f : frames_) {
        os << sep << indent << "    {\"tick\": " << f.tick
           << ", \"in_flight_msgs\": " << f.in_flight_msgs
           << ", \"in_flight_bytes\": " << f.in_flight_bytes
           << ", \"nic_outstanding\": " << f.nic_outstanding
           << ", \"active_reductions\": " << f.active_reductions
           << ", \"combiner_open\": " << f.combiner_open
           << ", \"retransmits\": " << f.retransmits
           << ", \"timeouts\": " << f.timeouts
           << ", \"combiner_fallbacks\": " << f.combiner_fallbacks
           << ", \"injected\": " << f.injected
           << ", \"delivered\": " << f.delivered
           << ", \"dropped\": " << f.dropped << ", \"phase_bytes\": ";
        writeU64Array(os, f.phase_bytes);
        os << ", \"rail_flits\": ";
        writeU64Array(os, railTotals(f.link_flits));
        os << ", \"rail_queue\": ";
        writeU64Array(os, railTotals(f.link_queue));
        os << ", \"link_flits\": ";
        writeU64Array(os, f.link_flits);
        os << ", \"link_queue\": ";
        writeU64Array(os, f.link_queue);
        os << "}";
        sep = ",\n";
    }
    if (!frames_.empty())
        os << "\n" << indent << "  ";
    os << "],\n";
    os << indent << "  \"num_frames\": " << frames_.size() << "\n";
    os << indent << "}";
}

std::string
Sampler::csv() const
{
    std::ostringstream oss;
    writeCsv(oss);
    return oss.str();
}

std::string
Sampler::json() const
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

} // namespace multitree::obs
