/**
 * @file
 * Per-link utilization timelines.
 *
 * Folds the LinkBusy spans of a recorded trace into fixed-width
 * windows and reports, per directed channel, the fraction of each
 * window the channel spent carrying flits. This is the tabular view
 * of the paper's contention arguments (Table I): a hot link shows as
 * a row of near-1.0 buckets while its neighbours idle.
 */

#ifndef MULTITREE_OBS_TIMELINE_HH
#define MULTITREE_OBS_TIMELINE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace multitree::obs {

/** Busy fraction of every link over consecutive windows. */
struct LinkTimeline {
    Tick window = 0;      ///< bucket width in ticks
    Tick span = 0;        ///< covered time [0, span)
    int num_windows = 0;  ///< buckets per link
    /** busy[link][bucket] in [0, 1]; indexed by FabricInfo link id. */
    std::vector<std::vector<double>> busy;
};

/**
 * Build a timeline from the LinkBusy events of @p events. Spans are
 * clipped to bucket boundaries; a span crossing several buckets
 * contributes to each proportionally. @p window must be positive.
 */
LinkTimeline buildLinkTimeline(const FabricInfo &fabric,
                               const std::vector<TraceEvent> &events,
                               Tick window);

/**
 * Render @p tl as a human-readable table: one row per link that was
 * ever busy, one glyph per window (' ' idle through '#' saturated),
 * with the link's overall busy percentage.
 */
void renderTimelineText(std::ostream &os, const FabricInfo &fabric,
                        const LinkTimeline &tl);

/** Render @p tl as CSV: channel,src,dst,window_start,busy. */
void renderTimelineCsv(std::ostream &os, const FabricInfo &fabric,
                       const LinkTimeline &tl);

} // namespace multitree::obs

#endif // MULTITREE_OBS_TIMELINE_HH
