#include "obs/perfetto.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/sampler.hh"

namespace multitree::obs {

namespace {

/** Process ids of the track groups. */
enum : int {
    kRunPid = 1,
    kNodePid = 2,
    kLinkPid = 3,
    kCounterPid = 4,
};

/** Whether @p kind renders as a complete ("X") span. */
bool
isSpan(EventKind kind)
{
    switch (kind) {
      case EventKind::LinkBusy:
      case EventKind::MsgQueue:
      case EventKind::LockstepStall:
      case EventKind::ReductionBusy:
        return true;
      default:
        return false;
    }
}

/** Track assignment: (pid, tid) the event renders on. */
std::pair<int, int>
trackOf(const TraceEvent &ev)
{
    switch (ev.kind) {
      case EventKind::RunBegin:
      case EventKind::RunEnd:
        return {kRunPid, 0};
      case EventKind::LinkBusy:
        return {kLinkPid, ev.channel};
      case EventKind::MsgQueue:
        // Queueing with a known channel renders on the link it
        // waited for; injection-side queueing on the source node.
        return ev.channel >= 0 ? std::make_pair(kLinkPid, ev.channel)
                               : std::make_pair(kNodePid, ev.node);
      case EventKind::MsgDeliver:
        return {kNodePid, ev.peer};
      default:
        return {kNodePid, ev.node};
    }
}

/** Format @p tick (ns) as a microsecond timestamp literal. */
std::string
usTs(Tick tick)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(tick / 1000),
                  static_cast<unsigned long long>(tick % 1000));
    return buf;
}

/** One trace record, comma-joined by the caller. */
class RecordList
{
  public:
    explicit RecordList(std::ostream &os) : os_(os) {}

    /** Open the next record; emits the separating comma. */
    std::ostream &
    next()
    {
        if (!first_)
            os_ << ",\n";
        first_ = false;
        return os_;
    }

  private:
    std::ostream &os_;
    bool first_ = true;
};

void
writeMeta(RecordList &out, int pid, int tid, const char *what,
          const std::string &name)
{
    out.next() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":"
               << tid << ",\"name\":\"" << what
               << "\",\"args\":{\"name\":" << jsonQuote(name)
               << "}}";
}

void
writeArgs(std::ostream &os, const TraceEvent &ev)
{
    os << "\"args\":{";
    const char *sep = "";
    auto field = [&](const char *key, auto value) {
        os << sep << "\"" << key << "\":" << value;
        sep = ",";
    };
    if (ev.flow >= 0)
        field("flow", ev.flow);
    if (ev.peer >= 0 && ev.kind != EventKind::LinkBusy)
        field("dst", ev.peer);
    if (ev.node >= 0
        && (ev.kind == EventKind::MsgDeliver
            || ev.kind == EventKind::LinkBusy
            || ev.kind == EventKind::MsgQueue))
        field("src", ev.node);
    if (ev.bytes > 0)
        field("bytes", ev.bytes);
    if (ev.step >= 0)
        field("step", ev.step);
    if (ev.seq > 0)
        field("seq", ev.seq);
    if (ev.attempt > 0)
        field("attempt", ev.attempt);
    if (ev.corrupted)
        field("corrupted", "true");
    if (ev.phase > 0)
        field("phase", ev.phase);
    field("kind", std::string("\"") + kindName(ev.kind) + "\"");
    os << "}";
}

/** One counter sample: {"ph":"C",...,"args":{series...}}. */
void
writeCounter(RecordList &out, const char *name, Tick tick,
             const std::vector<std::pair<std::string,
                                         std::uint64_t>> &series)
{
    std::ostream &ro = out.next();
    ro << "{\"ph\":\"C\",\"pid\":" << kCounterPid
       << ",\"name\":\"" << name << "\",\"ts\":" << usTs(tick)
       << ",\"args\":{";
    const char *sep = "";
    for (const auto &[key, value] : series) {
        ro << sep << jsonQuote(key) << ":" << value;
        sep = ",";
    }
    ro << "}}";
}

/** Render @p sampler's frames as counter tracks. */
void
writeCounterTracks(RecordList &out, const Sampler &sampler)
{
    writeMeta(out, kCounterPid, 0, "process_name", "telemetry");
    const int rails = sampler.numRails();
    std::vector<std::uint64_t> prev_rail(
        static_cast<std::size_t>(rails), 0);
    std::uint64_t prev_retx = 0;
    for (const SampleFrame &f : sampler.frames()) {
        writeCounter(out, "in-flight messages", f.tick,
                     {{"msgs", f.in_flight_msgs}});
        writeCounter(out, "in-flight bytes", f.tick,
                     {{"bytes", f.in_flight_bytes}});
        writeCounter(out, "nic outstanding", f.tick,
                     {{"sends", f.nic_outstanding}});
        writeCounter(out, "active reductions", f.tick,
                     {{"units", f.active_reductions}});
        writeCounter(out, "retransmits/window", f.tick,
                     {{"retx", f.retransmits - prev_retx}});
        prev_retx = f.retransmits;
        const auto rail_flits = sampler.railTotals(f.link_flits);
        const auto rail_queue = sampler.railTotals(f.link_queue);
        std::vector<std::pair<std::string, std::uint64_t>> flits;
        std::vector<std::pair<std::string, std::uint64_t>> queue;
        for (int r = 0; r < rails; ++r) {
            const auto ri = static_cast<std::size_t>(r);
            flits.emplace_back("rail " + std::to_string(r),
                               rail_flits[ri] - prev_rail[ri]);
            queue.emplace_back("rail " + std::to_string(r),
                               rail_queue[ri]);
            prev_rail[ri] = rail_flits[ri];
        }
        writeCounter(out, "rail flits/window", f.tick, flits);
        writeCounter(out, "rail queue", f.tick, queue);
    }
}

} // namespace

void
writePerfettoTrace(std::ostream &os, const FabricInfo &fabric,
                   const std::vector<TraceEvent> &events)
{
    writePerfettoTrace(os, fabric, events, nullptr);
}

void
writePerfettoTrace(std::ostream &os, const FabricInfo &fabric,
                   const std::vector<TraceEvent> &events,
                   const Sampler *sampler)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    RecordList out(os);

    writeMeta(out, kRunPid, 0, "process_name",
              "collectives (" + fabric.name + ")");
    writeMeta(out, kRunPid, 0, "thread_name", "runs");
    writeMeta(out, kNodePid, 0, "process_name", "nodes");
    for (int v = 0; v < fabric.num_nodes; ++v)
        writeMeta(out, kNodePid, v, "thread_name",
                  "node " + std::to_string(v) + " (NIC)");
    writeMeta(out, kLinkPid, 0, "process_name", "links");
    for (const auto &link : fabric.links)
        writeMeta(out, kLinkPid, link.id, "thread_name",
                  "link " + std::to_string(link.id) + ": "
                      + std::to_string(link.src) + "->"
                      + std::to_string(link.dst));

    // The flow backend records link reservations at inject time with
    // their (future) start ticks, so a track's events can be
    // recorded out of tick order; a stable per-track sort restores
    // the monotone timestamps the format expects.
    std::vector<const TraceEvent *> ordered;
    ordered.reserve(events.size());
    for (const auto &ev : events)
        ordered.push_back(&ev);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceEvent *a, const TraceEvent *b) {
                         auto ta = trackOf(*a);
                         auto tb = trackOf(*b);
                         if (ta != tb)
                             return ta < tb;
                         return a->tick < b->tick;
                     });

    for (const TraceEvent *evp : ordered) {
        const TraceEvent &ev = *evp;
        auto [pid, tid] = trackOf(ev);
        std::ostream &ro = out.next();
        ro << "{\"name\":\"" << kindName(ev.kind) << "\",";
        if (isSpan(ev.kind))
            ro << "\"ph\":\"X\",\"dur\":" << usTs(ev.duration)
               << ",";
        else
            ro << "\"ph\":\"i\",\"s\":\"t\",";
        ro << "\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"ts\":" << usTs(ev.tick) << ",";
        writeArgs(ro, ev);
        ro << "}";
    }
    if (sampler != nullptr && !sampler->frames().empty())
        writeCounterTracks(out, *sampler);
    os << "\n]}\n";
}

std::string
perfettoTraceJson(const FabricInfo &fabric,
                  const std::vector<TraceEvent> &events)
{
    std::ostringstream oss;
    writePerfettoTrace(oss, fabric, events);
    return oss.str();
}

} // namespace multitree::obs
