#include "obs/timeline.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/logging.hh"

namespace multitree::obs {

LinkTimeline
buildLinkTimeline(const FabricInfo &fabric,
                  const std::vector<TraceEvent> &events, Tick window)
{
    MT_ASSERT(window > 0, "timeline window must be positive");

    LinkTimeline tl;
    tl.window = window;

    Tick end = 0;
    for (const auto &ev : events) {
        if (ev.kind != EventKind::LinkBusy)
            continue;
        end = std::max(end, ev.tick + ev.duration);
    }
    tl.num_windows =
        end == 0 ? 0 : static_cast<int>((end + window - 1) / window);
    tl.span = static_cast<Tick>(tl.num_windows) * window;
    tl.busy.assign(fabric.links.size(),
                   std::vector<double>(tl.num_windows, 0.0));

    for (const auto &ev : events) {
        if (ev.kind != EventKind::LinkBusy || ev.duration == 0)
            continue;
        if (ev.channel < 0
            || ev.channel >= static_cast<int>(tl.busy.size())) {
            continue;
        }
        auto &row = tl.busy[ev.channel];
        Tick lo = ev.tick;
        const Tick hi = ev.tick + ev.duration;
        while (lo < hi) {
            const int bucket = static_cast<int>(lo / window);
            const Tick bucket_end =
                static_cast<Tick>(bucket + 1) * window;
            const Tick piece = std::min(hi, bucket_end) - lo;
            row[bucket] += static_cast<double>(piece)
                           / static_cast<double>(window);
            lo += piece;
        }
    }

    // Overlapping reservations cannot exceed a full window; clamp so
    // rounding and double-booked spans never report > 1.
    for (auto &row : tl.busy)
        for (double &b : row)
            b = std::min(b, 1.0);
    return tl;
}

namespace {

/** Glyph for a busy fraction: ' ' idle through '#' saturated. */
char
glyphFor(double busy)
{
    static const char ramp[] = " .:-=+*%#";
    const int steps = static_cast<int>(sizeof(ramp)) - 2;
    int idx = static_cast<int>(busy * steps + 0.5);
    idx = std::clamp(idx, 0, steps);
    return ramp[idx];
}

} // namespace

void
renderTimelineText(std::ostream &os, const FabricInfo &fabric,
                   const LinkTimeline &tl)
{
    os << "link utilization (" << tl.num_windows << " windows x "
       << tl.window << " ticks; ' '=idle '#'=saturated)\n";
    for (const auto &link : fabric.links) {
        if (link.id < 0
            || link.id >= static_cast<int>(tl.busy.size())) {
            continue;
        }
        const auto &row = tl.busy[link.id];
        double total = 0.0;
        for (double b : row)
            total += b;
        if (total == 0.0)
            continue;
        char head[48];
        std::snprintf(head, sizeof head, "%4d %3d->%-3d |", link.id,
                      link.src, link.dst);
        os << head;
        for (double b : row)
            os << glyphFor(b);
        char pct[16];
        std::snprintf(pct, sizeof pct, "| %5.1f%%\n",
                      100.0 * total
                          / std::max(tl.num_windows, 1));
        os << pct;
    }
}

void
renderTimelineCsv(std::ostream &os, const FabricInfo &fabric,
                  const LinkTimeline &tl)
{
    os << "channel,src,dst,window_start,busy\n";
    for (const auto &link : fabric.links) {
        if (link.id < 0
            || link.id >= static_cast<int>(tl.busy.size())) {
            continue;
        }
        const auto &row = tl.busy[link.id];
        for (int w = 0; w < static_cast<int>(row.size()); ++w) {
            char line[96];
            std::snprintf(line, sizeof line, "%d,%d,%d,%llu,%.6f\n",
                          link.id, link.src, link.dst,
                          static_cast<unsigned long long>(
                              static_cast<Tick>(w) * tl.window),
                          row[w]);
            os << line;
        }
    }
}

} // namespace multitree::obs
