/**
 * @file
 * Latency-attribution profiler: where did the cycles go?
 *
 * The trace layer (obs/trace.hh) records *what happened*; this layer
 * explains *what it cost*. Three pieces:
 *
 *  - LatencyRecord: every message's inject-to-deliver time split into
 *    injection queueing, head-flit route time, serialization and
 *    credit-stall (backpressure) cycles, fed by milestone hooks in
 *    both network backends. The split is exact by construction:
 *    the four categories always sum to delivered - injected.
 *  - IssueRecord / ReductionRecord: the NIC engines report every
 *    schedule-table issue (with its step and dependency fields) and
 *    every finite-rate reduction, which is what lets the critical-path
 *    extractor rebuild the run's dependency DAG offline.
 *  - Per-router and per-channel counters (switch-allocation grants
 *    and denials, per-output-VC credit stalls, VC buffer-occupancy
 *    histograms in the flit backend; coarse queue/busy equivalents in
 *    the flow backend), ingested at run completion and consumed by
 *    the congestion heatmaps (obs/heatmap.hh).
 *
 * extractCriticalPath() walks the dependency DAG of a finished run
 * backwards from the last delivery and reports the chain that bounds
 * completion time, with a per-category rollup. On lossless
 * deterministic runs the rollup sums *exactly* to the end-to-end
 * completion cycles (asserted by tests/test_obs.cc): the walk's
 * segments — NIC waits, reduction occupancy and per-message
 * breakdowns — tile the interval [run begin, run end] with no gaps
 * and no overlap.
 *
 * Overhead contract (same as TraceSink): components hold a raw
 * `Profiler *` that is nullptr when profiling is off and guard every
 * hook with that one pointer test; the profiler only records and
 * never schedules events, so attaching one cannot change a single
 * tick of any run.
 */

#ifndef MULTITREE_OBS_PROFILE_HH
#define MULTITREE_OBS_PROFILE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hh"
#include "obs/trace.hh"

namespace multitree::obs {

/** Where a cycle on the critical path was spent. */
enum class LatencyCategory {
    NicWait = 0,   ///< NI-side wait: deps, lockstep windows, ordering
    InjQueue,      ///< waiting for injection capacity at the source
    HeadRoute,     ///< head flit traversing the route
    Serialization, ///< payload flits streaming behind the head
    CreditStall,   ///< backpressure: credits withheld downstream
    Reduction,     ///< reduction-unit aggregation gating an issue
    McastBranch,   ///< in-network fan-out: replication-tree traversal
                   ///< upstream of a branch's terminal segment, or
                   ///< waiting for siblings in a combining buffer
};

/** Number of LatencyCategory values (rollup array size). */
inline constexpr std::size_t kNumLatencyCategories = 7;

/**
 * Version stamp of the profile JSON layout (writeProfileJson).
 * Bumped on any change a cross-run reader (mtdiff) could
 * misattribute; readers reject mismatches loudly.
 */
inline constexpr int kProfileSchemaVersion = 2;

/**
 * How a message relates to the in-network collective machinery: a
 * multicast delivery branch, a combining-buffer contribution, or
 * plain unicast. Set by the transport at injection; finalize() uses
 * it to relabel the span the fabric spent replicating or combining
 * as LatencyCategory::McastBranch.
 */
enum class McastRole {
    None = 0,
    Branch,  ///< one destination of a multicast injection
    Combine, ///< a contribution routed through a switch combiner
};

/** Stable lower-case name of @p c (JSON keys, report rows). */
const char *categoryName(LatencyCategory c);

/** Per-category cycle rollup. */
using CategoryRollup = std::array<Tick, kNumLatencyCategories>;

/**
 * One message's latency breakdown. The wire-time categories are
 * exact-sum by construction:
 *   inj_queue + head_route + serialization + credit_stall
 *     == delivered - injected.
 * On the flit backend the split comes from observed milestones (VC
 * win, head ejection, tail delivery); on the flow backend it is the
 * model's own analytic decomposition, with downstream queueing (and
 * any fault-injected delivery delay) accounted as credit_stall.
 */
struct LatencyRecord {
    std::uint64_t track_id = 0; ///< correlation key (net::Message)
    int src = -1;
    int dst = -1;
    int flow = -1;
    std::uint64_t tag = 0; ///< NI wire tag (0 reduce, 1 gather, 2 ack)
    std::uint64_t bytes = 0;
    int hops = 0;                 ///< route length in channels
    std::uint64_t wire_flits = 0; ///< payload + head flits on the wire

    Tick injected = 0;  ///< handed to the transport
    Tick delivered = 0; ///< tail arrival at the destination NI
    bool done = false;  ///< delivered (records of dropped messages
                        ///< never finalize)

    // Attribution, valid once done:
    Tick inj_queue = 0;
    Tick head_route = 0;
    Tick serialization = 0;
    Tick credit_stall = 0;
    Tick mcast_branch = 0; ///< in-network replication / combining

    /** Index into Profiler::issues() of the schedule-table issue that
     *  injected this message, or -1 (acks, retransmissions). */
    int issue_index = -1;

    /** Schedule phase of the message (0 when single-phase). */
    int phase = 0;

    // Milestones feeding the attribution, filled by backend hooks:
    Tick inj_start = 0;    ///< flit: injection-VC win tick
    Tick head_arrival = 0; ///< flit: head ejection at the destination
    bool analytic = false; ///< flow: split fixed at inject time
    McastRole mcast_role = McastRole::None; ///< in-network role

    /** Total wire latency. */
    Tick total() const { return delivered - injected; }
};

/** One schedule-table entry issue, as the NIC engine executed it. */
struct IssueRecord {
    int node = -1;
    int entry = -1; ///< table ordinal (0-based); entry k cannot issue
                    ///< before entry k-1 (head-of-table ordering)
    int flow = -1;
    int step = 0;
    bool gather = false; ///< false = Reduce
    int parent = -1;
    bool dep_on_parent = false;
    std::vector<int> deps; ///< reduce children (or parent for gather)
    int phase = 0;         ///< schedule phase of the issuing entry
    Tick tick = 0;         ///< issue time (== injection time: the DMA
                           ///< hand-off is same-tick synchronous)
};

/** One finite-rate reduction occupying the NI's aggregation logic. */
struct ReductionRecord {
    int node = -1; ///< aggregating node
    int src = -1;  ///< child whose partial is being folded in
    int flow = -1;
    Tick start = 0;    ///< arrival of the partial
    Tick duration = 0; ///< cycles until the dependency bit clears
};

/** Per-channel transport counters (both backends). */
struct ChannelProfile {
    std::uint64_t flits = 0;    ///< flits forwarded (== busy cycles
                                ///< at one flit per cycle)
    std::uint64_t messages = 0; ///< messages routed over the channel
    Tick busy = 0;              ///< cycles the channel carried traffic
    Tick queue = 0;             ///< cycles traffic waited for it
};

/** VC buffer-occupancy histogram bucket count: 0..7 flits, then 8+. */
inline constexpr std::size_t kOccupancyBuckets = 9;

/** Per-router microarchitectural counters (flit backend only). */
struct RouterProfile {
    std::uint64_t sa_grants = 0; ///< switch-allocation winners
    std::uint64_t sa_denied = 0; ///< requesters that lost an SA round
    std::uint64_t credit_stalls = 0; ///< flit-moves blocked on credit
    /** Per-cycle samples of channel-fed input-VC buffer depths. */
    std::array<std::uint64_t, kOccupancyBuckets> occupancy{};
    // Switch-resident combining buffer (MulticastReduce runs only):
    std::uint64_t combiner_groups = 0;    ///< entries allocated
    std::uint64_t combiner_combined = 0;  ///< groups closed at the ALU
    std::uint64_t combiner_absorbed = 0;  ///< contributions held
    std::uint64_t combiner_fallbacks = 0; ///< capacity-denied groups
    std::uint64_t combiner_dissolved = 0; ///< duplicate-broken groups
    std::uint32_t combiner_peak_open = 0; ///< occupancy high-water
};

/** Aggregate over all finished data-message records. */
struct ProfileSummary {
    std::uint64_t messages = 0;
    Tick total_latency = 0; ///< sum of per-message wire latencies
    Tick inj_queue = 0;
    Tick head_route = 0;
    Tick serialization = 0;
    Tick credit_stall = 0;
    Tick mcast_branch = 0;
    Tick max_latency = 0;
};

/**
 * The recording half of the profiling layer. One Profiler is attached
 * to a runtime::Machine (RunOptions::profiler) and threaded to the
 * network backend and every NIC engine; onRunBegin() rewinds it, so
 * the records always describe the machine's most recent run.
 */
class Profiler
{
  public:
    // --- run lifecycle (runtime::Machine) ---

    /** A collective started: clear all records, stamp the origin. */
    void onRunBegin(Tick now);

    /**
     * Phase labels of the schedule about to run, indexed by the
     * phase tags arriving with issues and injections. Set by the
     * runtime after onRunBegin(); empty = single unnamed phase.
     */
    void setPhaseNames(std::vector<std::string> names)
    {
        phase_names_ = std::move(names);
    }

    /** The collective completed at @p now. */
    void onRunEnd(Tick now);

    // --- NIC issue context (ni::NicEngine) ---

    /**
     * A schedule-table entry is issuing: every message injected until
     * the matching endIssue() belongs to this issue. Injection is
     * synchronous in both backends, so the bracket never nests.
     */
    void beginIssue(int node, int entry, int flow, int step,
                    bool gather, int parent, bool dep_on_parent,
                    const std::vector<int> &deps, int phase,
                    Tick now);

    /** Close the bracket opened by beginIssue(). */
    void endIssue() { cur_issue_ = -1; }

    /** A finite-rate reduction holds flow @p flow's dependency bit
     *  for [start, start + duration). */
    void onReduction(int node, int src, int flow, Tick start,
                     Tick duration);

    // --- message milestones (net::Network and backends) ---

    /** A message entered the transport (post fault ruling). */
    void onInject(std::uint64_t track_id, int src, int dst, int flow,
                  std::uint64_t tag, std::uint64_t bytes, int hops,
                  std::uint64_t wire_flits, int phase, Tick now);

    /** Flit backend: the packet won an injection VC at @p now. */
    void onInjectStart(std::uint64_t track_id, Tick now);

    /** Flit backend: the head flit ejected at the destination. */
    void onHeadArrival(std::uint64_t track_id, Tick now);

    /**
     * Flow backend: the analytic split computed at inject time.
     * The residual at delivery (downstream queueing, fault delay)
     * lands in credit_stall.
     */
    void setAnalyticBreakdown(std::uint64_t track_id, Tick inj_queue,
                              Tick head_route, Tick serialization);

    /**
     * The message is one leg of an in-network collective: @p role
     * selects how finalize() attributes its fabric-resident time.
     */
    void onMcastRole(std::uint64_t track_id, McastRole role);

    /** The message was delivered at @p now; finalizes its record. */
    void onDeliver(std::uint64_t track_id, Tick now);

    // --- backend counter ingestion (Network::flushProfile) ---

    /** Install channel @p cid's counters (replaces prior values). */
    void ingestChannel(int cid, const ChannelProfile &cp);

    /** Install router @p vertex's counters (replaces prior values). */
    void ingestRouter(int vertex, const RouterProfile &rp);

    /** Merge switch @p vertex's combining-buffer counters into its
     *  RouterProfile (called by Network::flushCombinerProfile). */
    void noteCombiner(int vertex, std::uint64_t groups,
                      std::uint64_t combined, std::uint64_t absorbed,
                      std::uint64_t fallbacks, std::uint64_t dissolved,
                      std::uint32_t peak_open);

    // --- accessors ---

    const std::vector<LatencyRecord> &records() const
    {
        return records_;
    }
    const std::vector<IssueRecord> &issues() const { return issues_; }
    const std::vector<ReductionRecord> &reductions() const
    {
        return reductions_;
    }
    /** Dense by channel id; empty when no backend flushed. */
    const std::vector<ChannelProfile> &channels() const
    {
        return channels_;
    }
    /** Dense by vertex; empty on the flow backend. */
    const std::vector<RouterProfile> &routers() const
    {
        return routers_;
    }

    Tick runBegin() const { return run_begin_; }
    Tick runEnd() const { return run_end_; }
    /** Whether onRunEnd() was seen since the last onRunBegin(). */
    bool runComplete() const { return run_complete_; }

    /** Aggregate breakdown over all finished data messages. */
    ProfileSummary summary() const;

    /** Phase labels in effect (empty = single unnamed phase). */
    const std::vector<std::string> &phaseNames() const
    {
        return phase_names_;
    }

    /**
     * Per-phase aggregate breakdowns over finished data messages,
     * indexed by phase tag. Always at least one entry; grows to
     * cover the largest phase tag observed.
     */
    std::vector<ProfileSummary> summaryByPhase() const;

  private:
    LatencyRecord *find(std::uint64_t track_id);

    std::vector<LatencyRecord> records_;
    std::vector<IssueRecord> issues_;
    std::vector<ReductionRecord> reductions_;
    std::vector<ChannelProfile> channels_;
    std::vector<RouterProfile> routers_;
    std::unordered_map<std::uint64_t, std::size_t> by_track_;
    std::vector<std::string> phase_names_;
    int cur_issue_ = -1;
    Tick run_begin_ = 0;
    Tick run_end_ = 0;
    bool run_complete_ = false;
};

/**
 * The chain of waits, reductions and messages bounding a run's
 * completion time. When ok, the by_category rollup sums exactly to
 * total == runEnd - runBegin: the extractor's segments tile the run
 * interval.
 */
struct CriticalPath {
    bool ok = false;
    std::string error; ///< why extraction failed (when !ok)
    Tick total = 0;    ///< run end - run begin
    CategoryRollup by_category{};
    /** Wait between the terminal delivery and run completion (e.g. a
     *  trailing lockstep window with nothing left to send). */
    Tick tail_wait = 0;

    /** One message on the path, earliest first. */
    struct Hop {
        int src = -1;
        int dst = -1;
        int flow = -1;
        int step = 0;
        bool gather = false;
        /** NicWait charged between this hop's enabler and its issue
         *  (dependency / lockstep / head-of-table ordering). */
        Tick wait = 0;
        /** Reduction cycles charged after this hop's delivery, when
         *  aggregation of its payload gated the next issue. */
        Tick reduction_after = 0;
        Tick injected = 0;
        Tick delivered = 0;
        Tick inj_queue = 0;
        Tick head_route = 0;
        Tick serialization = 0;
        Tick credit_stall = 0;
        Tick mcast_branch = 0;
    };
    std::vector<Hop> hops;
};

/**
 * Walk @p prof's dependency DAG backwards from the last data delivery
 * and return the binding chain. Requires a complete run
 * (prof.runComplete()); lossy or ambiguous runs (duplicate deliveries
 * from retransmissions) fail with a diagnostic instead of guessing.
 */
CriticalPath extractCriticalPath(const Profiler &prof);

/**
 * Self-describing JSON profile: run window, per-message aggregate
 * breakdown, the critical path with per-hop detail, per-channel loads
 * and per-router counters. @p max_records caps the per-message record
 * array (0 = omit it).
 */
void writeProfileJson(std::ostream &os, const FabricInfo &fabric,
                      const Profiler &prof, const CriticalPath &cp,
                      std::size_t max_records = 4096);

/** Human-oriented critical-path report (mtsim, debugging). */
void renderCriticalPath(std::ostream &os, const CriticalPath &cp);

} // namespace multitree::obs

#endif // MULTITREE_OBS_PROFILE_HH
