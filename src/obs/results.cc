#include "obs/results.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include <unistd.h>

#include "obs/trace.hh"

namespace multitree::obs {

namespace {

/**
 * Minimal scanner for the results format this module itself writes:
 * one "results" array of flat objects with string and number values.
 * It tolerates any whitespace and unknown keys, and bails to an
 * empty result on anything structurally unexpected — the caller
 * treats that the same as a missing file.
 */
class Scanner
{
  public:
    explicit Scanner(const std::string &text) : s_(text) {}

    void
    skipWs()
    {
        while (i_ < s_.size()
               && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n'
                   || s_[i_] == '\r'))
            ++i_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (i_ >= s_.size() || s_[i_] != c)
            return false;
        ++i_;
        return true;
    }

    char
    peek()
    {
        skipWs();
        return i_ < s_.size() ? s_[i_] : '\0';
    }

    /** Parse a JSON string literal (after jsonQuote's escaping). */
    bool
    string(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (i_ < s_.size()) {
            char c = s_[i_++];
            if (c == '"')
                return true;
            if (c == '\\' && i_ < s_.size()) {
                char e = s_[i_++];
                switch (e) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u':
                    // jsonQuote only emits \u00XX for control bytes.
                    if (i_ + 4 <= s_.size()) {
                        out += static_cast<char>(std::stoi(
                            s_.substr(i_, 4), nullptr, 16));
                        i_ += 4;
                    }
                    break;
                default: out += e; break;
                }
                continue;
            }
            out += c;
        }
        return false; // unterminated
    }

    /** Parse a number, null, true or false into a double. */
    bool
    number(double &out)
    {
        skipWs();
        if (s_.compare(i_, 4, "null") == 0) {
            i_ += 4;
            out = 0;
            return true;
        }
        if (s_.compare(i_, 4, "true") == 0) {
            i_ += 4;
            out = 1;
            return true;
        }
        if (s_.compare(i_, 5, "false") == 0) {
            i_ += 5;
            out = 0;
            return true;
        }
        std::size_t start = i_;
        while (i_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[i_]))
                   || s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.'
                   || s_[i_] == 'e' || s_[i_] == 'E'))
            ++i_;
        if (i_ == start)
            return false;
        try {
            out = std::stod(s_.substr(start, i_ - start));
        } catch (...) {
            return false;
        }
        return true;
    }

  private:
    const std::string &s_;
    std::size_t i_ = 0;
};

} // namespace

std::vector<ResultRow>
readResultRows(const std::string &path)
{
    std::vector<ResultRow> rows;
    std::ifstream in(path);
    if (!in)
        return rows;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    // A present-but-mismatched schema stamp means the file was
    // written by an incompatible build: treat it like a missing file
    // (it is a cache, it regenerates). Files predating the stamp are
    // accepted as version 1.
    const std::size_t sv = text.find("\"schema_version\"");
    if (sv != std::string::npos) {
        const std::size_t colon = text.find(':', sv);
        if (colon != std::string::npos) {
            const int v = std::atoi(text.c_str() + colon + 1);
            if (v != kResultsSchemaVersion)
                return rows;
        }
    }

    // Locate the "results" array; everything outside it is ignored.
    const std::size_t key = text.find("\"results\"");
    if (key == std::string::npos)
        return rows;
    const std::size_t open = text.find('[', key);
    if (open == std::string::npos)
        return rows;
    const std::string tail = text.substr(open);
    Scanner sc(tail);
    if (!sc.consume('['))
        return rows;
    while (sc.peek() == '{') {
        sc.consume('{');
        ResultRow row;
        while (sc.peek() == '"') {
            std::string k;
            if (!sc.string(k) || !sc.consume(':'))
                return {};
            if (k == "name" || k == "topology" || k == "algorithm"
                || k == "mode" || k == "commit") {
                std::string v;
                if (!sc.string(v))
                    return {};
                if (k == "name")
                    row.name = std::move(v);
                else if (k == "topology")
                    row.topology = std::move(v);
                else if (k == "algorithm")
                    row.algorithm = std::move(v);
                else if (k == "commit")
                    row.commit = std::move(v);
                else
                    row.mode = std::move(v);
            } else {
                double v = 0;
                if (!sc.number(v))
                    return {};
                if (k == "bytes")
                    row.bytes = static_cast<std::uint64_t>(v);
                else if (k == "cycles")
                    row.cycles = static_cast<std::uint64_t>(v);
                else if (k == "bandwidth_gbps")
                    row.bandwidth_gbps = v;
                else if (k == "messages")
                    row.messages = static_cast<std::uint64_t>(v);
                else if (k == "wall_ms")
                    row.wall_ms = v;
                else if (k == "msim_cycles_per_s")
                    row.msim_cps = v;
                // speedup_vs_ring (and anything unknown): derived,
                // recomputed at write time — dropped here.
            }
            if (!sc.consume(','))
                break;
        }
        if (!sc.consume('}'))
            return {};
        rows.push_back(std::move(row));
        if (!sc.consume(','))
            break;
    }
    return rows;
}

void
mergeResultRows(std::vector<ResultRow> &base,
                const std::vector<ResultRow> &incoming)
{
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < base.size(); ++i)
        index[base[i].name] = i;
    for (const ResultRow &row : incoming) {
        auto it = index.find(row.name);
        if (it != index.end()) {
            base[it->second] = row;
        } else {
            index[row.name] = base.size();
            base.push_back(row);
        }
    }
}

bool
writeResultRows(const std::string &path,
                const std::vector<ResultRow> &rows)
{
    // Ring baseline per (topology, bytes, mode) for the derived
    // speedup column: comparing across schedulers/backends would
    // pair a row with a baseline measured under different modeling.
    std::map<std::tuple<std::string, std::uint64_t, std::string>,
             std::uint64_t>
        ring;
    for (const auto &r : rows) {
        if (r.algorithm == "ring")
            ring[{r.topology, r.bytes, r.mode}] = r.cycles;
    }

    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp);
        if (!out)
            return false;
        out << "{\n  \"schema_version\": " << kResultsSchemaVersion
            << ",\n  \"results\": [\n";
        const char *sep = "";
        for (const auto &r : rows) {
            out << sep << "    {\"name\": " << jsonQuote(r.name)
                << ", \"topology\": " << jsonQuote(r.topology)
                << ", \"algorithm\": " << jsonQuote(r.algorithm)
                << ", \"bytes\": " << r.bytes
                << ", \"cycles\": " << r.cycles
                << ", \"bandwidth_gbps\": " << r.bandwidth_gbps
                << ", \"messages\": " << r.messages
                << ", \"wall_ms\": " << r.wall_ms
                << ", \"msim_cycles_per_s\": " << r.msim_cps
                << ", \"mode\": " << jsonQuote(r.mode)
                << ", \"commit\": " << jsonQuote(r.commit)
                << ", \"speedup_vs_ring\": ";
            auto it = ring.find({r.topology, r.bytes, r.mode});
            if (it == ring.end() || r.cycles == 0) {
                out << "null";
            } else {
                out << static_cast<double>(it->second)
                           / static_cast<double>(r.cycles);
            }
            out << "}";
            sep = ",\n";
        }
        out << "\n  ]\n}\n";
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
mergeResultsFile(const std::string &path,
                 const std::vector<ResultRow> &rows)
{
    std::vector<ResultRow> merged = readResultRows(path);
    mergeResultRows(merged, rows);
    return writeResultRows(path, merged);
}

std::string
buildCommit()
{
#ifdef MT_GIT_SHA
    return MT_GIT_SHA;
#else
    return "unknown";
#endif
}

std::uint64_t
fnv1a(const std::string &key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
sweepConfigKey(const SweepPointConfig &cfg)
{
    // v2: the v1 key missed the corruption, rail-policy and recovery
    // axes, aliasing differently-configured points onto one cache
    // entry. v3 adds the in-network collective axes (fusion mode and
    // combiner capacity both change completion times). Any axis added
    // to SweepPointConfig must be appended here (and covered by the
    // distinctness test in tests/test_obs.cc).
    return "mtsweep-v3|" + cfg.topo + "|" + cfg.algo + "|"
           + std::to_string(cfg.bytes) + "|"
           + std::to_string(cfg.seed) + "|" + cfg.backend + "|"
           + std::to_string(cfg.drop) + "|"
           + std::to_string(cfg.corrupt) + "|"
           + (cfg.reliable ? "rel" : "norel") + "|"
           + (cfg.dense ? "dense" : "active") + "|" + cfg.rail_policy
           + "|" + cfg.recovery + "|" + cfg.in_network + "|"
           + std::to_string(cfg.combiner_entries);
}

std::uint64_t
sweepConfigHash(const SweepPointConfig &cfg)
{
    return fnv1a(sweepConfigKey(cfg));
}

} // namespace multitree::obs
