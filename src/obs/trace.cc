#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>

namespace multitree::obs {

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::MsgInject:
        return "inject";
      case EventKind::MsgQueue:
        return "queue";
      case EventKind::MsgDeliver:
        return "deliver";
      case EventKind::MsgDrop:
        return "drop";
      case EventKind::MsgCorrupt:
        return "corrupt";
      case EventKind::MsgRetransmit:
        return "retransmit";
      case EventKind::MsgAck:
        return "ack";
      case EventKind::LinkBusy:
        return "busy";
      case EventKind::StepAdvance:
        return "step";
      case EventKind::LockstepStall:
        return "nop";
      case EventKind::ReductionBusy:
        return "reduce";
      case EventKind::RunBegin:
        return "run-begin";
      case EventKind::RunEnd:
        return "run";
      case EventKind::LinkDead:
        return "link-dead";
      case EventKind::RailFailover:
        return "rail-failover";
      case EventKind::ResumeEpoch:
        return "resume-epoch";
    }
    return "?";
}

std::size_t
Trace::countOf(EventKind kind) const
{
    return static_cast<std::size_t>(std::count_if(
        events_.begin(), events_.end(),
        [kind](const TraceEvent &ev) { return ev.kind == kind; }));
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace multitree::obs
