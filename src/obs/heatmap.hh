/**
 * @file
 * Congestion heatmaps over the profiler's channel/router counters.
 *
 * The paper's Fig. 9 argument — MultiTree wins on torus because it
 * spreads traffic where ring concentrates it — is a statement about
 * *where* flits went. buildCongestionMap() turns the per-channel and
 * per-router counters a Profiler ingested at run completion into
 * normalized loads; the renderers draw them as an ASCII floor plan
 * for 2D meshes/tori (FabricInfo::grid_width/height), a sorted bar
 * list for any other topology, and CSV for offline plotting.
 *
 * Everything here is offline post-processing of recorded counters:
 * nothing touches the simulation.
 */

#ifndef MULTITREE_OBS_HEATMAP_HH
#define MULTITREE_OBS_HEATMAP_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/units.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"

namespace multitree::obs {

/** Normalized per-link and per-router congestion of one run. */
struct CongestionMap {
    /** One directed channel's traffic, load normalized to the peak
     *  channel (0..1; 0 everywhere when the fabric saw no flits). */
    struct LinkLoad {
        int id = -1;
        int src = -1;
        int dst = -1;
        /** Rail index among parallel links (FabricInfo::Link::rail). */
        int rail = 0;
        std::uint64_t flits = 0;
        std::uint64_t messages = 0;
        Tick busy = 0;
        Tick queue = 0;
        double load = 0;
    };
    /** One router's through-traffic (sum of its incoming channels)
     *  plus flit-backend arbitration detail when available. */
    struct RouterLoad {
        int vertex = -1;
        std::uint64_t through_flits = 0;
        std::uint64_t sa_denied = 0;
        std::uint64_t credit_stalls = 0;
        // Switch-resident combining activity (zero unless the run
        // used InNetworkMode::MulticastReduce).
        std::uint64_t combiner_groups = 0;
        std::uint64_t combiner_fallbacks = 0;
        std::uint32_t combiner_peak_open = 0;
        double load = 0;
    };
    std::vector<LinkLoad> links;     ///< dense by channel id
    std::vector<RouterLoad> routers; ///< dense by vertex
    std::uint64_t peak_link_flits = 0;
    std::uint64_t peak_router_flits = 0;
};

/** Fold @p prof's ingested counters over @p fabric's link list. */
CongestionMap buildCongestionMap(const FabricInfo &fabric,
                                 const Profiler &prof);

/**
 * Draw per-link loads. Grid fabrics get an ASCII floor plan (each
 * in-grid edge rendered at the max of its two directions, wrap links
 * listed below); other fabrics get the busiest links as bars.
 */
void renderLinkHeatmapAscii(std::ostream &os,
                            const FabricInfo &fabric,
                            const CongestionMap &map);

/** Draw per-router loads: a decile grid, or a sorted bar list. */
void renderRouterHeatmapAscii(std::ostream &os,
                              const FabricInfo &fabric,
                              const CongestionMap &map);

/** Per-channel CSV (any topology): one row per directed channel. */
void writeHeatmapCsv(std::ostream &os, const FabricInfo &fabric,
                     const CongestionMap &map);

} // namespace multitree::obs

#endif // MULTITREE_OBS_HEATMAP_HH
