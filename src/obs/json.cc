#include "obs/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace multitree::obs::json {

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
Value::num(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

std::string
Value::text(const std::string &key, const std::string &fallback) const
{
    const Value *v = find(key);
    return v != nullptr && v->isString() ? v->str : fallback;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    bool
    parseDocument(Value &out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        return i_ == s_.size(); // trailing garbage is an error
    }

  private:
    void
    skipWs()
    {
        while (i_ < s_.size()
               && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n'
                   || s_[i_] == '\r'))
            ++i_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s_.compare(i_, n, word) != 0)
            return false;
        i_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (i_ >= s_.size() || s_[i_] != '"')
            return false;
        ++i_;
        out.clear();
        while (i_ < s_.size()) {
            char c = s_[i_++];
            if (c == '"')
                return true;
            if (c == '\\' && i_ < s_.size()) {
                char e = s_[i_++];
                switch (e) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u':
                    // The writers only emit \u00XX (control bytes).
                    if (i_ + 4 > s_.size())
                        return false;
                    out += static_cast<char>(std::strtol(
                        s_.substr(i_, 4).c_str(), nullptr, 16));
                    i_ += 4;
                    break;
                default: out += e; break;
                }
                continue;
            }
            out += c;
        }
        return false; // unterminated
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (i_ >= s_.size())
            return false;
        const char c = s_[i_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.str);
        }
        if (literal("null")) {
            out.kind = Value::Kind::Null;
            return true;
        }
        if (literal("true")) {
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = i_;
        while (i_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[i_]))
                   || s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.'
                   || s_[i_] == 'e' || s_[i_] == 'E'))
            ++i_;
        if (i_ == start)
            return false;
        try {
            out.number = std::stod(s_.substr(start, i_ - start));
        } catch (...) {
            return false;
        }
        out.kind = Value::Kind::Number;
        return true;
    }

    bool
    parseArray(Value &out)
    {
        ++i_; // consume '['
        out.kind = Value::Kind::Array;
        skipWs();
        if (i_ < s_.size() && s_[i_] == ']') {
            ++i_;
            return true;
        }
        for (;;) {
            Value item;
            if (!parseValue(item))
                return false;
            out.arr.push_back(std::move(item));
            skipWs();
            if (i_ >= s_.size())
                return false;
            if (s_[i_] == ',') {
                ++i_;
                continue;
            }
            if (s_[i_] == ']') {
                ++i_;
                return true;
            }
            return false;
        }
    }

    bool
    parseObject(Value &out)
    {
        ++i_; // consume '{'
        out.kind = Value::Kind::Object;
        skipWs();
        if (i_ < s_.size() && s_[i_] == '}') {
            ++i_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (i_ >= s_.size() || s_[i_] != ':')
                return false;
            ++i_;
            Value item;
            if (!parseValue(item))
                return false;
            out.obj.emplace_back(std::move(key), std::move(item));
            skipWs();
            if (i_ >= s_.size())
                return false;
            if (s_[i_] == ',') {
                ++i_;
                continue;
            }
            if (s_[i_] == '}') {
                ++i_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

} // namespace

std::optional<Value>
parse(const std::string &text)
{
    Parser p(text);
    Value v;
    if (!p.parseDocument(v))
        return std::nullopt;
    return v;
}

std::optional<Value>
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

} // namespace multitree::obs::json
