#include "runtime/metrics.hh"

#include <ostream>
#include <sstream>

#include "fault/health.hh"
#include "net/energy.hh"
#include "obs/results.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "topo/topology.hh"

namespace multitree::runtime {

namespace {

void
writeRegistry(std::ostream &os, const StatRegistry &reg)
{
    os << "{";
    const char *sep = "";
    for (const auto &[name, value] : reg.all()) {
        os << sep << obs::jsonQuote(name) << ": " << value;
        sep = ", ";
    }
    os << "}";
}

} // namespace

void
writeMetricsJson(std::ostream &os, const Machine &machine,
                 const RunResult &res, const RunReport *rep)
{
    const auto &topo = machine.topology();
    os << "{\n";
    os << "  \"schema_version\": " << kMetricsSchemaVersion << ",\n";
    os << "  \"commit\": " << obs::jsonQuote(obs::buildCommit())
       << ",\n";
    os << "  \"topology\": " << obs::jsonQuote(topo.name()) << ",\n";
    os << "  \"backend\": "
       << (machine.options().backend == Backend::Flow ? "\"flow\""
                                                      : "\"flit\"")
       << ",\n";
    os << "  \"nodes\": " << topo.numNodes() << ",\n";
    os << "  \"channels\": " << topo.numChannels() << ",\n";
    os << "  \"runs_completed\": " << machine.runsCompleted()
       << ",\n";
    os << "  \"result\": {\n";
    os << "    \"time\": " << res.time << ",\n";
    os << "    \"bandwidth_gbps\": " << res.bandwidth << ",\n";
    os << "    \"messages\": " << res.messages << ",\n";
    os << "    \"payload_flits\": " << res.payload_flits << ",\n";
    os << "    \"head_flits\": " << res.head_flits << ",\n";
    os << "    \"flit_hops\": " << res.flit_hops << ",\n";
    os << "    \"head_hops\": " << res.head_hops << ",\n";
    os << "    \"nop_windows\": " << res.nop_windows << ",\n";
    os << "    \"mcast_injections\": " << res.mcast_injections
       << ",\n";
    os << "    \"combined_groups\": " << res.combined_groups << "\n";
    os << "  },\n";
    // First-order interconnect energy (net/energy.hh), derived from
    // the run's hop counters: datapath scales with every flit-hop,
    // control with head-flit hops only — the term message-based flow
    // control collapses — plus the switch-ALU passes in-network
    // reduction spends to shrink both hop terms.
    const net::EnergyBreakdown energy = net::computeEnergy(
        res.flit_hops, res.head_hops, res.combiner_alu_flits);
    os << "  \"energy\": {\n";
    os << "    \"datapath_nj\": " << energy.datapath_nj << ",\n";
    os << "    \"control_nj\": " << energy.control_nj << ",\n";
    os << "    \"switch_alu_nj\": " << energy.switch_alu_nj << ",\n";
    os << "    \"total_nj\": " << energy.total_nj() << "\n";
    os << "  },\n";
    os << "  \"network_stats\": ";
    writeRegistry(os, machine.network().stats());
    os << ",\n";
    os << "  \"lifetime_stats\": ";
    writeRegistry(os, machine.lifetimeStats());
    if (rep != nullptr) {
        os << ",\n  \"report\": {\n";
        os << "    \"ok\": " << (rep->ok ? "true" : "false")
           << ",\n";
        os << "    \"dropped\": " << rep->dropped << ",\n";
        os << "    \"corrupted\": " << rep->corrupted << ",\n";
        os << "    \"degraded\": " << rep->degraded << ",\n";
        os << "    \"retransmits\": " << rep->retransmits << ",\n";
        os << "    \"timeouts\": " << rep->timeouts << ",\n";
        os << "    \"acks\": " << rep->acks << ",\n";
        os << "    \"duplicates\": " << rep->duplicates << ",\n";
        os << "    \"corrupt_discarded\": " << rep->corrupt_discarded
           << ",\n";
        os << "    \"retx_into_dead_link\": "
           << rep->retx_into_dead_link << ",\n";
        const fault::RecoveryCounters &rc = rep->recovery;
        os << "    \"recovery\": {\n";
        os << "      \"policy\": "
           << obs::jsonQuote(fault::policyName(
                  machine.options().recovery.policy))
           << ",\n";
        os << "      \"links_dead\": " << rc.links_dead << ",\n";
        os << "      \"rails_failed_over\": " << rc.rails_failed_over
           << ",\n";
        os << "      \"routes_repaired\": " << rc.routes_repaired
           << ",\n";
        os << "      \"pinned_repairs\": " << rc.pinned_repairs
           << ",\n";
        os << "      \"resumed_transfers\": " << rc.resumed_transfers
           << ",\n";
        os << "      \"resume_epochs\": " << rc.resume_epochs
           << "\n    },\n";
        os << "    \"failed_transfers\": " << rep->failures.size()
           << ",\n";
        os << "    \"diagnostic\": " << obs::jsonQuote(rep->diagnostic)
           << "\n  }";
    }
    if (machine.options().sampler != nullptr) {
        os << ",\n  \"timeseries\": ";
        machine.options().sampler->writeJson(os, "  ");
    }
    os << "\n}\n";
}

std::string
metricsJson(const Machine &machine, const RunResult &res,
            const RunReport *rep)
{
    std::ostringstream oss;
    writeMetricsJson(oss, machine, res, rep);
    return oss.str();
}

} // namespace multitree::runtime
