/**
 * @file
 * The all-reduce runtime: compiles a Schedule into per-node tables,
 * instantiates a network backend and one NIC engine per node, runs
 * the discrete-event simulation to completion and reports timing.
 *
 * This is the programmatic entry point used by the examples and every
 * benchmark: one call simulates one all-reduce on one topology under
 * one algorithm and flow-control mode.
 */

#ifndef MULTITREE_RUNTIME_ALLREDUCE_RUNTIME_HH
#define MULTITREE_RUNTIME_ALLREDUCE_RUNTIME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "net/network.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::coll {
class Schedule;
} // namespace multitree::coll

namespace multitree::runtime {

/** Which transport model executes the schedule. */
enum class Backend {
    Flow, ///< fast per-channel serialization model
    Flit, ///< cycle-level VC router simulation
};

/** One delivered transfer, for offline analysis/plotting. */
struct TraceRecord {
    int flow = -1;
    int src = -1;
    int dst = -1;
    std::uint64_t bytes = 0;
    bool gather = false; ///< false = reduce-phase message
    Tick delivered = 0;
};

/** Knobs for one simulated all-reduce. */
struct RunOptions {
    Backend backend = Backend::Flow;
    net::NetworkConfig net; ///< includes the flow-control mode
    /** NI reduction throughput in bytes/cycle; 0 = unlimited. */
    std::uint32_t ni_reduction_bw = 0;
    /**
     * Footnote-4 buffer-adjusted lockstep estimates: shrink each
     * step window by the NI buffer depth when the chunk exceeds it.
     * Meaningful with the Flit backend, whose buffers absorb the
     * resulting inter-step overlap.
     */
    bool buffer_adjusted_estimates = false;
    /** When non-null, every delivery is appended here. */
    std::vector<TraceRecord> *trace = nullptr;
};

/** Timing and transport statistics of one all-reduce. */
struct RunResult {
    Tick time = 0;           ///< completion (last gather delivery), ns
    double bandwidth = 0;    ///< algorithm bandwidth: bytes/time, GB/s
    std::uint64_t messages = 0;
    double payload_flits = 0;
    double head_flits = 0;
    double flit_hops = 0;    ///< total flit-hops (energy datapath)
    double head_hops = 0;    ///< head-flit hops (energy control)
    std::uint64_t nop_windows = 0; ///< lockstep NOP stalls across NIs
};

/** Simulate @p sched over @p topo. */
RunResult runAllReduce(const topo::Topology &topo,
                       const coll::Schedule &sched,
                       const RunOptions &opts = {});

/**
 * Convenience wrapper: build the named algorithm's schedule for
 * @p bytes and simulate it. `algo` accepts the registry names plus
 * "multitree-msg" (MultiTree with message-based flow control).
 */
RunResult runAllReduce(const topo::Topology &topo,
                       const std::string &algo, std::uint64_t bytes,
                       RunOptions opts = {});

} // namespace multitree::runtime

#endif // MULTITREE_RUNTIME_ALLREDUCE_RUNTIME_HH
