/**
 * @file
 * Single-shot all-reduce entry points, kept for convenience: each
 * call builds a throwaway runtime::Machine, runs one collective and
 * tears the fabric down. Anything running more than one collective —
 * benchmarks sweeping sizes, the trainer iterating layers — should
 * hold a Machine and reuse it (see runtime/machine.hh); results are
 * bit-identical either way.
 */

#ifndef MULTITREE_RUNTIME_ALLREDUCE_RUNTIME_HH
#define MULTITREE_RUNTIME_ALLREDUCE_RUNTIME_HH

#include <cstdint>
#include <string>

#include "runtime/machine.hh"

namespace multitree::runtime {

/** Simulate @p sched over @p topo on a fresh single-use fabric. */
RunResult runAllReduce(const topo::Topology &topo,
                       const coll::Schedule &sched,
                       const RunOptions &opts = {});

/**
 * Convenience wrapper: build the named algorithm's schedule for
 * @p bytes and simulate it. `algo` resolves through the variant
 * registry, so names like "multitree-msg" carry their flow-control
 * override automatically.
 */
RunResult runAllReduce(const topo::Topology &topo,
                       const std::string &algo, std::uint64_t bytes,
                       RunOptions opts = {});

} // namespace multitree::runtime

#endif // MULTITREE_RUNTIME_ALLREDUCE_RUNTIME_HH
