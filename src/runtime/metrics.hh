/**
 * @file
 * JSON metrics snapshot of one collective run.
 *
 * Serializes a RunResult together with the machine's per-fabric
 * context (topology, backend, channel count), the network backend's
 * StatRegistry, the machine's lifetime aggregates and — when the run
 * came through tryRun() — the RunReport's fault/reliability counters.
 * One self-describing JSON object per run, for dashboards and
 * regression diffing without parsing human-oriented tables.
 */

#ifndef MULTITREE_RUNTIME_METRICS_HH
#define MULTITREE_RUNTIME_METRICS_HH

#include <iosfwd>
#include <string>

#include "runtime/machine.hh"

namespace multitree::runtime {

/**
 * Version stamp of the metrics JSON layout, bumped on breaking
 * changes. Readers (obs::results, examples/mtdiff) reject snapshots
 * from a different version instead of misinterpreting them.
 */
inline constexpr int kMetricsSchemaVersion = 2;

/** Write the metrics snapshot of @p res (from @p machine) as JSON;
 *  @p rep adds the fault/reliability section when non-null. When the
 *  machine has a sampler attached its series is embedded as a
 *  "timeseries" section. */
void writeMetricsJson(std::ostream &os, const Machine &machine,
                      const RunResult &res,
                      const RunReport *rep = nullptr);

/** Convenience: the same JSON as a string. */
std::string metricsJson(const Machine &machine, const RunResult &res,
                        const RunReport *rep = nullptr);

} // namespace multitree::runtime

#endif // MULTITREE_RUNTIME_METRICS_HH
