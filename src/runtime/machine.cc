#include "runtime/machine.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "coll/algorithm.hh"
#include "coll/hierarchical.hh"
#include "coll/schedule.hh"
#include "common/logging.hh"
#include "ni/schedule_table.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "topo/grid.hh"
#include "topo/hierarchical.hh"
#include "topo/topology.hh"

namespace multitree::runtime {

namespace {

/**
 * Adapter keeping the legacy RunOptions::trace vector alive on top
 * of the structured sink: every accepted-on-the-wire delivery of a
 * data message becomes one TraceRecord, now carrying the seq/attempt/
 * corrupted provenance that analyses need to skip duplicates.
 */
class LegacyTraceSink final : public obs::TraceSink
{
  public:
    explicit LegacyTraceSink(std::vector<TraceRecord> &out)
        : out_(out)
    {}

    void
    onEvent(const obs::TraceEvent &ev) override
    {
        if (ev.kind != obs::EventKind::MsgDeliver
            || ev.tag == ni::kTagAck) {
            return;
        }
        out_.push_back(TraceRecord{ev.flow, ev.node, ev.peer,
                                   ev.bytes,
                                   ev.tag == ni::kTagGather, ev.tick,
                                   ev.seq, ev.attempt,
                                   ev.corrupted});
    }

  private:
    std::vector<TraceRecord> &out_;
};

} // namespace

Machine::Machine(const topo::Topology &topo, const RunOptions &opts)
    : topo_(topo), opts_(opts)
{
    // Fail at bring-up, not mid-run: a bad parameter combination
    // would otherwise surface as a mysterious stall or divide fault
    // deep inside a backend.
    MT_ASSERT(opts_.net.vc_buffer_depth > 0,
              "vc_buffer_depth must be positive (credit flow control "
              "deadlocks with zero-depth buffers)");
    MT_ASSERT(opts_.net.flit_bytes > 0
                  && opts_.net.packet_payload % opts_.net.flit_bytes
                         == 0,
              "flit_bytes (", opts_.net.flit_bytes,
              ") must divide packet_payload (",
              opts_.net.packet_payload,
              ") so packets fragment into whole flits");
    MT_ASSERT(!(opts_.buffer_adjusted_estimates
                && opts_.backend == Backend::Flow),
              "buffer_adjusted_estimates models NI buffering that "
              "only the Flit backend simulates; use Backend::Flit");
    MT_ASSERT(opts_.recovery.policy == fault::RecoveryPolicy::Off
                  || opts_.reliability.enabled,
              "self-healing consumes the reliability layer's timeout "
              "evidence and resume rides its outstanding-transfer "
              "scoreboard; arm RunOptions::reliability too");
    MT_ASSERT(opts_.net.threads >= 1 && opts_.net.threads <= 1024,
              "net.threads must be in [1, 1024], got ",
              opts_.net.threads,
              " (it is a worker count, not a parallelism hint)");
    MT_ASSERT(opts_.net.in_network == net::InNetworkMode::Off
                  || opts_.net.combiner_entries <= 65536,
              "combiner_entries (", opts_.net.combiner_entries,
              ") is not a plausible per-switch buffer capacity");
    MT_ASSERT(opts_.net.in_network
                      != net::InNetworkMode::MulticastReduce
                  || opts_.net.combiner_latency <= 4096,
              "combiner_latency (", opts_.net.combiner_latency,
              ") exceeds any plausible switch-ALU pass");

    // Pre-size the event heap so steady-state scheduling never
    // reallocates: one in-flight slot per node covers the NIC timers
    // plus the network's self-rescheduled tick with headroom.
    eq_.reserve(static_cast<std::size_t>(topo_.numNodes()) * 8 + 64);

    network_ = net::makeNetwork(opts_.backend, eq_, topo_, opts_.net);
    network_->onDeliver(
        [this](const net::Message &msg) { onDelivery(msg); });

    if (opts_.fault) {
        // The plan validates itself against the channel-id space at
        // bring-up; the network consults it on every injection.
        plan_ = std::make_unique<fault::FaultPlan>(
            *opts_.fault, topo_.numChannels());
        network_->setFaultInterposer(plan_.get());
    }

    // Resolve the effective trace sink: the structured sink, the
    // legacy vector adapter, both (tee), or none.
    sink_ = opts_.sink;
    if (opts_.trace != nullptr) {
        legacy_sink_ =
            std::make_unique<LegacyTraceSink>(*opts_.trace);
        if (sink_ != nullptr) {
            tee_sink_ = std::make_unique<obs::TeeSink>(
                legacy_sink_.get(), sink_);
            sink_ = tee_sink_.get();
        } else {
            sink_ = legacy_sink_.get();
        }
    }
    network_->setTraceSink(sink_);
    network_->setProfiler(opts_.profiler);

    // Parallel-link (rail) striping arms itself whenever the fabric
    // has multigraph edges; on single-rail fabrics the group table is
    // empty and the engines skip steering entirely.
    rail_groups_ = topo::buildRailGroups(topo_);

    if (opts_.recovery.policy != fault::RecoveryPolicy::Off) {
        health_ = std::make_unique<fault::HealthMonitor>(
            opts_.recovery, topo_.numChannels());
        health_->onVerdict(
            [this](int cid, Tick now) { onLinkDead(cid, now); });
    }

    const int n = topo_.numNodes();
    engines_.reserve(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
        engines_.push_back(std::make_unique<ni::NicEngine>(
            v, *network_, opts_.ni_reduction_bw));
        engines_.back()->setTraceSink(sink_);
        engines_.back()->setProfiler(opts_.profiler);
        if (opts_.reliability.enabled) {
            // Ack return routes turn dead-aware once the monitor has
            // verdicts; with none (or recovery off) this is exactly
            // the topology's deterministic route.
            engines_.back()->setReliability(
                opts_.reliability, [this](int src, int dst) {
                    if (health_ != nullptr
                        && health_->deadCount() > 0) {
                        auto r = topo_.tryBfsRouteAvoiding(
                            src, dst, health_->deadMask());
                        if (r)
                            return std::move(*r);
                    }
                    return topo_.route(src, dst);
                });
        }
        if (health_ != nullptr)
            engines_.back()->setHealthMonitor(health_.get());
        if (!rail_groups_.empty()) {
            engines_.back()->setRailSteering(&rail_groups_,
                                             opts_.rail_policy);
        }
    }
}

Machine::~Machine() = default;

RunResult
Machine::run(const coll::Schedule &sched, const RunOverrides &ov)
{
    beginEpoch();
    RunResult out;
    bool completed = false;
    post(
        sched,
        [&](const RunResult &r) {
            out = r;
            completed = true;
        },
        ov);
    drain();
    MT_ASSERT(completed, "collective did not complete");
    return out;
}

RunResult
Machine::run(const std::string &algo, std::uint64_t bytes,
             RunOverrides ov)
{
    std::string island, spine;
    if (coll::parseHierarchicalAlgo(algo, island, spine)) {
        auto *hier =
            dynamic_cast<const topo::HierarchicalTopology *>(&topo_);
        MT_ASSERT(hier != nullptr, "composed algorithm '", algo,
                  "' needs a hierarchical topology, got ",
                  topo_.name());
        return run(coll::composeHierarchical(*hier, island, spine,
                                             bytes),
                   ov);
    }
    const auto &variant = coll::findAlgorithmVariant(algo);
    if (!ov.flow_control)
        ov.flow_control = variant.flow_control;
    auto algorithm = coll::makeAlgorithm(variant.base);
    MT_ASSERT(algorithm->supports(topo_), algo,
              " does not support topology ", topo_.name());
    return run(algorithm->build(topo_, bytes), ov);
}

RunReport
Machine::tryRun(const coll::Schedule &sched, const RunOverrides &ov)
{
    beginEpoch();
    RunReport rep;
    bool completed = false;
    post(
        sched,
        [&](const RunResult &r) {
            rep.result = r;
            completed = true;
        },
        ov);
    drainLoop();
    fillReportCounters(rep);
    if (completed && idle()) {
        rep.ok = true;
    } else {
        rep.ok = false;
        rep.diagnostic = stallDiagnostic();
        abortActive();
    }
    return rep;
}

RunReport
Machine::tryRun(const std::string &algo, std::uint64_t bytes,
                RunOverrides ov)
{
    std::string island, spine;
    if (coll::parseHierarchicalAlgo(algo, island, spine)) {
        auto *hier =
            dynamic_cast<const topo::HierarchicalTopology *>(&topo_);
        MT_ASSERT(hier != nullptr, "composed algorithm '", algo,
                  "' needs a hierarchical topology, got ",
                  topo_.name());
        return tryRun(coll::composeHierarchical(*hier, island, spine,
                                                bytes),
                      ov);
    }
    const auto &variant = coll::findAlgorithmVariant(algo);
    if (!ov.flow_control)
        ov.flow_control = variant.flow_control;
    auto algorithm = coll::makeAlgorithm(variant.base);
    MT_ASSERT(algorithm->supports(topo_), algo,
              " does not support topology ", topo_.name());
    return tryRun(algorithm->build(topo_, bytes), ov);
}

void
Machine::beginEpoch()
{
    MT_ASSERT(idle(), "beginEpoch with a collective still ",
              active_ ? "running" : "queued");
    for (auto &e : engines_)
        e->reset();
    network_->reset();
    network_->setFlowControlMode(opts_.net.mode);
    // Rewind the fault RNG stream too: every epoch replays the
    // identical fault pattern, which is what makes faulted runs
    // reproducible and comparable.
    if (plan_)
        plan_->reset();
    if (health_ != nullptr) {
        // Forget every verdict and restore the full rail bundles the
        // failover masking trimmed; the engines keep their pointer
        // into rail_groups_, whose address is stable.
        health_->reset();
        rail_groups_ = topo::buildRailGroups(topo_);
        recovery_ctr_ = fault::RecoveryCounters{};
        recovery_scheduled_ = false;
    }
    eq_.reset();
}

void
Machine::post(const coll::Schedule &sched, CompletionFn on_complete,
              RunOverrides ov)
{
    MT_ASSERT(sched.num_nodes == topo_.numNodes(),
              "schedule/topology node mismatch");
    PendingRun pr;
    if (opts_.net.in_network != net::InNetworkMode::Off) {
        // In-network modes compile against the fused schedule: a
        // node's same-chunk same-step broadcast edges collapse into
        // one multicast edge, so one injection serves N children.
        // The fabric must support the replication the tables assume,
        // which is why fusion is keyed off the machine's own mode
        // rather than a per-run override.
        coll::Schedule fused = sched;
        coll::fuseMulticast(fused, topo_);
        pr.tables = ni::buildScheduleTables(fused, topo_);
    } else {
        pr.tables = ni::buildScheduleTables(sched, topo_);
    }
    // Footnote 4: the lockstep window is the chunk's serialization
    // latency. The buffer-adjusted variant (est -= NI buffer depth
    // when the chunk does not fit) lets consecutive steps overlap by
    // the buffered prefix; it is opt-in because only the cycle-level
    // backend models the buffers that make that overlap free.
    pr.estimates = sched.stepFlitEstimates();
    if (opts_.buffer_adjusted_estimates) {
        for (auto &est : pr.estimates) {
            if (est > opts_.net.vc_buffer_depth)
                est -= opts_.net.vc_buffer_depth;
        }
    }
    pr.lockstep = sched.lockstep;
    pr.total_bytes = sched.total_bytes;
    pr.phase_names = sched.phase_names;
    pr.num_phases = sched.numPhases();
    pr.mode = ov.flow_control.value_or(opts_.net.mode);
    pr.inject_faults = ov.inject_faults.value_or(true);
    pr.done = std::move(on_complete);
    queue_.push_back(std::move(pr));
    if (!active_)
        startNext();
}

void
Machine::scheduleAt(Tick when, std::function<void()> fn)
{
    eq_.scheduleAt(when, std::move(fn));
}

void
Machine::drainLoop()
{
    for (;;) {
        eq_.run();
        const std::uint64_t before = runs_completed_;
        maybeComplete();
        if (eq_.empty() && runs_completed_ == before)
            return;
    }
}

Tick
Machine::drain()
{
    drainLoop();
    if (!idle())
        MT_FATAL("collective stalled — watchdog report:\n",
                 stallDiagnostic());
    return eq_.now();
}

void
Machine::startNext()
{
    MT_ASSERT(!active_ && !queue_.empty(), "startNext while ",
              active_ ? "active" : "empty");
    PendingRun pr = std::move(queue_.front());
    queue_.pop_front();

    active_ = true;
    active_start_ = eq_.now();
    active_bytes_ = pr.total_bytes;
    active_done_ = std::move(pr.done);
    stat_base_ = network_->stats().all();

    MT_ASSERT(network_->quiescent(),
              "starting a collective on a non-quiescent fabric");
    network_->setFlowControlMode(pr.mode);
    if (plan_)
        plan_->setEnabled(pr.inject_faults);

    MT_ASSERT(pr.tables.size() == engines_.size(),
              "table/engine count mismatch");
    for (std::size_t i = 0; i < pr.tables.size(); ++i) {
        engines_[i]->loadTable(std::move(pr.tables[i]), pr.lockstep,
                               pr.estimates);
    }
    if (sink_ != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::RunBegin;
        ev.tick = eq_.now();
        ev.bytes = active_bytes_;
        sink_->onEvent(ev);
    }
    active_phase_names_ = std::move(pr.phase_names);
    // Rewind the profiler so its records describe exactly this run.
    if (opts_.profiler != nullptr) {
        opts_.profiler->onRunBegin(eq_.now());
        opts_.profiler->setPhaseNames(active_phase_names_);
    }
    if (opts_.sampler != nullptr) {
        phase_bytes_.assign(
            static_cast<std::size_t>(std::max(pr.num_phases, 1)), 0);
        opts_.sampler->onRunBegin(fabricInfo(), active_phase_names_,
                                  opts_.sample_every, eq_.now());
    }
    for (auto &e : engines_)
        e->start();
    if (opts_.sampler != nullptr) {
        // Baseline frame at the run's start (start() injections are
        // same-tick synchronous, so they are already in the census),
        // then the periodic cadence.
        takeSample();
        armSampler();
    }
    // Degenerate schedules (no flows) complete without a single
    // delivery; everything else finishes inside onDelivery().
    maybeComplete();
}

void
Machine::takeSample()
{
    obs::SampleFrame f;
    f.tick = eq_.now();
    f.in_flight_msgs = network_->inFlightCount();
    f.in_flight_bytes = network_->inFlightBytes();
    for (const auto &e : engines_) {
        f.nic_outstanding += e->outstandingCount();
        f.active_reductions += e->activeReductions();
        f.retransmits += e->reliability().retransmits;
        f.timeouts += e->reliability().timeouts;
    }
    f.combiner_open = network_->combinerOpenCount();
    f.combiner_fallbacks = network_->combinerFallbacks();
    f.injected = network_->injected();
    f.delivered = network_->delivered();
    f.dropped = network_->dropped();
    network_->sampleChannels(f.link_flits, f.link_queue);
    f.phase_bytes = phase_bytes_;
    opts_.sampler->addFrame(std::move(f));
}

void
Machine::armSampler()
{
    // High priority places the sample before the tick's Default-
    // priority simulation events: the frame observes the state after
    // every event below its tick, identically on both backends, both
    // flit schedulers and any thread count (parallel execution lives
    // inside the network's cycle event, which has not run yet).
    const Tick every = std::max<Tick>(opts_.sample_every, 1);
    eq_.scheduleAfter(
        every,
        [this, gen = sample_gen_] {
            if (gen != sample_gen_)
                return; // stale: run completed or was aborted
            takeSample();
            // Re-arm only while other work is pending: a wedged
            // fabric with no future events must let the queue drain
            // so the watchdog can rule, and a completed run bumps
            // the generation before this event would re-arm.
            if (!eq_.empty())
                armSampler();
        },
        sim::Priority::High);
}

void
Machine::onDelivery(const net::Message &msg)
{
    if (opts_.sampler != nullptr && msg.tag != ni::kTagAck
        && msg.phase >= 0
        && static_cast<std::size_t>(msg.phase)
               < phase_bytes_.size()) {
        phase_bytes_[static_cast<std::size_t>(msg.phase)] +=
            msg.bytes;
    }
    // Trace records are appended by the LegacyTraceSink adapter as
    // the network emits MsgDeliver, before this callback runs.
    engines_[static_cast<std::size_t>(msg.dst)]->onMessage(msg);
    maybeComplete();
}

void
Machine::maybeComplete()
{
    if (!active_ || !network_->quiescent())
        return;
    for (const auto &e : engines_) {
        if (!e->done())
            return;
    }
    completeActive();
}

void
Machine::completeActive()
{
    RunResult res;
    res.time = eq_.now() - active_start_;
    res.bandwidth = bandwidthGBps(active_bytes_, res.time);
    // Per-run stat scoping: report this run's delta over the
    // snapshot taken at its start, not the fabric's lifetime totals.
    const auto &st = network_->stats();
    auto delta = [&](const char *name) {
        auto it = stat_base_.find(name);
        double base = it == stat_base_.end() ? 0.0 : it->second;
        return st.get(name) - base;
    };
    res.messages = static_cast<std::uint64_t>(delta("messages"));
    res.payload_flits = delta("payload_flits");
    res.head_flits = delta("head_flits");
    res.flit_hops = delta("flit_hops");
    res.head_hops = delta("head_hops");
    res.mcast_injections =
        static_cast<std::uint64_t>(delta("mcast_injections"));
    res.combined_groups =
        static_cast<std::uint64_t>(delta("combiner_groups"));
    res.combiner_alu_flits = delta("combiner_alu_flits");
    for (const auto &e : engines_)
        res.nop_windows += e->nopWindows();

    if (sink_ != nullptr) {
        // Close out any busy spans the backend still holds open,
        // then mark the run's completion.
        network_->flushTrace();
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::RunEnd;
        ev.tick = eq_.now();
        ev.duration = res.time;
        ev.bytes = active_bytes_;
        sink_->onEvent(ev);
    }
    if (opts_.profiler != nullptr) {
        // Pull the backend's congestion counters across, then stamp
        // the run complete so the critical path can be extracted.
        network_->flushProfile();
        opts_.profiler->onRunEnd(eq_.now());
    }
    if (opts_.sampler != nullptr) {
        // Final frame at the completion tick, then invalidate the
        // pending gen-guarded sample event so the queue drains.
        takeSample();
        ++sample_gen_;
        opts_.sampler->onRunEnd(eq_.now());
    }

    ++runs_completed_;
    lifetime_.inc("runs");
    lifetime_.inc("time", static_cast<double>(res.time));
    lifetime_.inc("bytes", static_cast<double>(active_bytes_));
    lifetime_.inc("messages", static_cast<double>(res.messages));
    lifetime_.inc("nop_windows",
                  static_cast<double>(res.nop_windows));

    active_ = false;
    CompletionFn done = std::move(active_done_);
    active_done_ = nullptr;
    if (done)
        done(res);
    if (!queue_.empty())
        startNext();
}

obs::FabricInfo
Machine::fabricInfo() const
{
    obs::FabricInfo info;
    info.name = topo_.name();
    info.num_nodes = topo_.numNodes();
    if (auto *grid = dynamic_cast<const topo::Grid2D *>(&topo_)) {
        info.grid_width = grid->width();
        info.grid_height = grid->height();
        info.grid_wraps = grid->isTorus();
    }
    if (auto *hier =
            dynamic_cast<const topo::HierarchicalTopology *>(
                &topo_)) {
        info.num_islands = hier->numIslands();
        info.island_size = hier->islandSize();
    }
    info.rails = rail_groups_.maxRails();
    info.links.reserve(
        static_cast<std::size_t>(topo_.numChannels()));
    for (const auto &ch : topo_.channels()) {
        info.links.push_back(
            {ch.id, ch.src, ch.dst, rail_groups_.railOf(ch.id)});
    }
    return info;
}

void
Machine::setAcceptSink(ni::NicEngine::AcceptFn fn)
{
    for (auto &e : engines_)
        e->onAccept(fn);
}

void
Machine::fillReportCounters(RunReport &rep) const
{
    const auto &st = network_->stats();
    rep.dropped = network_->dropped();
    rep.corrupted =
        static_cast<std::uint64_t>(st.get("corrupted_messages"));
    rep.degraded =
        static_cast<std::uint64_t>(st.get("degraded_messages"));
    const auto &drops = network_->dropsBySource();
    const auto &corruptions = network_->corruptionsBySource();
    rep.nodes.reserve(engines_.size());
    for (const auto &e : engines_) {
        NodeReport nr;
        nr.node = e->node();
        nr.reliability = e->reliability();
        auto dit = drops.find(nr.node);
        if (dit != drops.end())
            nr.drops_as_source = dit->second;
        auto cit = corruptions.find(nr.node);
        if (cit != corruptions.end())
            nr.corruptions_as_source = cit->second;
        rep.retransmits += nr.reliability.retransmits;
        rep.timeouts += nr.reliability.timeouts;
        rep.acks += nr.reliability.acks_sent;
        rep.duplicates += nr.reliability.duplicates;
        rep.corrupt_discarded += nr.reliability.corrupt_discarded;
        rep.retx_into_dead_link +=
            nr.reliability.retx_into_dead_link;
        rep.nodes.push_back(std::move(nr));
        for (const auto &f : e->failures())
            rep.failures.push_back(f);
    }
    rep.recovery = recovery_ctr_;
}

std::string
Machine::stallDiagnostic() const
{
    std::ostringstream oss;
    oss << "collective wedged at tick " << eq_.now() << " (started "
        << active_start_ << "): injected " << network_->injected()
        << ", delivered " << network_->delivered() << ", dropped "
        << network_->dropped() << ", in flight "
        << network_->inFlightCount() << "\n";
    bool any_stall = false;
    for (const auto &e : engines_) {
        if (e->done())
            continue;
        any_stall = true;
        oss << "  " << e->describeStall() << "\n";
    }
    if (!any_stall)
        oss << "  (all engines done; fabric not quiescent)\n";
    const std::string in_flight = network_->describeInFlight();
    if (!in_flight.empty())
        oss << in_flight;
    // Suspect-channel ranking: cumulative census-corroborated
    // round-trip failures from every engine, the routes of exhausted
    // transfers (hard evidence, weighted), and the routes of
    // messages still stuck in flight. An un-recovered abort names
    // the downed link, not just the stalled messages.
    std::map<int, std::uint64_t> suspicion;
    for (const auto &e : engines_) {
        const auto &evidence = e->channelEvidence();
        for (std::size_t c = 0; c < evidence.size(); ++c) {
            if (evidence[c] > 0)
                suspicion[static_cast<int>(c)] += evidence[c];
        }
        for (const auto &f : e->failures()) {
            for (int cid : f.route)
                suspicion[cid] += 4;
        }
    }
    for (const auto &[id, rec] : network_->inFlight()) {
        for (int cid : rec.msg.route)
            suspicion[cid] += 1;
    }
    if (!suspicion.empty()) {
        std::vector<std::pair<int, std::uint64_t>> ranked(
            suspicion.begin(), suspicion.end());
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto &a, const auto &b) {
                             return a.second > b.second;
                         });
        oss << "  suspect channel(s), most evidence first:\n";
        std::size_t shown = 0;
        for (const auto &[cid, score] : ranked) {
            if (shown++ == 5) {
                oss << "    ... " << ranked.size() - 5 << " more\n";
                break;
            }
            const auto &ch = topo_.channel(cid);
            oss << "    channel " << cid << " (" << ch.src << "->"
                << ch.dst << "): evidence " << score;
            if (health_ != nullptr && health_->confirmedDead(cid))
                oss << " [confirmed dead]";
            oss << "\n";
        }
    }
    if (health_ != nullptr)
        oss << "  " << health_->describe() << "\n";
    if (plan_) {
        oss << "  " << plan_->describe() << "\n";
        auto down = plan_->downedChannels(eq_.now());
        if (!down.empty()) {
            oss << "  downed channel(s) now:";
            for (int cid : down)
                oss << " " << cid;
            oss << "\n";
        }
    }
    return oss.str();
}

void
Machine::onLinkDead(int channel, Tick now)
{
    ++recovery_ctr_.links_dead;
    if (sink_ != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::LinkDead;
        ev.tick = now;
        ev.channel = channel;
        sink_->onEvent(ev);
    }
    // Verdict-time exoneration: the streaks other channels built up
    // came from failed routes sharing this dead hop. Resetting them
    // (pure bookkeeping — safe mid-callback) stops the failure storm
    // from condemning healthy links; a genuinely dead second channel
    // re-accumulates from its own subsequent failures.
    for (auto &e : engines_)
        e->resetStreaksExcept(channel);
    // The verdict fires inside an engine's timeout handler; mutating
    // engines or steering groups mid-callback would be re-entrant.
    // Schedule the repair pass at the current tick instead, which
    // also coalesces a burst of same-tick verdicts into one pass.
    if (!recovery_scheduled_) {
        recovery_scheduled_ = true;
        eq_.scheduleAt(now, [this] { performRecovery(); });
    }
}

void
Machine::performRecovery()
{
    recovery_scheduled_ = false;
    if (!active_ || health_ == nullptr)
        return; // verdict raced a completed or aborted run
    if (recovery_ctr_.resume_epochs
        >= opts_.recovery.max_resume_epochs) {
        // Out of repair budget: stop resuming; parked transfers keep
        // the engines un-done and the watchdog aborts structurally.
        return;
    }
    ++recovery_ctr_.resume_epochs;
    // Rail failover first, so the repair/resume pass below re-steers
    // into live siblings only. Masking is idempotent per channel.
    for (int cid : health_->deadChannels()) {
        if (!maskDeadRail(cid))
            continue;
        ++recovery_ctr_.rails_failed_over;
        if (sink_ != nullptr) {
            obs::TraceEvent ev;
            ev.kind = obs::EventKind::RailFailover;
            ev.tick = eq_.now();
            ev.channel = cid;
            sink_->onEvent(ev);
        }
    }
    // Deterministic route repair only under RepairResume; the
    // failover-only policy relies on issue-time steering alone.
    ni::NicEngine::RerouteFn reroute;
    if (opts_.recovery.policy == fault::RecoveryPolicy::RepairResume) {
        reroute = [this](int src, int dst) {
            return topo_.tryBfsRouteAvoiding(src, dst,
                                             health_->deadMask());
        };
    }
    std::uint64_t resumed = 0;
    for (auto &e : engines_) {
        const ni::RepairStats st = e->repairAndResume(reroute);
        recovery_ctr_.routes_repaired += st.routes_repaired;
        recovery_ctr_.pinned_repairs += st.pinned_repairs;
        recovery_ctr_.resumed_transfers += st.resumed;
        resumed += st.resumed;
    }
    if (sink_ != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::ResumeEpoch;
        ev.tick = eq_.now();
        ev.step =
            static_cast<int>(recovery_ctr_.resume_epochs);
        ev.bytes = resumed;
        sink_->onEvent(ev);
    }
}

bool
Machine::maskDeadRail(int channel)
{
    const auto c = static_cast<std::size_t>(channel);
    if (c >= rail_groups_.group_of.size())
        return false;
    const int gid = rail_groups_.group_of[c];
    if (gid < 0)
        return false;
    auto &group = rail_groups_.groups[static_cast<std::size_t>(gid)];
    if (group.size() <= 1)
        return false; // no live sibling left to fail over to
    auto it = std::find(group.begin(), group.end(), channel);
    if (it == group.end())
        return false; // already masked by an earlier pass
    group.erase(it);
    // group_of keeps mapping the dead channel to its group, so a
    // route still naming it re-steers into a live sibling.
    return true;
}

void
Machine::abortActive()
{
    active_ = false;
    active_done_ = nullptr;
    queue_.clear();
    lifetime_.inc("aborted_runs");
    if (opts_.sampler != nullptr) {
        // The series ends where the watchdog ruled; frames up to the
        // wedge remain available for triage.
        ++sample_gen_;
        opts_.sampler->onRunEnd(eq_.now());
    }
    // Engines may be wedged mid-table and the event queue is empty;
    // the next beginEpoch()'s unconditional resets recover both, so
    // the machine stays usable after a watchdog abort.
}

} // namespace multitree::runtime
