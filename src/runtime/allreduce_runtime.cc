#include "runtime/allreduce_runtime.hh"

namespace multitree::runtime {

RunResult
runAllReduce(const topo::Topology &topo, const coll::Schedule &sched,
             const RunOptions &opts)
{
    Machine machine(topo, opts);
    return machine.run(sched);
}

RunResult
runAllReduce(const topo::Topology &topo, const std::string &algo,
             std::uint64_t bytes, RunOptions opts)
{
    Machine machine(topo, opts);
    return machine.run(algo, bytes);
}

} // namespace multitree::runtime
