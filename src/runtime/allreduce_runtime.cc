#include "runtime/allreduce_runtime.hh"

#include <memory>
#include <vector>

#include "coll/algorithm.hh"
#include "coll/schedule.hh"
#include "common/logging.hh"
#include "net/flit_network.hh"
#include "net/flow_network.hh"
#include "ni/nic_engine.hh"
#include "ni/schedule_table.hh"
#include "sim/event_queue.hh"
#include "topo/topology.hh"

namespace multitree::runtime {

RunResult
runAllReduce(const topo::Topology &topo, const coll::Schedule &sched,
             const RunOptions &opts)
{
    MT_ASSERT(sched.num_nodes == topo.numNodes(),
              "schedule/topology node mismatch");
    sim::EventQueue eq;
    std::unique_ptr<net::Network> network;
    switch (opts.backend) {
      case Backend::Flow:
        network = std::make_unique<net::FlowNetwork>(eq, topo,
                                                     opts.net);
        break;
      case Backend::Flit:
        network = std::make_unique<net::FlitNetwork>(eq, topo,
                                                     opts.net);
        break;
    }

    auto tables = ni::buildScheduleTables(sched, topo);
    // Footnote 4: the lockstep window is the chunk's serialization
    // latency. The buffer-adjusted variant (est -= NI buffer depth
    // when the chunk does not fit) lets consecutive steps overlap by
    // the buffered prefix; it is opt-in because only the cycle-level
    // backend models the buffers that make that overlap free.
    auto estimates = sched.stepFlitEstimates();
    if (opts.buffer_adjusted_estimates) {
        for (auto &est : estimates) {
            if (est > opts.net.vc_buffer_depth)
                est -= opts.net.vc_buffer_depth;
        }
    }
    std::vector<std::unique_ptr<ni::NicEngine>> engines;
    engines.reserve(tables.size());
    for (auto &t : tables) {
        engines.push_back(std::make_unique<ni::NicEngine>(
            std::move(t), *network, sched.lockstep, estimates,
            opts.ni_reduction_bw));
    }

    Tick last_delivery = 0;
    network->onDeliver([&](const net::Message &msg) {
        last_delivery = std::max(last_delivery, eq.now());
        if (opts.trace != nullptr) {
            opts.trace->push_back(TraceRecord{
                msg.flow_id, msg.src, msg.dst, msg.bytes,
                msg.tag == ni::kTagGather, eq.now()});
        }
        engines[static_cast<std::size_t>(msg.dst)]->onMessage(msg);
    });

    for (auto &e : engines)
        e->start();
    eq.run();

    RunResult res;
    for (const auto &e : engines) {
        MT_ASSERT(e->done(), "NIC engine stalled with ", e->issued(),
                  " entries issued — schedule deadlock");
        res.nop_windows += e->nopWindows();
    }
    res.time = last_delivery;
    res.bandwidth = bandwidthGBps(sched.total_bytes, res.time);
    const auto &st = network->stats();
    res.messages = static_cast<std::uint64_t>(st.get("messages"));
    res.payload_flits = st.get("payload_flits");
    res.head_flits = st.get("head_flits");
    res.flit_hops = st.get("flit_hops");
    res.head_hops = st.get("head_hops");
    return res;
}

RunResult
runAllReduce(const topo::Topology &topo, const std::string &algo,
             std::uint64_t bytes, RunOptions opts)
{
    std::string name = algo;
    if (name == "multitree-msg") {
        name = "multitree";
        opts.net.mode = net::FlowControlMode::MessageBased;
    }
    auto algorithm = coll::makeAlgorithm(name);
    MT_ASSERT(algorithm->supports(topo), name,
              " does not support topology ", topo.name());
    auto sched = algorithm->build(topo, bytes);
    return runAllReduce(topo, sched, opts);
}

} // namespace multitree::runtime
