/**
 * @file
 * The persistent machine model: one fabric, many collectives.
 *
 * A Machine binds a topology to a simulation kernel, a network
 * backend (through net::makeNetwork) and one ni::NicEngine per node —
 * constructed once and reused for every collective, the way real
 * hardware stays up between training iterations. Each run loads
 * fresh schedule tables into the existing engines and scopes its
 * statistics, so per-run flit/hop counters are deltas rather than
 * lifetime aggregates.
 *
 * Two entry points:
 *  - run(): the session API for one collective at a time — resets
 *    the fabric to logical time zero, executes, and returns a
 *    RunResult bit-identical to a fresh single-shot simulation.
 *  - post()/scheduleAt()/drain(): the asynchronous API for workloads
 *    that interleave compute and communication on one shared time
 *    axis (the trainer's compute/communication overlap, Fig. 11b).
 *    Posted collectives execute back-to-back in FIFO order; compute
 *    events ride the same event queue.
 */

#ifndef MULTITREE_RUNTIME_MACHINE_HH
#define MULTITREE_RUNTIME_MACHINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "fault/fault.hh"
#include "fault/health.hh"
#include "net/network.hh"
#include "ni/nic_engine.hh"
#include "sim/event_queue.hh"
#include "topo/topology.hh"

namespace multitree::coll {
class Schedule;
} // namespace multitree::coll

namespace multitree::obs {
class Sampler;
} // namespace multitree::obs

namespace multitree::runtime {

/** Which transport model executes the schedule. */
using Backend = net::BackendKind;

/** One delivered transfer, for offline analysis/plotting. */
struct TraceRecord {
    int flow = -1;
    int src = -1;
    int dst = -1;
    std::uint64_t bytes = 0;
    bool gather = false; ///< false = reduce-phase message
    Tick delivered = 0;
    /** Reliability sequence number (0 when reliability is off). */
    std::uint64_t seq = 0;
    /** Retransmission attempt; > 0 marks a duplicate delivery whose
     *  bytes must not be double-counted in trace analyses. */
    std::uint32_t attempt = 0;
    /** Delivered with its integrity flag set (never accepted by a
     *  reliable receiver; excluded from goodput accounting). */
    bool corrupted = false;
};

/** Knobs fixed for the lifetime of a Machine. */
struct RunOptions {
    Backend backend = Backend::Flow;
    net::NetworkConfig net; ///< includes the flow-control mode
    /** NI reduction throughput in bytes/cycle; 0 = unlimited. */
    std::uint32_t ni_reduction_bw = 0;
    /**
     * How NIC engines spread deterministically-routed traffic over
     * parallel ("rail") links. Armed automatically whenever the
     * topology has multigraph edges (e.g. a multi-rail hierarchical
     * spine); a no-op on single-rail fabrics.
     */
    ni::RailPolicy rail_policy = ni::RailPolicy::RoundRobin;
    /**
     * Footnote-4 buffer-adjusted lockstep estimates: shrink each
     * step window by the NI buffer depth when the chunk exceeds it.
     * Requires the Flit backend, whose buffers absorb the resulting
     * inter-step overlap.
     */
    bool buffer_adjusted_estimates = false;
    /** When non-null, every delivery is appended here. Kept as a
     *  thin adapter over the structured sink below. */
    std::vector<TraceRecord> *trace = nullptr;
    /**
     * Structured lifecycle sink (src/obs) threaded through the
     * network backend, every NIC engine and the runtime. Not owned.
     * nullptr keeps every emission site to a single pointer test,
     * and sinks never perturb simulated time either way.
     */
    obs::TraceSink *sink = nullptr;
    /**
     * Latency-attribution profiler (src/obs/profile.hh) threaded to
     * the network backend and every NIC engine. Not owned. It is
     * rewound at each run's start and holds that run's per-message
     * breakdowns, issue/reduction records and congestion counters
     * when the run completes. Same zero-perturbation contract as the
     * trace sink: nullptr costs one pointer test per hook and an
     * attached profiler never changes a tick.
     */
    obs::Profiler *profiler = nullptr;
    /**
     * Fixed-cadence time-series sampler (src/obs/sampler.hh). Not
     * owned. When non-null the machine arms a self-re-arming
     * High-priority sample event every sample_every cycles and
     * snapshots the fabric (in-flight census, NIC scoreboards,
     * reduction units, per-channel traffic/queueing, per-phase
     * delivered bytes) into the sampler. Same zero-perturbation
     * contract as the sink/profiler: sample events only read state,
     * so attaching a sampler never changes a tick, and sampling on
     * the coordinator thread keeps the series bit-identical across
     * net.threads counts and the dense/active schedulers.
     */
    obs::Sampler *sampler = nullptr;
    /** Sampling cadence in cycles (sampler attached). */
    Tick sample_every = 256;
    /**
     * End-to-end reliability layer (acks, retransmission timers,
     * receiver dedup) armed on every NIC engine. Off by default; a
     * lossless run with the knob off is bit-identical to a machine
     * built without it.
     */
    ni::ReliabilityOptions reliability;
    /**
     * Deterministic fault plan injected into the transport. When
     * unset no interposer is attached and the fabric is pristine.
     */
    std::optional<fault::FaultConfig> fault;
    /**
     * Self-healing policy (fault/health.hh). Off keeps runs
     * tick-identical to a machine built without it — the same
     * nullptr/flag-guard discipline as the obs sinks. Armed policies
     * require reliability.enabled: the health monitor consumes the
     * reliability layer's timeout evidence, and resume rides its
     * outstanding-transfer scoreboard.
     */
    fault::RecoveryOptions recovery;
};

/** Per-collective tweaks layered over the Machine's RunOptions. */
struct RunOverrides {
    /** Flow control for this run (algorithm variants set this). */
    std::optional<net::FlowControlMode> flow_control;
    /** Whether the machine's fault plan is live for this run
     *  (default true when a plan exists). Disabling it yields a
     *  fault-free reference run on the very same fabric. */
    std::optional<bool> inject_faults;
};

/** Timing and transport statistics of one collective run. */
struct RunResult {
    Tick time = 0;           ///< completion (last gather delivery), ns
    double bandwidth = 0;    ///< algorithm bandwidth: bytes/time, GB/s
    std::uint64_t messages = 0;
    double payload_flits = 0;
    double head_flits = 0;
    double flit_hops = 0;    ///< total flit-hops (energy datapath)
    double head_hops = 0;    ///< head-flit hops (energy control)
    std::uint64_t nop_windows = 0; ///< lockstep NOP stalls across NIs
    /** Fused multicast injections served by in-network replication
     *  (0 whenever InNetworkMode::Off). */
    std::uint64_t mcast_injections = 0;
    /** Switch-resident reduction groups completed at a combiner. */
    std::uint64_t combined_groups = 0;
    /** Switch-ALU combining passes in flits (energy model input). */
    double combiner_alu_flits = 0;
};

/** One node's reliability/fault activity during a run. */
struct NodeReport {
    int node = -1;
    ni::ReliabilityCounters reliability;
    /** Messages this node injected that a fault dropped. */
    std::uint64_t drops_as_source = 0;
    /** Messages this node injected that a fault corrupted. */
    std::uint64_t corruptions_as_source = 0;
};

/**
 * Structured outcome of a fault-tolerant run. Unlike run(), which is
 * fatal on a wedged collective, tryRun() always returns: either the
 * timing result plus the reliability work it took, or a watchdog
 * diagnostic naming what stalled.
 */
struct RunReport {
    bool ok = false;
    /** Timing/transport result; meaningful only when ok. */
    RunResult result;
    /** Watchdog dump (non-quiescent nodes, in-flight census, failed
     *  transfers, downed links); non-empty only when !ok. */
    std::string diagnostic;

    // Fault-plan activity over the run.
    std::uint64_t dropped = 0;   ///< messages lost in transit
    std::uint64_t corrupted = 0; ///< messages delivered tainted
    std::uint64_t degraded = 0;  ///< messages delivered late

    // Reliability work, aggregated over all nodes.
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t acks = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t corrupt_discarded = 0;
    /** Retransmits fast-failed against a confirmed-dead channel. */
    std::uint64_t retx_into_dead_link = 0;

    /** Self-healing activity (all zero when recovery is off). */
    fault::RecoveryCounters recovery;

    std::vector<NodeReport> nodes; ///< per-node breakdown
    /** Transfers whose retries were exhausted (wedge evidence). */
    std::vector<ni::FailedTransfer> failures;
};

/** Invoked at a posted collective's completion tick. */
using CompletionFn = std::function<void(const RunResult &)>;

/**
 * A topology bound to a reusable simulation fabric. Construction
 * validates the RunOptions/NetworkConfig combination and builds the
 * event queue, backend and NIC engines exactly once.
 */
class Machine
{
  public:
    Machine(const topo::Topology &topo, const RunOptions &opts = {});
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Simulate @p sched from a fresh logical time zero and return
     * its scoped result. Equivalent to (and bit-identical with) a
     * single-shot runAllReduce on a newly built fabric.
     * @pre idle() — no epoch in progress.
     */
    RunResult run(const coll::Schedule &sched,
                  const RunOverrides &ov = {});

    /**
     * Build the named algorithm's schedule for @p bytes and run it.
     * @p algo resolves through coll::findAlgorithmVariant, so
     * variants like "multitree-msg" carry their flow-control
     * override automatically.
     */
    RunResult run(const std::string &algo, std::uint64_t bytes,
                  RunOverrides ov = {});

    /**
     * Fault-tolerant variant of run(): executes @p sched and always
     * returns a RunReport. A run that completes (all engines done,
     * fabric quiescent) reports ok with its result and reliability
     * counters; a wedged run — lost dependency with reliability off,
     * or retries exhausted against a downed link — is aborted by the
     * progress watchdog with a structured diagnostic instead of
     * MT_FATAL, and the machine stays reusable.
     */
    RunReport tryRun(const coll::Schedule &sched,
                     const RunOverrides &ov = {});

    /** Name-resolving overload of tryRun (see run(algo, bytes)). */
    RunReport tryRun(const std::string &algo, std::uint64_t bytes,
                     RunOverrides ov = {});

    /**
     * Start a new epoch for the asynchronous API: rewind the event
     * queue to logical time zero and return the fabric (network
     * state, engine scoreboards, statistics) to its
     * just-constructed state. @pre idle() and the queue has drained.
     */
    void beginEpoch();

    /**
     * Enqueue @p sched on the shared time axis. Starts immediately
     * if the fabric is idle, otherwise when the preceding posted
     * collective completes; @p on_complete (if any) fires at its
     * completion tick with the scoped result.
     */
    void post(const coll::Schedule &sched,
              CompletionFn on_complete = nullptr,
              RunOverrides ov = {});

    /** Schedule a compute-side event at absolute tick @p when. */
    void scheduleAt(Tick when, std::function<void()> fn);

    /**
     * Run the event queue to completion and return the final tick.
     * Fatal if a posted collective cannot finish (schedule
     * deadlock).
     */
    Tick drain();

    /** Whether no collective is running or queued. */
    bool idle() const { return !active_ && queue_.empty(); }

    /**
     * Register a sink invoked for every data message a NIC engine
     * accepts (post reliability dedup/checksum filtering). The
     * data-plane oracle and custom traces hang off this.
     */
    void setAcceptSink(ni::NicEngine::AcceptFn fn);

    /** The machine's fault plan, or nullptr when none configured. */
    fault::FaultPlan *faultPlan() { return plan_.get(); }

    /** The link-health monitor, or nullptr when recovery is off. */
    fault::HealthMonitor *healthMonitor() { return health_.get(); }

    /** Self-healing activity of the current/last run. */
    const fault::RecoveryCounters &recoveryCounters() const
    {
        return recovery_ctr_;
    }

    /**
     * Watchdog diagnostic of the current (wedged) state: stalled
     * engines with their missing dependencies, injected/delivered/
     * dropped accounting, the oldest in-flight messages, exhausted
     * transfers and currently downed links.
     */
    std::string stallDiagnostic() const;

    /**
     * Static track-layout description of this fabric for the obs
     * exporters (Perfetto tracks, timeline rows).
     */
    obs::FabricInfo fabricInfo() const;

    const topo::Topology &topology() const { return topo_; }
    const RunOptions &options() const { return opts_; }
    sim::EventQueue &eventQueue() { return eq_; }
    net::Network &network() { return *network_; }
    const net::Network &network() const { return *network_; }

    /** Collectives completed over this machine's lifetime. */
    std::uint64_t runsCompleted() const { return runs_completed_; }

    /** Lifetime aggregates across runs (runs, time, messages…). */
    const StatRegistry &lifetimeStats() const { return lifetime_; }

  private:
    struct PendingRun {
        std::vector<ni::ScheduleTable> tables;
        std::vector<std::uint64_t> estimates;
        bool lockstep = false;
        std::uint64_t total_bytes = 0;
        net::FlowControlMode mode = net::FlowControlMode::PacketBased;
        bool inject_faults = true;
        /** Schedule phase labels (empty = single unnamed phase). */
        std::vector<std::string> phase_names;
        int num_phases = 1;
        CompletionFn done;
    };

    void onDelivery(const net::Message &msg);
    void startNext();
    void maybeComplete();
    void completeActive();

    /** Snapshot the fabric into the attached sampler. */
    void takeSample();

    /** Schedule the next sample event (High priority, gen-guarded). */
    void armSampler();

    /**
     * Run the event queue dry, sweeping completion after every
     * drain: fault drops end a message's lifetime at injection time,
     * so a run's final issue can happen inside a timer callback with
     * no delivery (and hence no completion check) after it.
     */
    void drainLoop();

    /** Fill @p rep's fault/reliability counters from the fabric. */
    void fillReportCounters(RunReport &rep) const;

    /** Watchdog abort: discard the wedged run and queued work so the
     *  next beginEpoch() finds an idle machine. */
    void abortActive();

    /**
     * Health-monitor verdict subscriber. Fires inside an engine's
     * timeout handler, so it only records the death and schedules
     * the repair pass at the current tick — same-tick verdicts
     * coalesce into one performRecovery().
     */
    void onLinkDead(int channel, Tick now);

    /**
     * One repair pass: mask confirmed-dead rails out of the steering
     * groups, recompute affected routes around the dead set (policy
     * RepairResume), and re-issue the transfers still open in the
     * NIC scoreboards. Bounded by RecoveryOptions::max_resume_epochs;
     * past the budget it does nothing and the watchdog aborts.
     */
    void performRecovery();

    /** Mask @p channel out of its rail group (keeping the group_of
     *  mapping, so routes naming it re-steer into a live sibling).
     *  False when it has no live sibling or is already masked. */
    bool maskDeadRail(int channel);

    const topo::Topology &topo_;
    RunOptions opts_;
    /** Parallel-link structure of topo_; empty on single-rail
     *  fabrics, where steering stays disarmed. */
    topo::RailGroups rail_groups_;
    sim::EventQueue eq_;
    std::unique_ptr<net::Network> network_;
    std::vector<std::unique_ptr<ni::NicEngine>> engines_;
    std::unique_ptr<fault::FaultPlan> plan_;
    /** Link-health monitor; nullptr when recovery is off. */
    std::unique_ptr<fault::HealthMonitor> health_;
    fault::RecoveryCounters recovery_ctr_;
    /** A repair pass is scheduled but has not run yet. */
    bool recovery_scheduled_ = false;

    /** Adapter feeding RunOptions::trace from MsgDeliver events. */
    std::unique_ptr<obs::TraceSink> legacy_sink_;
    /** Fan-out when both the legacy vector and a user sink exist. */
    std::unique_ptr<obs::TeeSink> tee_sink_;
    /** Effective sink all components share (nullptr = tracing off). */
    obs::TraceSink *sink_ = nullptr;

    std::deque<PendingRun> queue_;
    bool active_ = false;
    Tick active_start_ = 0;
    std::uint64_t active_bytes_ = 0;
    CompletionFn active_done_;
    /** Phase labels of the active run (sampler/profiler context). */
    std::vector<std::string> active_phase_names_;
    /** Cumulative delivered payload bytes per phase, maintained only
     *  while a sampler is attached (pure observation). */
    std::vector<std::uint64_t> phase_bytes_;
    /** Sampling generation; a bump turns the pending gen-guarded
     *  sample event into a non-re-arming no-op so the queue drains. */
    std::uint64_t sample_gen_ = 0;
    /** Network stats at the active run's start (per-run scoping). */
    std::map<std::string, double> stat_base_;

    std::uint64_t runs_completed_ = 0;
    StatRegistry lifetime_;
};

} // namespace multitree::runtime

#endif // MULTITREE_RUNTIME_MACHINE_HH
