/**
 * @file
 * The persistent machine model: one fabric, many collectives.
 *
 * A Machine binds a topology to a simulation kernel, a network
 * backend (through net::makeNetwork) and one ni::NicEngine per node —
 * constructed once and reused for every collective, the way real
 * hardware stays up between training iterations. Each run loads
 * fresh schedule tables into the existing engines and scopes its
 * statistics, so per-run flit/hop counters are deltas rather than
 * lifetime aggregates.
 *
 * Two entry points:
 *  - run(): the session API for one collective at a time — resets
 *    the fabric to logical time zero, executes, and returns a
 *    RunResult bit-identical to a fresh single-shot simulation.
 *  - post()/scheduleAt()/drain(): the asynchronous API for workloads
 *    that interleave compute and communication on one shared time
 *    axis (the trainer's compute/communication overlap, Fig. 11b).
 *    Posted collectives execute back-to-back in FIFO order; compute
 *    events ride the same event queue.
 */

#ifndef MULTITREE_RUNTIME_MACHINE_HH
#define MULTITREE_RUNTIME_MACHINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "net/network.hh"
#include "ni/nic_engine.hh"
#include "sim/event_queue.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::coll {
class Schedule;
} // namespace multitree::coll

namespace multitree::runtime {

/** Which transport model executes the schedule. */
using Backend = net::BackendKind;

/** One delivered transfer, for offline analysis/plotting. */
struct TraceRecord {
    int flow = -1;
    int src = -1;
    int dst = -1;
    std::uint64_t bytes = 0;
    bool gather = false; ///< false = reduce-phase message
    Tick delivered = 0;
};

/** Knobs fixed for the lifetime of a Machine. */
struct RunOptions {
    Backend backend = Backend::Flow;
    net::NetworkConfig net; ///< includes the flow-control mode
    /** NI reduction throughput in bytes/cycle; 0 = unlimited. */
    std::uint32_t ni_reduction_bw = 0;
    /**
     * Footnote-4 buffer-adjusted lockstep estimates: shrink each
     * step window by the NI buffer depth when the chunk exceeds it.
     * Requires the Flit backend, whose buffers absorb the resulting
     * inter-step overlap.
     */
    bool buffer_adjusted_estimates = false;
    /** When non-null, every delivery is appended here. */
    std::vector<TraceRecord> *trace = nullptr;
};

/** Per-collective tweaks layered over the Machine's RunOptions. */
struct RunOverrides {
    /** Flow control for this run (algorithm variants set this). */
    std::optional<net::FlowControlMode> flow_control;
};

/** Timing and transport statistics of one collective run. */
struct RunResult {
    Tick time = 0;           ///< completion (last gather delivery), ns
    double bandwidth = 0;    ///< algorithm bandwidth: bytes/time, GB/s
    std::uint64_t messages = 0;
    double payload_flits = 0;
    double head_flits = 0;
    double flit_hops = 0;    ///< total flit-hops (energy datapath)
    double head_hops = 0;    ///< head-flit hops (energy control)
    std::uint64_t nop_windows = 0; ///< lockstep NOP stalls across NIs
};

/** Invoked at a posted collective's completion tick. */
using CompletionFn = std::function<void(const RunResult &)>;

/**
 * A topology bound to a reusable simulation fabric. Construction
 * validates the RunOptions/NetworkConfig combination and builds the
 * event queue, backend and NIC engines exactly once.
 */
class Machine
{
  public:
    Machine(const topo::Topology &topo, const RunOptions &opts = {});
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Simulate @p sched from a fresh logical time zero and return
     * its scoped result. Equivalent to (and bit-identical with) a
     * single-shot runAllReduce on a newly built fabric.
     * @pre idle() — no epoch in progress.
     */
    RunResult run(const coll::Schedule &sched,
                  const RunOverrides &ov = {});

    /**
     * Build the named algorithm's schedule for @p bytes and run it.
     * @p algo resolves through coll::findAlgorithmVariant, so
     * variants like "multitree-msg" carry their flow-control
     * override automatically.
     */
    RunResult run(const std::string &algo, std::uint64_t bytes,
                  RunOverrides ov = {});

    /**
     * Start a new epoch for the asynchronous API: rewind the event
     * queue to logical time zero and return the fabric (network
     * state, engine scoreboards, statistics) to its
     * just-constructed state. @pre idle() and the queue has drained.
     */
    void beginEpoch();

    /**
     * Enqueue @p sched on the shared time axis. Starts immediately
     * if the fabric is idle, otherwise when the preceding posted
     * collective completes; @p on_complete (if any) fires at its
     * completion tick with the scoped result.
     */
    void post(const coll::Schedule &sched,
              CompletionFn on_complete = nullptr,
              RunOverrides ov = {});

    /** Schedule a compute-side event at absolute tick @p when. */
    void scheduleAt(Tick when, std::function<void()> fn);

    /**
     * Run the event queue to completion and return the final tick.
     * Fatal if a posted collective cannot finish (schedule
     * deadlock).
     */
    Tick drain();

    /** Whether no collective is running or queued. */
    bool idle() const { return !active_ && queue_.empty(); }

    const topo::Topology &topology() const { return topo_; }
    const RunOptions &options() const { return opts_; }
    sim::EventQueue &eventQueue() { return eq_; }
    net::Network &network() { return *network_; }

    /** Collectives completed over this machine's lifetime. */
    std::uint64_t runsCompleted() const { return runs_completed_; }

    /** Lifetime aggregates across runs (runs, time, messages…). */
    const StatRegistry &lifetimeStats() const { return lifetime_; }

  private:
    struct PendingRun {
        std::vector<ni::ScheduleTable> tables;
        std::vector<std::uint64_t> estimates;
        bool lockstep = false;
        std::uint64_t total_bytes = 0;
        net::FlowControlMode mode = net::FlowControlMode::PacketBased;
        CompletionFn done;
    };

    void onDelivery(const net::Message &msg);
    void startNext();
    void maybeComplete();
    void completeActive();

    const topo::Topology &topo_;
    RunOptions opts_;
    sim::EventQueue eq_;
    std::unique_ptr<net::Network> network_;
    std::vector<std::unique_ptr<ni::NicEngine>> engines_;

    std::deque<PendingRun> queue_;
    bool active_ = false;
    Tick active_start_ = 0;
    std::uint64_t active_bytes_ = 0;
    CompletionFn active_done_;
    /** Network stats at the active run's start (per-run scoping). */
    std::map<std::string, double> stat_base_;

    std::uint64_t runs_completed_ = 0;
    StatRegistry lifetime_;
};

} // namespace multitree::runtime

#endif // MULTITREE_RUNTIME_MACHINE_HH
