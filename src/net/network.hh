/**
 * @file
 * Abstract network interface shared by the two simulation backends.
 *
 * The co-designed NI engine (src/ni) injects Messages and receives
 * delivery callbacks; it never cares whether the transport underneath
 * is the cycle-level flit simulator or the fast flow-level model.
 * Both backends are driven by the same sim::EventQueue.
 */

#ifndef MULTITREE_NET_NETWORK_HH
#define MULTITREE_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "obs/trace.hh"

namespace multitree::sim {
class EventQueue;
} // namespace multitree::sim

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::obs {
class Profiler;
} // namespace multitree::obs

namespace multitree::net {

/** Flow-control flavor on the wire (§IV-B, Fig. 7). */
enum class FlowControlMode {
    /** Conventional packets: a head flit per 256 B payload packet. */
    PacketBased,
    /**
     * Message-based big-gradient flow control: one head flit for the
     * whole gradient message, sub-packets delimited by type bits that
     * ride existing flit framing (no extra flits).
     */
    MessageBased,
};

/** One end-to-end transfer between two nodes. */
struct Message {
    int src = -1;            ///< source node vertex
    int dst = -1;            ///< destination node vertex
    std::uint64_t bytes = 0; ///< payload bytes
    std::vector<int> route;  ///< channel path src→dst (never empty
                             ///< when handed to a backend)
    int flow_id = -1;        ///< tree/chunk id (Fig. 8d Tree Info)
    std::uint64_t tag = 0;   ///< opaque NI cookie

    /** Reliability sequence number, unique per sender (0 = none). */
    std::uint64_t seq = 0;
    /** Retransmission attempt; 0 is the original transmission. */
    std::uint32_t attempt = 0;
    /** Payload integrity lost in transit (set by fault injection;
     *  a reliable receiver detects it via checksum and discards). */
    bool corrupted = false;
    /** Residual degraded-link latency applied at delivery time. */
    Tick fault_delay = 0;
    /** Network-assigned in-flight tracking id (watchdog census). */
    std::uint64_t track_id = 0;
    /** Schedule phase the message belongs to (attribution; acks and
     *  retransmissions inherit their data message's phase). */
    int phase = 0;

    /**
     * In-network multicast fan-out: every destination of a fused
     * gather edge (dst == mcast_dsts[0]); empty for unicast. One
     * injection serves all of them, the fabric replicating where the
     * per-branch routes (mcast_routes, aligned with mcast_dsts)
     * diverge. Only meaningful with NetworkConfig::in_network on.
     */
    std::vector<int> mcast_dsts;
    /** Per-destination explicit routes for a multicast injection. */
    std::vector<std::vector<int>> mcast_routes;

    /**
     * Switch-resident reduction: vertex at which this reduce-tree
     * contribution may combine with its siblings before the last hop
     * into the parent (-1 = no combining). Annotated by the NI from
     * the schedule tables under InNetworkMode::MulticastReduce.
     */
    int combine_at = -1;
    /** Sibling contributions meeting at combine_at (incl. this). */
    std::uint32_t combine_peers = 0;

    /**
     * Internal transport bookkeeping for in-network replication and
     * combining (segment / pending-combine ids). Always 0 on the NI
     * interface; never set by callers.
     */
    std::uint64_t mcast_segment = 0;
    std::uint64_t combine_token = 0;
};

/**
 * Per-message fate decided by a fault interposer at injection time.
 * The default-constructed fate is "no fault".
 */
struct FaultFate {
    bool drop = false;    ///< message is lost in transit
    bool corrupt = false; ///< message arrives with a bad checksum
    Tick extra_latency = 0; ///< added delivery delay (degraded links)
};

/**
 * Interposition interface consulted by Network::inject for every
 * message (data, acks and retransmissions alike). Implemented by
 * fault::FaultPlan; the network itself stays fault-agnostic.
 */
class FaultInterposer
{
  public:
    virtual ~FaultInterposer() = default;

    /** Decide the fate of @p msg injected at @p now. */
    virtual FaultFate onInject(const Message &msg, Tick now) = 0;

    /** Rewind internal state (RNG stream) for a replayable epoch. */
    virtual void reset() = 0;
};

/** Delivery callback: invoked at the arrival tick of the tail flit. */
using DeliverFn = std::function<void(const Message &)>;

/**
 * In-network collective support level (DESIGN.md §12). Off keeps the
 * fabric tick-identical to a build without the feature; Multicast
 * replicates fused gather edges at route-divergence switches;
 * MulticastReduce additionally combines reduce-tree contributions in
 * switch-resident combining buffers.
 */
enum class InNetworkMode {
    Off,
    Multicast,
    MulticastReduce,
};

/** Human-readable in-network mode name (mtsim flag spelling). */
const char *inNetworkModeName(InNetworkMode mode);

/** Parameters shared by both backends (Table III defaults). */
struct NetworkConfig {
    /** Flow control on every wire (MultiTreeMsg sets MessageBased). */
    FlowControlMode mode = FlowControlMode::PacketBased;
    std::uint32_t flit_bytes = kFlitBytes;
    std::uint32_t packet_payload = kPacketPayloadBytes;
    std::uint32_t link_latency = kLinkLatency;   ///< cycles
    std::uint32_t router_pipeline = 3;           ///< cycles per hop
    std::uint32_t num_vcs = kNumVCs;
    std::uint32_t vc_buffer_depth = kVCBufferDepth;
    /**
     * Escape hatch for the cycle-level backend's scheduler: force the
     * reference dense tick loop (every router evaluated every cycle)
     * instead of the default active-set loop with idle-cycle
     * fast-forward. The two are tick- and stat-identical by contract;
     * dense exists as the oracle for that contract and as a fallback
     * while debugging activation bookkeeping. The MT_DENSE_TICK
     * environment variable (any non-empty value other than "0")
     * forces dense regardless of this flag. Ignored by the flow
     * backend, which has no tick loop.
     */
    bool dense_tick = false;
    /**
     * Worker threads for the cycle-level backend's tick loop. With
     * N > 1 the FlitNetwork partitions its routers into N contiguous
     * spatial domains executed by a persistent worker pool with a
     * per-cycle barrier; inter-domain flits and credits ride
     * lock-free SPSC handoff rings and every ordered global side
     * effect is merged in ascending-router order, so any thread
     * count is bit-identical to the single-threaded loop and to the
     * dense oracle (tests/test_activeset.cc holds it to that). The
     * MT_THREADS environment variable overrides this knob. Ignored
     * by the flow backend, which has no tick loop.
     */
    std::uint32_t threads = 1;
    /** In-network multicast / switch-resident reduction support. */
    InNetworkMode in_network = InNetworkMode::Off;
    /**
     * Combining-buffer capacity per switch: open reduction groups a
     * router can hold concurrently. A group that cannot allocate an
     * entry falls back to unicast forwarding, deterministically and
     * permanently for that (switch, parent, flow) key.
     */
    std::uint32_t combiner_entries = 8;
    /** Switch-ALU latency charged per completed combine (cycles). */
    std::uint32_t combiner_latency = 2;
};

/** Which transport model executes a schedule. */
enum class BackendKind {
    Flow, ///< fast per-channel serialization model
    Flit, ///< cycle-level VC router simulation
};

/**
 * Abstract transport. A backend is constructed once per fabric and
 * reused across collectives: reset() returns it to its
 * just-constructed state (empty buffers, full credits, zeroed
 * statistics) so a persistent runtime::Machine can replay runs
 * bit-identically.
 */
class Network
{
  public:
    Network(sim::EventQueue &eq, const topo::Topology &topo,
            NetworkConfig cfg)
        : eq_(eq), topo_(topo), cfg_(cfg)
    {}
    virtual ~Network() = default;

    /**
     * Queue @p msg for transmission starting at the current tick.
     * When a fault interposer is attached it rules on the message
     * first: dropped messages never reach the backend (they count
     * toward dropped(), keeping quiescent() meaningful), corrupted
     * ones traverse the wire with their integrity flag set, and
     * degraded-link latency is charged at delivery time.
     */
    void inject(Message msg);

    /** Register the delivery sink (one per simulation). */
    void onDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /**
     * Attach (or detach, with nullptr) the fault interposer consulted
     * on every injection. The network does not own it.
     */
    void setFaultInterposer(FaultInterposer *fi) { fault_ = fi; }

    /**
     * Attach (or detach, with nullptr) the lifecycle trace sink. The
     * network does not own it; with no sink attached every emission
     * site reduces to one pointer test, and sinks never schedule
     * events, so tracing cannot perturb simulated time.
     */
    void setTraceSink(obs::TraceSink *sink) { sink_ = sink; }

    /** The attached trace sink, or nullptr. */
    obs::TraceSink *traceSink() const { return sink_; }

    /**
     * Flush any trace state the backend coalesces internally (e.g.
     * per-channel busy spans still open in the flit backend). Called
     * by the runtime when a run completes; a no-op by default.
     */
    virtual void flushTrace() {}

    /**
     * Attach (or detach, with nullptr) the latency-attribution
     * profiler. Same overhead contract as setTraceSink: every hook
     * reduces to one pointer test when detached, and the profiler
     * only records — it never schedules events — so attaching one
     * cannot change a single tick of any run.
     */
    void setProfiler(obs::Profiler *prof) { prof_ = prof; }

    /** The attached profiler, or nullptr. */
    obs::Profiler *profiler() const { return prof_; }

    /**
     * Push backend-internal congestion counters (per-channel loads
     * and, on the flit backend, per-router arbitration statistics)
     * into the attached profiler. Called by the runtime when a run
     * completes; a no-op by default or with no profiler attached.
     */
    virtual void flushProfile() {}

    /** The event queue driving this network. */
    sim::EventQueue &eventQueue() { return eq_; }

    /** Configuration in effect. */
    const NetworkConfig &config() const { return cfg_; }

    /**
     * Switch the wire flow-control flavor for subsequent injections.
     * Safe only while the fabric is quiescent(); lets one fabric
     * serve both packet- and message-based collectives.
     */
    void setFlowControlMode(FlowControlMode mode) { cfg_.mode = mode; }

    /** Aggregate transport statistics (flits, head flits, stalls…). */
    const StatRegistry &stats() const { return stats_; }

    /** Messages injected over the current epoch. */
    std::uint64_t injected() const { return injected_; }

    /** Messages delivered over the current epoch. */
    std::uint64_t delivered() const { return delivered_; }

    /** Messages lost to injected faults over the current epoch. */
    std::uint64_t dropped() const { return dropped_; }

    /** Per-source-node drop counts this epoch (fault attribution). */
    const std::map<int, std::uint64_t> &dropsBySource() const
    {
        return drops_by_src_;
    }

    /** Per-source-node corruption counts this epoch. */
    const std::map<int, std::uint64_t> &corruptionsBySource() const
    {
        return corruptions_by_src_;
    }

    /**
     * Whether every injected message has left the fabric — delivered
     * to the sink or accounted as lost to an injected fault.
     */
    bool quiescent() const { return injected_ == delivered_ + dropped_; }

    /** Messages currently in flight (injected, not yet delivered). */
    std::size_t inFlightCount() const { return in_flight_msgs_.size(); }

    /** In-flight census record: the message plus its injection tick.
     *  Ordered by track id, so begin() is the oldest. */
    struct InFlightRecord {
        Message msg;
        Tick injected_at = 0;
    };

    /** The in-flight census (diagnostics, suspect ranking). */
    const std::map<std::uint64_t, InFlightRecord> &inFlight() const
    {
        return in_flight_msgs_;
    }

    /**
     * Whether any copy of the transfer (@p src, @p seq, @p tag) is
     * still in the in-flight census. The reliability layer's timeout
     * handler uses this to corroborate loss evidence: a timed-out
     * send whose copies all left the census was dropped, while one
     * still in flight is merely congested and exonerates its route.
     * The tag disambiguates data from the acks this node returns for
     * other senders' traffic, which reuse the sequence-number space.
     */
    bool dataInFlight(int src, std::uint64_t seq,
                      std::uint64_t tag) const;

    /**
     * Whether any copy of the transfer (@p src, @p seq, @p tag) has
     * ever been delivered this run. Faults drop messages only at
     * injection, so a timed-out transfer that is neither in flight
     * nor in this census was genuinely lost on its route — while one
     * recorded here completed its leg, and the loss (if any) is on
     * the other leg of the round trip. The health monitor's evidence
     * quality rests on this distinction: without it, ack-leg losses
     * condemn healthy data routes.
     */
    bool everDelivered(int src, std::uint64_t seq,
                       std::uint64_t tag) const
    {
        return delivered_ids_.count({src, seq, tag}) != 0;
    }

    /**
     * Outstanding bytes charged against channel @p cid: the sum of
     * payload bytes of every in-flight message whose route crosses
     * it. Backend-agnostic (maintained at inject/deliver time), so
     * the NI's backlog-based rail steering behaves identically on
     * both transports. Channels never injected on read as 0.
     */
    std::uint64_t channelBacklog(int cid) const
    {
        const auto c = static_cast<std::size_t>(cid);
        return c < backlog_.size() ? backlog_[c] : 0;
    }

    /** Sum of payload bytes over the in-flight census. */
    std::uint64_t inFlightBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &[id, rec] : in_flight_msgs_)
            total += rec.msg.bytes;
        return total;
    }

    /**
     * Snapshot per-channel telemetry for the time-series sampler:
     * @p flits_cum receives a monotone cumulative per-channel
     * traffic count (wire flits on the flit backend, busy cycles on
     * the flow backend — both proportional to carried traffic), and
     * @p queue_now the instantaneous queueing at the sample tick
     * (buffered input flits on the flit backend, the remaining
     * reservation backlog in cycles on the flow backend). Both are
     * resized to the channel count. Read-only: sampling must not
     * perturb the run.
     */
    virtual void sampleChannels(std::vector<std::uint64_t> &flits_cum,
                                std::vector<std::uint64_t> &queue_now)
        const = 0;

    /**
     * Human-readable census of up to @p max_items in-flight messages,
     * oldest first — the watchdog's diagnostic dump of a wedged
     * fabric. Empty string when the fabric is quiescent.
     */
    std::string describeInFlight(std::size_t max_items = 8) const;

    /** Per-switch combining-buffer telemetry (MulticastReduce). */
    struct CombinerStats {
        std::uint64_t groups_opened = 0;  ///< entries allocated
        std::uint64_t combined = 0;       ///< groups completed at ALU
        std::uint64_t absorbed = 0;       ///< contributions held
        std::uint64_t fallbacks = 0;      ///< capacity-denied groups
        std::uint64_t dissolved = 0;      ///< groups broken up by a
                                          ///< duplicate (retransmit)
        std::uint32_t open_now = 0;       ///< instantaneous occupancy
        std::uint32_t peak_open = 0;      ///< occupancy high-water
    };

    /** Combiner telemetry per switch vertex (empty when unused). */
    const std::map<int, CombinerStats> &combinerStats() const
    {
        return combiner_;
    }

    /** Reduction groups currently open across every switch. */
    std::uint64_t combinerOpenCount() const;

    /** Cumulative capacity-fallback count across every switch. */
    std::uint64_t combinerFallbacks() const;

    /**
     * Return the fabric to its just-constructed state: clear all
     * statistics and transient transport state. @pre quiescent() and
     * no transport events pending in the event queue — i.e. call only
     * between runs, after the queue has drained.
     */
    virtual void reset();

  protected:
    /** Backend transmission entry point. */
    virtual void injectImpl(Message msg) = 0;

    /** Deliver @p msg to the registered sink, counting it. */
    void deliverMsg(const Message &msg);

    /**
     * Fold the per-switch combiner telemetry into the attached
     * profiler; backends call this from their flushProfile().
     */
    void flushCombinerProfile();

  private:
    /** One delivery branch of an in-flight multicast group. */
    struct McastBranch {
        Message msg;               ///< full per-branch message
        std::size_t hops_done = 0; ///< channels already traversed
    };
    /** All live branches of one multicast injection. */
    struct McastGroup {
        std::vector<McastBranch> branches;
        std::size_t remaining = 0;     ///< branches not yet delivered
        std::size_t segments_open = 0; ///< segments not yet arrived
    };
    /** One wire segment of the replication tree (shared prefix).
     *  branch_idx lists only the branches whose route ENDS at this
     *  segment's tail — the ones its arrival delivers. */
    struct McastSegment {
        std::uint64_t group = 0;
        std::vector<std::size_t> branch_idx;
    };
    /** An open switch-resident reduction group. */
    struct CombineGroup {
        std::vector<Message> held;   ///< absorbed contributions
        std::set<int> srcs;          ///< distinct contributors seen
        std::uint32_t peers = 0;     ///< group completes at this many
        int last_channel = -1;       ///< final hop into the parent
    };
    /** Combining-buffer key: (switch vertex, parent, flow). */
    using CombineKey = std::tuple<int, int, int>;

    /** Split a multicast injection into per-branch accounting and
     *  launch the whole replication-tree segment forest. */
    void injectMulticast(Message msg);

    /**
     * Launch segments for @p idx branches of @p group, all standing
     * at a common vertex, partitioned by next channel, then recurse
     * past each divergence point. Replication is cut-through: a
     * downstream segment starts streaming @p offset ticks after the
     * group's injection — the cumulative head latency of its upstream
     * segments — so its serialization overlaps theirs, the way a
     * wormhole router duplicates flits port-to-port as they arrive.
     * Upstream backpressure is not propagated across replication
     * points (first-order model; each segment still contends for its
     * own channels in the backend).
     */
    void launchSegments(std::uint64_t group,
                        const std::vector<std::size_t> &idx,
                        Tick offset);

    /** A replication-tree segment finished its wire traversal. */
    void onSegmentArrival(const Message &msg);

    /** Route a reduce contribution through the combining buffer at
     *  its annotated switch (MulticastReduce inject path). */
    void injectCombining(Message msg);

    /** A contribution's child→switch leg arrived at the combiner. */
    void onCombineArrival(const Message &msg);

    /** Forward one absorbed contribution individually over its final
     *  hop (fallback, dissolve, straggler paths). */
    void forwardIndividually(Message msg);

    /** A combined (or individually forwarded) switch→parent leg
     *  arrived: run full per-constituent delivery. */
    void onCombinedArrival(const Message &msg);

  protected:

    /** Emit a message-lifecycle event for @p msg (sink attached). */
    void emitMsgEvent(obs::EventKind kind, const Message &msg,
                      Tick duration = 0);

    sim::EventQueue &eq_;
    const topo::Topology &topo_;
    NetworkConfig cfg_;
    DeliverFn deliver_;
    FaultInterposer *fault_ = nullptr;
    obs::TraceSink *sink_ = nullptr;
    obs::Profiler *prof_ = nullptr;
    StatRegistry stats_;
    std::uint64_t injected_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
    std::map<int, std::uint64_t> drops_by_src_;
    std::map<int, std::uint64_t> corruptions_by_src_;

    /** In-flight census for the watchdog: track_id → record. */
    std::uint64_t next_track_id_ = 0;
    std::map<std::uint64_t, InFlightRecord> in_flight_msgs_;
    /** Delivered-transfer census (see everDelivered()). */
    std::set<std::tuple<int, std::uint64_t, std::uint64_t>>
        delivered_ids_;
    /** Per-channel in-flight bytes (see channelBacklog()). */
    std::vector<std::uint64_t> backlog_;

  private:
    /** Live multicast groups / segments (internal id → state). */
    std::map<std::uint64_t, McastGroup> mcast_groups_;
    std::map<std::uint64_t, McastSegment> mcast_segments_;
    /** Contributions riding their child→switch combining leg, and
     *  completed switch→parent legs carrying their constituents. */
    std::map<std::uint64_t, Message> combine_legs_;
    std::map<std::uint64_t, std::vector<Message>> combined_out_;
    /** Open reduction groups per (switch, parent, flow). */
    std::map<CombineKey, CombineGroup> combine_groups_;
    /** Open-group count per switch (capacity accounting). */
    std::map<int, std::uint32_t> combine_open_;
    /** Keys that completed once (stragglers forward individually). */
    std::set<CombineKey> combine_done_;
    /** Keys denied an entry (or dissolved): permanent unicast. */
    std::set<CombineKey> combine_fallback_;
    /** Internal id source for segments and combine legs. */
    std::uint64_t next_internal_id_ = 0;

  protected:
    /** Per-switch combiner telemetry (see combinerStats()). */
    std::map<int, CombinerStats> combiner_;
};

/**
 * Construct the @p kind transport over @p topo, driven by @p eq.
 * The single place backend selection happens; the runtime's Machine
 * and any bespoke harness share it.
 */
std::unique_ptr<Network> makeNetwork(BackendKind kind,
                                     sim::EventQueue &eq,
                                     const topo::Topology &topo,
                                     const NetworkConfig &cfg = {});

} // namespace multitree::net

#endif // MULTITREE_NET_NETWORK_HH
