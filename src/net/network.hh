/**
 * @file
 * Abstract network interface shared by the two simulation backends.
 *
 * The co-designed NI engine (src/ni) injects Messages and receives
 * delivery callbacks; it never cares whether the transport underneath
 * is the cycle-level flit simulator or the fast flow-level model.
 * Both backends are driven by the same sim::EventQueue.
 */

#ifndef MULTITREE_NET_NETWORK_HH
#define MULTITREE_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"

namespace multitree::sim {
class EventQueue;
} // namespace multitree::sim

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::net {

/** Flow-control flavor on the wire (§IV-B, Fig. 7). */
enum class FlowControlMode {
    /** Conventional packets: a head flit per 256 B payload packet. */
    PacketBased,
    /**
     * Message-based big-gradient flow control: one head flit for the
     * whole gradient message, sub-packets delimited by type bits that
     * ride existing flit framing (no extra flits).
     */
    MessageBased,
};

/** One end-to-end transfer between two nodes. */
struct Message {
    int src = -1;            ///< source node vertex
    int dst = -1;            ///< destination node vertex
    std::uint64_t bytes = 0; ///< payload bytes
    std::vector<int> route;  ///< channel path src→dst (never empty
                             ///< when handed to a backend)
    int flow_id = -1;        ///< tree/chunk id (Fig. 8d Tree Info)
    std::uint64_t tag = 0;   ///< opaque NI cookie
};

/** Delivery callback: invoked at the arrival tick of the tail flit. */
using DeliverFn = std::function<void(const Message &)>;

/** Parameters shared by both backends (Table III defaults). */
struct NetworkConfig {
    /** Flow control on every wire (MultiTreeMsg sets MessageBased). */
    FlowControlMode mode = FlowControlMode::PacketBased;
    std::uint32_t flit_bytes = kFlitBytes;
    std::uint32_t packet_payload = kPacketPayloadBytes;
    std::uint32_t link_latency = kLinkLatency;   ///< cycles
    std::uint32_t router_pipeline = 3;           ///< cycles per hop
    std::uint32_t num_vcs = kNumVCs;
    std::uint32_t vc_buffer_depth = kVCBufferDepth;
};

/** Which transport model executes a schedule. */
enum class BackendKind {
    Flow, ///< fast per-channel serialization model
    Flit, ///< cycle-level VC router simulation
};

/**
 * Abstract transport. A backend is constructed once per fabric and
 * reused across collectives: reset() returns it to its
 * just-constructed state (empty buffers, full credits, zeroed
 * statistics) so a persistent runtime::Machine can replay runs
 * bit-identically.
 */
class Network
{
  public:
    explicit Network(sim::EventQueue &eq, NetworkConfig cfg)
        : eq_(eq), cfg_(cfg)
    {}
    virtual ~Network() = default;

    /** Queue @p msg for transmission starting at the current tick. */
    void
    inject(Message msg)
    {
        ++injected_;
        injectImpl(std::move(msg));
    }

    /** Register the delivery sink (one per simulation). */
    void onDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /** The event queue driving this network. */
    sim::EventQueue &eventQueue() { return eq_; }

    /** Configuration in effect. */
    const NetworkConfig &config() const { return cfg_; }

    /**
     * Switch the wire flow-control flavor for subsequent injections.
     * Safe only while the fabric is quiescent(); lets one fabric
     * serve both packet- and message-based collectives.
     */
    void setFlowControlMode(FlowControlMode mode) { cfg_.mode = mode; }

    /** Aggregate transport statistics (flits, head flits, stalls…). */
    const StatRegistry &stats() const { return stats_; }

    /** Messages injected over the current epoch. */
    std::uint64_t injected() const { return injected_; }

    /** Messages delivered over the current epoch. */
    std::uint64_t delivered() const { return delivered_; }

    /** Whether every injected message has been delivered. */
    bool quiescent() const { return injected_ == delivered_; }

    /**
     * Return the fabric to its just-constructed state: clear all
     * statistics and transient transport state. @pre quiescent() and
     * no transport events pending in the event queue — i.e. call only
     * between runs, after the queue has drained.
     */
    virtual void reset();

  protected:
    /** Backend transmission entry point. */
    virtual void injectImpl(Message msg) = 0;

    /** Deliver @p msg to the registered sink, counting it. */
    void deliverMsg(const Message &msg);

    sim::EventQueue &eq_;
    NetworkConfig cfg_;
    DeliverFn deliver_;
    StatRegistry stats_;
    std::uint64_t injected_ = 0;
    std::uint64_t delivered_ = 0;
};

/**
 * Construct the @p kind transport over @p topo, driven by @p eq.
 * The single place backend selection happens; the runtime's Machine
 * and any bespoke harness share it.
 */
std::unique_ptr<Network> makeNetwork(BackendKind kind,
                                     sim::EventQueue &eq,
                                     const topo::Topology &topo,
                                     const NetworkConfig &cfg = {});

} // namespace multitree::net

#endif // MULTITREE_NET_NETWORK_HH
