/**
 * @file
 * Abstract network interface shared by the two simulation backends.
 *
 * The co-designed NI engine (src/ni) injects Messages and receives
 * delivery callbacks; it never cares whether the transport underneath
 * is the cycle-level flit simulator or the fast flow-level model.
 * Both backends are driven by the same sim::EventQueue.
 */

#ifndef MULTITREE_NET_NETWORK_HH
#define MULTITREE_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"

namespace multitree::sim {
class EventQueue;
} // namespace multitree::sim

namespace multitree::net {

/** Flow-control flavor on the wire (§IV-B, Fig. 7). */
enum class FlowControlMode {
    /** Conventional packets: a head flit per 256 B payload packet. */
    PacketBased,
    /**
     * Message-based big-gradient flow control: one head flit for the
     * whole gradient message, sub-packets delimited by type bits that
     * ride existing flit framing (no extra flits).
     */
    MessageBased,
};

/** One end-to-end transfer between two nodes. */
struct Message {
    int src = -1;            ///< source node vertex
    int dst = -1;            ///< destination node vertex
    std::uint64_t bytes = 0; ///< payload bytes
    std::vector<int> route;  ///< channel path src→dst (never empty
                             ///< when handed to a backend)
    int flow_id = -1;        ///< tree/chunk id (Fig. 8d Tree Info)
    std::uint64_t tag = 0;   ///< opaque NI cookie
};

/** Delivery callback: invoked at the arrival tick of the tail flit. */
using DeliverFn = std::function<void(const Message &)>;

/** Parameters shared by both backends (Table III defaults). */
struct NetworkConfig {
    /** Flow control on every wire (MultiTreeMsg sets MessageBased). */
    FlowControlMode mode = FlowControlMode::PacketBased;
    std::uint32_t flit_bytes = kFlitBytes;
    std::uint32_t packet_payload = kPacketPayloadBytes;
    std::uint32_t link_latency = kLinkLatency;   ///< cycles
    std::uint32_t router_pipeline = 3;           ///< cycles per hop
    std::uint32_t num_vcs = kNumVCs;
    std::uint32_t vc_buffer_depth = kVCBufferDepth;
};

/** Abstract transport. */
class Network
{
  public:
    explicit Network(sim::EventQueue &eq, NetworkConfig cfg)
        : eq_(eq), cfg_(cfg)
    {}
    virtual ~Network() = default;

    /** Queue @p msg for transmission starting at the current tick. */
    virtual void inject(Message msg) = 0;

    /** Register the delivery sink (one per simulation). */
    void onDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /** The event queue driving this network. */
    sim::EventQueue &eventQueue() { return eq_; }

    /** Configuration in effect. */
    const NetworkConfig &config() const { return cfg_; }

    /** Aggregate transport statistics (flits, head flits, stalls…). */
    const StatRegistry &stats() const { return stats_; }

  protected:
    sim::EventQueue &eq_;
    NetworkConfig cfg_;
    DeliverFn deliver_;
    StatRegistry stats_;
};

} // namespace multitree::net

#endif // MULTITREE_NET_NETWORK_HH
