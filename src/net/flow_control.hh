/**
 * @file
 * Wire-level flow-control accounting (§II-C Fig. 2 and §IV-B).
 *
 * Conventional packet-based switching splits a gradient transfer into
 * packets of `packet_payload` bytes, each led by a head flit that
 * carries routing metadata: 64-256 B payloads with 16 B flits cost
 * 6-25% of the link bandwidth in heads (Fig. 2). The co-designed
 * message-based flow control sends the whole gradient as one message
 * whose sub-packets reuse the flit Type field for framing, so only a
 * single head flit is spent per message.
 */

#ifndef MULTITREE_NET_FLOW_CONTROL_HH
#define MULTITREE_NET_FLOW_CONTROL_HH

#include <cstdint>

#include "net/network.hh"

namespace multitree::net {

/** Flit census of one transfer on the wire. */
struct WireBreakdown {
    std::uint64_t payload_flits = 0; ///< flits carrying gradient data
    std::uint64_t head_flits = 0;    ///< flits spent on packet heads
    std::uint64_t total_flits = 0;   ///< payload + heads
};

/**
 * Compute the wire flit breakdown of a @p bytes transfer under
 * @p mode with flit/packet sizes from @p cfg.
 */
WireBreakdown wireBreakdown(std::uint64_t bytes, FlowControlMode mode,
                            const NetworkConfig &cfg);

/**
 * Head-flit bandwidth overhead fraction for a given packet payload
 * size: head_flits / total_flits. Fig. 2 evaluates payloads of
 * 64-256 bytes with 16-byte flits.
 */
double headFlitOverhead(std::uint32_t payload_bytes,
                        std::uint32_t flit_bytes);

} // namespace multitree::net

#endif // MULTITREE_NET_FLOW_CONTROL_HH
