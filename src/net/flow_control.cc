#include "net/flow_control.hh"

#include "common/logging.hh"

namespace multitree::net {

WireBreakdown
wireBreakdown(std::uint64_t bytes, FlowControlMode mode,
              const NetworkConfig &cfg)
{
    WireBreakdown wb;
    wb.payload_flits = ceilDiv(bytes, cfg.flit_bytes);
    if (wb.payload_flits == 0)
        wb.payload_flits = 1; // a zero-byte message still moves a flit
    switch (mode) {
      case FlowControlMode::PacketBased:
        wb.head_flits = ceilDiv(bytes, cfg.packet_payload);
        if (wb.head_flits == 0)
            wb.head_flits = 1;
        break;
      case FlowControlMode::MessageBased:
        wb.head_flits = 1;
        break;
    }
    wb.total_flits = wb.payload_flits + wb.head_flits;
    return wb;
}

double
headFlitOverhead(std::uint32_t payload_bytes, std::uint32_t flit_bytes)
{
    MT_ASSERT(payload_bytes > 0 && flit_bytes > 0,
              "degenerate packet shape");
    double payload_flits =
        static_cast<double>(ceilDiv(payload_bytes, flit_bytes));
    return 1.0 / (payload_flits + 1.0);
}

} // namespace multitree::net
