#include "net/network.hh"

#include "common/logging.hh"
#include "net/flit_network.hh"
#include "net/flow_network.hh"

namespace multitree::net {

void
Network::reset()
{
    MT_ASSERT(quiescent(), "network reset with ",
              injected_ - delivered_, " messages in flight");
    stats_.clear();
    injected_ = 0;
    delivered_ = 0;
}

void
Network::deliverMsg(const Message &msg)
{
    MT_ASSERT(deliver_, "no delivery sink registered");
    ++delivered_;
    deliver_(msg);
}

std::unique_ptr<Network>
makeNetwork(BackendKind kind, sim::EventQueue &eq,
            const topo::Topology &topo, const NetworkConfig &cfg)
{
    switch (kind) {
      case BackendKind::Flow:
        return std::make_unique<FlowNetwork>(eq, topo, cfg);
      case BackendKind::Flit:
        return std::make_unique<FlitNetwork>(eq, topo, cfg);
    }
    MT_FATAL("unknown network backend kind");
}

} // namespace multitree::net
