#include "net/network.hh"

#include <sstream>

#include "common/logging.hh"
#include "net/flit_network.hh"
#include "net/flow_control.hh"
#include "net/flow_network.hh"
#include "obs/profile.hh"
#include "sim/event_queue.hh"

namespace multitree::net {

void
Network::emitMsgEvent(obs::EventKind kind, const Message &msg,
                      Tick duration)
{
    obs::TraceEvent ev;
    ev.kind = kind;
    ev.tick = eq_.now();
    ev.duration = duration;
    ev.node = msg.src;
    ev.peer = msg.dst;
    ev.flow = msg.flow_id;
    ev.bytes = msg.bytes;
    ev.tag = msg.tag;
    ev.seq = msg.seq;
    ev.attempt = msg.attempt;
    ev.corrupted = msg.corrupted;
    ev.phase = msg.phase;
    sink_->onEvent(ev);
}

void
Network::inject(Message msg)
{
    ++injected_;
    if (sink_ != nullptr)
        emitMsgEvent(obs::EventKind::MsgInject, msg);
    if (fault_ != nullptr) {
        const FaultFate fate = fault_->onInject(msg, eq_.now());
        if (fate.drop) {
            // Lost in transit: never reaches the backend. The
            // reliability layer's retransmission timer (if any) is
            // the only thing that will resurrect it.
            ++dropped_;
            ++drops_by_src_[msg.src];
            stats_.inc("dropped_messages");
            if (sink_ != nullptr)
                emitMsgEvent(obs::EventKind::MsgDrop, msg);
            return;
        }
        if (fate.corrupt) {
            msg.corrupted = true;
            ++corruptions_by_src_[msg.src];
            stats_.inc("corrupted_messages");
            if (sink_ != nullptr)
                emitMsgEvent(obs::EventKind::MsgCorrupt, msg);
        }
        msg.fault_delay = fate.extra_latency;
        if (fate.extra_latency > 0)
            stats_.inc("degraded_messages");
    }
    msg.track_id = ++next_track_id_;
    in_flight_msgs_.emplace(msg.track_id,
                            InFlightRecord{msg, eq_.now()});
    for (int cid : msg.route) {
        const auto c = static_cast<std::size_t>(cid);
        if (c >= backlog_.size())
            backlog_.resize(c + 1, 0);
        backlog_[c] += msg.bytes;
    }
    if (prof_ != nullptr) {
        const auto wb = wireBreakdown(msg.bytes, cfg_.mode, cfg_);
        prof_->onInject(msg.track_id, msg.src, msg.dst, msg.flow_id,
                        msg.tag, msg.bytes,
                        static_cast<int>(msg.route.size()),
                        wb.total_flits, msg.phase, eq_.now());
    }
    injectImpl(std::move(msg));
}

void
Network::reset()
{
    MT_ASSERT(quiescent(), "network reset with ",
              injected_ - delivered_ - dropped_,
              " messages in flight");
    stats_.clear();
    injected_ = 0;
    delivered_ = 0;
    dropped_ = 0;
    drops_by_src_.clear();
    corruptions_by_src_.clear();
    in_flight_msgs_.clear();
    delivered_ids_.clear();
    backlog_.clear();
}

void
Network::deliverMsg(const Message &msg)
{
    MT_ASSERT(deliver_, "no delivery sink registered");
    if (msg.fault_delay > 0) {
        // Degraded links charge their extra latency end to end: the
        // backend finished the healthy-wire simulation, the residual
        // shows up as a later delivery tick.
        Message delayed = msg;
        delayed.fault_delay = 0;
        eq_.scheduleAfter(msg.fault_delay,
                          [this, delayed = std::move(delayed)] {
                              deliverMsg(delayed);
                          });
        return;
    }
    ++delivered_;
    // Relieve the per-channel backlog along the route the message
    // was actually injected with (the in-flight record is
    // authoritative; backends may hand back trimmed copies).
    if (auto it = in_flight_msgs_.find(msg.track_id);
        it != in_flight_msgs_.end()) {
        for (int cid : it->second.msg.route) {
            auto &b = backlog_[static_cast<std::size_t>(cid)];
            MT_ASSERT(b >= it->second.msg.bytes,
                      "channel backlog underflow on channel ", cid);
            b -= it->second.msg.bytes;
        }
    }
    in_flight_msgs_.erase(msg.track_id);
    delivered_ids_.insert({msg.src, msg.seq, msg.tag});
    if (prof_ != nullptr)
        prof_->onDeliver(msg.track_id, eq_.now());
    if (sink_ != nullptr)
        emitMsgEvent(obs::EventKind::MsgDeliver, msg);
    deliver_(msg);
}

bool
Network::dataInFlight(int src, std::uint64_t seq,
                      std::uint64_t tag) const
{
    for (const auto &[id, rec] : in_flight_msgs_) {
        if (rec.msg.src == src && rec.msg.seq == seq
            && rec.msg.tag == tag) {
            return true;
        }
    }
    return false;
}

std::string
Network::describeInFlight(std::size_t max_items) const
{
    if (in_flight_msgs_.empty())
        return {};
    std::ostringstream oss;
    oss << in_flight_msgs_.size() << " message(s) in flight:\n";
    std::size_t shown = 0;
    for (const auto &[id, rec] : in_flight_msgs_) {
        if (shown++ == max_items) {
            oss << "  ... " << (in_flight_msgs_.size() - max_items)
                << " more\n";
            break;
        }
        const Message &m = rec.msg;
        oss << "  msg " << m.src << "->" << m.dst << " flow "
            << m.flow_id << " tag " << m.tag << " seq " << m.seq
            << " attempt " << m.attempt << " bytes " << m.bytes
            << " injected at tick " << rec.injected_at << "\n";
    }
    return oss.str();
}

std::unique_ptr<Network>
makeNetwork(BackendKind kind, sim::EventQueue &eq,
            const topo::Topology &topo, const NetworkConfig &cfg)
{
    switch (kind) {
      case BackendKind::Flow:
        return std::make_unique<FlowNetwork>(eq, topo, cfg);
      case BackendKind::Flit:
        return std::make_unique<FlitNetwork>(eq, topo, cfg);
    }
    MT_FATAL("unknown network backend kind");
}

} // namespace multitree::net
