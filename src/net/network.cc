#include "net/network.hh"

#include <sstream>

#include "common/logging.hh"
#include "net/flit_network.hh"
#include "net/flow_control.hh"
#include "net/flow_network.hh"
#include "obs/profile.hh"
#include "sim/event_queue.hh"
#include "topo/topology.hh"

namespace multitree::net {

void
Network::emitMsgEvent(obs::EventKind kind, const Message &msg,
                      Tick duration)
{
    obs::TraceEvent ev;
    ev.kind = kind;
    ev.tick = eq_.now();
    ev.duration = duration;
    ev.node = msg.src;
    ev.peer = msg.dst;
    ev.flow = msg.flow_id;
    ev.bytes = msg.bytes;
    ev.tag = msg.tag;
    ev.seq = msg.seq;
    ev.attempt = msg.attempt;
    ev.corrupted = msg.corrupted;
    ev.phase = msg.phase;
    sink_->onEvent(ev);
}

const char *
inNetworkModeName(InNetworkMode mode)
{
    switch (mode) {
      case InNetworkMode::Off:             return "off";
      case InNetworkMode::Multicast:       return "mcast";
      case InNetworkMode::MulticastReduce: return "mcast+reduce";
    }
    return "?";
}

void
Network::inject(Message msg)
{
    if (!msg.mcast_dsts.empty()) {
        MT_ASSERT(cfg_.in_network != InNetworkMode::Off,
                  "multicast injection with in-network support off");
        injectMulticast(std::move(msg));
        return;
    }
    ++injected_;
    if (sink_ != nullptr)
        emitMsgEvent(obs::EventKind::MsgInject, msg);
    if (fault_ != nullptr) {
        const FaultFate fate = fault_->onInject(msg, eq_.now());
        if (fate.drop) {
            // Lost in transit: never reaches the backend. The
            // reliability layer's retransmission timer (if any) is
            // the only thing that will resurrect it.
            ++dropped_;
            ++drops_by_src_[msg.src];
            stats_.inc("dropped_messages");
            if (sink_ != nullptr)
                emitMsgEvent(obs::EventKind::MsgDrop, msg);
            return;
        }
        if (fate.corrupt) {
            msg.corrupted = true;
            ++corruptions_by_src_[msg.src];
            stats_.inc("corrupted_messages");
            if (sink_ != nullptr)
                emitMsgEvent(obs::EventKind::MsgCorrupt, msg);
        }
        msg.fault_delay = fate.extra_latency;
        if (fate.extra_latency > 0)
            stats_.inc("degraded_messages");
    }
    msg.track_id = ++next_track_id_;
    in_flight_msgs_.emplace(msg.track_id,
                            InFlightRecord{msg, eq_.now()});
    for (int cid : msg.route) {
        const auto c = static_cast<std::size_t>(cid);
        if (c >= backlog_.size())
            backlog_.resize(c + 1, 0);
        backlog_[c] += msg.bytes;
    }
    if (prof_ != nullptr) {
        const auto wb = wireBreakdown(msg.bytes, cfg_.mode, cfg_);
        prof_->onInject(msg.track_id, msg.src, msg.dst, msg.flow_id,
                        msg.tag, msg.bytes,
                        static_cast<int>(msg.route.size()),
                        wb.total_flits, msg.phase, eq_.now());
    }
    // Switch-resident reduction: an annotated, healthy contribution
    // detours through the combining buffer at its combine vertex. A
    // corrupted copy skips the combiner — it must reach the parent
    // NIC individually so checksum discard and retransmission keep
    // their exact unicast semantics. A route whose final hop no
    // longer leaves the annotated vertex (self-healing repair) has
    // left its siblings' convergence point and degrades to unicast.
    if (msg.combine_at >= 0
        && cfg_.in_network == InNetworkMode::MulticastReduce
        && !msg.corrupted && msg.route.size() >= 2
        && topo_.channel(msg.route.back()).src == msg.combine_at) {
        injectCombining(std::move(msg));
        return;
    }
    injectImpl(std::move(msg));
}

void
Network::reset()
{
    MT_ASSERT(quiescent(), "network reset with ",
              injected_ - delivered_ - dropped_,
              " messages in flight");
    stats_.clear();
    injected_ = 0;
    delivered_ = 0;
    dropped_ = 0;
    drops_by_src_.clear();
    corruptions_by_src_.clear();
    in_flight_msgs_.clear();
    delivered_ids_.clear();
    backlog_.clear();
    MT_ASSERT(mcast_groups_.empty() && mcast_segments_.empty()
                  && combine_legs_.empty() && combined_out_.empty()
                  && combine_groups_.empty(),
              "network reset with in-network state still live");
    combine_open_.clear();
    combine_done_.clear();
    combine_fallback_.clear();
    combiner_.clear();
    next_internal_id_ = 0;
}

void
Network::deliverMsg(const Message &msg)
{
    // Internal transport legs never reach the sink directly: a
    // replication-tree segment re-injects (or finishes) its branches
    // and a combining leg feeds the switch ALU model.
    if (msg.mcast_segment != 0) {
        onSegmentArrival(msg);
        return;
    }
    if (msg.combine_token != 0) {
        if (combine_legs_.count(msg.combine_token) != 0)
            onCombineArrival(msg);
        else
            onCombinedArrival(msg);
        return;
    }
    MT_ASSERT(deliver_, "no delivery sink registered");
    if (msg.fault_delay > 0) {
        // Degraded links charge their extra latency end to end: the
        // backend finished the healthy-wire simulation, the residual
        // shows up as a later delivery tick.
        Message delayed = msg;
        delayed.fault_delay = 0;
        eq_.scheduleAfter(msg.fault_delay,
                          [this, delayed = std::move(delayed)] {
                              deliverMsg(delayed);
                          });
        return;
    }
    ++delivered_;
    // Relieve the per-channel backlog along the route the message
    // was actually injected with (the in-flight record is
    // authoritative; backends may hand back trimmed copies).
    if (auto it = in_flight_msgs_.find(msg.track_id);
        it != in_flight_msgs_.end()) {
        for (int cid : it->second.msg.route) {
            auto &b = backlog_[static_cast<std::size_t>(cid)];
            MT_ASSERT(b >= it->second.msg.bytes,
                      "channel backlog underflow on channel ", cid);
            b -= it->second.msg.bytes;
        }
    }
    in_flight_msgs_.erase(msg.track_id);
    delivered_ids_.insert({msg.src, msg.seq, msg.tag});
    if (prof_ != nullptr)
        prof_->onDeliver(msg.track_id, eq_.now());
    if (sink_ != nullptr)
        emitMsgEvent(obs::EventKind::MsgDeliver, msg);
    deliver_(msg);
}

void
Network::injectMulticast(Message msg)
{
    MT_ASSERT(msg.mcast_dsts.size() >= 2
                  && msg.mcast_dsts.size() == msg.mcast_routes.size(),
              "malformed multicast injection from node ", msg.src);
    MT_ASSERT(msg.dst == msg.mcast_dsts.front(),
              "multicast primary dst mismatch");
    const std::uint64_t gid = ++next_internal_id_;
    McastGroup group;
    group.branches.reserve(msg.mcast_dsts.size());
    // Every branch is accounted exactly like the unicast it replaces
    // — its own injection count, fault ruling, census record, backlog
    // charge and profiler record — so quiescence, suspect ranking and
    // the reliability layer's census evidence are unchanged. Only the
    // wire work is shared.
    for (std::size_t b = 0; b < msg.mcast_dsts.size(); ++b) {
        Message br = msg;
        br.mcast_dsts.clear();
        br.mcast_routes.clear();
        br.combine_at = -1;
        br.combine_peers = 0;
        br.dst = msg.mcast_dsts[b];
        br.route = msg.mcast_routes[b];
        MT_ASSERT(!br.route.empty(),
                  "multicast branch without an explicit route");
        ++injected_;
        if (sink_ != nullptr)
            emitMsgEvent(obs::EventKind::MsgInject, br);
        if (fault_ != nullptr) {
            const FaultFate fate = fault_->onInject(br, eq_.now());
            if (fate.drop) {
                ++dropped_;
                ++drops_by_src_[br.src];
                stats_.inc("dropped_messages");
                if (sink_ != nullptr)
                    emitMsgEvent(obs::EventKind::MsgDrop, br);
                continue;
            }
            if (fate.corrupt) {
                br.corrupted = true;
                ++corruptions_by_src_[br.src];
                stats_.inc("corrupted_messages");
                if (sink_ != nullptr)
                    emitMsgEvent(obs::EventKind::MsgCorrupt, br);
            }
            br.fault_delay = fate.extra_latency;
            if (fate.extra_latency > 0)
                stats_.inc("degraded_messages");
        }
        br.track_id = ++next_track_id_;
        in_flight_msgs_.emplace(br.track_id,
                                InFlightRecord{br, eq_.now()});
        for (int cid : br.route) {
            const auto c = static_cast<std::size_t>(cid);
            if (c >= backlog_.size())
                backlog_.resize(c + 1, 0);
            backlog_[c] += br.bytes;
        }
        if (prof_ != nullptr) {
            const auto wb =
                wireBreakdown(br.bytes, cfg_.mode, cfg_);
            prof_->onInject(br.track_id, br.src, br.dst, br.flow_id,
                            br.tag, br.bytes,
                            static_cast<int>(br.route.size()),
                            wb.total_flits, br.phase, eq_.now());
            prof_->onMcastRole(br.track_id, obs::McastRole::Branch);
        }
        group.branches.push_back(McastBranch{std::move(br), 0});
    }
    if (group.branches.empty())
        return; // every branch dropped at injection
    group.remaining = group.branches.size();
    stats_.inc("mcast_injections");
    auto [it, inserted] = mcast_groups_.emplace(gid, std::move(group));
    std::vector<std::size_t> all(it->second.branches.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    launchSegments(gid, all, 0);
}

void
Network::launchSegments(std::uint64_t gid,
                        const std::vector<std::size_t> &idx,
                        Tick offset)
{
    auto &g = mcast_groups_.at(gid);
    // Partition the branches standing at this vertex by their next
    // channel: each partition shares one copy of the flit stream
    // until its routes diverge again.
    std::map<int, std::vector<std::size_t>> by_next;
    for (std::size_t i : idx) {
        const auto &br = g.branches[i];
        by_next[br.msg.route[br.hops_done]].push_back(i);
    }
    for (const auto &[next_cid, members] : by_next) {
        const auto &first = g.branches[members.front()];
        std::size_t prefix =
            first.msg.route.size() - first.hops_done;
        for (std::size_t i : members) {
            const auto &br = g.branches[i];
            const std::size_t len =
                br.msg.route.size() - br.hops_done;
            std::size_t common = 0;
            while (common < prefix && common < len
                   && br.msg.route[br.hops_done + common]
                          == first.msg.route[first.hops_done
                                             + common]) {
                ++common;
            }
            prefix = common;
        }
        MT_ASSERT(prefix >= 1, "empty multicast segment");

        const std::uint64_t sid = ++next_internal_id_;
        Message seg;
        seg.bytes = first.msg.bytes;
        seg.flow_id = first.msg.flow_id;
        seg.tag = first.msg.tag;
        seg.phase = first.msg.phase;
        seg.seq = first.msg.seq;
        seg.attempt = first.msg.attempt;
        seg.src = first.hops_done == 0
                      ? first.msg.src
                      : topo_.channel(first.msg.route[first.hops_done
                                                      - 1])
                            .dst;
        seg.route.assign(first.msg.route.begin()
                             + static_cast<std::ptrdiff_t>(
                                 first.hops_done),
                         first.msg.route.begin()
                             + static_cast<std::ptrdiff_t>(
                                 first.hops_done + prefix));
        seg.dst = topo_.channel(seg.route.back()).dst;
        seg.mcast_segment = sid;
        // A single-branch segment is the branch's terminal wire leg:
        // it carries the branch's registered track id so the
        // profiler's flit milestones (injection start at the last
        // replication point, head arrival at the destination) land on
        // the branch record. Shared segments use fresh ids the
        // profiler never registered, so their milestones no-op.
        seg.track_id = members.size() == 1
                           ? g.branches[members.front()].msg.track_id
                           : ++next_track_id_;
        stats_.inc("mcast_segments");

        // Advance every member past this segment; the ones whose
        // route ends at its tail are delivered by its arrival, the
        // rest continue in the deeper segments pre-launched below.
        std::vector<std::size_t> terminal;
        std::vector<std::size_t> cont;
        for (std::size_t i : members) {
            auto &br = g.branches[i];
            br.hops_done += prefix;
            MT_ASSERT(br.hops_done <= br.msg.route.size(),
                      "multicast branch overshot its route");
            if (br.hops_done == br.msg.route.size())
                terminal.push_back(i);
            else
                cont.push_back(i);
        }
        ++g.segments_open;
        mcast_segments_.emplace(sid,
                                McastSegment{gid, terminal});
        if (offset == 0) {
            injectImpl(std::move(seg));
        } else {
            eq_.scheduleAfter(offset,
                              [this, seg = std::move(seg)]() mutable {
                                  injectImpl(std::move(seg));
                              });
        }
        // Cut-through replication: the downstream segment starts one
        // upstream head latency later, overlapping serialization.
        if (!cont.empty()) {
            const Tick head =
                static_cast<Tick>(prefix)
                * (cfg_.link_latency + cfg_.router_pipeline);
            launchSegments(gid, cont, offset + head);
        }
    }
}

void
Network::onSegmentArrival(const Message &msg)
{
    auto it = mcast_segments_.find(msg.mcast_segment);
    MT_ASSERT(it != mcast_segments_.end(),
              "unknown multicast segment ", msg.mcast_segment);
    const McastSegment seg = std::move(it->second);
    mcast_segments_.erase(it);
    auto git = mcast_groups_.find(seg.group);
    MT_ASSERT(git != mcast_groups_.end(), "orphan multicast segment");
    auto &g = git->second;
    MT_ASSERT(g.segments_open > 0, "segment count underflow");
    --g.segments_open;
    for (std::size_t i : seg.branch_idx) {
        Message fin = std::move(g.branches[i].msg);
        --g.remaining;
        deliverMsg(fin);
    }
    if (g.remaining == 0 && g.segments_open == 0)
        mcast_groups_.erase(git);
}

void
Network::injectCombining(Message msg)
{
    MT_ASSERT(topo_.channel(msg.route.back()).src == msg.combine_at,
              "combine vertex ", msg.combine_at,
              " is not the source of the route's final channel");
    MT_ASSERT(msg.combine_peers >= 2,
              "combining annotation without siblings");
    if (prof_ != nullptr)
        prof_->onMcastRole(msg.track_id, obs::McastRole::Combine);
    const std::uint64_t token = ++next_internal_id_;
    Message leg = msg;
    leg.route.assign(msg.route.begin(), msg.route.end() - 1);
    leg.dst = msg.combine_at;
    leg.combine_token = token;
    leg.fault_delay = 0; // charged at the constituent's delivery
    combine_legs_.emplace(token, std::move(msg));
    injectImpl(std::move(leg));
}

void
Network::onCombineArrival(const Message &msg)
{
    auto it = combine_legs_.find(msg.combine_token);
    MT_ASSERT(it != combine_legs_.end(), "unknown combining leg");
    Message orig = std::move(it->second);
    combine_legs_.erase(it);

    const int v = orig.combine_at;
    const CombineKey key{v, orig.dst, orig.flow_id};
    auto &cs = combiner_[v];
    // Completed or fallen-back keys forward individually forever:
    // stragglers and retransmits must reach the parent NIC, whose
    // duplicate filter re-acks them.
    if (combine_done_.count(key) != 0
        || combine_fallback_.count(key) != 0) {
        forwardIndividually(std::move(orig));
        return;
    }
    auto git = combine_groups_.find(key);
    if (git == combine_groups_.end()) {
        auto &open = combine_open_[v];
        if (open >= cfg_.combiner_entries) {
            // Capacity exhausted: the fallback is latched at the
            // group-creation attempt, so the choice is a pure
            // function of arrival order — deterministic across
            // schedulers and thread counts.
            combine_fallback_.insert(key);
            ++cs.fallbacks;
            stats_.inc("combiner_fallbacks");
            forwardIndividually(std::move(orig));
            return;
        }
        ++open;
        cs.open_now = open;
        cs.peak_open = std::max(cs.peak_open, open);
        ++cs.groups_opened;
        git = combine_groups_.emplace(key, CombineGroup{}).first;
        git->second.peers = orig.combine_peers;
        git->second.last_channel = orig.route.back();
    }
    auto &grp = git->second;
    if (!grp.srcs.insert(orig.src).second) {
        // A retransmitted copy of an already-absorbed contribution:
        // its sibling may be lost for good, so holding the group any
        // longer risks wedging the fabric. Dissolve — forward every
        // absorbed contribution (and this copy) individually and
        // latch the key to unicast.
        ++cs.dissolved;
        stats_.inc("combiner_dissolved");
        combine_fallback_.insert(key);
        std::vector<Message> held = std::move(grp.held);
        combine_groups_.erase(git);
        auto &open = combine_open_[v];
        MT_ASSERT(open > 0, "combiner occupancy underflow");
        --open;
        cs.open_now = open;
        for (auto &h : held)
            forwardIndividually(std::move(h));
        forwardIndividually(std::move(orig));
        return;
    }
    ++cs.absorbed;
    stats_.inc("combiner_absorbed");
    grp.held.push_back(std::move(orig));
    if (grp.srcs.size() < grp.peers)
        return; // keep holding for the remaining siblings
    // Group complete: one ALU pass, then a single combined stream
    // over the final hop carries every constituent to the parent.
    CombineGroup done = std::move(grp);
    combine_groups_.erase(git);
    auto &open = combine_open_[v];
    MT_ASSERT(open > 0, "combiner occupancy underflow");
    --open;
    cs.open_now = open;
    ++cs.combined;
    combine_done_.insert(key);
    stats_.inc("combiner_groups");
    stats_.inc("combiner_alu_flits",
               static_cast<double>(
                   static_cast<std::uint64_t>(done.held.size())
                   * bytesToFlits(done.held.front().bytes)));
    const std::uint64_t token = ++next_internal_id_;
    Message out;
    out.src = v;
    out.dst = done.held.front().dst;
    out.bytes = done.held.front().bytes;
    out.route.assign(1, done.last_channel);
    out.flow_id = done.held.front().flow_id;
    out.tag = done.held.front().tag;
    out.phase = done.held.front().phase;
    out.combine_token = token;
    out.track_id = ++next_track_id_; // unregistered: internal leg
    combined_out_.emplace(token, std::move(done.held));
    eq_.scheduleAfter(cfg_.combiner_latency,
                      [this, out = std::move(out)]() mutable {
                          injectImpl(std::move(out));
                      });
}

void
Network::forwardIndividually(Message msg)
{
    const std::uint64_t token = ++next_internal_id_;
    Message leg;
    leg.src = msg.combine_at;
    leg.dst = msg.dst;
    leg.bytes = msg.bytes;
    leg.route.assign(1, msg.route.back());
    leg.flow_id = msg.flow_id;
    leg.tag = msg.tag;
    leg.phase = msg.phase;
    leg.seq = msg.seq;
    leg.attempt = msg.attempt;
    leg.combine_token = token;
    leg.track_id = ++next_track_id_; // unregistered: internal leg
    combined_out_.emplace(token,
                          std::vector<Message>{std::move(msg)});
    injectImpl(std::move(leg));
}

void
Network::onCombinedArrival(const Message &msg)
{
    auto it = combined_out_.find(msg.combine_token);
    MT_ASSERT(it != combined_out_.end(), "unknown combined leg");
    std::vector<Message> held = std::move(it->second);
    combined_out_.erase(it);
    // One wire arrival fans out into a full per-constituent delivery
    // — same tick, original message fields — so the NI engine, the
    // reliability layer and the data-plane oracle see exactly the
    // unicast receive contract.
    for (auto &orig : held) {
        orig.combine_at = -1;
        orig.combine_peers = 0;
        deliverMsg(orig);
    }
}

std::uint64_t
Network::combinerOpenCount() const
{
    std::uint64_t total = 0;
    for (const auto &[v, n] : combine_open_)
        total += n;
    return total;
}

std::uint64_t
Network::combinerFallbacks() const
{
    std::uint64_t total = 0;
    for (const auto &[v, cs] : combiner_)
        total += cs.fallbacks;
    return total;
}

void
Network::flushCombinerProfile()
{
    if (prof_ == nullptr)
        return;
    for (const auto &[v, cs] : combiner_) {
        prof_->noteCombiner(v, cs.groups_opened, cs.combined,
                            cs.absorbed, cs.fallbacks, cs.dissolved,
                            cs.peak_open);
    }
}

bool
Network::dataInFlight(int src, std::uint64_t seq,
                      std::uint64_t tag) const
{
    for (const auto &[id, rec] : in_flight_msgs_) {
        if (rec.msg.src == src && rec.msg.seq == seq
            && rec.msg.tag == tag) {
            return true;
        }
    }
    return false;
}

std::string
Network::describeInFlight(std::size_t max_items) const
{
    if (in_flight_msgs_.empty())
        return {};
    std::ostringstream oss;
    oss << in_flight_msgs_.size() << " message(s) in flight:\n";
    std::size_t shown = 0;
    for (const auto &[id, rec] : in_flight_msgs_) {
        if (shown++ == max_items) {
            oss << "  ... " << (in_flight_msgs_.size() - max_items)
                << " more\n";
            break;
        }
        const Message &m = rec.msg;
        oss << "  msg " << m.src << "->" << m.dst << " flow "
            << m.flow_id << " tag " << m.tag << " seq " << m.seq
            << " attempt " << m.attempt << " bytes " << m.bytes
            << " injected at tick " << rec.injected_at << "\n";
    }
    return oss.str();
}

std::unique_ptr<Network>
makeNetwork(BackendKind kind, sim::EventQueue &eq,
            const topo::Topology &topo, const NetworkConfig &cfg)
{
    switch (kind) {
      case BackendKind::Flow:
        return std::make_unique<FlowNetwork>(eq, topo, cfg);
      case BackendKind::Flit:
        return std::make_unique<FlitNetwork>(eq, topo, cfg);
    }
    MT_FATAL("unknown network backend kind");
}

} // namespace multitree::net
