#include "net/flow_network.hh"

#include <algorithm>

#include "common/logging.hh"
#include "net/flow_control.hh"
#include "obs/profile.hh"
#include "sim/event_queue.hh"
#include "topo/topology.hh"

namespace multitree::net {

FlowNetwork::FlowNetwork(sim::EventQueue &eq,
                         const topo::Topology &topo, NetworkConfig cfg)
    : Network(eq, topo, cfg),
      free_at_(static_cast<std::size_t>(topo.numChannels()), 0),
      busy_time_(static_cast<std::size_t>(topo.numChannels()), 0),
      queue_cycles_(static_cast<std::size_t>(topo.numChannels()), 0),
      channel_msgs_(static_cast<std::size_t>(topo.numChannels()), 0)
{
}

void
FlowNetwork::reset()
{
    Network::reset();
    std::fill(free_at_.begin(), free_at_.end(), 0);
    std::fill(busy_time_.begin(), busy_time_.end(), 0);
    std::fill(queue_cycles_.begin(), queue_cycles_.end(), 0);
    std::fill(channel_msgs_.begin(), channel_msgs_.end(), 0);
    max_queueing_ = 0;
}

void
FlowNetwork::flushProfile()
{
    if (prof_ == nullptr)
        return;
    for (std::size_t cid = 0; cid < busy_time_.size(); ++cid) {
        obs::ChannelProfile cp;
        // One flit reserves one cycle, so busy time doubles as the
        // flit count on this backend.
        cp.flits = static_cast<std::uint64_t>(busy_time_[cid]);
        cp.messages = channel_msgs_[cid];
        cp.busy = static_cast<std::uint64_t>(busy_time_[cid]);
        cp.queue = static_cast<std::uint64_t>(queue_cycles_[cid]);
        prof_->ingestChannel(static_cast<int>(cid), cp);
    }
    // No per-router arbitration exists at flow level; router
    // congestion in the heatmap derives from the channel loads.
    flushCombinerProfile();
}

void
FlowNetwork::sampleChannels(std::vector<std::uint64_t> &flits_cum,
                            std::vector<std::uint64_t> &queue_now) const
{
    const std::size_t n = busy_time_.size();
    flits_cum.assign(n, 0);
    queue_now.assign(n, 0);
    const Tick now = eq_.now();
    for (std::size_t cid = 0; cid < n; ++cid) {
        // Busy time doubles as the flit count on this backend (one
        // flit reserves one cycle).
        flits_cum[cid] = static_cast<std::uint64_t>(busy_time_[cid]);
        // Instantaneous queueing: how far the channel's reservation
        // horizon extends past the sample tick.
        if (free_at_[cid] > now) {
            queue_now[cid] =
                static_cast<std::uint64_t>(free_at_[cid] - now);
        }
    }
}

void
FlowNetwork::injectImpl(Message msg)
{
    MT_ASSERT(!msg.route.empty(), "flow network needs an explicit "
                                  "route for ", msg.src, "->", msg.dst);
    const auto wb = wireBreakdown(msg.bytes, cfg_.mode, cfg_);
    // One flit leaves per cycle: serialization time equals the wire
    // flit count.
    const Tick ser = wb.total_flits;
    const Tick hop = cfg_.link_latency + cfg_.router_pipeline;

    Tick head = eq_.now(); // head's arrival at the next channel
    Tick first_wait = 0;   // injection queueing on the first channel
    bool first_channel = true;
    for (int cid : msg.route) {
        auto idx = static_cast<std::size_t>(cid);
        Tick start = std::max(head, free_at_[idx]);
        max_queueing_ = std::max(max_queueing_, start - head);
        free_at_[idx] = start + ser;
        busy_time_[idx] += ser;
        if (prof_ != nullptr) {
            queue_cycles_[idx] += start - head;
            ++channel_msgs_[idx];
            if (first_channel)
                first_wait = start - head;
        }
        first_channel = false;
        if (sink_ != nullptr) {
            // Reservations are computed analytically at inject time,
            // so busy/queue spans carry their (future) start ticks.
            if (start > head) {
                obs::TraceEvent qe;
                qe.kind = obs::EventKind::MsgQueue;
                qe.tick = head;
                qe.duration = start - head;
                qe.node = msg.src;
                qe.peer = msg.dst;
                qe.channel = cid;
                qe.flow = msg.flow_id;
                qe.bytes = msg.bytes;
                sink_->onEvent(qe);
            }
            obs::TraceEvent be;
            be.kind = obs::EventKind::LinkBusy;
            be.tick = start;
            be.duration = ser;
            be.node = msg.src;
            be.peer = msg.dst;
            be.channel = cid;
            be.flow = msg.flow_id;
            be.bytes = msg.bytes;
            sink_->onEvent(be);
        }
        head = start + hop;
    }
    const Tick delivery = head + ser;

    if (prof_ != nullptr) {
        // Analytic attribution: first-channel wait is injection
        // queueing, per-hop pipeline+wire latency is head routing,
        // one serialization window drains the tail. The profiler
        // charges the residual (queueing at later hops, fault
        // delays) to credit stalls at delivery time.
        prof_->setAnalyticBreakdown(
            msg.track_id, first_wait,
            static_cast<Tick>(msg.route.size()) * hop, ser);
    }

    stats_.inc("messages");
    stats_.inc("payload_flits", static_cast<double>(wb.payload_flits));
    stats_.inc("head_flits", static_cast<double>(wb.head_flits));
    stats_.inc("flit_hops", static_cast<double>(wb.total_flits)
                                * static_cast<double>(msg.route.size()));
    stats_.inc("head_hops", static_cast<double>(wb.head_flits)
                                * static_cast<double>(msg.route.size()));

    eq_.scheduleAt(delivery,
                   [this, msg = std::move(msg)] { deliverMsg(msg); });
}

} // namespace multitree::net
