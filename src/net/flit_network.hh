/**
 * @file
 * Cycle-level flit network simulator (the BookSim-like substrate).
 *
 * Every topology channel is a 16-byte-per-cycle link with 150-cycle
 * traversal latency. Each vertex hosts a router with per-input-port
 * virtual-channel buffers, credit-based flow control, per-packet VC
 * allocation and per-cycle round-robin switch allocation. Messages
 * are source-routed along their explicit channel path (MultiTree's
 * co-design, §IV-B); a packet must win an output VC at every hop and
 * then streams flit by flit while credits last.
 *
 * Modeling notes (documented deviations from a full BookSim):
 *  - A message travels as one VC-holding stream; in packet-based
 *    mode its wire length includes one head flit per 256 B packet
 *    (the Fig. 2 overhead), but per-packet re-arbitration is folded
 *    into VC-level interleaving. Bandwidth and contention behavior —
 *    what the paper's figures measure — are preserved.
 *  - Head flits use a virtual cut-through credit check
 *    (min(packet flits, buffer depth) credits before launch); body
 *    flits stream with per-flit credits.
 *  - Torus deadlock freedom uses dateline VC classes: a packet may
 *    use the lower half of the VCs before its route crosses a wrap
 *    channel and the upper half after.
 *  - Ejection matches the paper's assumption that NI bandwidth equals
 *    router bandwidth: every input port can sink one flit per cycle
 *    at the destination.
 *
 * Scheduling (DESIGN.md §"Simulator performance"): the tick loop is
 * active-set driven. Routers register into a worklist when they hold
 * buffered flits, pending injections or a draining injection slot,
 * and only listed routers are evaluated each cycle; when no router
 * has work but flits are mid-wire, the loop fast-forwards straight
 * to the next wire arrival instead of ticking empty cycles. Flit
 * hops and credit returns ride fixed-delay FIFO delay lines owned by
 * the network (not per-event closures on the EventQueue), and all
 * per-flit state lives in pooled/pre-sized flat storage, so a warmed
 * fabric simulates without allocating. The dense reference loop
 * (NetworkConfig::dense_tick or MT_DENSE_TICK=1) evaluates every
 * router every cycle; both schedulers are tick- and stat-identical,
 * which tests/test_activeset.cc asserts.
 *
 * Parallel engine (NetworkConfig::threads > 1, DESIGN.md §"Parallel
 * simulation engine"): routers are partitioned into contiguous
 * spatial domains, one per worker of a persistent sim::WorkerPool,
 * and each cycle every domain drains its inbound handoff rings and
 * runs the phase pipeline over its own routers between two barrier
 * crossings. Correctness rests on the wire model: every cross-router
 * effect is delayed by at least the link latency, so routers never
 * interact within a cycle — flits and credits crossing a domain
 * boundary ride lock-free SPSC rings (common/spsc_ring.hh) from the
 * producing to the consuming domain, and per-channel FIFO order is
 * preserved because a channel's hops have a single producer. Global
 * ordered side effects (same-tick delivery events, latency summary
 * samples, packet-pool frees, trace/profiler emissions) are buffered
 * per domain and replayed by the coordinator in ascending-domain —
 * hence ascending-router, hence dense-loop — order at the barrier,
 * which makes any thread count bit-identical to the dense oracle.
 */

#ifndef MULTITREE_NET_FLIT_NETWORK_HH
#define MULTITREE_NET_FLIT_NETWORK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ring_buffer.hh"
#include "common/spsc_ring.hh"
#include "net/network.hh"
#include "obs/profile.hh"

namespace multitree::sim {
class WorkerPool;
} // namespace multitree::sim

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::net {

/** Cycle-level VC router network. */
class FlitNetwork : public Network
{
  public:
    FlitNetwork(sim::EventQueue &eq, const topo::Topology &topo,
                NetworkConfig cfg = {});
    ~FlitNetwork() override;

    void reset() override;

    void flushTrace() override;

    void flushProfile() override;

    /** Flits forwarded over channel @p cid so far (utilization). */
    std::uint64_t channelFlits(int cid) const
    {
        return channel_flits_[static_cast<std::size_t>(cid)];
    }

    /** Cycles the network spent with at least one flit in flight. */
    std::uint64_t activeCycles() const { return active_cycles_; }

    /** Fraction of active cycles channel @p cid carried a flit. */
    double
    channelUtilization(int cid) const
    {
        if (active_cycles_ == 0)
            return 0.0;
        return static_cast<double>(
                   channel_flits_[static_cast<std::size_t>(cid)])
               / static_cast<double>(active_cycles_);
    }

    /** Inject-to-tail-eject latency distribution over all packets. */
    const Summary &packetLatency() const { return pkt_latency_; }

    /** Whether the dense reference tick loop is in force. */
    bool denseTick() const { return dense_; }

    void sampleChannels(std::vector<std::uint64_t> &flits_cum,
                        std::vector<std::uint64_t> &queue_now)
        const override;

    /** Spatial domains the tick loop executes on (1 = serial). */
    int threads() const;

  protected:
    void injectImpl(Message msg) override;

  private:
    struct Packet;
    struct Flit {
        Packet *pkt = nullptr;
        std::uint32_t hop = 0; ///< next route index to traverse
        bool head = false;
        bool tail = false;
    };
    struct InputVC {
        RingBuffer<Flit> fifo;
        int out_channel = -1; ///< allocated output, -1 = none
        int out_vc = -1;
    };
    struct InputUnit {
        int channel = -1; ///< feeding channel, -1 for injection
        std::vector<InputVC> vcs;
    };
    struct OutputVC {
        int owner_input = -1; ///< input unit index holding this VC
        int owner_vc = -1;
        std::uint32_t credits = 0;
    };
    struct OutputUnit {
        int channel = -1;
        std::vector<OutputVC> vcs;
        std::size_t rr = 0; ///< switch-allocation round-robin pointer
    };
    struct Router {
        /** Channel-fed inputs first, injection units after. */
        std::vector<InputUnit> inputs;
        int first_injection = 0;
        std::vector<OutputUnit> outputs;

        // --- activation bookkeeping (active-set scheduler) ---
        /** Flits currently buffered in any of this router's input
         *  FIFOs (channel-fed and injection alike). */
        std::uint64_t buffered = 0;
        /** Injection slots currently owned by a draining packet. */
        std::uint32_t inj_active = 0;
        /** Whether the router sits in the active worklist. */
        bool queued = false;
        /** Channel-fed input VCs (occupancy-sample compensation). */
        std::uint32_t n_channel_vcs = 0;
        /** Cycles this router's buffers were explicitly sampled into
         *  the occupancy histogram; the deficit vs active_cycles_ is
         *  all-empty samples, reconstructed at flushProfile(). */
        std::uint64_t occ_sampled = 0;
    };
    struct Packet {
        Message msg;
        std::uint64_t wire_flits = 0;
        std::uint64_t emitted = 0; ///< flits synthesized at the source
        std::uint64_t ejected = 0;
        Tick injected_at = 0;
        /** Route prefix flags: wrap channel crossed before hop i. */
        std::vector<char> wrap_before;
    };

    /** One flit mid-wire: arrives into (channel, vc) at @p due. */
    struct WireHop {
        Tick due = 0;
        int cid = -1;
        int vc = -1;
        Flit flit;
    };
    /** One credit mid-wire back to (channel, vc)'s output. */
    struct CreditHop {
        Tick due = 0;
        int cid = -1;
        int vc = -1;
    };

    struct Req {
        int input = -1;
        int vc = -1;
    };

    // --- parallel engine (NetworkConfig::threads > 1) ---

    /**
     * Ordered global side effects one domain accumulates during a
     * cycle, replayed by the coordinator in ascending-domain order
     * at the barrier so the merged sequence matches the dense loop's
     * ascending-router order exactly. Vectors are cleared (capacity
     * retained) every cycle — zero-allocation once warm.
     */
    struct DomainEffects {
        /** Tail-ejected messages awaiting same-tick delivery
         *  events, in eject order. */
        std::vector<Message> deliveries;
        /** Drained packets to return to the shared pool. */
        std::vector<Packet *> freed;
        /** Packet latency samples, in eject order (the Summary's
         *  Welford accumulation is order-sensitive). */
        std::vector<double> latencies;
        /** Profiler head-arrival track ids (eject phase). */
        std::vector<std::uint64_t> head_arrivals;
        /** Profiler injection-start track ids (refill phase). */
        std::vector<std::uint64_t> inj_starts;
        /** Trace events emitted by the refill phase (MsgQueue). */
        std::vector<obs::TraceEvent> refill_events;
        /** Trace events emitted by the traverse phase (LinkBusy). */
        std::vector<obs::TraceEvent> traverse_events;
        /** Net change to the global in-flight flit counter. */
        std::int64_t in_flight_delta = 0;
        /** Flits ejected this cycle (watchdog progress). */
        std::uint64_t ejected = 0;
    };

    /**
     * Handoff lane from one producing to one consuming domain. The
     * rings are the lock-free SPSC path; the overflow vectors are
     * the staging area when a ring is full mid-cycle (the producer
     * keeps staging for the rest of the cycle to preserve FIFO
     * order) and are folded back in by the coordinator at the
     * barrier, where growing the ring is safe.
     */
    struct Handoff {
        SpscRing<WireHop> wire;
        SpscRing<CreditHop> credit;
        std::vector<WireHop> wire_overflow;
        std::vector<CreditHop> credit_overflow;
        bool wire_overflowed = false;
        bool credit_overflowed = false;
    };

    /** One spatial domain: a contiguous router range plus its
     *  private worklist and effect buffers. */
    struct Domain {
        int id = 0;
        int lo = 0; ///< first owned vertex
        int hi = 0; ///< one past the last owned vertex
        std::vector<int> active; ///< own routers with work
        std::vector<Req> scratch; ///< switch-allocation requests
        DomainEffects fx;
    };

    struct ParallelState {
        std::vector<Domain> domains;
        /** domains.size()² lanes, [producer * D + consumer]. */
        std::vector<Handoff> lanes;
        std::vector<int> domain_of; ///< vertex → owning domain
        /** Consuming domain of each channel's flit hops (the domain
         *  owning the channel's dst router). */
        std::vector<int> wire_dom_;
        /** Consuming domain of each channel's credit returns (the
         *  domain owning the channel's src router). */
        std::vector<int> credit_dom_;
        std::unique_ptr<sim::WorkerPool> pool;
        /** Tick published to the workers for the current cycle. */
        Tick now = 0;
        /** Reusable dispatch closure (no per-cycle allocation). */
        std::function<void(int)> task;
    };

    /** Build domains, lanes and the worker pool for @p threads. */
    void buildParallelState(std::uint32_t threads);

    /** The handoff lane from @p producer to @p consumer. */
    Handoff &
    lane(int producer, int consumer)
    {
        return par_->lanes[static_cast<std::size_t>(producer)
                               * par_->domains.size()
                           + static_cast<std::size_t>(consumer)];
    }

    /** Apply one wire arrival (buffer the flit, wake the router). */
    void applyWireArrival(const WireHop &wh);

    /** Apply one credit arrival (upstream output VC refill). */
    void applyCreditArrival(const CreditHop &ch);

    /** Ship one flit hop toward its consuming domain (or the serial
     *  delay line when @p dom is null). */
    void pushWire(Domain *dom, const WireHop &wh);

    /** One domain's full cycle: drain inbound lanes, run the phase
     *  pipeline over its routers, buffer global effects. */
    void domainCycle(Domain &dom, Tick now);

    /** Coordinator: fold overflow into lanes and replay every
     *  buffered effect in ascending-domain order. */
    void mergeCycleEffects(Tick now);

    /** Serial drain of every lane (end-of-run trailing credits);
     *  only legal with no workers in flight. */
    void drainAllLanes(Tick now);

    /** The parallel path of cycle(), after the shared accounting. */
    void parallelCycle(Tick now);

    /** Run one router cycle; reschedules itself while active. */
    void cycle();

    /** Arm (or pull earlier) the cycle event for tick @p when. */
    void requestCycleAt(Tick when);

    /** Register @p vertex in the active worklist. */
    void markActive(int vertex);

    /** Whether @p vertex still has per-cycle work to evaluate. */
    bool
    hasWork(const Router &r, int vertex) const
    {
        return r.buffered > 0 || r.inj_active > 0
               || !pending_[static_cast<std::size_t>(vertex)].empty();
    }

    /** Apply every wire/credit delay-line entry due by @p now. */
    void drainDelayLines(Tick now);

    /** Whether @p pkt may use VC @p vc for the channel at @p hop. */
    bool vcClassAllowed(const Packet &pkt, std::uint32_t hop,
                        int vc) const;

    // The phase functions take the executing domain (null on the
    // serial path): with a domain, cross-router hops ride the handoff
    // lanes instead of the delay lines and every ordered global side
    // effect lands in the domain's effect buffers for the barrier
    // merge instead of being applied in place.

    /** Refill injection FIFOs and start pending packets on free VCs. */
    void refillInjection(int vertex, Domain *dom);

    /** Per-router VC allocation for head flits. */
    void allocateVCs(int vertex);

    /** Per-router switch allocation and link traversal. */
    void traverse(int vertex, Domain *dom);

    /** Eject flits that reached their destination at @p vertex. */
    void eject(int vertex, Domain *dom);

    /** Return one credit for (channel, vc) after the wire delay. */
    void returnCredit(int cid, int vc, Domain *dom);

    /** Record one traversal cycle on @p cid for the trace sink,
     *  coalescing back-to-back cycles into one LinkBusy span. */
    void noteLinkFlit(int cid, Domain *dom);

    /** Sample @p vertex's channel-fed input-VC buffer depths into
     *  its occupancy histogram (profiler attached). */
    void sampleRouter(int vertex);

    /** Take a packet from the free pool (or grow the slab). */
    Packet *allocPacket();

    /** Return a drained packet to the free pool. */
    void freePacket(Packet *pkt);

    std::vector<Router> routers_;
    std::vector<char> wrap_channel_; ///< torus dateline channels
    std::vector<std::uint64_t> channel_flits_;

    /** Input-unit index of each channel at its destination router. */
    std::vector<int> chan_in_idx_;
    /** Output-unit index of each channel at its source router. */
    std::vector<int> chan_out_idx_;

    // Profiling counters, maintained only while a profiler is
    // attached (pure observation: nothing reads them back into the
    // simulation). Ingested by flushProfile(), cleared by reset().
    std::vector<obs::RouterProfile> prof_routers_;
    /** Messages routed over each channel. */
    std::vector<std::uint64_t> channel_msgs_;
    /** Credit-stall cycles charged to each output channel. */
    std::vector<std::uint64_t> channel_queue_;

    /** Open per-channel busy span for the trace sink; len == 0 means
     *  no span is open. Flushed by flushTrace(). */
    struct BusySpan {
        Tick start = 0;
        Tick len = 0;
    };
    std::vector<BusySpan> trace_span_;

    /** Pending packets per node awaiting a free injection VC. */
    std::vector<RingBuffer<Packet *>> pending_;
    /** Packet currently owning each injection VC (or null). */
    std::vector<std::vector<Packet *>> inj_pkt_;

    /** Packet pool: the slab owns every Packet ever allocated, the
     *  free list recycles drained ones, so steady-state injection
     *  reuses warm Packets (wrap_before/route capacity included). */
    std::vector<std::unique_ptr<Packet>> pkt_slab_;
    std::vector<Packet *> pkt_free_;
    /** Packets in the fabric (pending, injecting or in flight). */
    std::uint64_t live_pkts_ = 0;

    /** Fixed-delay FIFO delay lines: every flit hop is delayed by
     *  router_pipeline + link_latency and every credit return by
     *  link_latency, so each line is pushed in nondecreasing due
     *  order and drained from the front — no heap, no closures. */
    RingBuffer<WireHop> wire_line_;
    RingBuffer<CreditHop> credit_line_;

    /** Active worklist (routers with buffered/pending work) plus the
     *  per-cycle scratch reused by the separable output allocator. */
    std::vector<int> active_;
    std::vector<Req> req_scratch_;

    /** Dense reference loop forced (config flag or MT_DENSE_TICK). */
    bool dense_ = false;

    /** Parallel-engine state; null when running serially. */
    std::unique_ptr<ParallelState> par_;

    // Cycle-event arming. armed_tick_/arm_gen_ let an injection pull
    // a far-future fast-forward wakeup earlier: the superseded event
    // carries a stale generation and fires as a no-op.
    bool cycle_armed_ = false;
    Tick armed_tick_ = 0;
    std::uint64_t arm_gen_ = 0;

    /** Whether a burst is open (cycle() ran and work remains); the
     *  next cycle() then credits the fast-forwarded gap since
     *  last_cycle_tick_ to active_cycles_. */
    bool burst_open_ = false;
    Tick last_cycle_tick_ = 0;

    std::uint64_t in_flight_ = 0; ///< flits buffered or on links
    std::uint64_t active_cycles_ = 0;
    /** active_cycles_ restricted to cycles a profiler was attached;
     *  the baseline for the occupancy-sample deficit. */
    std::uint64_t prof_cycles_ = 0;
    /** Deadlock watchdog: cycles since a flit last ejected. */
    std::uint64_t ejected_total_ = 0;
    std::uint64_t last_progress_cycle_ = 0;
    Summary pkt_latency_;
};

} // namespace multitree::net

#endif // MULTITREE_NET_FLIT_NETWORK_HH
