/**
 * @file
 * Cycle-level flit network simulator (the BookSim-like substrate).
 *
 * Every topology channel is a 16-byte-per-cycle link with 150-cycle
 * traversal latency. Each vertex hosts a router with per-input-port
 * virtual-channel buffers, credit-based flow control, per-packet VC
 * allocation and per-cycle round-robin switch allocation. Messages
 * are source-routed along their explicit channel path (MultiTree's
 * co-design, §IV-B); a packet must win an output VC at every hop and
 * then streams flit by flit while credits last.
 *
 * Modeling notes (documented deviations from a full BookSim):
 *  - A message travels as one VC-holding stream; in packet-based
 *    mode its wire length includes one head flit per 256 B packet
 *    (the Fig. 2 overhead), but per-packet re-arbitration is folded
 *    into VC-level interleaving. Bandwidth and contention behavior —
 *    what the paper's figures measure — are preserved.
 *  - Head flits use a virtual cut-through credit check
 *    (min(packet flits, buffer depth) credits before launch); body
 *    flits stream with per-flit credits.
 *  - Torus deadlock freedom uses dateline VC classes: a packet may
 *    use the lower half of the VCs before its route crosses a wrap
 *    channel and the upper half after.
 *  - Ejection matches the paper's assumption that NI bandwidth equals
 *    router bandwidth: every input port can sink one flit per cycle
 *    at the destination.
 */

#ifndef MULTITREE_NET_FLIT_NETWORK_HH
#define MULTITREE_NET_FLIT_NETWORK_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.hh"
#include "obs/profile.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::net {

/** Cycle-level VC router network. */
class FlitNetwork : public Network
{
  public:
    FlitNetwork(sim::EventQueue &eq, const topo::Topology &topo,
                NetworkConfig cfg = {});
    ~FlitNetwork() override;

    void reset() override;

    void flushTrace() override;

    void flushProfile() override;

    /** Flits forwarded over channel @p cid so far (utilization). */
    std::uint64_t channelFlits(int cid) const
    {
        return channel_flits_[static_cast<std::size_t>(cid)];
    }

    /** Cycles the network spent with at least one flit in flight. */
    std::uint64_t activeCycles() const { return active_cycles_; }

    /** Fraction of active cycles channel @p cid carried a flit. */
    double
    channelUtilization(int cid) const
    {
        if (active_cycles_ == 0)
            return 0.0;
        return static_cast<double>(
                   channel_flits_[static_cast<std::size_t>(cid)])
               / static_cast<double>(active_cycles_);
    }

    /** Inject-to-tail-eject latency distribution over all packets. */
    const Summary &packetLatency() const { return pkt_latency_; }

  protected:
    void injectImpl(Message msg) override;

  private:
    struct Packet;
    struct Flit {
        Packet *pkt = nullptr;
        std::uint32_t hop = 0; ///< next route index to traverse
        bool head = false;
        bool tail = false;
    };
    struct InputVC {
        std::deque<Flit> fifo;
        int out_channel = -1; ///< allocated output, -1 = none
        int out_vc = -1;
    };
    struct InputUnit {
        int channel = -1; ///< feeding channel, -1 for injection
        std::vector<InputVC> vcs;
    };
    struct OutputVC {
        int owner_input = -1; ///< input unit index holding this VC
        int owner_vc = -1;
        std::uint32_t credits = 0;
    };
    struct OutputUnit {
        int channel = -1;
        std::vector<OutputVC> vcs;
        std::size_t rr = 0; ///< switch-allocation round-robin pointer
    };
    struct Router {
        /** Channel-fed inputs first, injection units after. */
        std::vector<InputUnit> inputs;
        int first_injection = 0;
        std::vector<OutputUnit> outputs;
        std::unordered_map<int, int> in_of_channel;
        std::unordered_map<int, int> out_of_channel;
    };
    struct Packet {
        Message msg;
        std::uint64_t wire_flits = 0;
        std::uint64_t emitted = 0; ///< flits synthesized at the source
        std::uint64_t ejected = 0;
        Tick injected_at = 0;
        /** Route prefix flags: wrap channel crossed before hop i. */
        std::vector<char> wrap_before;
    };

    /** Run one router cycle; reschedules itself while active. */
    void cycle();

    /** Arm the cycle event if it is not already pending. */
    void ensureRunning();

    /** Whether @p pkt may use VC @p vc for the channel at @p hop. */
    bool vcClassAllowed(const Packet &pkt, std::uint32_t hop,
                        int vc) const;

    /** Refill injection FIFOs and start pending packets on free VCs. */
    void refillInjection(int vertex);

    /** Per-router VC allocation for head flits. */
    void allocateVCs(int vertex);

    /** Per-router switch allocation and link traversal. */
    void traverse(int vertex);

    /** Eject flits that reached their destination at @p vertex. */
    void eject(int vertex);

    /** Return one credit for (channel, vc) after the wire delay. */
    void returnCredit(int cid, int vc);

    /** Record one traversal cycle on @p cid for the trace sink,
     *  coalescing back-to-back cycles into one LinkBusy span. */
    void noteLinkFlit(int cid);

    /** Sample channel-fed input-VC buffer depths into the per-router
     *  occupancy histograms (profiler attached). */
    void sampleOccupancy();

    const topo::Topology &topo_;
    std::vector<Router> routers_;
    std::vector<char> wrap_channel_; ///< torus dateline channels
    std::vector<std::uint64_t> channel_flits_;

    // Profiling counters, maintained only while a profiler is
    // attached (pure observation: nothing reads them back into the
    // simulation). Ingested by flushProfile(), cleared by reset().
    std::vector<obs::RouterProfile> prof_routers_;
    /** Messages routed over each channel. */
    std::vector<std::uint64_t> channel_msgs_;
    /** Credit-stall cycles charged to each output channel. */
    std::vector<std::uint64_t> channel_queue_;

    /** Open per-channel busy span for the trace sink; len == 0 means
     *  no span is open. Flushed by flushTrace(). */
    struct BusySpan {
        Tick start = 0;
        Tick len = 0;
    };
    std::vector<BusySpan> trace_span_;

    /** Pending packets per node awaiting a free injection VC. */
    std::vector<std::deque<std::unique_ptr<Packet>>> pending_;
    /** Packet currently owning each injection VC (or null). */
    std::vector<std::vector<Packet *>> inj_pkt_;
    /** Live packets, owned. */
    std::unordered_map<Packet *, std::unique_ptr<Packet>> live_;

    bool cycle_armed_ = false;
    std::uint64_t in_flight_ = 0; ///< flits buffered or on links
    std::uint64_t active_cycles_ = 0;
    /** Deadlock watchdog: cycles since a flit last ejected. */
    std::uint64_t ejected_total_ = 0;
    std::uint64_t last_progress_cycle_ = 0;
    Summary pkt_latency_;
};

} // namespace multitree::net

#endif // MULTITREE_NET_FLIT_NETWORK_HH
