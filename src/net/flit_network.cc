#include "net/flit_network.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "net/flow_control.hh"
#include "sim/event_queue.hh"
#include "topo/grid.hh"
#include "topo/topology.hh"

namespace multitree::net {

FlitNetwork::FlitNetwork(sim::EventQueue &eq,
                         const topo::Topology &topo, NetworkConfig cfg)
    : Network(eq, cfg), topo_(topo),
      wrap_channel_(static_cast<std::size_t>(topo.numChannels()), 0),
      channel_flits_(static_cast<std::size_t>(topo.numChannels()), 0),
      prof_routers_(static_cast<std::size_t>(topo.numVertices())),
      channel_msgs_(static_cast<std::size_t>(topo.numChannels()), 0),
      channel_queue_(static_cast<std::size_t>(topo.numChannels()), 0),
      trace_span_(static_cast<std::size_t>(topo.numChannels())),
      pending_(static_cast<std::size_t>(topo.numVertices())),
      inj_pkt_(static_cast<std::size_t>(topo.numVertices()))
{
    MT_ASSERT(cfg_.num_vcs >= 2, "need >= 2 VCs for dateline classes");

    // Flag torus wraparound channels for the dateline VC policy.
    if (auto *grid = dynamic_cast<const topo::Grid2D *>(&topo)) {
        if (grid->isTorus()) {
            for (const auto &ch : topo.channels()) {
                int dx = std::abs(grid->xOf(ch.src) - grid->xOf(ch.dst));
                int dy = std::abs(grid->yOf(ch.src) - grid->yOf(ch.dst));
                if (dx > 1 || dy > 1)
                    wrap_channel_[static_cast<std::size_t>(ch.id)] = 1;
            }
        }
    }

    routers_.resize(static_cast<std::size_t>(topo.numVertices()));
    for (int v = 0; v < topo.numVertices(); ++v) {
        Router &r = routers_[static_cast<std::size_t>(v)];
        for (int cid : topo.inChannels(v)) {
            InputUnit iu;
            iu.channel = cid;
            iu.vcs.resize(cfg_.num_vcs);
            r.in_of_channel[cid] = static_cast<int>(r.inputs.size());
            r.inputs.push_back(std::move(iu));
        }
        // Injection units: the paper assumes NI bandwidth matches the
        // router's aggregate link bandwidth on direct networks, so a
        // node gets one injection port per output channel (switches
        // get one idle unit for uniformity).
        int n_inj = topo.isNode(v)
                        ? std::max<std::size_t>(
                              1, topo.outChannels(v).size())
                        : 1;
        r.first_injection = static_cast<int>(r.inputs.size());
        for (int k = 0; k < n_inj; ++k) {
            InputUnit inj;
            inj.channel = -1;
            inj.vcs.resize(cfg_.num_vcs);
            r.inputs.push_back(std::move(inj));
        }
        inj_pkt_[static_cast<std::size_t>(v)].assign(
            static_cast<std::size_t>(n_inj) * cfg_.num_vcs, nullptr);

        for (int cid : topo.outChannels(v)) {
            OutputUnit ou;
            ou.channel = cid;
            ou.vcs.resize(cfg_.num_vcs);
            for (auto &ovc : ou.vcs)
                ovc.credits = cfg_.vc_buffer_depth;
            r.out_of_channel[cid] = static_cast<int>(r.outputs.size());
            r.outputs.push_back(std::move(ou));
        }
    }
}

FlitNetwork::~FlitNetwork() = default;

void
FlitNetwork::reset()
{
    MT_ASSERT(live_.empty() && in_flight_ == 0 && !cycle_armed_,
              "flit network reset mid-run: ", live_.size(),
              " live packets, ", in_flight_, " flits in flight");
    Network::reset();
    for (Router &r : routers_) {
        for (auto &iu : r.inputs) {
            for (auto &ivc : iu.vcs) {
                ivc.fifo.clear();
                ivc.out_channel = -1;
                ivc.out_vc = -1;
            }
        }
        for (auto &ou : r.outputs) {
            for (auto &ovc : ou.vcs) {
                ovc.owner_input = -1;
                ovc.owner_vc = -1;
                ovc.credits = cfg_.vc_buffer_depth;
            }
            ou.rr = 0;
        }
    }
    std::fill(channel_flits_.begin(), channel_flits_.end(), 0);
    std::fill(prof_routers_.begin(), prof_routers_.end(),
              obs::RouterProfile{});
    std::fill(channel_msgs_.begin(), channel_msgs_.end(), 0);
    std::fill(channel_queue_.begin(), channel_queue_.end(), 0);
    std::fill(trace_span_.begin(), trace_span_.end(), BusySpan{});
    for (auto &q : pending_)
        q.clear();
    for (auto &slots : inj_pkt_)
        std::fill(slots.begin(), slots.end(), nullptr);
    active_cycles_ = 0;
    ejected_total_ = 0;
    last_progress_cycle_ = 0;
    pkt_latency_.reset();
}

void
FlitNetwork::injectImpl(Message msg)
{
    MT_ASSERT(!msg.route.empty(), "flit network needs a route for ",
              msg.src, "->", msg.dst);
    auto pkt = std::make_unique<Packet>();
    pkt->msg = std::move(msg);
    const auto wb = wireBreakdown(pkt->msg.bytes, cfg_.mode, cfg_);
    pkt->wire_flits = wb.total_flits;
    stats_.inc("messages");
    stats_.inc("payload_flits", static_cast<double>(wb.payload_flits));
    stats_.inc("head_flits", static_cast<double>(wb.head_flits));
    stats_.inc("flit_hops", static_cast<double>(wb.total_flits)
                                * static_cast<double>(
                                    pkt->msg.route.size()));
    stats_.inc("head_hops", static_cast<double>(wb.head_flits)
                                * static_cast<double>(
                                    pkt->msg.route.size()));

    if (prof_ != nullptr) {
        for (int cid : pkt->msg.route)
            ++channel_msgs_[static_cast<std::size_t>(cid)];
    }

    pkt->wrap_before.resize(pkt->msg.route.size(), 0);
    char crossed = 0;
    for (std::size_t i = 0; i < pkt->msg.route.size(); ++i) {
        pkt->wrap_before[i] = crossed;
        if (wrap_channel_[static_cast<std::size_t>(pkt->msg.route[i])])
            crossed = 1;
    }

    // Ownership stays in the source's pending queue until the packet
    // wins an injection VC, then moves into live_.
    pkt->injected_at = eq_.now();
    pending_[static_cast<std::size_t>(pkt->msg.src)].push_back(
        std::move(pkt));
    ensureRunning();
}

void
FlitNetwork::ensureRunning()
{
    if (cycle_armed_)
        return;
    cycle_armed_ = true;
    eq_.scheduleAfter(1, [this] { cycle(); },
                      sim::Priority::Low);
}

bool
FlitNetwork::vcClassAllowed(const Packet &pkt, std::uint32_t hop,
                            int vc) const
{
    if (pkt.wrap_before.empty())
        return true;
    bool upper = pkt.wrap_before[std::min<std::size_t>(
                     hop, pkt.wrap_before.size() - 1)]
                 != 0;
    std::uint32_t half = cfg_.num_vcs / 2;
    if (upper)
        return static_cast<std::uint32_t>(vc) >= half;
    return static_cast<std::uint32_t>(vc) < half;
}

void
FlitNetwork::refillInjection(int vertex)
{
    auto vi = static_cast<std::size_t>(vertex);
    Router &r = routers_[vi];
    const std::size_t n_slots = inj_pkt_[vi].size();
    // Start pending packets on free injection VCs.
    for (std::size_t slot = 0; slot < n_slots; ++slot) {
        if (pending_[vi].empty())
            break;
        if (inj_pkt_[vi][slot] != nullptr)
            continue;
        int vc = static_cast<int>(slot % cfg_.num_vcs);
        Packet *pkt = pending_[vi].front().get();
        if (!vcClassAllowed(*pkt, 0, vc))
            continue;
        inj_pkt_[vi][slot] = pkt;
        if (prof_ != nullptr)
            prof_->onInjectStart(pkt->msg.track_id, eq_.now());
        if (sink_ != nullptr && eq_.now() > pkt->injected_at) {
            // The packet waited in the source's pending queue for a
            // free injection VC: injection-side queueing.
            obs::TraceEvent qe;
            qe.kind = obs::EventKind::MsgQueue;
            qe.tick = pkt->injected_at;
            qe.duration = eq_.now() - pkt->injected_at;
            qe.node = pkt->msg.src;
            qe.peer = pkt->msg.dst;
            qe.flow = pkt->msg.flow_id;
            qe.bytes = pkt->msg.bytes;
            sink_->onEvent(qe);
        }
        live_.emplace(pkt, std::move(pending_[vi].front()));
        pending_[vi].pop_front();
    }
    // Synthesize flits lazily, keeping a small FIFO headroom.
    for (std::size_t slot = 0; slot < n_slots; ++slot) {
        Packet *pkt = inj_pkt_[vi][slot];
        if (pkt == nullptr)
            continue;
        auto unit = static_cast<std::size_t>(r.first_injection)
                    + slot / cfg_.num_vcs;
        auto &fifo =
            r.inputs[unit].vcs[slot % cfg_.num_vcs].fifo;
        while (fifo.size() < 4 && pkt->emitted < pkt->wire_flits) {
            Flit f;
            f.pkt = pkt;
            f.hop = 0;
            f.head = pkt->emitted == 0;
            f.tail = pkt->emitted + 1 == pkt->wire_flits;
            fifo.push_back(f);
            ++pkt->emitted;
            ++in_flight_;
        }
        if (pkt->emitted == pkt->wire_flits && fifo.empty())
            inj_pkt_[vi][slot] = nullptr; // drained into the network
    }
}

void
FlitNetwork::allocateVCs(int vertex)
{
    Router &r = routers_[static_cast<std::size_t>(vertex)];
    for (auto &iu : r.inputs) {
        for (auto &ivc : iu.vcs) {
            if (ivc.fifo.empty() || ivc.out_channel >= 0)
                continue;
            const Flit &f = ivc.fifo.front();
            if (!f.head)
                continue; // mid-packet flits inherit the allocation
            int cid = f.pkt->msg.route[f.hop];
            auto oit = r.out_of_channel.find(cid);
            MT_ASSERT(oit != r.out_of_channel.end(),
                      "route uses channel ", cid,
                      " absent at vertex ", vertex);
            OutputUnit &ou = r.outputs[static_cast<std::size_t>(
                oit->second)];
            int input_idx = static_cast<int>(&iu - r.inputs.data());
            int vc_idx = static_cast<int>(&ivc - iu.vcs.data());
            for (std::uint32_t ovc = 0; ovc < cfg_.num_vcs; ++ovc) {
                if (ou.vcs[ovc].owner_input >= 0)
                    continue;
                if (!vcClassAllowed(*f.pkt, f.hop,
                                    static_cast<int>(ovc)))
                    continue;
                ou.vcs[ovc].owner_input = input_idx;
                ou.vcs[ovc].owner_vc = vc_idx;
                ivc.out_channel = cid;
                ivc.out_vc = static_cast<int>(ovc);
                break;
            }
        }
    }
}

void
FlitNetwork::traverse(int vertex)
{
    Router &r = routers_[static_cast<std::size_t>(vertex)];
    for (auto &ou : r.outputs) {
        // Gather requesters: input VCs allocated to this output whose
        // front flit can move under the credit rules.
        struct Req {
            int input;
            int vc;
        };
        std::vector<Req> reqs;
        for (std::size_t ii = 0; ii < r.inputs.size(); ++ii) {
            InputUnit &iu = r.inputs[ii];
            for (std::uint32_t vc = 0; vc < cfg_.num_vcs; ++vc) {
                InputVC &ivc = iu.vcs[vc];
                if (ivc.out_channel != ou.channel || ivc.fifo.empty())
                    continue;
                const Flit &f = ivc.fifo.front();
                const OutputVC &ovc = ou.vcs[static_cast<std::size_t>(
                    ivc.out_vc)];
                std::uint32_t need = 1;
                if (f.head) {
                    // Virtual cut-through launch check at packet
                    // granularity: a head waits for enough credit to
                    // cover one whole packet (not the whole gradient
                    // message, which would insert a credit round-trip
                    // bubble between every schedule step).
                    std::uint64_t pkt_flits =
                        cfg_.packet_payload / cfg_.flit_bytes + 1;
                    need = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(
                            {f.pkt->wire_flits, pkt_flits,
                             static_cast<std::uint64_t>(
                                 cfg_.vc_buffer_depth)}));
                }
                if (ovc.credits < need) {
                    // Flit ready but blocked on downstream credits:
                    // one stall cycle charged to this router/channel.
                    if (prof_ != nullptr) {
                        ++prof_routers_[static_cast<std::size_t>(
                              vertex)]
                              .credit_stalls;
                        ++channel_queue_[static_cast<std::size_t>(
                            ou.channel)];
                    }
                    continue;
                }
                reqs.push_back(Req{static_cast<int>(ii),
                                   static_cast<int>(vc)});
            }
        }
        if (reqs.empty())
            continue;
        // Round-robin grant.
        if (prof_ != nullptr) {
            obs::RouterProfile &rp =
                prof_routers_[static_cast<std::size_t>(vertex)];
            ++rp.sa_grants;
            rp.sa_denied +=
                static_cast<std::uint64_t>(reqs.size() - 1);
        }
        std::size_t pick = ou.rr % reqs.size();
        ou.rr = (ou.rr + 1);
        Req g = reqs[pick];
        InputUnit &iu = r.inputs[static_cast<std::size_t>(g.input)];
        InputVC &ivc = iu.vcs[static_cast<std::size_t>(g.vc)];
        Flit f = ivc.fifo.front();
        ivc.fifo.pop_front();
        int out_vc = ivc.out_vc;
        OutputVC &ovc = ou.vcs[static_cast<std::size_t>(out_vc)];
        --ovc.credits;
        ++channel_flits_[static_cast<std::size_t>(ou.channel)];
        if (sink_ != nullptr)
            noteLinkFlit(ou.channel);

        if (iu.channel >= 0)
            returnCredit(iu.channel, g.vc);
        if (f.tail) {
            ivc.out_channel = -1;
            ivc.out_vc = -1;
            ovc.owner_input = -1;
            ovc.owner_vc = -1;
        }

        // Ship across the wire.
        Flit moved = f;
        moved.hop = f.hop + 1;
        int cid = ou.channel;
        int dvc = out_vc;
        eq_.scheduleAfter(
            cfg_.router_pipeline + cfg_.link_latency,
            [this, cid, dvc, moved]() mutable {
                Router &down = routers_[static_cast<std::size_t>(
                    topo_.channel(cid).dst)];
                int ii = down.in_of_channel.at(cid);
                down.inputs[static_cast<std::size_t>(ii)]
                    .vcs[static_cast<std::size_t>(dvc)]
                    .fifo.push_back(moved);
            },
            sim::Priority::High);
    }
}

void
FlitNetwork::eject(int vertex)
{
    Router &r = routers_[static_cast<std::size_t>(vertex)];
    for (auto &iu : r.inputs) {
        if (iu.channel < 0)
            continue;
        for (std::uint32_t vc = 0; vc < cfg_.num_vcs; ++vc) {
            auto &ivc = iu.vcs[vc];
            while (!ivc.fifo.empty()) {
                const Flit &f = ivc.fifo.front();
                if (f.hop < f.pkt->msg.route.size())
                    break; // through traffic, not ours to sink
                Packet *pkt = f.pkt;
                bool tail = f.tail;
                if (prof_ != nullptr && f.head)
                    prof_->onHeadArrival(pkt->msg.track_id,
                                         eq_.now());
                ivc.fifo.pop_front();
                --in_flight_;
                returnCredit(iu.channel, static_cast<int>(vc));
                ++pkt->ejected;
                ++ejected_total_;
                last_progress_cycle_ = active_cycles_;
                if (tail) {
                    MT_ASSERT(pkt->ejected == pkt->wire_flits,
                              "tail ejected before body: ",
                              pkt->ejected, "/", pkt->wire_flits);
                    pkt_latency_.add(static_cast<double>(
                        eq_.now() - pkt->injected_at));
                    Message msg = pkt->msg;
                    live_.erase(pkt);
                    eq_.scheduleAfter(0, [this, msg = std::move(msg)] {
                        deliverMsg(msg);
                    });
                }
            }
        }
    }
}

void
FlitNetwork::returnCredit(int cid, int vc)
{
    eq_.scheduleAfter(
        cfg_.link_latency,
        [this, cid, vc] {
            Router &up = routers_[static_cast<std::size_t>(
                topo_.channel(cid).src)];
            int oi = up.out_of_channel.at(cid);
            ++up.outputs[static_cast<std::size_t>(oi)]
                  .vcs[static_cast<std::size_t>(vc)]
                  .credits;
        },
        sim::Priority::High);
}

void
FlitNetwork::noteLinkFlit(int cid)
{
    BusySpan &span = trace_span_[static_cast<std::size_t>(cid)];
    const Tick now = eq_.now();
    if (span.len > 0 && now == span.start + span.len) {
        ++span.len;
        return;
    }
    if (span.len > 0) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::LinkBusy;
        ev.tick = span.start;
        ev.duration = span.len;
        ev.channel = cid;
        ev.node = topo_.channel(cid).src;
        ev.peer = topo_.channel(cid).dst;
        sink_->onEvent(ev);
    }
    span.start = now;
    span.len = 1;
}

void
FlitNetwork::flushTrace()
{
    if (sink_ == nullptr)
        return;
    for (std::size_t cid = 0; cid < trace_span_.size(); ++cid) {
        BusySpan &span = trace_span_[cid];
        if (span.len == 0)
            continue;
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::LinkBusy;
        ev.tick = span.start;
        ev.duration = span.len;
        ev.channel = static_cast<int>(cid);
        ev.node = topo_.channel(static_cast<int>(cid)).src;
        ev.peer = topo_.channel(static_cast<int>(cid)).dst;
        sink_->onEvent(ev);
        span = BusySpan{};
    }
}

void
FlitNetwork::sampleOccupancy()
{
    for (std::size_t v = 0; v < routers_.size(); ++v) {
        obs::RouterProfile &rp = prof_routers_[v];
        for (const auto &iu : routers_[v].inputs) {
            if (iu.channel < 0)
                continue; // injection FIFOs are NI-side, not buffers
            for (const auto &ivc : iu.vcs) {
                std::size_t bucket = std::min<std::size_t>(
                    ivc.fifo.size(), obs::kOccupancyBuckets - 1);
                ++rp.occupancy[bucket];
            }
        }
    }
}

void
FlitNetwork::flushProfile()
{
    if (prof_ == nullptr)
        return;
    for (std::size_t cid = 0; cid < channel_flits_.size(); ++cid) {
        obs::ChannelProfile cp;
        cp.flits = channel_flits_[cid];
        cp.messages = channel_msgs_[cid];
        // One flit crosses per cycle, so flit count doubles as the
        // busy-cycle count on this backend.
        cp.busy = channel_flits_[cid];
        cp.queue = channel_queue_[cid];
        prof_->ingestChannel(static_cast<int>(cid), cp);
    }
    for (std::size_t v = 0; v < prof_routers_.size(); ++v)
        prof_->ingestRouter(static_cast<int>(v), prof_routers_[v]);
}

void
FlitNetwork::cycle()
{
    ++active_cycles_;
    if (prof_ != nullptr)
        sampleOccupancy();
    for (int v = 0; v < topo_.numVertices(); ++v)
        eject(v);
    for (int v = 0; v < topo_.numVertices(); ++v)
        refillInjection(v);
    for (int v = 0; v < topo_.numVertices(); ++v)
        allocateVCs(v);
    for (int v = 0; v < topo_.numVertices(); ++v)
        traverse(v);

    bool pending_work = !live_.empty() || in_flight_ > 0;
    if (!pending_work) {
        for (const auto &q : pending_)
            pending_work |= !q.empty();
    }
    // Watchdog: with traffic in flight, some flit must eject within
    // a generous bound or the network has deadlocked/livelocked —
    // that is a simulator or routing bug, never a user error.
    if (pending_work
        && active_cycles_ - last_progress_cycle_ > 4'000'000) {
        MT_PANIC("flit network made no ejection progress for 4M "
                 "cycles with ", live_.size(), " live packets and ",
                 in_flight_, " flits in flight — deadlock");
    }
    cycle_armed_ = false;
    if (pending_work)
        ensureRunning();
}

} // namespace multitree::net
