#include "net/flit_network.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "net/flow_control.hh"
#include "sim/event_queue.hh"
#include "sim/worker_pool.hh"
#include "topo/grid.hh"
#include "topo/topology.hh"

namespace multitree::net {

namespace {

/** Whether MT_DENSE_TICK forces the dense reference tick loop. */
bool
denseTickForced()
{
    const char *env = std::getenv("MT_DENSE_TICK");
    return env != nullptr && env[0] != '\0'
           && !(env[0] == '0' && env[1] == '\0');
}

/** NetworkConfig::threads, unless MT_THREADS overrides it. */
std::uint32_t
threadsRequested(std::uint32_t cfg_threads)
{
    const char *env = std::getenv("MT_THREADS");
    if (env == nullptr || env[0] == '\0')
        return cfg_threads;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    MT_ASSERT(end != env && *end == '\0' && v >= 1 && v <= 1024,
              "MT_THREADS must be an integer in [1, 1024], got '",
              env, "'");
    return static_cast<std::uint32_t>(v);
}

} // namespace

FlitNetwork::FlitNetwork(sim::EventQueue &eq,
                         const topo::Topology &topo, NetworkConfig cfg)
    : Network(eq, topo, cfg),
      wrap_channel_(static_cast<std::size_t>(topo.numChannels()), 0),
      channel_flits_(static_cast<std::size_t>(topo.numChannels()), 0),
      chan_in_idx_(static_cast<std::size_t>(topo.numChannels()), -1),
      chan_out_idx_(static_cast<std::size_t>(topo.numChannels()), -1),
      prof_routers_(static_cast<std::size_t>(topo.numVertices())),
      channel_msgs_(static_cast<std::size_t>(topo.numChannels()), 0),
      channel_queue_(static_cast<std::size_t>(topo.numChannels()), 0),
      trace_span_(static_cast<std::size_t>(topo.numChannels())),
      pending_(static_cast<std::size_t>(topo.numVertices())),
      inj_pkt_(static_cast<std::size_t>(topo.numVertices())),
      dense_(cfg.dense_tick || denseTickForced())
{
    MT_ASSERT(cfg_.num_vcs >= 2, "need >= 2 VCs for dateline classes");

    // Flag torus wraparound channels for the dateline VC policy.
    if (auto *grid = dynamic_cast<const topo::Grid2D *>(&topo)) {
        if (grid->isTorus()) {
            for (const auto &ch : topo.channels()) {
                int dx = std::abs(grid->xOf(ch.src) - grid->xOf(ch.dst));
                int dy = std::abs(grid->yOf(ch.src) - grid->yOf(ch.dst));
                if (dx > 1 || dy > 1)
                    wrap_channel_[static_cast<std::size_t>(ch.id)] = 1;
            }
        }
    }

    routers_.resize(static_cast<std::size_t>(topo.numVertices()));
    for (int v = 0; v < topo.numVertices(); ++v) {
        Router &r = routers_[static_cast<std::size_t>(v)];
        for (int cid : topo.inChannels(v)) {
            InputUnit iu;
            iu.channel = cid;
            iu.vcs.resize(cfg_.num_vcs);
            chan_in_idx_[static_cast<std::size_t>(cid)] =
                static_cast<int>(r.inputs.size());
            r.inputs.push_back(std::move(iu));
        }
        r.n_channel_vcs =
            static_cast<std::uint32_t>(r.inputs.size()) * cfg_.num_vcs;
        // Injection units: the paper assumes NI bandwidth matches the
        // router's aggregate link bandwidth on direct networks, so a
        // node gets one injection port per output channel (switches
        // get one idle unit for uniformity). With in-network support
        // on, switches replicate by re-injecting segments toward
        // several outputs at once, so they get per-output units too;
        // with it off, the extra units must not exist so arbitration
        // stays structurally identical to a build without them.
        const bool wide_inj =
            topo.isNode(v)
            || cfg_.in_network != InNetworkMode::Off;
        int n_inj = wide_inj ? std::max<std::size_t>(
                        1, topo.outChannels(v).size())
                             : 1;
        r.first_injection = static_cast<int>(r.inputs.size());
        for (int k = 0; k < n_inj; ++k) {
            InputUnit inj;
            inj.channel = -1;
            inj.vcs.resize(cfg_.num_vcs);
            r.inputs.push_back(std::move(inj));
        }
        inj_pkt_[static_cast<std::size_t>(v)].assign(
            static_cast<std::size_t>(n_inj) * cfg_.num_vcs, nullptr);

        for (int cid : topo.outChannels(v)) {
            OutputUnit ou;
            ou.channel = cid;
            ou.vcs.resize(cfg_.num_vcs);
            for (auto &ovc : ou.vcs)
                ovc.credits = cfg_.vc_buffer_depth;
            chan_out_idx_[static_cast<std::size_t>(cid)] =
                static_cast<int>(r.outputs.size());
            r.outputs.push_back(std::move(ou));
        }
    }
    active_.reserve(routers_.size());
    req_scratch_.reserve(16);

    const std::uint32_t threads = threadsRequested(cfg_.threads);
    if (threads > 1)
        buildParallelState(threads);
}

FlitNetwork::~FlitNetwork() = default;

int
FlitNetwork::threads() const
{
    return par_ == nullptr ? 1
                           : static_cast<int>(par_->domains.size());
}

void
FlitNetwork::buildParallelState(std::uint32_t threads)
{
    const int n = topo_.numVertices();
    const int d =
        std::min<int>(static_cast<int>(threads), std::max(n, 1));
    if (d <= 1)
        return; // one domain degrades to the serial engine

    par_ = std::make_unique<ParallelState>();
    par_->domains.resize(static_cast<std::size_t>(d));
    par_->domain_of.resize(static_cast<std::size_t>(n), 0);
    // Contiguous blocks: domain order therefore equals ascending-
    // router order, which is what makes the barrier merge replay
    // every global effect in dense-loop order.
    const int base = n / d;
    const int rem = n % d;
    int lo = 0;
    for (int i = 0; i < d; ++i) {
        Domain &dom = par_->domains[static_cast<std::size_t>(i)];
        dom.id = i;
        dom.lo = lo;
        dom.hi = lo + base + (i < rem ? 1 : 0);
        lo = dom.hi;
        for (int v = dom.lo; v < dom.hi; ++v)
            par_->domain_of[static_cast<std::size_t>(v)] = i;
        dom.active.reserve(
            static_cast<std::size_t>(dom.hi - dom.lo));
        dom.scratch.reserve(16);
    }
    par_->lanes.resize(static_cast<std::size_t>(d)
                       * static_cast<std::size_t>(d));
    par_->wire_dom_.resize(
        static_cast<std::size_t>(topo_.numChannels()), 0);
    par_->credit_dom_.resize(
        static_cast<std::size_t>(topo_.numChannels()), 0);
    for (const auto &ch : topo_.channels()) {
        par_->wire_dom_[static_cast<std::size_t>(ch.id)] =
            par_->domain_of[static_cast<std::size_t>(ch.dst)];
        par_->credit_dom_[static_cast<std::size_t>(ch.id)] =
            par_->domain_of[static_cast<std::size_t>(ch.src)];
    }
    par_->task = [this](int w) {
        domainCycle(par_->domains[static_cast<std::size_t>(w)],
                    par_->now);
    };
    par_->pool = std::make_unique<sim::WorkerPool>(d);
}

void
FlitNetwork::reset()
{
    MT_ASSERT(live_pkts_ == 0 && in_flight_ == 0 && !cycle_armed_,
              "flit network reset mid-run: ", live_pkts_,
              " live packets, ", in_flight_, " flits in flight");
    Network::reset();
    for (Router &r : routers_) {
        for (auto &iu : r.inputs) {
            for (auto &ivc : iu.vcs) {
                ivc.fifo.clear();
                ivc.out_channel = -1;
                ivc.out_vc = -1;
            }
        }
        for (auto &ou : r.outputs) {
            for (auto &ovc : ou.vcs) {
                ovc.owner_input = -1;
                ovc.owner_vc = -1;
                ovc.credits = cfg_.vc_buffer_depth;
            }
            ou.rr = 0;
        }
        r.buffered = 0;
        r.inj_active = 0;
        r.queued = false;
        r.occ_sampled = 0;
    }
    std::fill(channel_flits_.begin(), channel_flits_.end(), 0);
    std::fill(prof_routers_.begin(), prof_routers_.end(),
              obs::RouterProfile{});
    std::fill(channel_msgs_.begin(), channel_msgs_.end(), 0);
    std::fill(channel_queue_.begin(), channel_queue_.end(), 0);
    std::fill(trace_span_.begin(), trace_span_.end(), BusySpan{});
    for (auto &q : pending_)
        q.clear();
    for (auto &slots : inj_pkt_)
        std::fill(slots.begin(), slots.end(), nullptr);
    wire_line_.clear();
    credit_line_.clear();
    active_.clear();
    if (par_ != nullptr) {
        for (auto &dom : par_->domains) {
            for (int v : dom.active)
                routers_[static_cast<std::size_t>(v)].queued = false;
            dom.active.clear();
            dom.fx = DomainEffects{};
        }
        for (auto &ln : par_->lanes) {
            ln.wire.clear();
            ln.credit.clear();
            ln.wire_overflow.clear();
            ln.credit_overflow.clear();
            ln.wire_overflowed = false;
            ln.credit_overflowed = false;
        }
    }
    burst_open_ = false;
    last_cycle_tick_ = 0;
    armed_tick_ = 0;
    active_cycles_ = 0;
    prof_cycles_ = 0;
    ejected_total_ = 0;
    last_progress_cycle_ = 0;
    pkt_latency_.reset();
}

FlitNetwork::Packet *
FlitNetwork::allocPacket()
{
    if (pkt_free_.empty()) {
        pkt_slab_.push_back(std::make_unique<Packet>());
        return pkt_slab_.back().get();
    }
    Packet *pkt = pkt_free_.back();
    pkt_free_.pop_back();
    return pkt;
}

void
FlitNetwork::freePacket(Packet *pkt)
{
    pkt_free_.push_back(pkt);
}

void
FlitNetwork::injectImpl(Message msg)
{
    MT_ASSERT(!msg.route.empty(), "flit network needs a route for ",
              msg.src, "->", msg.dst);
    Packet *pkt = allocPacket();
    pkt->msg = std::move(msg);
    const auto wb = wireBreakdown(pkt->msg.bytes, cfg_.mode, cfg_);
    pkt->wire_flits = wb.total_flits;
    pkt->emitted = 0;
    pkt->ejected = 0;
    stats_.inc("messages");
    stats_.inc("payload_flits", static_cast<double>(wb.payload_flits));
    stats_.inc("head_flits", static_cast<double>(wb.head_flits));
    stats_.inc("flit_hops", static_cast<double>(wb.total_flits)
                                * static_cast<double>(
                                    pkt->msg.route.size()));
    stats_.inc("head_hops", static_cast<double>(wb.head_flits)
                                * static_cast<double>(
                                    pkt->msg.route.size()));

    if (prof_ != nullptr) {
        for (int cid : pkt->msg.route)
            ++channel_msgs_[static_cast<std::size_t>(cid)];
    }

    pkt->wrap_before.assign(pkt->msg.route.size(), 0);
    char crossed = 0;
    for (std::size_t i = 0; i < pkt->msg.route.size(); ++i) {
        pkt->wrap_before[i] = crossed;
        if (wrap_channel_[static_cast<std::size_t>(pkt->msg.route[i])])
            crossed = 1;
    }

    // The packet stays in the source's pending queue until it wins an
    // injection VC; it leaves the pool only when the tail ejects.
    pkt->injected_at = eq_.now();
    pending_[static_cast<std::size_t>(pkt->msg.src)].push_back(pkt);
    ++live_pkts_;
    markActive(pkt->msg.src);
    // Dense equivalence for the wakeup tick: while a burst is open
    // the dense loop has a (Priority::Low) cycle event armed for the
    // current tick, which runs after this injection and already sees
    // the packet — so a mid-burst injection must pull a sleeping
    // fast-forward back to *this* tick. Outside a burst, or when this
    // tick's cycle has already executed, the first cycle to see the
    // packet is the next tick's, exactly like the dense loop.
    const bool cycle_due_now =
        burst_open_ && last_cycle_tick_ != eq_.now();
    requestCycleAt(cycle_due_now ? eq_.now() : eq_.now() + 1);
}

void
FlitNetwork::markActive(int vertex)
{
    if (dense_)
        return;
    Router &r = routers_[static_cast<std::size_t>(vertex)];
    if (r.queued)
        return;
    r.queued = true;
    // In parallel mode the worklist is per domain, and only the
    // owning domain's worker (or the serial thread, between
    // dispatches) ever reaches a given router — so no lock.
    if (par_ != nullptr) {
        par_->domains[static_cast<std::size_t>(
                          par_->domain_of[static_cast<std::size_t>(
                              vertex)])]
            .active.push_back(vertex);
        return;
    }
    active_.push_back(vertex);
}

void
FlitNetwork::requestCycleAt(Tick when)
{
    if (cycle_armed_ && armed_tick_ <= when)
        return;
    // Either nothing is armed, or the armed wakeup is later than
    // needed (an injection landed during a fast-forward sleep): arm
    // the earlier tick and let the superseded event no-op on its
    // stale generation.
    cycle_armed_ = true;
    armed_tick_ = when;
    const std::uint64_t gen = ++arm_gen_;
    eq_.scheduleAt(
        when,
        [this, gen] {
            if (gen != arm_gen_)
                return;
            cycle();
        },
        sim::Priority::Low);
}

void
FlitNetwork::drainDelayLines(Tick now)
{
    while (!credit_line_.empty() && credit_line_.front().due <= now) {
        const CreditHop &ch = credit_line_.front();
        Router &up = routers_[static_cast<std::size_t>(
            topo_.channel(ch.cid).src)];
        int oi = chan_out_idx_[static_cast<std::size_t>(ch.cid)];
        ++up.outputs[static_cast<std::size_t>(oi)]
              .vcs[static_cast<std::size_t>(ch.vc)]
              .credits;
        credit_line_.pop_front();
    }
    while (!wire_line_.empty() && wire_line_.front().due <= now) {
        const WireHop &wh = wire_line_.front();
        const int dst = topo_.channel(wh.cid).dst;
        Router &down = routers_[static_cast<std::size_t>(dst)];
        int ii = chan_in_idx_[static_cast<std::size_t>(wh.cid)];
        down.inputs[static_cast<std::size_t>(ii)]
            .vcs[static_cast<std::size_t>(wh.vc)]
            .fifo.push_back(wh.flit);
        ++down.buffered;
        wire_line_.pop_front();
        markActive(dst);
    }
}

void
FlitNetwork::sampleChannels(std::vector<std::uint64_t> &flits_cum,
                            std::vector<std::uint64_t> &queue_now) const
{
    flits_cum = channel_flits_;
    queue_now.assign(channel_flits_.size(), 0);
    // Instantaneous queueing: flits buffered in the channel's input
    // VCs at its destination router. Flits still mid-wire belong to
    // no buffer yet and are covered by the in-flight census.
    for (std::size_t cid = 0; cid < queue_now.size(); ++cid) {
        const int ii = chan_in_idx_[cid];
        if (ii < 0)
            continue;
        const Router &down = routers_[static_cast<std::size_t>(
            topo_.channel(static_cast<int>(cid)).dst)];
        std::uint64_t depth = 0;
        for (const InputVC &vc :
             down.inputs[static_cast<std::size_t>(ii)].vcs)
            depth += vc.fifo.size();
        queue_now[cid] = depth;
    }
}

bool
FlitNetwork::vcClassAllowed(const Packet &pkt, std::uint32_t hop,
                            int vc) const
{
    if (pkt.wrap_before.empty())
        return true;
    bool upper = pkt.wrap_before[std::min<std::size_t>(
                     hop, pkt.wrap_before.size() - 1)]
                 != 0;
    std::uint32_t half = cfg_.num_vcs / 2;
    if (upper)
        return static_cast<std::uint32_t>(vc) >= half;
    return static_cast<std::uint32_t>(vc) < half;
}

void
FlitNetwork::refillInjection(int vertex, Domain *dom)
{
    auto vi = static_cast<std::size_t>(vertex);
    Router &r = routers_[vi];
    const std::size_t n_slots = inj_pkt_[vi].size();
    // Start pending packets on free injection VCs.
    for (std::size_t slot = 0; slot < n_slots; ++slot) {
        if (pending_[vi].empty())
            break;
        if (inj_pkt_[vi][slot] != nullptr)
            continue;
        int vc = static_cast<int>(slot % cfg_.num_vcs);
        Packet *pkt = pending_[vi].front();
        if (!vcClassAllowed(*pkt, 0, vc))
            continue;
        inj_pkt_[vi][slot] = pkt;
        ++r.inj_active;
        if (prof_ != nullptr) {
            if (dom != nullptr)
                dom->fx.inj_starts.push_back(pkt->msg.track_id);
            else
                prof_->onInjectStart(pkt->msg.track_id, eq_.now());
        }
        if (sink_ != nullptr && eq_.now() > pkt->injected_at) {
            // The packet waited in the source's pending queue for a
            // free injection VC: injection-side queueing.
            obs::TraceEvent qe;
            qe.kind = obs::EventKind::MsgQueue;
            qe.tick = pkt->injected_at;
            qe.duration = eq_.now() - pkt->injected_at;
            qe.node = pkt->msg.src;
            qe.peer = pkt->msg.dst;
            qe.flow = pkt->msg.flow_id;
            qe.bytes = pkt->msg.bytes;
            if (dom != nullptr)
                dom->fx.refill_events.push_back(qe);
            else
                sink_->onEvent(qe);
        }
        pending_[vi].pop_front();
    }
    // Synthesize flits lazily, keeping a small FIFO headroom.
    for (std::size_t slot = 0; slot < n_slots; ++slot) {
        Packet *pkt = inj_pkt_[vi][slot];
        if (pkt == nullptr)
            continue;
        auto unit = static_cast<std::size_t>(r.first_injection)
                    + slot / cfg_.num_vcs;
        auto &fifo = r.inputs[unit].vcs[slot % cfg_.num_vcs].fifo;
        while (fifo.size() < 4 && pkt->emitted < pkt->wire_flits) {
            Flit f;
            f.pkt = pkt;
            f.hop = 0;
            f.head = pkt->emitted == 0;
            f.tail = pkt->emitted + 1 == pkt->wire_flits;
            fifo.push_back(f);
            ++pkt->emitted;
            if (dom != nullptr)
                ++dom->fx.in_flight_delta;
            else
                ++in_flight_;
            ++r.buffered;
        }
        if (pkt->emitted == pkt->wire_flits && fifo.empty()) {
            inj_pkt_[vi][slot] = nullptr; // drained into the network
            --r.inj_active;
        }
    }
}

void
FlitNetwork::allocateVCs(int vertex)
{
    Router &r = routers_[static_cast<std::size_t>(vertex)];
    for (auto &iu : r.inputs) {
        for (auto &ivc : iu.vcs) {
            if (ivc.fifo.empty() || ivc.out_channel >= 0)
                continue;
            const Flit &f = ivc.fifo.front();
            if (!f.head)
                continue; // mid-packet flits inherit the allocation
            int cid = f.pkt->msg.route[f.hop];
            MT_ASSERT(topo_.channel(cid).src == vertex,
                      "route uses channel ", cid,
                      " absent at vertex ", vertex);
            OutputUnit &ou = r.outputs[static_cast<std::size_t>(
                chan_out_idx_[static_cast<std::size_t>(cid)])];
            int input_idx = static_cast<int>(&iu - r.inputs.data());
            int vc_idx = static_cast<int>(&ivc - iu.vcs.data());
            for (std::uint32_t ovc = 0; ovc < cfg_.num_vcs; ++ovc) {
                if (ou.vcs[ovc].owner_input >= 0)
                    continue;
                if (!vcClassAllowed(*f.pkt, f.hop,
                                    static_cast<int>(ovc)))
                    continue;
                ou.vcs[ovc].owner_input = input_idx;
                ou.vcs[ovc].owner_vc = vc_idx;
                ivc.out_channel = cid;
                ivc.out_vc = static_cast<int>(ovc);
                break;
            }
        }
    }
}

void
FlitNetwork::traverse(int vertex, Domain *dom)
{
    Router &r = routers_[static_cast<std::size_t>(vertex)];
    // The request scratch is a member (or per-domain) so a warmed
    // fabric arbitrates without allocating.
    std::vector<Req> &reqs =
        dom != nullptr ? dom->scratch : req_scratch_;
    for (auto &ou : r.outputs) {
        // Gather requesters: input VCs allocated to this output whose
        // front flit can move under the credit rules.
        reqs.clear();
        for (std::size_t ii = 0; ii < r.inputs.size(); ++ii) {
            InputUnit &iu = r.inputs[ii];
            for (std::uint32_t vc = 0; vc < cfg_.num_vcs; ++vc) {
                InputVC &ivc = iu.vcs[vc];
                if (ivc.out_channel != ou.channel || ivc.fifo.empty())
                    continue;
                const Flit &f = ivc.fifo.front();
                const OutputVC &ovc = ou.vcs[static_cast<std::size_t>(
                    ivc.out_vc)];
                std::uint32_t need = 1;
                if (f.head) {
                    // Virtual cut-through launch check at packet
                    // granularity: a head waits for enough credit to
                    // cover one whole packet (not the whole gradient
                    // message, which would insert a credit round-trip
                    // bubble between every schedule step).
                    std::uint64_t pkt_flits =
                        cfg_.packet_payload / cfg_.flit_bytes + 1;
                    need = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(
                            {f.pkt->wire_flits, pkt_flits,
                             static_cast<std::uint64_t>(
                                 cfg_.vc_buffer_depth)}));
                }
                if (ovc.credits < need) {
                    // Flit ready but blocked on downstream credits:
                    // one stall cycle charged to this router/channel.
                    if (prof_ != nullptr) {
                        ++prof_routers_[static_cast<std::size_t>(
                              vertex)]
                              .credit_stalls;
                        ++channel_queue_[static_cast<std::size_t>(
                            ou.channel)];
                    }
                    continue;
                }
                reqs.push_back(Req{static_cast<int>(ii),
                                   static_cast<int>(vc)});
            }
        }
        if (reqs.empty())
            continue;
        // Round-robin grant.
        if (prof_ != nullptr) {
            obs::RouterProfile &rp =
                prof_routers_[static_cast<std::size_t>(vertex)];
            ++rp.sa_grants;
            rp.sa_denied +=
                static_cast<std::uint64_t>(reqs.size() - 1);
        }
        std::size_t pick = ou.rr % reqs.size();
        ou.rr = (ou.rr + 1);
        Req g = reqs[pick];
        InputUnit &iu = r.inputs[static_cast<std::size_t>(g.input)];
        InputVC &ivc = iu.vcs[static_cast<std::size_t>(g.vc)];
        Flit f = ivc.fifo.front();
        ivc.fifo.pop_front();
        --r.buffered;
        int out_vc = ivc.out_vc;
        OutputVC &ovc = ou.vcs[static_cast<std::size_t>(out_vc)];
        --ovc.credits;
        ++channel_flits_[static_cast<std::size_t>(ou.channel)];
        if (sink_ != nullptr)
            noteLinkFlit(ou.channel, dom);

        if (iu.channel >= 0)
            returnCredit(iu.channel, g.vc, dom);
        if (f.tail) {
            ivc.out_channel = -1;
            ivc.out_vc = -1;
            ovc.owner_input = -1;
            ovc.owner_vc = -1;
        }

        // Ship across the wire: a fixed-delay hop on the delay line
        // (or handoff lane), applied at the head of the arrival
        // cycle.
        Flit moved = f;
        moved.hop = f.hop + 1;
        pushWire(dom, WireHop{eq_.now() + cfg_.router_pipeline
                                  + cfg_.link_latency,
                              ou.channel, out_vc, moved});
    }
}

void
FlitNetwork::eject(int vertex, Domain *dom)
{
    Router &r = routers_[static_cast<std::size_t>(vertex)];
    for (auto &iu : r.inputs) {
        if (iu.channel < 0)
            continue;
        for (std::uint32_t vc = 0; vc < cfg_.num_vcs; ++vc) {
            auto &ivc = iu.vcs[vc];
            while (!ivc.fifo.empty()) {
                const Flit &f = ivc.fifo.front();
                if (f.hop < f.pkt->msg.route.size())
                    break; // through traffic, not ours to sink
                Packet *pkt = f.pkt;
                bool tail = f.tail;
                if (prof_ != nullptr && f.head) {
                    if (dom != nullptr)
                        dom->fx.head_arrivals.push_back(
                            pkt->msg.track_id);
                    else
                        prof_->onHeadArrival(pkt->msg.track_id,
                                             eq_.now());
                }
                ivc.fifo.pop_front();
                --r.buffered;
                returnCredit(iu.channel, static_cast<int>(vc), dom);
                ++pkt->ejected;
                if (dom != nullptr) {
                    --dom->fx.in_flight_delta;
                    ++dom->fx.ejected;
                } else {
                    --in_flight_;
                    ++ejected_total_;
                    last_progress_cycle_ = active_cycles_;
                }
                if (tail) {
                    MT_ASSERT(pkt->ejected == pkt->wire_flits,
                              "tail ejected before body: ",
                              pkt->ejected, "/", pkt->wire_flits);
                    if (dom != nullptr) {
                        // Latency sample, pool return and same-tick
                        // delivery are all order-sensitive: stash
                        // them (index-aligned) for the barrier merge.
                        dom->fx.latencies.push_back(
                            static_cast<double>(eq_.now()
                                                - pkt->injected_at));
                        dom->fx.deliveries.push_back(
                            std::move(pkt->msg));
                        dom->fx.freed.push_back(pkt);
                    } else {
                        pkt_latency_.add(static_cast<double>(
                            eq_.now() - pkt->injected_at));
                        Message msg = std::move(pkt->msg);
                        freePacket(pkt);
                        --live_pkts_;
                        eq_.scheduleAfter(
                            0, [this, msg = std::move(msg)] {
                                deliverMsg(msg);
                            });
                    }
                }
            }
        }
    }
}

void
FlitNetwork::returnCredit(int cid, int vc, Domain *dom)
{
    const CreditHop hop{eq_.now() + cfg_.link_latency, cid, vc};
    if (dom == nullptr) {
        credit_line_.push_back(hop);
        return;
    }
    Handoff &ln =
        lane(dom->id,
             par_->credit_dom_[static_cast<std::size_t>(cid)]);
    // Once one push overflows, stage everything after it too so the
    // lane's FIFO order survives; the coordinator folds the staging
    // area back in (growing the ring) at the barrier.
    if (ln.credit_overflowed || !ln.credit.tryPush(hop)) {
        ln.credit_overflowed = true;
        ln.credit_overflow.push_back(hop);
    }
}

void
FlitNetwork::pushWire(Domain *dom, const WireHop &wh)
{
    if (dom == nullptr) {
        wire_line_.push_back(wh);
        return;
    }
    Handoff &ln =
        lane(dom->id,
             par_->wire_dom_[static_cast<std::size_t>(wh.cid)]);
    if (ln.wire_overflowed || !ln.wire.tryPush(wh)) {
        ln.wire_overflowed = true;
        ln.wire_overflow.push_back(wh);
    }
}

void
FlitNetwork::noteLinkFlit(int cid, Domain *dom)
{
    BusySpan &span = trace_span_[static_cast<std::size_t>(cid)];
    const Tick now = eq_.now();
    if (span.len > 0 && now == span.start + span.len) {
        ++span.len;
        return;
    }
    if (span.len > 0) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::LinkBusy;
        ev.tick = span.start;
        ev.duration = span.len;
        ev.channel = cid;
        ev.node = topo_.channel(cid).src;
        ev.peer = topo_.channel(cid).dst;
        if (dom != nullptr)
            dom->fx.traverse_events.push_back(ev);
        else
            sink_->onEvent(ev);
    }
    span.start = now;
    span.len = 1;
}

void
FlitNetwork::flushTrace()
{
    if (sink_ == nullptr)
        return;
    for (std::size_t cid = 0; cid < trace_span_.size(); ++cid) {
        BusySpan &span = trace_span_[cid];
        if (span.len == 0)
            continue;
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::LinkBusy;
        ev.tick = span.start;
        ev.duration = span.len;
        ev.channel = static_cast<int>(cid);
        ev.node = topo_.channel(static_cast<int>(cid)).src;
        ev.peer = topo_.channel(static_cast<int>(cid)).dst;
        sink_->onEvent(ev);
        span = BusySpan{};
    }
}

void
FlitNetwork::sampleRouter(int vertex)
{
    Router &r = routers_[static_cast<std::size_t>(vertex)];
    obs::RouterProfile &rp =
        prof_routers_[static_cast<std::size_t>(vertex)];
    ++r.occ_sampled;
    for (const auto &iu : r.inputs) {
        if (iu.channel < 0)
            continue; // injection FIFOs are NI-side, not buffers
        for (const auto &ivc : iu.vcs) {
            std::size_t bucket = std::min<std::size_t>(
                ivc.fifo.size(), obs::kOccupancyBuckets - 1);
            ++rp.occupancy[bucket];
        }
    }
}

void
FlitNetwork::flushProfile()
{
    if (prof_ == nullptr)
        return;
    for (std::size_t cid = 0; cid < channel_flits_.size(); ++cid) {
        obs::ChannelProfile cp;
        cp.flits = channel_flits_[cid];
        cp.messages = channel_msgs_[cid];
        // One flit crosses per cycle, so flit count doubles as the
        // busy-cycle count on this backend.
        cp.busy = channel_flits_[cid];
        cp.queue = channel_queue_[cid];
        prof_->ingestChannel(static_cast<int>(cid), cp);
    }
    for (std::size_t v = 0; v < prof_routers_.size(); ++v) {
        // Cycles the active-set scheduler skipped a router (or fast-
        // forwarded outright) are exactly the cycles its buffers were
        // all empty; fold them back in as bucket-0 samples so the
        // histogram matches a dense, every-cycle sampling run. Done
        // on a copy: flushProfile can run several times per epoch and
        // ingestRouter replaces, so the stored counters stay raw.
        obs::RouterProfile rp = prof_routers_[v];
        const Router &r = routers_[v];
        MT_ASSERT(prof_cycles_ >= r.occ_sampled,
                  "router sampled more often than cycles ran");
        rp.occupancy[0] += (prof_cycles_ - r.occ_sampled)
                           * static_cast<std::uint64_t>(
                               r.n_channel_vcs);
        prof_->ingestRouter(static_cast<int>(v), rp);
    }
    flushCombinerProfile();
}

void
FlitNetwork::applyWireArrival(const WireHop &wh)
{
    const int dst = topo_.channel(wh.cid).dst;
    Router &down = routers_[static_cast<std::size_t>(dst)];
    int ii = chan_in_idx_[static_cast<std::size_t>(wh.cid)];
    down.inputs[static_cast<std::size_t>(ii)]
        .vcs[static_cast<std::size_t>(wh.vc)]
        .fifo.push_back(wh.flit);
    ++down.buffered;
    markActive(dst);
}

void
FlitNetwork::applyCreditArrival(const CreditHop &ch)
{
    Router &up =
        routers_[static_cast<std::size_t>(topo_.channel(ch.cid).src)];
    int oi = chan_out_idx_[static_cast<std::size_t>(ch.cid)];
    ++up.outputs[static_cast<std::size_t>(oi)]
          .vcs[static_cast<std::size_t>(ch.vc)]
          .credits;
}

void
FlitNetwork::domainCycle(Domain &dom, Tick now)
{
    // Drain this domain's inbound lanes: credits first, then flits,
    // matching drainDelayLines(). Entries still in flight this cycle
    // have due > now, so the scan never races a producer's push.
    const std::size_t d = par_->domains.size();
    for (std::size_t p = 0; p < d; ++p) {
        auto &ring = lane(static_cast<int>(p), dom.id).credit;
        while (!ring.empty() && ring.front().due <= now) {
            applyCreditArrival(ring.front());
            ring.pop_front();
        }
    }
    for (std::size_t p = 0; p < d; ++p) {
        auto &ring = lane(static_cast<int>(p), dom.id).wire;
        while (!ring.empty() && ring.front().due <= now) {
            applyWireArrival(ring.front());
            ring.pop_front();
        }
    }

    if (dense_) {
        if (prof_ != nullptr) {
            for (int v = dom.lo; v < dom.hi; ++v)
                sampleRouter(v);
        }
        for (int v = dom.lo; v < dom.hi; ++v)
            eject(v, &dom);
        for (int v = dom.lo; v < dom.hi; ++v)
            refillInjection(v, &dom);
        for (int v = dom.lo; v < dom.hi; ++v)
            allocateVCs(v);
        for (int v = dom.lo; v < dom.hi; ++v)
            traverse(v, &dom);
        return;
    }
    std::sort(dom.active.begin(), dom.active.end());
    if (prof_ != nullptr) {
        for (int v : dom.active)
            sampleRouter(v);
    }
    for (int v : dom.active)
        eject(v, &dom);
    for (int v : dom.active)
        refillInjection(v, &dom);
    for (int v : dom.active)
        allocateVCs(v);
    for (int v : dom.active)
        traverse(v, &dom);
    // Compact: retire routers whose work drained this cycle.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < dom.active.size(); ++i) {
        const int v = dom.active[i];
        Router &r = routers_[static_cast<std::size_t>(v)];
        if (hasWork(r, v))
            dom.active[keep++] = v;
        else
            r.queued = false;
    }
    dom.active.resize(keep);
}

void
FlitNetwork::mergeCycleEffects(Tick now)
{
    // Fold overflow staging back into the lanes; with both endpoints
    // parked, regrowing a ring is safe.
    for (Handoff &ln : par_->lanes) {
        if (ln.wire_overflowed) {
            ln.wire.growTo(ln.wire.size() + ln.wire_overflow.size());
            for (const WireHop &wh : ln.wire_overflow) {
                bool ok = ln.wire.tryPush(wh);
                MT_ASSERT(ok, "wire lane still full after growTo");
            }
            ln.wire_overflow.clear();
            ln.wire_overflowed = false;
        }
        if (ln.credit_overflowed) {
            ln.credit.growTo(ln.credit.size()
                             + ln.credit_overflow.size());
            for (const CreditHop &ch : ln.credit_overflow) {
                bool ok = ln.credit.tryPush(ch);
                MT_ASSERT(ok, "credit lane still full after growTo");
            }
            ln.credit_overflow.clear();
            ln.credit_overflowed = false;
        }
    }

    // Replay every buffered global effect phase-major in ascending-
    // domain order: domains are contiguous ascending-router blocks,
    // so this is exactly the dense loop's emission order.
    bool progressed = false;
    for (Domain &dom : par_->domains) {
        DomainEffects &fx = dom.fx;
        if (prof_ != nullptr) {
            for (std::uint64_t tid : fx.head_arrivals)
                prof_->onHeadArrival(tid, now);
        }
        for (std::size_t i = 0; i < fx.deliveries.size(); ++i) {
            pkt_latency_.add(fx.latencies[i]);
            freePacket(fx.freed[i]);
            --live_pkts_;
            eq_.scheduleAfter(
                0, [this, msg = std::move(fx.deliveries[i])] {
                    deliverMsg(msg);
                });
        }
        in_flight_ = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(in_flight_)
            + fx.in_flight_delta);
        ejected_total_ += fx.ejected;
        if (fx.ejected > 0)
            progressed = true;
        fx.deliveries.clear();
        fx.latencies.clear();
        fx.freed.clear();
        fx.head_arrivals.clear();
        fx.in_flight_delta = 0;
        fx.ejected = 0;
    }
    if (progressed)
        last_progress_cycle_ = active_cycles_;
    for (Domain &dom : par_->domains) {
        DomainEffects &fx = dom.fx;
        if (prof_ != nullptr) {
            for (std::uint64_t tid : fx.inj_starts)
                prof_->onInjectStart(tid, now);
        }
        if (sink_ != nullptr) {
            for (const obs::TraceEvent &ev : fx.refill_events)
                sink_->onEvent(ev);
        }
        fx.inj_starts.clear();
        fx.refill_events.clear();
    }
    for (Domain &dom : par_->domains) {
        DomainEffects &fx = dom.fx;
        if (sink_ != nullptr) {
            for (const obs::TraceEvent &ev : fx.traverse_events)
                sink_->onEvent(ev);
        }
        fx.traverse_events.clear();
    }
}

void
FlitNetwork::drainAllLanes(Tick now)
{
    // Serial thread, no dispatch in flight: act as every lane's
    // consumer. Credits before flits, as in drainDelayLines().
    for (Handoff &ln : par_->lanes) {
        while (!ln.credit.empty() && ln.credit.front().due <= now) {
            applyCreditArrival(ln.credit.front());
            ln.credit.pop_front();
        }
    }
    for (Handoff &ln : par_->lanes) {
        while (!ln.wire.empty() && ln.wire.front().due <= now) {
            applyWireArrival(ln.wire.front());
            ln.wire.pop_front();
        }
    }
}

void
FlitNetwork::parallelCycle(Tick now)
{
    // Same burst accounting as the serial path (cycle() comments).
    if (burst_open_) {
        active_cycles_ +=
            static_cast<std::uint64_t>(now - last_cycle_tick_);
        if (prof_ != nullptr)
            prof_cycles_ +=
                static_cast<std::uint64_t>(now - last_cycle_tick_);
    } else {
        ++active_cycles_;
        if (prof_ != nullptr)
            ++prof_cycles_;
        burst_open_ = true;
    }
    last_cycle_tick_ = now;

    par_->now = now;
    par_->pool->dispatch(par_->task);
    mergeCycleEffects(now);

    const bool pending_work = live_pkts_ > 0;
    if (pending_work
        && active_cycles_ - last_progress_cycle_ > 4'000'000) {
        MT_PANIC("flit network made no ejection progress for 4M "
                 "cycles with ", live_pkts_, " live packets and ",
                 in_flight_, " flits in flight — deadlock");
    }
    if (!pending_work) {
        burst_open_ = false;
        // Trailing credit returns still sit in the lanes; drain them
        // at the final return's tick so a drained run ends at the
        // same eq.now() as the serial engine.
        Tick last_due = 0;
        bool have = false;
        for (const Handoff &ln : par_->lanes) {
            if (ln.credit.size() > 0) {
                last_due = std::max(last_due, ln.credit.back().due);
                have = true;
            }
        }
        if (have) {
            eq_.scheduleAt(
                last_due, [this] { drainAllLanes(eq_.now()); },
                sim::Priority::High);
        }
        return;
    }
    bool any_active = dense_;
    if (!any_active) {
        for (const Domain &dom : par_->domains) {
            if (!dom.active.empty()) {
                any_active = true;
                break;
            }
        }
    }
    if (any_active) {
        requestCycleAt(now + 1);
        return;
    }
    // Every live flit is mid-wire: sleep until the first arrival.
    Tick next = 0;
    bool found = false;
    for (const Handoff &ln : par_->lanes) {
        if (ln.wire.size() > 0) {
            const Tick due = ln.wire.front().due;
            if (!found || due < next)
                next = due;
            found = true;
        }
    }
    MT_ASSERT(found,
              "live packets with no local work and an empty wire");
    requestCycleAt(next);
}

void
FlitNetwork::cycle()
{
    cycle_armed_ = false;
    const Tick now = eq_.now();
    if (par_ != nullptr) {
        parallelCycle(now);
        return;
    }
    drainDelayLines(now);

    // Dense equivalence for the utilization denominator: every tick
    // the dense loop would have executed between the previous cycle
    // and this one counts as active (a burst), whether or not the
    // active-set loop actually ran it.
    if (burst_open_) {
        active_cycles_ +=
            static_cast<std::uint64_t>(now - last_cycle_tick_);
        if (prof_ != nullptr)
            prof_cycles_ +=
                static_cast<std::uint64_t>(now - last_cycle_tick_);
    } else {
        ++active_cycles_;
        if (prof_ != nullptr)
            ++prof_cycles_;
        burst_open_ = true;
    }
    last_cycle_tick_ = now;

    if (dense_) {
        const int n = topo_.numVertices();
        if (prof_ != nullptr) {
            for (int v = 0; v < n; ++v)
                sampleRouter(v);
        }
        for (int v = 0; v < n; ++v)
            eject(v, nullptr);
        for (int v = 0; v < n; ++v)
            refillInjection(v, nullptr);
        for (int v = 0; v < n; ++v)
            allocateVCs(v);
        for (int v = 0; v < n; ++v)
            traverse(v, nullptr);
    } else {
        // Ascending vertex order keeps every per-cycle effect (same-
        // tick delivery scheduling above all) in dense-loop order.
        std::sort(active_.begin(), active_.end());
        if (prof_ != nullptr) {
            for (int v : active_)
                sampleRouter(v);
        }
        for (int v : active_)
            eject(v, nullptr);
        for (int v : active_)
            refillInjection(v, nullptr);
        for (int v : active_)
            allocateVCs(v);
        for (int v : active_)
            traverse(v, nullptr);
        // Compact: retire routers whose work drained this cycle.
        std::size_t keep = 0;
        for (std::size_t i = 0; i < active_.size(); ++i) {
            const int v = active_[i];
            Router &r = routers_[static_cast<std::size_t>(v)];
            if (hasWork(r, v))
                active_[keep++] = v;
            else
                r.queued = false;
        }
        active_.resize(keep);
    }

    const bool pending_work = live_pkts_ > 0;
    // Watchdog: with traffic in flight, some flit must eject within
    // a generous bound or the network has deadlocked/livelocked —
    // that is a simulator or routing bug, never a user error.
    if (pending_work
        && active_cycles_ - last_progress_cycle_ > 4'000'000) {
        MT_PANIC("flit network made no ejection progress for 4M "
                 "cycles with ", live_pkts_, " live packets and ",
                 in_flight_, " flits in flight — deadlock");
    }
    if (!pending_work) {
        burst_open_ = false;
        // Trailing credit returns still sit on the delay line. Give
        // the event queue one event at the final return's tick so a
        // drained run ends at the same eq.now() as when every credit
        // was its own event.
        if (!credit_line_.empty()) {
            const Tick last_due =
                credit_line_.at(credit_line_.size() - 1).due;
            eq_.scheduleAt(
                last_due, [this] { drainDelayLines(eq_.now()); },
                sim::Priority::High);
        }
        return;
    }
    if (dense_ || !active_.empty()) {
        requestCycleAt(now + 1);
        return;
    }
    // Every live flit is mid-wire and nothing is buffered or pending
    // anywhere: the intervening ticks are provably no-ops, so sleep
    // until the first arrival instead of ticking through them.
    MT_ASSERT(!wire_line_.empty(),
              "live packets with no local work and an empty wire");
    requestCycleAt(wire_line_.front().due);
}

} // namespace multitree::net
