/**
 * @file
 * Fast flow-level network model.
 *
 * Each message reserves the channels of its route in order: on every
 * channel it starts no earlier than (a) its head's arrival from the
 * previous hop and (b) the instant the channel finished its previous
 * reservation. With virtual cut-through and equal link bandwidths the
 * tail is delivered one serialization window after the last hop's
 * start. Serialization includes the flow-control head-flit overhead,
 * so the packet-based vs message-based difference (Fig. 2, §IV-B) is
 * visible here too.
 *
 * This model preserves exactly the effects the paper's evaluation
 * depends on — per-channel serialization, queueing under contention,
 * per-hop latency, wire overhead — at a cost of O(hops) per message
 * instead of O(flits x hops) cycles, which is what lets the full
 * Fig. 9/10/11 sweeps finish on one core. Its agreement with the
 * cycle-level FlitNetwork is checked by tests and by the validation
 * bench.
 */

#ifndef MULTITREE_NET_FLOW_NETWORK_HH
#define MULTITREE_NET_FLOW_NETWORK_HH

#include <vector>

#include "net/network.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::net {

/** Event-driven per-channel serialization transport. */
class FlowNetwork : public Network
{
  public:
    FlowNetwork(sim::EventQueue &eq, const topo::Topology &topo,
                NetworkConfig cfg = {});

    void reset() override;

    void flushProfile() override;

    /** Busy time accumulated on channel @p cid (for utilization). */
    Tick channelBusy(int cid) const
    {
        return busy_time_[static_cast<std::size_t>(cid)];
    }

    /** Peak queueing delay any message saw waiting for a channel. */
    Tick maxQueueing() const { return max_queueing_; }

    void sampleChannels(std::vector<std::uint64_t> &flits_cum,
                        std::vector<std::uint64_t> &queue_now)
        const override;

  protected:
    void injectImpl(Message msg) override;

  private:
    /** Tick at which each channel becomes free. */
    std::vector<Tick> free_at_;
    /** Cumulative busy time per channel. */
    std::vector<Tick> busy_time_;
    Tick max_queueing_ = 0;

    // Profiling counters, maintained only while a profiler is
    // attached (pure observation). Ingested by flushProfile(),
    // cleared by reset().
    /** Cumulative reservation-wait cycles per channel. */
    std::vector<Tick> queue_cycles_;
    /** Messages routed over each channel. */
    std::vector<std::uint64_t> channel_msgs_;
};

} // namespace multitree::net

#endif // MULTITREE_NET_FLOW_NETWORK_HH
