/**
 * @file
 * First-order interconnect energy model.
 *
 * The paper motivates message-based flow control not only with
 * bandwidth but with control energy: every packet head pays routing
 * and arbitration logic at each hop, so collapsing a gradient stream
 * to a single head flit removes almost all of that work (§II-C,
 * §IV-B). This model charges
 *
 *   E = flit_hops * (link + buffer) + head_hops * route_arbitration
 *
 * with per-event constants representative of a 32 nm off-chip-class
 * router (absolute values are indicative; the benches report the
 * packet-vs-message *ratio*, which is constant-insensitive for the
 * head term).
 */

#ifndef MULTITREE_NET_ENERGY_HH
#define MULTITREE_NET_ENERGY_HH

#include <cstdint>

namespace multitree::net {

/** Per-event energy constants in picojoules. */
struct EnergyModel {
    double pj_link_per_flit = 2.0;   ///< wire traversal, 16 B flit
    double pj_buffer_per_flit = 1.2; ///< write+read of a VC buffer
    double pj_route_arb_per_head = 1.6; ///< route compute + VC/SW
                                        ///< arbitration per head hop
    /** Switch-resident combining: one ALU pass over one flit of a
     *  held contribution (in-network reduction; DESIGN.md §12). */
    double pj_switch_alu_per_flit = 0.8;
};

/** Energy of one simulated run, from transport hop counters. */
struct EnergyBreakdown {
    double datapath_nj = 0; ///< link + buffer energy (nJ)
    double control_nj = 0;  ///< head routing/arbitration energy (nJ)
    double switch_alu_nj = 0; ///< in-network combining ALU energy (nJ)

    double total_nj() const
    {
        return datapath_nj + control_nj + switch_alu_nj;
    }
};

/**
 * Charge @p flit_hops total flit-hops (payload + heads), @p head_hops
 * head-flit hops, and @p alu_flits switch-ALU combining passes (the
 * transport's "combiner_alu_flits" counter; 0 when in-network
 * reduction is off, preserving every legacy call site) under
 * @p model.
 */
inline EnergyBreakdown
computeEnergy(double flit_hops, double head_hops,
              double alu_flits = 0, const EnergyModel &model = {})
{
    EnergyBreakdown e;
    e.datapath_nj = flit_hops
                    * (model.pj_link_per_flit
                       + model.pj_buffer_per_flit)
                    * 1e-3;
    e.control_nj = head_hops * model.pj_route_arb_per_head * 1e-3;
    e.switch_alu_nj = alu_flits * model.pj_switch_alu_per_flit * 1e-3;
    return e;
}

} // namespace multitree::net

#endif // MULTITREE_NET_ENERGY_HH
