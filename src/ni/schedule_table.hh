/**
 * @file
 * Per-node all-reduce schedule tables — the hardware structure of the
 * co-designed network interface (§IV-A, Figs. 5 and 6).
 *
 * A Schedule (the global view of all chunk flows) is compiled into one
 * table per node. Each entry mirrors the fields of Fig. 5: an opcode
 * (Reduce/Gather), the FlowID (tree id), the Parent and Children in
 * that tree, the Step at which the NI may issue it, and the chunk
 * Size (the Start Addr is implicit in the flow id here). Entries are
 * ordered by step; the NI inspects the head of the table, checks the
 * step gate and the dependency fields, and launches DMA transfers.
 */

#ifndef MULTITREE_NI_SCHEDULE_TABLE_HH
#define MULTITREE_NI_SCHEDULE_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coll/schedule.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::ni {

/** Table opcodes (Fig. 5). NOPs are implicit in the step pacing. */
enum class Op {
    Reduce, ///< send this node's partial up the tree
    Gather, ///< broadcast the reduced chunk down the tree
};

/**
 * Width of the hardware Children field for @p topo: the NI-to-link
 * bandwidth ratio (footnote 3 of the paper) — the largest node
 * out-degree, e.g. 4 on a 2D torus (Fig. 5's four slots) and 6 on a
 * 3D torus, floored at one. Gather rows with more same-step targets
 * than the field holds split into consecutive entries.
 */
std::size_t childrenFieldWidth(const topo::Topology &topo);

/** One schedule table row. */
struct TableEntry {
    Op op = Op::Reduce;
    int flow = -1;   ///< FlowID / tree id
    int parent = -1; ///< tree parent (-1 = nil, i.e. this is the root)
    /** Reduce: dependency children. Gather: send targets this step. */
    std::vector<int> children;
    /**
     * Dependencies that must be satisfied before issue: for Reduce
     * and a root's first Gather these are the reduce-tree children
     * whose partials must have arrived; for a non-root Gather it is
     * the parent whose broadcast must have arrived (encoded as a
     * single-element vector).
     */
    std::vector<int> deps;
    bool dep_on_parent = false; ///< deps refer to a gather receive
    int step = 0;               ///< issue step (lockstep gate)
    /** Attribution phase inherited from the schedule edge; rides
     *  into every message this entry issues. */
    int phase = 0;
    std::uint64_t bytes = 0;    ///< Size field
    /** Send routes: Reduce → one route to parent; Gather → one per
     *  child, aligned with `children`. */
    std::vector<std::vector<int>> routes;
    /**
     * Aligned with `routes`: 1 when the route came from deterministic
     * topology routing (rail steering may re-pick parallel links on
     * it), 0 when the schedule pinned it explicitly (source routing,
     * §IV-B — the NI must not second-guess it).
     */
    std::vector<char> steer;
    /**
     * Repair provenance, aligned with `routes` (empty = no repair):
     * 1 when the self-healing layer rewrote the route around a
     * confirmed-dead channel. A repaired pinned route also flips its
     * steer flag: once the schedule's explicit allocation is gone,
     * the BFS replacement is ordinary deterministic routing and rail
     * steering may manage it.
     */
    std::vector<char> repaired;
    /**
     * Gather entry compiled from one fused multicast edge
     * (coll::fuseMulticast): under an in-network mode the NI issues a
     * SINGLE injection whose fan-out set is `children` with one
     * explicit route per branch — the fabric replicates where the
     * routes diverge. With in-network support off the entry degrades
     * to the ordinary one-send-per-child loop. Never set by schedules
     * that were not fused.
     */
    bool fused = false;
    /**
     * Switch-resident reduction annotation (Reduce entries only):
     * the vertex sourcing this route's final channel when two or
     * more sibling contributions of the same flow converge there
     * (-1 = no convergence). Copied onto the wire message only under
     * InNetworkMode::MulticastReduce, so every other mode is
     * bit-identical to an unannotated table.
     */
    int combine_at = -1;
    /** Sibling contributions meeting at combine_at (incl. this). */
    std::uint32_t combine_peers = 0;
};

/** The full table of one node. */
struct ScheduleTable {
    int node = -1;
    std::vector<TableEntry> entries; ///< sorted by step
};

/**
 * Compile @p sched into per-node tables, resolving empty edge routes
 * through @p topo's deterministic routing function.
 */
std::vector<ScheduleTable>
buildScheduleTables(const coll::Schedule &sched,
                    const topo::Topology &topo);

/** Render a table in the style of Fig. 5, for inspection tools. */
std::string renderTable(const ScheduleTable &table);

/**
 * Hardware cost model of the schedule-table SRAM (§V-A): entries
 * hold Op, FlowID, Parent, up to four Children, Step, Start Addr and
 * Size in 200 bits for a 64-node system; 2N entries per node.
 */
struct TableCost {
    int entries = 0;
    int bits_per_entry = 0;
    double kib = 0;
};

/** Estimate the schedule-table SRAM cost for an @p n node system. */
TableCost tableCost(int n);

} // namespace multitree::ni

#endif // MULTITREE_NI_SCHEDULE_TABLE_HH
