#include "ni/nic_engine.hh"

#include "common/logging.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace multitree::ni {

NicEngine::NicEngine(int node, net::Network &network,
                     std::uint32_t reduction_bytes_per_cycle)
    : node_(node), net_(network),
      reduction_bw_(reduction_bytes_per_cycle)
{
}

void
NicEngine::loadTable(ScheduleTable table, bool lockstep,
                     std::vector<std::uint64_t> step_estimates)
{
    MT_ASSERT(!started_ || done(), "reprogramming a busy engine: node ",
              node_, " has issued only ", next_, "/",
              table_.entries.size(), " entries");
    MT_ASSERT(table.node == node_, "table for node ", table.node,
              " loaded into engine ", node_);
    // Invalidate timers/reduction completions still in flight from
    // the previous run; they fire as no-ops.
    ++gen_;
    timer_armed_ = false;
    table_ = std::move(table);
    lockstep_ = lockstep;
    est_ = std::move(step_estimates);
    if (lockstep_) {
        MT_ASSERT(!est_.empty(),
                  "lockstep pacing needs step estimates");
    }
    next_ = 0;
    cur_step_ = 1;
    window_end_ = 0;
    started_ = false;
    nop_windows_ = 0;
    got_reduce_.clear();
    got_gather_.clear();
}

void
NicEngine::reset()
{
    loadTable(ScheduleTable{node_, {}}, false, {});
}

void
NicEngine::start()
{
    MT_ASSERT(!started_, "engine ", node_, " started twice; "
              "loadTable() a fresh schedule first");
    started_ = true;
    cur_step_ = 1;
    if (lockstep_)
        window_end_ = net_.eventQueue().now() + est_[0];
    pump();
}

bool
NicEngine::depsSatisfied(const TableEntry &e) const
{
    if (e.dep_on_parent) {
        auto it = got_gather_.find(e.flow);
        return it != got_gather_.end() && it->second;
    }
    auto it = got_reduce_.find(e.flow);
    for (int child : e.deps) {
        if (it == got_reduce_.end() || !it->second.count(child))
            return false;
    }
    return true;
}

bool
NicEngine::stepGateOpen(const TableEntry &e)
{
    if (!lockstep_)
        return true;
    auto &eq = net_.eventQueue();
    // Advance the timestep counter through elapsed windows — each
    // skipped window is an implicit NOP stall (§IV-A).
    while (cur_step_ < e.step && eq.now() >= window_end_) {
        ++cur_step_;
        ++nop_windows_;
        auto idx = static_cast<std::size_t>(cur_step_ - 1);
        std::uint64_t est = idx < est_.size() ? est_[idx] : 1;
        window_end_ = std::max(window_end_, eq.now()) + est;
    }
    if (cur_step_ >= e.step)
        return true;
    // Gate closed: re-arm a timer at the window boundary.
    if (!timer_armed_) {
        timer_armed_ = true;
        eq.scheduleAt(window_end_, [this, g = gen_] {
            if (g != gen_)
                return; // stale timer from a reprogrammed run
            timer_armed_ = false;
            pump();
        });
    }
    return false;
}

void
NicEngine::pump()
{
    if (!started_)
        return;
    while (next_ < table_.entries.size()) {
        const TableEntry &e = table_.entries[next_];
        if (!stepGateOpen(e))
            return;
        if (!depsSatisfied(e))
            return; // head-of-table stall until a message arrives
        // Issue: DMA the chunk and inject one message per target.
        for (std::size_t i = 0; i < e.children.size() || i == 0; ++i) {
            int dst;
            std::uint64_t tag;
            if (e.op == Op::Reduce) {
                dst = e.parent;
                tag = kTagReduce;
            } else {
                if (i >= e.children.size())
                    break;
                dst = e.children[i];
                tag = kTagGather;
            }
            net::Message msg;
            msg.src = table_.node;
            msg.dst = dst;
            msg.bytes = e.bytes;
            msg.route = e.routes[i];
            msg.flow_id = e.flow;
            msg.tag = tag;
            net_.inject(std::move(msg));
            if (e.op == Op::Reduce)
                break; // single parent target
        }
        ++next_;
    }
}

void
NicEngine::onMessage(const net::Message &msg)
{
    if (msg.tag == kTagReduce) {
        if (reduction_bw_ > 0) {
            // The reduction logic aggregates the arrived partial at
            // a finite rate before the dependency bit clears.
            Tick delay = ceilDiv(msg.bytes, reduction_bw_);
            int flow = msg.flow_id;
            int src = msg.src;
            net_.eventQueue().scheduleAfter(
                delay, [this, flow, src, g = gen_] {
                    if (g != gen_)
                        return; // reduction for a reprogrammed run
                    got_reduce_[flow].insert(src);
                    pump();
                });
            return;
        }
        got_reduce_[msg.flow_id].insert(msg.src);
    } else {
        got_gather_[msg.flow_id] = true;
    }
    pump();
}

} // namespace multitree::ni
