#include "ni/nic_engine.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "fault/health.hh"
#include "net/network.hh"
#include "obs/profile.hh"
#include "sim/event_queue.hh"
#include "topo/topology.hh"

namespace multitree::ni {

NicEngine::NicEngine(int node, net::Network &network,
                     std::uint32_t reduction_bytes_per_cycle)
    : node_(node), net_(network),
      reduction_bw_(reduction_bytes_per_cycle)
{
}

void
NicEngine::setReliability(const ReliabilityOptions &opts,
                          RouteFn route_fn)
{
    MT_ASSERT(!started_, "arming reliability on a running engine");
    MT_ASSERT(!opts.enabled || route_fn,
              "reliability needs an ack route provider");
    MT_ASSERT(!opts.enabled || opts.max_attempts >= 1,
              "reliability needs at least one transmission attempt");
    MT_ASSERT(!opts.enabled || opts.rto_backoff >= 1.0,
              "rto_backoff < 1 would shrink timeouts across retries");
    MT_ASSERT(!opts.enabled || opts.ack_bytes > 0,
              "acks must occupy wire bytes");
    rel_ = opts;
    route_fn_ = std::move(route_fn);
}

void
NicEngine::setRailSteering(const topo::RailGroups *groups,
                           RailPolicy policy)
{
    MT_ASSERT(!started_, "arming rail steering on a running engine");
    rails_ = (groups != nullptr && !groups->empty()) ? groups : nullptr;
    rail_policy_ = policy;
    rail_rr_.clear();
    rail_sends_.clear();
    if (rails_ != nullptr) {
        rail_rr_.assign(rails_->groups.size(), 0);
        rail_sends_.assign(
            static_cast<std::size_t>(rails_->maxRails()), 0);
    }
}

void
NicEngine::setHealthMonitor(fault::HealthMonitor *monitor)
{
    MT_ASSERT(!started_, "arming health monitoring on a running "
              "engine");
    MT_ASSERT(monitor == nullptr || rel_.enabled,
              "health monitoring consumes reliability-layer evidence; "
              "arm setReliability() first");
    health_ = monitor;
}

void
NicEngine::steerRails(std::vector<int> &route)
{
    for (int &cid : route) {
        const auto c = static_cast<std::size_t>(cid);
        if (c >= rails_->group_of.size())
            continue;
        const int gid = rails_->group_of[c];
        if (gid < 0)
            continue;
        const auto &group =
            rails_->groups[static_cast<std::size_t>(gid)];
        if (group.empty())
            continue; // every rail failed over; leave the hop as is
        std::size_t pick = 0;
        if (rail_policy_ == RailPolicy::RoundRobin) {
            pick = rail_rr_[static_cast<std::size_t>(gid)]++
                   % group.size();
        } else {
            std::uint64_t best = net_.channelBacklog(group[0]);
            for (std::size_t r = 1; r < group.size(); ++r) {
                const std::uint64_t b =
                    net_.channelBacklog(group[r]);
                if (b < best) {
                    best = b;
                    pick = r;
                }
            }
        }
        cid = group[pick];
        ++rail_sends_[pick];
    }
}

void
NicEngine::loadTable(ScheduleTable table, bool lockstep,
                     std::vector<std::uint64_t> step_estimates)
{
    MT_ASSERT(!started_ || done(), "reprogramming a busy engine: node ",
              node_, " has issued only ", next_, "/",
              table_.entries.size(), " entries with ",
              outstanding_.size(), " sends unacked and ",
              failures_.size(), " failed transfers");
    MT_ASSERT(table.node == node_, "table for node ", table.node,
              " loaded into engine ", node_);
    // Invalidate timers/reduction completions still in flight from
    // the previous run; they fire as no-ops.
    ++gen_;
    timer_armed_ = false;
    active_reductions_ = 0;
    table_ = std::move(table);
    lockstep_ = lockstep;
    est_ = std::move(step_estimates);
    if (lockstep_) {
        MT_ASSERT(!est_.empty(),
                  "lockstep pacing needs step estimates");
    }
    next_ = 0;
    cur_step_ = 1;
    window_end_ = 0;
    started_ = false;
    nop_windows_ = 0;
    // Rewind the scoreboard in place: inner vectors keep their
    // capacity, so repeat runs on a warmed engine do not allocate.
    for (auto &children : got_reduce_)
        children.clear();
    std::fill(got_gather_.begin(), got_gather_.end(), 0);
    next_seq_ = 0;
    outstanding_.clear();
    seen_.clear();
    failures_.clear();
    rc_ = ReliabilityCounters{};
    std::fill(rail_rr_.begin(), rail_rr_.end(), 0);
    std::fill(rail_sends_.begin(), rail_sends_.end(), 0);
    std::fill(chan_streak_.begin(), chan_streak_.end(), 0);
    std::fill(chan_evidence_.begin(), chan_evidence_.end(), 0);
}

void
NicEngine::reset()
{
    // Unconditional rewind: this is the bring-up and post-abort
    // recovery path, so clear the in-flight reliability window first
    // — loadTable() would refuse an engine wedged mid-run.
    outstanding_.clear();
    failures_.clear();
    started_ = false;
    loadTable(ScheduleTable{node_, {}}, false, {});
}

void
NicEngine::start()
{
    MT_ASSERT(!started_, "engine ", node_, " started twice; "
              "loadTable() a fresh schedule first");
    started_ = true;
    cur_step_ = 1;
    if (lockstep_)
        window_end_ = net_.eventQueue().now() + est_[0];
    pump();
}

void
NicEngine::ensureFlow(int flow)
{
    const auto need = static_cast<std::size_t>(flow) + 1;
    if (got_reduce_.size() < need)
        got_reduce_.resize(need);
    if (got_gather_.size() < need)
        got_gather_.resize(need, 0);
}

bool
NicEngine::gotReduce(int flow, int src) const
{
    const auto f = static_cast<std::size_t>(flow);
    if (f >= got_reduce_.size())
        return false;
    const auto &children = got_reduce_[f];
    return std::find(children.begin(), children.end(), src)
           != children.end();
}

bool
NicEngine::depsSatisfied(const TableEntry &e) const
{
    if (e.dep_on_parent) {
        const auto f = static_cast<std::size_t>(e.flow);
        return f < got_gather_.size() && got_gather_[f] != 0;
    }
    for (int child : e.deps) {
        if (!gotReduce(e.flow, child))
            return false;
    }
    return true;
}

bool
NicEngine::stepGateOpen(const TableEntry &e)
{
    if (!lockstep_)
        return true;
    auto &eq = net_.eventQueue();
    // Advance the timestep counter through elapsed windows — each
    // skipped window is an implicit NOP stall (§IV-A).
    while (cur_step_ < e.step && eq.now() >= window_end_) {
        ++cur_step_;
        ++nop_windows_;
        auto idx = static_cast<std::size_t>(cur_step_ - 1);
        std::uint64_t est = idx < est_.size() ? est_[idx] : 1;
        const Tick win_start = std::max(window_end_, eq.now());
        window_end_ = win_start + est;
        if (sink_ != nullptr) {
            obs::TraceEvent adv;
            adv.kind = obs::EventKind::StepAdvance;
            adv.tick = eq.now();
            adv.node = node_;
            adv.step = cur_step_;
            sink_->onEvent(adv);
            obs::TraceEvent nop;
            nop.kind = obs::EventKind::LockstepStall;
            nop.tick = win_start;
            nop.duration = static_cast<Tick>(est);
            nop.node = node_;
            nop.step = cur_step_;
            sink_->onEvent(nop);
        }
    }
    if (cur_step_ >= e.step)
        return true;
    // Gate closed: re-arm a timer at the window boundary.
    if (!timer_armed_) {
        timer_armed_ = true;
        eq.scheduleAt(window_end_, [this, g = gen_] {
            if (g != gen_)
                return; // stale timer from a reprogrammed run
            timer_armed_ = false;
            pump();
        });
    }
    return false;
}

void
NicEngine::pump()
{
    if (!started_)
        return;
    while (next_ < table_.entries.size()) {
        const TableEntry &e = table_.entries[next_];
        if (!stepGateOpen(e))
            return;
        if (!depsSatisfied(e))
            return; // head-of-table stall until a message arrives
        // Issue: DMA the chunk and inject one message per target.
        // Injection below is same-tick synchronous, so the profiler
        // bracket attributes every message to this table entry.
        if (prof_ != nullptr) {
            prof_->beginIssue(node_, static_cast<int>(next_), e.flow,
                              e.step, e.op == Op::Gather, e.parent,
                              e.dep_on_parent, e.deps, e.phase,
                              net_.eventQueue().now());
        }
        if (e.op == Op::Gather && e.fused
            && net_.config().in_network != net::InNetworkMode::Off) {
            // Fused multicast entry: ONE injection serves every
            // child, the fabric replicating where the per-branch
            // routes diverge. Routes are pinned by the fuser, so
            // rail steering never touches them.
            net::Message msg;
            msg.src = table_.node;
            msg.dst = e.children.front();
            msg.bytes = e.bytes;
            msg.route = e.routes.front();
            msg.mcast_dsts = e.children;
            msg.mcast_routes = e.routes;
            msg.flow_id = e.flow;
            msg.tag = kTagGather;
            msg.phase = e.phase;
            sendData(std::move(msg), false);
        } else {
        for (std::size_t i = 0; i < e.children.size() || i == 0; ++i) {
            int dst;
            std::uint64_t tag;
            if (e.op == Op::Reduce) {
                dst = e.parent;
                tag = kTagReduce;
            } else {
                if (i >= e.children.size())
                    break;
                dst = e.children[i];
                tag = kTagGather;
            }
            net::Message msg;
            msg.src = table_.node;
            msg.dst = dst;
            msg.bytes = e.bytes;
            msg.route = e.routes[i];
            if (rails_ != nullptr && i < e.steer.size()
                && e.steer[i] != 0) {
                steerRails(msg.route);
            }
            msg.flow_id = e.flow;
            msg.tag = tag;
            msg.phase = e.phase;
            if (e.op == Op::Reduce && e.combine_at >= 0
                && net_.config().in_network
                       == net::InNetworkMode::MulticastReduce) {
                // Rail steering re-picks among channels sharing
                // endpoints, so the annotated vertex still sources
                // the final hop; repaired routes are checked (and
                // demoted to unicast) by the transport.
                msg.combine_at = e.combine_at;
                msg.combine_peers = e.combine_peers;
            }
            sendData(std::move(msg),
                     i < e.steer.size() && e.steer[i] != 0);
            if (e.op == Op::Reduce)
                break; // single parent target
        }
        }
        if (prof_ != nullptr)
            prof_->endIssue();
        ++next_;
    }
}

Tick
NicEngine::rtoFor(const net::Message &msg) const
{
    // 2 x a contention-free round-trip estimate: data serialization
    // plus hop latency out, ack serialization plus hop latency back.
    // Congested fabrics exceed it; spurious retransmits are safe
    // (receiver dedup) and the backoff converges.
    const auto &cfg = net_.config();
    const Tick hop = cfg.link_latency + cfg.router_pipeline;
    std::size_t longest = msg.route.size();
    for (const auto &r : msg.mcast_routes)
        longest = std::max(longest, r.size());
    const Tick hops = static_cast<Tick>(longest);
    const Tick ser_data = ceilDiv(msg.bytes, cfg.flit_bytes) + 1;
    const Tick ser_ack = ceilDiv(rel_.ack_bytes, cfg.flit_bytes) + 1;
    const Tick rtt = ser_data + ser_ack + 2 * hops * hop;
    return std::max<Tick>(rel_.rto_min, 2 * rtt);
}

void
NicEngine::sendData(net::Message msg, bool steerable)
{
    if (!rel_.enabled) {
        net_.inject(std::move(msg));
        return;
    }
    msg.seq = ++next_seq_;
    const std::uint64_t seq = msg.seq;
    const Tick rto = rtoFor(msg);
    auto [it, inserted] = outstanding_.emplace(
        seq, Outstanding{msg, 1, 0, false, steerable, {}});
    MT_ASSERT(inserted, "sequence number reused");
    // A multicast send completes per branch: every destination must
    // ack the shared sequence number before the window entry clears.
    it->second.unacked = msg.mcast_dsts;
    net_.inject(std::move(msg));
    armTimer(seq, rto, 0);
}

void
NicEngine::armTimer(std::uint64_t seq, Tick rto, std::uint32_t epoch)
{
    net_.eventQueue().scheduleAfter(
        rto, [this, seq, rto, epoch, g = gen_] {
            if (g != gen_)
                return; // timer from a reprogrammed run
            onTimeout(seq, rto, epoch);
        });
}

void
NicEngine::onTimeout(std::uint64_t seq, Tick prev_rto,
                     std::uint32_t epoch)
{
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end())
        return; // acked before the timer fired
    Outstanding &o = it->second;
    if (o.epoch != epoch || o.parked)
        return; // superseded by a repair pass (or already parked)
    ++rc_.timeouts;
    if (!o.unacked.empty()) {
        // Multicast send: retransmit plain unicast copies to exactly
        // the destinations still missing an ack (receivers dedup on
        // the shared sequence number). Channel loss evidence is not
        // charged — every branch shares one (src, seq, tag) census
        // key, so no single branch route can be blamed precisely.
        if (o.attempts >= rel_.max_attempts) {
            for (std::size_t b = 0; b < o.msg.mcast_dsts.size();
                 ++b) {
                const int dst = o.msg.mcast_dsts[b];
                if (std::find(o.unacked.begin(), o.unacked.end(),
                              dst)
                    == o.unacked.end()) {
                    continue;
                }
                FailedTransfer ft;
                ft.src = o.msg.src;
                ft.dst = dst;
                ft.flow = o.msg.flow_id;
                ft.tag = o.msg.tag;
                ft.seq = o.msg.seq;
                ft.bytes = o.msg.bytes;
                ft.attempts = o.attempts;
                ft.route = o.msg.mcast_routes[b];
                failures_.push_back(std::move(ft));
            }
            outstanding_.erase(it);
            return;
        }
        ++o.attempts;
        for (std::size_t b = 0; b < o.msg.mcast_dsts.size(); ++b) {
            const int dst = o.msg.mcast_dsts[b];
            if (std::find(o.unacked.begin(), o.unacked.end(), dst)
                == o.unacked.end()) {
                continue;
            }
            ++rc_.retransmits;
            net::Message copy;
            copy.src = o.msg.src;
            copy.dst = dst;
            copy.bytes = o.msg.bytes;
            copy.route = o.msg.mcast_routes[b];
            copy.flow_id = o.msg.flow_id;
            copy.tag = o.msg.tag;
            copy.seq = o.msg.seq;
            copy.attempt = o.attempts - 1;
            copy.phase = o.msg.phase;
            if (sink_ != nullptr) {
                obs::TraceEvent ev;
                ev.kind = obs::EventKind::MsgRetransmit;
                ev.tick = net_.eventQueue().now();
                ev.node = copy.src;
                ev.peer = copy.dst;
                ev.flow = copy.flow_id;
                ev.bytes = copy.bytes;
                ev.tag = copy.tag;
                ev.seq = copy.seq;
                ev.attempt = copy.attempt;
                ev.phase = copy.phase;
                sink_->onEvent(ev);
            }
            net_.inject(std::move(copy));
        }
        const auto backed =
            static_cast<Tick>(static_cast<double>(prev_rto)
                              * rel_.rto_backoff);
        armTimer(seq, std::max<Tick>(backed, prev_rto + 1), o.epoch);
        return;
    }
    // Census-corroborated loss evidence: faults drop messages only
    // at injection, so a copy that is neither still in flight nor in
    // the delivered census was genuinely lost on the data route. A
    // delivered copy whose ack went missing is blamed by the
    // receiver (the only witness of the ack route it picked);
    // charging the data route here would condemn healthy links for
    // every ack-leg loss. Still-moving copies are congestion, which
    // exonerates nothing and accuses nothing.
    if (!net_.dataInFlight(node_, seq, o.msg.tag)
        && !net_.everDelivered(node_, seq, o.msg.tag))
        noteRoundTripFailure(o.msg.route);
    // Steerable transfers re-pick their rails per retry: a retry
    // over a parallel rail dodges a dead one before any verdict
    // exists, and its success exonerates the shared hops of the
    // failed route — the evidence that isolates the dead rail.
    if (o.steerable && rails_ != nullptr)
        steerRails(o.msg.route);
    if (health_ != nullptr
        && health_->firstDeadOn(o.msg.route) >= 0) {
        // Fast-fail: this retransmit would cross a channel already
        // confirmed dead. Park instead of burning backoff budget —
        // the repair pass re-issues it over a live route, or the run
        // aborts structurally with the transfer still open.
        ++rc_.retx_into_dead_link;
        o.parked = true;
        ++o.epoch;
        return;
    }
    if (o.attempts >= rel_.max_attempts) {
        // Retries exhausted: record the failure and stop. done()
        // stays false, which the runtime watchdog turns into a
        // structured abort with this evidence.
        FailedTransfer ft;
        ft.src = o.msg.src;
        ft.dst = o.msg.dst;
        ft.flow = o.msg.flow_id;
        ft.tag = o.msg.tag;
        ft.seq = o.msg.seq;
        ft.bytes = o.msg.bytes;
        ft.attempts = o.attempts;
        ft.route = o.msg.route;
        failures_.push_back(std::move(ft));
        outstanding_.erase(it);
        return;
    }
    ++o.attempts;
    ++rc_.retransmits;
    net::Message copy = o.msg;
    copy.attempt = o.attempts - 1;
    if (sink_ != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::MsgRetransmit;
        ev.tick = net_.eventQueue().now();
        ev.node = copy.src;
        ev.peer = copy.dst;
        ev.flow = copy.flow_id;
        ev.bytes = copy.bytes;
        ev.tag = copy.tag;
        ev.seq = copy.seq;
        ev.attempt = copy.attempt;
        ev.phase = copy.phase;
        sink_->onEvent(ev);
    }
    net_.inject(std::move(copy));
    const auto backed =
        static_cast<Tick>(static_cast<double>(prev_rto)
                          * rel_.rto_backoff);
    armTimer(seq, std::max<Tick>(backed, prev_rto + 1), o.epoch);
}

void
NicEngine::sendAck(const net::Message &msg)
{
    net::Message ack;
    ack.src = node_;
    ack.dst = msg.src;
    ack.bytes = rel_.ack_bytes;
    ack.route = route_fn_(node_, msg.src);
    if (rails_ != nullptr)
        steerRails(ack.route);
    // Remember the route so a later duplicate of this transfer can
    // blame exactly where the ack was lost (see onMessage).
    seen_[{msg.src, msg.seq}] = ack.route;
    ack.flow_id = msg.flow_id;
    ack.tag = kTagAck;
    ack.seq = msg.seq;
    ack.phase = msg.phase;
    ++rc_.acks_sent;
    if (sink_ != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::MsgAck;
        ev.tick = net_.eventQueue().now();
        ev.node = node_;
        ev.peer = msg.src;
        ev.flow = msg.flow_id;
        ev.bytes = rel_.ack_bytes;
        ev.tag = kTagAck;
        ev.seq = msg.seq;
        ev.phase = msg.phase;
        sink_->onEvent(ev);
    }
    net_.inject(std::move(ack));
}

void
NicEngine::onMessage(const net::Message &msg)
{
    if (rel_.enabled) {
        if (msg.tag == kTagAck) {
            if (msg.corrupted)
                return; // bad checksum: sender will retransmit
            auto it = outstanding_.find(msg.seq);
            if (it != outstanding_.end()) {
                Outstanding &o = it->second;
                if (!o.unacked.empty()) {
                    // One branch of a multicast send completed its
                    // round trip; the window entry clears only when
                    // the last branch acks.
                    auto u = std::find(o.unacked.begin(),
                                       o.unacked.end(), msg.src);
                    if (u != o.unacked.end()) {
                        for (std::size_t b = 0;
                             b < o.msg.mcast_dsts.size(); ++b) {
                            if (o.msg.mcast_dsts[b] == msg.src) {
                                noteRoundTripSuccess(
                                    o.msg.mcast_routes[b]);
                            }
                        }
                        noteRoundTripSuccess(msg.route);
                        o.unacked.erase(u);
                    }
                    if (o.unacked.empty())
                        outstanding_.erase(it);
                    return;
                }
                // A completed round trip exonerates every channel it
                // crossed: the data route out, the ack route back.
                noteRoundTripSuccess(o.msg.route);
                noteRoundTripSuccess(msg.route);
                outstanding_.erase(it);
            }
            return;
        }
        if (msg.corrupted) {
            // Checksum failure: discard silently; no ack means the
            // sender's timer retransmits the pristine copy.
            ++rc_.corrupt_discarded;
            return;
        }
        // A duplicate proves the ack already returned for this
        // transfer failed to stop the sender's timer. Drops happen
        // only at injection, so when that ack is neither still in
        // flight nor in the delivered census it died on the route
        // this engine chose for it — and this engine is the only
        // witness of that route, so it charges the blame exactly.
        // (Senders cannot tell the two legs apart and stay silent
        // on delivered data; see onTimeout.)
        auto seen = seen_.find({msg.src, msg.seq});
        const bool duplicate = seen != seen_.end();
        if (duplicate && !net_.dataInFlight(node_, msg.seq, kTagAck)
            && !net_.everDelivered(node_, msg.seq, kTagAck))
            noteRoundTripFailure(seen->second);
        // Ack first (even duplicates — the original ack may have
        // been lost), then dedup retransmitted copies.
        sendAck(msg);
        if (duplicate) {
            ++rc_.duplicates;
            return;
        }
    }
    if (accept_)
        accept_(msg);
    if (msg.tag == kTagReduce) {
        if (reduction_bw_ > 0) {
            // The reduction logic aggregates the arrived partial at
            // a finite rate before the dependency bit clears.
            Tick delay = ceilDiv(msg.bytes, reduction_bw_);
            if (prof_ != nullptr) {
                prof_->onReduction(node_, msg.src, msg.flow_id,
                                   net_.eventQueue().now(), delay);
            }
            if (sink_ != nullptr) {
                obs::TraceEvent ev;
                ev.kind = obs::EventKind::ReductionBusy;
                ev.tick = net_.eventQueue().now();
                ev.duration = delay;
                ev.node = node_;
                ev.peer = msg.src;
                ev.flow = msg.flow_id;
                ev.bytes = msg.bytes;
                sink_->onEvent(ev);
            }
            int flow = msg.flow_id;
            int src = msg.src;
            ++active_reductions_;
            net_.eventQueue().scheduleAfter(
                delay, [this, flow, src, g = gen_] {
                    if (g != gen_)
                        return; // reduction for a reprogrammed run
                    --active_reductions_;
                    ensureFlow(flow);
                    got_reduce_[static_cast<std::size_t>(flow)]
                        .push_back(src);
                    pump();
                });
            return;
        }
        ensureFlow(msg.flow_id);
        got_reduce_[static_cast<std::size_t>(msg.flow_id)].push_back(
            msg.src);
    } else {
        ensureFlow(msg.flow_id);
        got_gather_[static_cast<std::size_t>(msg.flow_id)] = 1;
    }
    pump();
}

void
NicEngine::noteRoundTripFailure(const std::vector<int> &route)
{
    const Tick now = net_.eventQueue().now();
    // Explain-away attribution: once any hop of the failed route
    // carries a confirmed dead verdict, that verdict fully explains
    // the failure — charge the evidence to the dead hop(s) and leave
    // the healthy channels' streaks untouched. Without this, a storm
    // of doomed transfers sharing one dead hop walks every channel
    // of their routes over the threshold.
    if (health_ != nullptr && health_->firstDeadOn(route) >= 0) {
        // The failure is already explained: charge the cumulative
        // evidence to the confirmed-dead hop(s) alone and leave the
        // healthy channels' streaks untouched, or the storm of
        // doomed transfers sharing one dead hop walks every channel
        // of their routes over the threshold.
        for (int cid : route) {
            const auto c = static_cast<std::size_t>(cid);
            if (c >= chan_evidence_.size())
                chan_evidence_.resize(c + 1, 0);
            if (health_->confirmedDead(cid))
                ++chan_evidence_[c];
        }
        return;
    }
    for (int cid : route) {
        const auto c = static_cast<std::size_t>(cid);
        if (c >= chan_streak_.size()) {
            chan_streak_.resize(c + 1, 0);
            chan_evidence_.resize(c + 1, 0);
        }
        ++chan_streak_[c];
        ++chan_evidence_[c];
    }
    if (health_ == nullptr)
        return;
    // Report the hops ranked by the fleet-wide blame already massed
    // against them. One engine cannot tell the hops of its failed
    // route apart — their streaks rise in lockstep — but the dead
    // hop is the one every failing route shares, so it out-ranks its
    // route-mates and crosses the threshold first. Its verdict then
    // explains the failure: the remaining hops go unreported, and
    // the verdict handler resets their streaks.
    std::vector<int> ranked(route);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [this](int a, int b) {
                         return health_->totalEvidence(a)
                                > health_->totalEvidence(b);
                     });
    for (int cid : ranked) {
        health_->reportEvidence(
            cid, chan_streak_[static_cast<std::size_t>(cid)], now);
        if (health_->confirmedDead(cid))
            return;
    }
}

void
NicEngine::resetStreaksExcept(int channel)
{
    for (std::size_t c = 0; c < chan_streak_.size(); ++c) {
        if (static_cast<int>(c) != channel)
            chan_streak_[c] = 0;
    }
}

void
NicEngine::noteRoundTripSuccess(const std::vector<int> &route)
{
    if (chan_streak_.empty())
        return;
    for (int cid : route) {
        const auto c = static_cast<std::size_t>(cid);
        if (c < chan_streak_.size())
            chan_streak_[c] = 0;
    }
}

bool
NicEngine::railsCanDodge(const std::vector<int> &route) const
{
    if (rails_ == nullptr)
        return false;
    for (int cid : route) {
        if (!health_->confirmedDead(cid))
            continue;
        const auto c = static_cast<std::size_t>(cid);
        if (c >= rails_->group_of.size())
            return false;
        const int gid = rails_->group_of[c];
        if (gid < 0)
            return false;
        bool live = false;
        for (int sib :
             rails_->groups[static_cast<std::size_t>(gid)]) {
            if (!health_->confirmedDead(sib)) {
                live = true;
                break;
            }
        }
        if (!live)
            return false;
    }
    return true;
}

std::size_t
NicEngine::parkedCount() const
{
    std::size_t n = 0;
    for (const auto &[seq, o] : outstanding_) {
        if (o.parked)
            ++n;
    }
    return n;
}

RepairStats
NicEngine::repairAndResume(const RerouteFn &reroute)
{
    MT_ASSERT(health_ != nullptr,
              "repairAndResume without a health monitor");
    RepairStats st;
    // Pending table entries: rewrite routes that cross the dead set.
    // Rail-steerable routes whose dead hops all have live parallel
    // siblings are left alone — issue-time steering dodges for free.
    for (std::size_t idx = next_; idx < table_.entries.size();
         ++idx) {
        TableEntry &e = table_.entries[idx];
        for (std::size_t i = 0; i < e.routes.size(); ++i) {
            std::vector<int> &r = e.routes[i];
            if (health_->firstDeadOn(r) < 0)
                continue;
            const bool steerable =
                i < e.steer.size() && e.steer[i] != 0;
            if (steerable && railsCanDodge(r))
                continue;
            if (!reroute)
                continue; // failover-only: no route repair
            const int dst =
                e.op == Op::Reduce ? e.parent : e.children[i];
            auto fixed = reroute(node_, dst);
            if (!fixed)
                continue; // disconnected: the issue parks later
            r = std::move(*fixed);
            ++st.routes_repaired;
            if (e.repaired.size() < e.routes.size())
                e.repaired.resize(e.routes.size(), 0);
            e.repaired[i] = 1;
            if (!steerable) {
                // A repaired source route is pinned no more: the BFS
                // replacement is ordinary deterministic routing, so
                // flag it steerable (provenance stays in `repaired`).
                ++st.pinned_repairs;
                if (e.steer.size() < e.routes.size())
                    e.steer.resize(e.routes.size(), 0);
                e.steer[i] = 1;
            }
        }
    }
    // Open transfers: re-issue everything whose last-attempted route
    // crosses the dead set, over a re-steered (the groups are already
    // masked) or repaired route, with a fresh attempt budget. The
    // epoch bump turns any timer armed before the repair into a
    // no-op.
    for (auto &[seq, o] : outstanding_) {
        if (health_->firstDeadOn(o.msg.route) < 0)
            continue;
        std::vector<int> route = o.msg.route;
        if (o.steerable && rails_ != nullptr)
            steerRails(route);
        if (health_->firstDeadOn(route) >= 0 && reroute) {
            auto fixed = reroute(node_, o.msg.dst);
            if (fixed) {
                route = std::move(*fixed);
                ++st.routes_repaired;
                if (!o.steerable)
                    ++st.pinned_repairs;
            }
        }
        ++o.epoch;
        if (health_->firstDeadOn(route) >= 0) {
            // No live path: park (or stay parked). The transfer
            // stays open, so done() is false and the watchdog names
            // it when the run aborts.
            o.parked = true;
            continue;
        }
        o.msg.route = std::move(route);
        o.attempts = 1;
        o.parked = false;
        ++st.resumed;
        net::Message copy = o.msg;
        copy.attempt = 1; // on the wire: not the original; dedup by seq
        const Tick rto = rtoFor(copy);
        net_.inject(std::move(copy));
        armTimer(seq, rto, o.epoch);
    }
    return st;
}

std::string
NicEngine::describeStall() const
{
    if (done())
        return {};
    std::ostringstream oss;
    oss << "node " << node_ << ": issued " << next_ << "/"
        << table_.entries.size();
    if (next_ < table_.entries.size()) {
        const TableEntry &e = table_.entries[next_];
        oss << ", blocked on "
            << (e.op == Op::Reduce ? "Reduce" : "Gather") << " flow "
            << e.flow << " step " << e.step;
        if (e.dep_on_parent) {
            const auto f = static_cast<std::size_t>(e.flow);
            if (f >= got_gather_.size() || got_gather_[f] == 0)
                oss << " awaiting gather from parent " << e.parent;
        } else {
            std::vector<int> missing;
            for (int child : e.deps) {
                if (!gotReduce(e.flow, child))
                    missing.push_back(child);
            }
            if (!missing.empty()) {
                oss << " awaiting reduce from child(ren)";
                for (int c : missing)
                    oss << " " << c;
            }
        }
    }
    if (!outstanding_.empty()) {
        oss << ", " << outstanding_.size() << " send(s) unacked";
        const std::size_t parked = parkedCount();
        if (parked > 0)
            oss << " (" << parked << " parked over dead channels)";
        const auto &[seq, o] = *outstanding_.begin();
        oss << " (oldest: seq " << seq << " to node " << o.msg.dst
            << ", attempt " << o.attempts
            << (o.parked ? ", parked" : "") << ")";
    }
    for (const auto &f : failures_) {
        oss << ", FAILED seq " << f.seq << " " << f.src << "->"
            << f.dst << " flow " << f.flow << " after " << f.attempts
            << " attempts";
    }
    return oss.str();
}

} // namespace multitree::ni
