/**
 * @file
 * The co-designed network-interface engine (§IV-A, Fig. 6).
 *
 * One engine per node executes that node's schedule table in order:
 * the head entry is inspected, its step is compared against the
 * timestep counter, its Parent/Children dependencies are checked
 * against arrived messages, and on success the DMA engine (modelled
 * as an immediate injection into the network backend) ships the
 * chunk. Arriving Reduce messages feed the reduction logic and clear
 * dependency bits; arriving Gather messages clear the parent
 * dependence.
 *
 * Lockstep pacing: when the schedule requests it (MultiTree), the
 * timestep counter only advances after the lockstep down-counter —
 * loaded with the estimated serialization time of the step's chunk
 * (footnote 4) — expires, inserting implicit NOPs for steps in which
 * this node has nothing to send. No global synchronization is used.
 */

#ifndef MULTITREE_NI_NIC_ENGINE_HH
#define MULTITREE_NI_NIC_ENGINE_HH

#include <set>
#include <unordered_map>
#include <vector>

#include "common/units.hh"
#include "ni/schedule_table.hh"

namespace multitree::sim {
class EventQueue;
} // namespace multitree::sim

namespace multitree::net {
class Network;
struct Message;
} // namespace multitree::net

namespace multitree::ni {

/** Message tag values distinguishing the two phases on the wire. */
enum : std::uint64_t {
    kTagReduce = 0,
    kTagGather = 1,
};

/**
 * Per-node schedule execution engine.
 *
 * Engines are persistent hardware: one is built per node when the
 * fabric comes up and reused for every collective. loadTable() swaps
 * in a fresh compiled table (the software reprogramming the NI SRAM)
 * and rewinds all per-run state, so back-to-back collectives replay
 * from identical initial conditions.
 */
class NicEngine
{
  public:
    /**
     * @param node The node this engine serves (message dispatch id).
     * @param network Transport to inject into.
     * @param reduction_bytes_per_cycle Aggregation throughput of the
     *        attached accelerator's reduction logic (Fig. 6 step 4);
     *        0 models the paper's assumption of sufficient compute
     *        bandwidth (aggregation is free).
     */
    NicEngine(int node, net::Network &network,
              std::uint32_t reduction_bytes_per_cycle = 0);

    /**
     * Program this node's schedule table for the next run and rewind
     * all per-run state (timestep counter, dependency scoreboard,
     * NOP statistics). @pre the engine is idle: never started, or
     * done() with no pending lockstep timer.
     *
     * @param table This node's compiled schedule table.
     * @param lockstep Enable the NOP/down-counter step pacing.
     * @param step_estimates Per-step serialization estimates in
     *        cycles (index 0 = step 1); required when lockstep.
     */
    void loadTable(ScheduleTable table, bool lockstep,
                   std::vector<std::uint64_t> step_estimates);

    /** Drop the loaded table and rewind per-run state. */
    void reset();

    /** Begin issuing at the current simulation time. */
    void start();

    /** Deliver an arriving message to this node's reduction logic. */
    void onMessage(const net::Message &msg);

    /** Whether every table entry has been issued. */
    bool done() const { return next_ == table_.entries.size(); }

    /** Entries issued so far. */
    std::size_t issued() const { return next_; }

    /** Number of lockstep NOP windows this node sat through. */
    std::uint64_t nopWindows() const { return nop_windows_; }

    /** The node this engine serves. */
    int node() const { return node_; }

  private:
    /** Issue every ready entry at the table head; re-arms timers. */
    void pump();

    /** Whether @p e's dependencies are satisfied. */
    bool depsSatisfied(const TableEntry &e) const;

    /** Advance the timestep counter to cover @p step if allowed. */
    bool stepGateOpen(const TableEntry &e);

    int node_;
    net::Network &net_;
    std::uint32_t reduction_bw_;
    ScheduleTable table_;
    bool lockstep_ = false;
    std::vector<std::uint64_t> est_;

    std::size_t next_ = 0; ///< head-of-table pointer
    int cur_step_ = 1;     ///< timestep counter
    Tick window_end_ = 0;  ///< lockstep down-counter expiry
    bool timer_armed_ = false;
    bool started_ = false;
    std::uint64_t nop_windows_ = 0;
    /** Run generation; pending timer/reduction events from a
     *  finished run carry the old value and turn into no-ops. */
    std::uint64_t gen_ = 0;

    /** flow → reduce children received so far. */
    std::unordered_map<int, std::set<int>> got_reduce_;
    /** flow → gather received flag. */
    std::unordered_map<int, bool> got_gather_;
};

} // namespace multitree::ni

#endif // MULTITREE_NI_NIC_ENGINE_HH
