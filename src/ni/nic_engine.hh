/**
 * @file
 * The co-designed network-interface engine (§IV-A, Fig. 6).
 *
 * One engine per node executes that node's schedule table in order:
 * the head entry is inspected, its step is compared against the
 * timestep counter, its Parent/Children dependencies are checked
 * against arrived messages, and on success the DMA engine (modelled
 * as an immediate injection into the network backend) ships the
 * chunk. Arriving Reduce messages feed the reduction logic and clear
 * dependency bits; arriving Gather messages clear the parent
 * dependence.
 *
 * Lockstep pacing: when the schedule requests it (MultiTree), the
 * timestep counter only advances after the lockstep down-counter —
 * loaded with the estimated serialization time of the step's chunk
 * (footnote 4) — expires, inserting implicit NOPs for steps in which
 * this node has nothing to send. No global synchronization is used.
 *
 * Reliability (opt-in, off by default): when enabled, every data
 * message carries a per-sender sequence number and is held in an
 * outstanding window until the receiver's ack returns. Retransmission
 * timers live on the shared sim::EventQueue (the queue is the timing
 * wheel); a timeout retransmits with exponential backoff up to a
 * bounded attempt count, after which the transfer is recorded as
 * failed and surfaces through the runtime's watchdog. Receivers
 * discard corrupted arrivals (modelled checksum failure — no ack, so
 * the sender retries) and deduplicate retransmitted copies, re-acking
 * them in case the original ack was lost. With the knob off, the
 * issue path is bit-identical to the lossless engine.
 */

#ifndef MULTITREE_NI_NIC_ENGINE_HH
#define MULTITREE_NI_NIC_ENGINE_HH

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hh"
#include "net/network.hh"
#include "ni/schedule_table.hh"

namespace multitree::sim {
class EventQueue;
} // namespace multitree::sim

namespace multitree::topo {
struct RailGroups;
} // namespace multitree::topo

namespace multitree::fault {
class HealthMonitor;
} // namespace multitree::fault

namespace multitree::ni {

/** Message tag values distinguishing the phases on the wire. */
enum : std::uint64_t {
    kTagReduce = 0,
    kTagGather = 1,
    kTagAck = 2, ///< reliability acknowledgement (not schedule data)
};

/** End-to-end reliability knobs (runtime::RunOptions::reliability). */
struct ReliabilityOptions {
    /** Master switch; when false every other field is ignored and
     *  the engine behaves bit-identically to the lossless design. */
    bool enabled = false;
    /** Floor for the retransmission timeout in cycles; the per-
     *  message timeout is max(rto_min, 2 x estimated RTT). */
    Tick rto_min = 4096;
    /** Exponential backoff factor applied per retry. */
    double rto_backoff = 2.0;
    /** Transmission attempt bound (original + retries). Exhausting
     *  it records a failed transfer and wedges the run — surfaced
     *  structurally by the runtime watchdog. */
    std::uint32_t max_attempts = 8;
    /** Ack wire size in bytes (one flit by default). */
    std::uint32_t ack_bytes = 16;
};

/**
 * How the engine distributes traffic over parallel ("rail") links.
 * Only hops whose route came from deterministic topology routing are
 * re-steered; explicitly allocated source routes (§IV-B) are pinned.
 */
enum class RailPolicy {
    RoundRobin, ///< stripe sends across rails per source engine
    Backlog,    ///< pick the rail with the least outstanding bytes
};

/** One transfer whose retries were exhausted (watchdog evidence). */
struct FailedTransfer {
    int src = -1;
    int dst = -1;
    int flow = -1;
    std::uint64_t tag = 0;
    std::uint64_t seq = 0;
    std::uint64_t bytes = 0;
    std::uint32_t attempts = 0;
    std::vector<int> route;
};

/** Per-engine reliability counters (zeroed by loadTable/reset). */
struct ReliabilityCounters {
    std::uint64_t retransmits = 0;       ///< copies re-injected
    std::uint64_t timeouts = 0;          ///< timer expiries observed
    std::uint64_t acks_sent = 0;         ///< data arrivals acked
    std::uint64_t duplicates = 0;        ///< retransmit copies deduped
    std::uint64_t corrupt_discarded = 0; ///< checksum failures dropped
    /** Retransmits that would have crossed a confirmed-dead channel;
     *  the fast-fail path parks these instead of burning backoff
     *  budget on a link the health monitor already gave up on. */
    std::uint64_t retx_into_dead_link = 0;
};

/** Outcome of one repairAndResume() pass over an engine. */
struct RepairStats {
    std::uint64_t routes_repaired = 0; ///< routes rewritten via BFS
    std::uint64_t pinned_repairs = 0;  ///< pinned source routes among them
    std::uint64_t resumed = 0;         ///< open transfers re-issued
};

/**
 * Per-node schedule execution engine.
 *
 * Engines are persistent hardware: one is built per node when the
 * fabric comes up and reused for every collective. loadTable() swaps
 * in a fresh compiled table (the software reprogramming the NI SRAM)
 * and rewinds all per-run state, so back-to-back collectives replay
 * from identical initial conditions.
 */
class NicEngine
{
  public:
    /** Deterministic route provider for ack return paths. */
    using RouteFn = std::function<std::vector<int>(int src, int dst)>;
    /** Dead-set-avoiding route provider used by route repair; may
     *  return std::nullopt when the dead set disconnects the pair. */
    using RerouteFn =
        std::function<std::optional<std::vector<int>>(int src,
                                                      int dst)>;
    /** Invoked once per accepted data message (post dedup/checksum);
     *  the runtime's data plane and trace hang off this. */
    using AcceptFn = std::function<void(const net::Message &)>;

    /**
     * @param node The node this engine serves (message dispatch id).
     * @param network Transport to inject into.
     * @param reduction_bytes_per_cycle Aggregation throughput of the
     *        attached accelerator's reduction logic (Fig. 6 step 4);
     *        0 models the paper's assumption of sufficient compute
     *        bandwidth (aggregation is free).
     */
    NicEngine(int node, net::Network &network,
              std::uint32_t reduction_bytes_per_cycle = 0);

    /**
     * Arm the end-to-end reliability layer. @p route_fn supplies the
     * ack return route (the engine is topology-agnostic). Call once
     * at fabric bring-up, before the first loadTable().
     */
    void setReliability(const ReliabilityOptions &opts,
                        RouteFn route_fn);

    /**
     * Arm rail-aware striping over @p groups (parallel-link structure
     * of the fabric; must outlive the engine). A null or empty table
     * disarms steering. Call at fabric bring-up, like
     * setReliability().
     */
    void setRailSteering(const topo::RailGroups *groups,
                         RailPolicy policy);

    /**
     * Attach (or detach, with nullptr) the link-health monitor. With
     * one attached the engine reports its per-channel failure
     * streaks (census-corroborated timeout evidence) and fast-fails
     * retransmits into confirmed-dead channels: the transfer parks —
     * stays open, timer disarmed — until the runtime's repair pass
     * re-issues it or the run aborts structurally. Detached (the
     * recovery-off default) the engine is tick-identical to the
     * monitor-less design. Call at bring-up, like setReliability().
     */
    void setHealthMonitor(fault::HealthMonitor *monitor);

    /**
     * Sends this engine placed on each rail index this run (across
     * all rail groups; ungrouped hops are not counted). Empty when
     * steering is disarmed.
     */
    const std::vector<std::uint64_t> &railSends() const
    {
        return rail_sends_;
    }

    /** Register the accepted-data sink (may be null). */
    void onAccept(AcceptFn fn) { accept_ = std::move(fn); }

    /**
     * Attach (or detach, with nullptr) the lifecycle trace sink for
     * NI-level events: timestep advances, lockstep NOP stalls,
     * reduction-unit occupancy, retransmissions and acks. Same
     * overhead contract as net::Network::setTraceSink.
     */
    void setTraceSink(obs::TraceSink *sink) { sink_ = sink; }

    /**
     * Attach (or detach, with nullptr) the latency-attribution
     * profiler. The engine brackets every schedule-table issue so the
     * profiler can tie injected messages to their table entries, and
     * reports finite-rate reductions. Same overhead contract as
     * net::Network::setProfiler.
     */
    void setProfiler(obs::Profiler *prof) { prof_ = prof; }

    /**
     * Program this node's schedule table for the next run and rewind
     * all per-run state (timestep counter, dependency scoreboard,
     * NOP statistics, reliability window). @pre the engine is idle:
     * never started, or done() with no pending lockstep timer.
     *
     * @param table This node's compiled schedule table.
     * @param lockstep Enable the NOP/down-counter step pacing.
     * @param step_estimates Per-step serialization estimates in
     *        cycles (index 0 = step 1); required when lockstep.
     */
    void loadTable(ScheduleTable table, bool lockstep,
                   std::vector<std::uint64_t> step_estimates);

    /**
     * Drop the loaded table and rewind per-run state. Unlike
     * loadTable() this is unconditional — it is the bring-up and
     * post-abort recovery path, legal even when a failed or wedged
     * run left the engine mid-flight.
     */
    void reset();

    /** Begin issuing at the current simulation time. */
    void start();

    /** Deliver an arriving message to this node's reduction logic. */
    void onMessage(const net::Message &msg);

    /**
     * Whether this engine has finished its part of the collective:
     * every table entry issued and, under reliability, every data
     * message acked with no failed transfers.
     */
    bool
    done() const
    {
        return next_ == table_.entries.size() && outstanding_.empty()
               && failures_.empty();
    }

    /** Entries issued so far. */
    std::size_t issued() const { return next_; }

    /** Number of lockstep NOP windows this node sat through. */
    std::uint64_t nopWindows() const { return nop_windows_; }

    /** The node this engine serves. */
    int node() const { return node_; }

    /** Reliability counters for the current run. */
    const ReliabilityCounters &reliability() const { return rc_; }

    /** Transfers whose retries were exhausted this run. */
    const std::vector<FailedTransfer> &failures() const
    {
        return failures_;
    }

    /** Data messages awaiting acks (reliability only). */
    std::size_t outstandingCount() const { return outstanding_.size(); }

    /** Partials currently being aggregated by the reduction unit
     *  (finite-rate reductions only; 0 when reduction_bw is 0). */
    std::uint64_t activeReductions() const { return active_reductions_; }

    /** Open transfers parked by the fast-fail path, awaiting repair. */
    std::size_t parkedCount() const;

    /**
     * One repair-and-resume pass, driven by the runtime after a dead
     * verdict (the steering groups are already masked): rewrite
     * pending table routes that cross the confirmed-dead set — rail-
     * steerable routes whose dead hops all have live siblings are
     * left to issue-time steering; others go through @p reroute when
     * provided (nullptr under the failover-only policy) — then
     * re-issue every open transfer whose route crosses the dead set
     * over a re-steered/repaired route with a fresh attempt budget.
     * Transfers with no live path left stay parked, keeping done()
     * false so the watchdog reports them. @pre a health monitor is
     * attached.
     */
    RepairStats repairAndResume(const RerouteFn &reroute);

    /**
     * Cumulative census-corroborated round-trip failures charged to
     * each channel this run (index = channel id; short vectors read
     * as zero past the end). Maintained whenever reliability is on —
     * monitor or not — and feeds the watchdog's suspect ranking.
     */
    const std::vector<std::uint64_t> &channelEvidence() const
    {
        return chan_evidence_;
    }

    /** Current consecutive-failure streak per channel (evidence the
     *  health monitor thresholds; reset by any successful round trip
     *  over the channel). */
    const std::vector<std::uint32_t> &channelStreaks() const
    {
        return chan_streak_;
    }

    /**
     * Zero every channel's failure streak except @p channel's. The
     * runtime calls this on all engines when a verdict confirms
     * @p channel dead: the blame other channels accumulated from
     * routes sharing the dead hop is now explained, and keeping it
     * would let the storm condemn healthy links (cumulative evidence
     * is kept for the diagnostics).
     */
    void resetStreaksExcept(int channel);

    /**
     * Human-readable account of why this engine is not done —
     * the blocked head-of-table entry with its missing dependencies,
     * unacked sends, and exhausted transfers. Empty when done().
     */
    std::string describeStall() const;

  private:
    /** Issue every ready entry at the table head; re-arms timers. */
    void pump();

    /** Whether @p e's dependencies are satisfied. */
    bool depsSatisfied(const TableEntry &e) const;

    /** Advance the timestep counter to cover @p step if allowed. */
    bool stepGateOpen(const TableEntry &e);

    /** Ship one data message, tracking it when reliability is on. */
    void sendData(net::Message msg, bool steerable);

    /** Per-message retransmission timeout (2 x RTT estimate). */
    Tick rtoFor(const net::Message &msg) const;

    /** Arm the retransmission timer for sequence @p seq. */
    void armTimer(std::uint64_t seq, Tick rto, std::uint32_t epoch);

    /** Timer expiry: retransmit with backoff or record failure. */
    void onTimeout(std::uint64_t seq, Tick prev_rto,
                   std::uint32_t epoch);

    /** Charge one failed round trip to every channel of @p route,
     *  reporting the updated streaks to the health monitor. */
    void noteRoundTripFailure(const std::vector<int> &route);

    /** A completed round trip exonerates @p route's channels. */
    void noteRoundTripSuccess(const std::vector<int> &route);

    /** Whether issue-time rail steering can dodge every confirmed-
     *  dead hop of @p route (each has a live parallel sibling). */
    bool railsCanDodge(const std::vector<int> &route) const;

    /** Return an ack for an arrived data message. */
    void sendAck(const net::Message &msg);

    /** Re-pick the rail of every grouped hop of @p route in place. */
    void steerRails(std::vector<int> &route);

    int node_;
    net::Network &net_;
    std::uint32_t reduction_bw_;
    obs::TraceSink *sink_ = nullptr;
    obs::Profiler *prof_ = nullptr;
    ScheduleTable table_;
    bool lockstep_ = false;
    std::vector<std::uint64_t> est_;

    std::size_t next_ = 0; ///< head-of-table pointer
    int cur_step_ = 1;     ///< timestep counter
    Tick window_end_ = 0;  ///< lockstep down-counter expiry
    bool timer_armed_ = false;
    bool started_ = false;
    std::uint64_t nop_windows_ = 0;
    /** Run generation; pending timer/reduction events from a
     *  finished run carry the old value and turn into no-ops. */
    std::uint64_t gen_ = 0;
    /** Partials inside the finite-rate reduction unit right now. */
    std::uint64_t active_reductions_ = 0;

    /** Grow the dependency scoreboard to cover @p flow. */
    void ensureFlow(int flow);

    /** Whether a Reduce from @p src arrived for @p flow. */
    bool gotReduce(int flow, int src) const;

    // Dependency scoreboard, flat by flow id. Sized on demand (an
    // arriving flow id can exceed this node's own table's flows, e.g.
    // a leaf's final gather) and rewound without deallocating, so
    // back-to-back runs replay on warm storage.
    /** flow → reduce-sender children received so far. */
    std::vector<std::vector<int>> got_reduce_;
    /** flow → gather received flag. */
    std::vector<char> got_gather_;

    // --- rail steering state ---
    const topo::RailGroups *rails_ = nullptr;
    RailPolicy rail_policy_ = RailPolicy::RoundRobin;
    /** Per-group round-robin cursor (index = group id). */
    std::vector<std::uint32_t> rail_rr_;
    /** Per-rail-index send count for profiler/heatmap attribution. */
    std::vector<std::uint64_t> rail_sends_;

    // --- reliability state ---
    ReliabilityOptions rel_;
    RouteFn route_fn_;
    AcceptFn accept_;
    std::uint64_t next_seq_ = 0;
    struct Outstanding {
        net::Message msg;        ///< pristine copy for retransmission
        std::uint32_t attempts = 0;
        /** Timer epoch: a resume bumps it, so the timer armed before
         *  the repair fires as a no-op instead of double-sending. */
        std::uint32_t epoch = 0;
        /** Fast-failed over a dead channel; no timer armed. Cleared
         *  when a repair pass re-issues the transfer. */
        bool parked = false;
        /** Route came from deterministic routing (re-steerable). */
        bool steerable = false;
        /**
         * Multicast sends only: branch destinations still awaiting
         * their ack. All branches share one sequence number; the
         * window entry clears when the last branch acks, and a
         * timeout retransmits plain unicast copies to exactly the
         * unacked destinations. Empty for unicast sends.
         */
        std::vector<int> unacked;
    };
    /** seq → unacked send; ordered so begin() is the oldest. */
    std::map<std::uint64_t, Outstanding> outstanding_;
    /** (src, seq) transfers already acked, mapped to the route the
     *  latest ack took — receiver-side dedup plus the evidence base
     *  for blaming ack-leg losses when a duplicate arrives. */
    std::map<std::pair<int, std::uint64_t>, std::vector<int>> seen_;
    std::vector<FailedTransfer> failures_;
    ReliabilityCounters rc_;

    // --- link-health evidence (reliability on; cheap bookkeeping,
    // --- never schedules events, so ticks are unaffected) ---
    fault::HealthMonitor *health_ = nullptr;
    /** Channel id → current consecutive round-trip failure streak. */
    std::vector<std::uint32_t> chan_streak_;
    /** Channel id → cumulative failures charged this run. */
    std::vector<std::uint64_t> chan_evidence_;
};

} // namespace multitree::ni

#endif // MULTITREE_NI_NIC_ENGINE_HH
