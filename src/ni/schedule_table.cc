#include "ni/schedule_table.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "topo/topology.hh"

namespace multitree::ni {

std::size_t
childrenFieldWidth(const topo::Topology &topo)
{
    std::size_t width = 1;
    for (int v = 0; v < topo.numNodes(); ++v)
        width = std::max(width, topo.outChannels(v).size());
    return width;
}

std::vector<ScheduleTable>
buildScheduleTables(const coll::Schedule &sched,
                    const topo::Topology &topo)
{
    const int n = sched.num_nodes;
    std::vector<ScheduleTable> tables(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
        tables[static_cast<std::size_t>(v)].node = v;

    auto resolved = [&](const coll::ScheduledEdge &e) {
        return e.route.empty() ? topo.route(e.src, e.dst) : e.route;
    };

    for (const auto &f : sched.flows) {
        // Reduce-tree children per node for dependency fields.
        std::vector<std::vector<int>> kids(static_cast<std::size_t>(n));
        for (const auto &e : f.reduce)
            kids[static_cast<std::size_t>(e.dst)].push_back(e.src);

        // Switch-resident reduction analysis: count, per (parent,
        // final-hop switch), the sibling contributions converging
        // there. Routes of one hop have no intermediate vertex and
        // never combine. The annotation is pure schedule analysis —
        // it rides the table always and reaches the wire only under
        // InNetworkMode::MulticastReduce (see NicEngine::pump).
        std::map<std::pair<int, int>, std::uint32_t> converge;
        std::vector<std::vector<int>> reduce_routes(f.reduce.size());
        for (std::size_t i = 0; i < f.reduce.size(); ++i) {
            reduce_routes[i] = resolved(f.reduce[i]);
            if (reduce_routes[i].size() >= 2) {
                const int v =
                    topo.channel(reduce_routes[i].back()).src;
                ++converge[{f.reduce[i].dst, v}];
            }
        }

        // One Reduce entry per non-root node.
        for (std::size_t i = 0; i < f.reduce.size(); ++i) {
            const auto &e = f.reduce[i];
            TableEntry te;
            te.op = Op::Reduce;
            te.flow = f.flow_id;
            te.parent = e.dst;
            te.children = kids[static_cast<std::size_t>(e.src)];
            te.deps = te.children;
            te.step = e.step;
            te.phase = e.phase;
            te.bytes = f.bytes;
            if (reduce_routes[i].size() >= 2) {
                const int v =
                    topo.channel(reduce_routes[i].back()).src;
                const std::uint32_t peers =
                    converge[{e.dst, v}];
                if (peers >= 2) {
                    te.combine_at = v;
                    te.combine_peers = peers;
                }
            }
            te.routes.push_back(std::move(reduce_routes[i]));
            te.steer.push_back(e.route.empty() ? 1 : 0);
            tables[static_cast<std::size_t>(e.src)].entries.push_back(
                std::move(te));
        }

        // Gather entries: group a node's same-step sends into one row
        // (Fig. 5 packs up to the NI:link bandwidth ratio of children
        // per entry).
        std::vector<int> gather_parent(static_cast<std::size_t>(n),
                                       -1);
        for (const auto &e : f.gather) {
            for (std::size_t b = 0; b < e.branchCount(); ++b) {
                gather_parent[static_cast<std::size_t>(
                    e.branchDst(b))] = e.src;
            }
        }
        auto fillHeader = [&](TableEntry &te,
                              const coll::ScheduledEdge &e) {
            te.op = Op::Gather;
            te.flow = f.flow_id;
            te.step = e.step;
            te.phase = e.phase;
            te.bytes = f.bytes;
            if (e.src == f.root) {
                te.parent = -1;
                te.deps = kids[static_cast<std::size_t>(f.root)];
                te.dep_on_parent = false;
            } else {
                te.parent =
                    gather_parent[static_cast<std::size_t>(e.src)];
                te.deps = {te.parent};
                te.dep_on_parent = true;
            }
        };
        std::map<std::pair<int, int>, TableEntry> grouped;
        for (const auto &e : f.gather) {
            if (e.isMulticast()) {
                // A fused multicast edge compiles to its own entry:
                // one injection serves every branch, so it neither
                // merges with unicast same-step sends nor splits at
                // the hardware Children width (the replication tree,
                // not the NI, fans it out).
                TableEntry te;
                fillHeader(te, e);
                te.fused = true;
                for (std::size_t b = 0; b < e.branchCount(); ++b) {
                    te.children.push_back(e.branchDst(b));
                    MT_ASSERT(!e.branchRoute(b).empty(),
                              "fused multicast branch without an "
                              "explicit route");
                    te.routes.push_back(e.branchRoute(b));
                    te.steer.push_back(0); // pinned by the fuser
                }
                tables[static_cast<std::size_t>(e.src)]
                    .entries.push_back(std::move(te));
                continue;
            }
            auto key = std::make_pair(e.src, e.step);
            auto &te = grouped[key];
            if (te.children.empty())
                fillHeader(te, e);
            te.children.push_back(e.dst);
            te.routes.push_back(resolved(e));
            te.steer.push_back(e.route.empty() ? 1 : 0);
        }
        const std::size_t width = childrenFieldWidth(topo);
        for (auto &[key, te] : grouped) {
            auto &entries =
                tables[static_cast<std::size_t>(key.first)].entries;
            // Honor the hardware Children field width: split
            // over-wide gather rows into consecutive entries. A
            // contention-free schedule never needs this (same-step
            // sends use distinct channels), but hand-built or
            // imported schedules may.
            while (te.children.size() > width) {
                TableEntry head = te;
                head.children.resize(width);
                head.routes.resize(width);
                head.steer.resize(width);
                entries.push_back(std::move(head));
                te.children.erase(te.children.begin(),
                                  te.children.begin()
                                      + static_cast<std::ptrdiff_t>(
                                          width));
                te.routes.erase(te.routes.begin(),
                                te.routes.begin()
                                    + static_cast<std::ptrdiff_t>(
                                        width));
                te.steer.erase(te.steer.begin(),
                               te.steer.begin()
                                   + static_cast<std::ptrdiff_t>(
                                       width));
            }
            entries.push_back(std::move(te));
        }
    }

    for (auto &t : tables) {
        std::stable_sort(t.entries.begin(), t.entries.end(),
                         [](const TableEntry &a, const TableEntry &b) {
                             return a.step < b.step;
                         });
    }
    return tables;
}

std::string
renderTable(const ScheduleTable &table)
{
    std::ostringstream oss;
    oss << "Accelerator " << table.node << "\n";
    oss << "Op      FlowID  Parent  Children      Step  Size\n";
    for (const auto &e : table.entries) {
        oss << (e.op == Op::Reduce ? "Reduce  " : "Gather  ");
        oss << e.flow << "       ";
        if (e.parent < 0)
            oss << "nil     ";
        else
            oss << e.parent << "       ";
        std::string children;
        for (std::size_t i = 0; i < 4; ++i) {
            if (i < e.children.size())
                children += std::to_string(e.children[i]) + " ";
            else
                children += "nil ";
        }
        oss << children << "  " << e.step << "     " << e.bytes
            << "\n";
    }
    return oss.str();
}

TableCost
tableCost(int n)
{
    TableCost c;
    c.entries = 2 * n;
    // Fixed field widths as in §V-A: Op(2) + FlowID(16) + Parent(16)
    // + 4 x Children(16) + Step(16) + Start Addr(56) + Size(32) =
    // 202 bits ≈ the paper's 200-bit entry for a 64-node system.
    c.bits_per_entry = 2 + 16 + 16 + 4 * 16 + 16 + 56 + 32;
    c.kib = static_cast<double>(c.entries) * c.bits_per_entry
            / (8.0 * 1024.0);
    return c;
}

} // namespace multitree::ni
