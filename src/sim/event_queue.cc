#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace multitree::sim {

void
EventQueue::scheduleAt(Tick when, Callback cb, Priority prio)
{
    MT_ASSERT(when >= now_, "scheduling into the past: when=", when,
              " now=", now_);
    heap_.push(Entry{when, static_cast<int>(prio), next_seq_++,
                     std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb, Priority prio)
{
    scheduleAt(now_ + delay, std::move(cb), prio);
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t ran = 0;
    while (ran < limit && step())
        ++ran;
    return ran;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t ran = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        step();
        ++ran;
    }
    if (now_ < until)
        now_ = until;
    return ran;
}

void
EventQueue::reset()
{
    MT_ASSERT(heap_.empty(), "epoch reset with ", heap_.size(),
              " events still pending");
    now_ = 0;
    ++epoch_;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // Copy out before pop so the callback may schedule new events.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    ++executed_;
    e.cb();
    return true;
}

} // namespace multitree::sim
