#include "sim/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace multitree::sim {

void
EventQueue::scheduleAt(Tick when, Callback cb, Priority prio)
{
    MT_ASSERT(when >= now_, "scheduling into the past: when=", when,
              " now=", now_);
    heap_.push_back(Entry{when, static_cast<int>(prio), next_seq_++,
                          std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb, Priority prio)
{
    scheduleAt(now_ + delay, std::move(cb), prio);
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t ran = 0;
    while (ran < limit && step())
        ++ran;
    return ran;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t ran = 0;
    while (!heap_.empty() && heap_.front().when <= until) {
        step();
        ++ran;
    }
    if (now_ < until)
        now_ = until;
    return ran;
}

void
EventQueue::reset()
{
    MT_ASSERT(heap_.empty(), "epoch reset with ", heap_.size(),
              " events still pending");
    now_ = 0;
    ++epoch_;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // Move out before pop so the callback may schedule new events
    // (and so the closure is never copied — only moved).
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    now_ = e.when;
    ++executed_;
    e.cb();
    return true;
}

} // namespace multitree::sim
