/**
 * @file
 * Persistent worker pool with a per-dispatch barrier.
 *
 * The parallel flit engine executes one task per spatial domain every
 * simulated cycle, so dispatch latency — not throughput — is what
 * matters: the pool keeps its threads alive across the whole run and
 * synchronizes each dispatch with an epoch counter. Workers spin
 * briefly on the epoch before parking on a condition variable; when
 * the pool is oversubscribed (more workers than hardware threads,
 * e.g. determinism tests on a small CI box) the spin is skipped so
 * workers yield the core to each other instead of burning it.
 *
 * The caller's thread acts as worker 0, so a pool of N workers
 * spawns N-1 threads and a pool of 1 spawns none (dispatch degrades
 * to a plain loop).
 */

#ifndef MULTITREE_SIM_WORKER_POOL_HH
#define MULTITREE_SIM_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace multitree::sim {

/**
 * Fixed-size pool executing one closure per worker per dispatch.
 * Not reentrant: one dispatch at a time, from one coordinating
 * thread.
 */
class WorkerPool
{
  public:
    /** Task body: invoked once per dispatch with the worker index
     *  (0 .. workers()-1). */
    using Task = std::function<void(int worker)>;

    /** Bring up @p workers workers (>= 1); spawns workers-1
     *  threads. */
    explicit WorkerPool(int workers);

    /** Joins every thread; @pre no dispatch in flight. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    int workers() const { return workers_; }

    /**
     * Run @p task(w) for every worker w and return once all have
     * finished. Worker 0 executes on the calling thread. Memory
     * effects of every task are visible to the caller afterwards
     * (release/acquire on the completion counter).
     */
    void dispatch(const Task &task);

  private:
    void workerLoop(int worker);

    const int workers_;
    /** Spin iterations before parking; 0 when oversubscribed. */
    const int spin_;

    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    /** Bumped (under mu_) to publish a new dispatch. */
    std::atomic<std::uint64_t> epoch_{0};
    /** Workers still running the current dispatch. */
    std::atomic<int> outstanding_{0};
    const Task *task_ = nullptr;
    bool shutdown_ = false;
};

} // namespace multitree::sim

#endif // MULTITREE_SIM_WORKER_POOL_HH
