#include "sim/worker_pool.hh"

#include "common/logging.hh"

namespace multitree::sim {

WorkerPool::WorkerPool(int workers)
    : workers_(workers),
      spin_(static_cast<unsigned>(workers)
                    <= std::thread::hardware_concurrency()
                ? 2048
                : 0)
{
    MT_ASSERT(workers_ >= 1, "worker pool needs >= 1 workers, got ",
              workers_);
    threads_.reserve(static_cast<std::size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
        epoch_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::dispatch(const Task &task)
{
    if (workers_ == 1) {
        task(0);
        return;
    }
    outstanding_.store(workers_ - 1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mu_);
        task_ = &task;
        epoch_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();

    task(0); // the coordinator is worker 0

    // Wait for the others: spin a little (they are typically one
    // cache miss behind), then park.
    for (int i = 0; i < spin_; ++i) {
        if (outstanding_.load(std::memory_order_acquire) == 0)
            return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
        return outstanding_.load(std::memory_order_acquire) == 0;
    });
}

void
WorkerPool::workerLoop(int worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Spot the next epoch: spin briefly, then park on the cv.
        bool ready = false;
        for (int i = 0; i < spin_; ++i) {
            if (epoch_.load(std::memory_order_acquire) != seen) {
                ready = true;
                break;
            }
        }
        const Task *task = nullptr;
        bool quit = false;
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (!ready) {
                work_cv_.wait(lock, [&] {
                    return epoch_.load(std::memory_order_acquire)
                           != seen;
                });
            }
            seen = epoch_.load(std::memory_order_acquire);
            task = task_;
            quit = shutdown_;
        }
        if (quit)
            return;
        (*task)(worker);
        if (outstanding_.fetch_sub(1, std::memory_order_release)
            == 1) {
            // Last one out wakes the coordinator if it parked.
            std::lock_guard<std::mutex> lock(mu_);
            done_cv_.notify_one();
        }
    }
}

} // namespace multitree::sim
