/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The kernel is a priority queue of (tick, priority, sequence) ordered
 * events. Ties at the same tick are broken first by an explicit priority
 * (lower runs first) and then by insertion order, which keeps runs
 * deterministic. Components schedule closures; there is no global
 * singleton — every simulation owns its queue.
 *
 * Queues are reusable across simulation runs: once drained, reset()
 * begins a new epoch with now() back at logical time zero, so a
 * persistent runtime::Machine replays collectives from identical
 * initial conditions without rebuilding the kernel.
 *
 * Storage is one flat binary heap over a std::vector (the same
 * algorithm std::priority_queue wraps, unwrapped so the backing
 * array can be reserve()d and popped entries can be moved out
 * instead of copied — std::function copies were measurable on the
 * cycle-level hot path). The heap only grows; a warmed queue
 * schedules and pops without touching the allocator.
 */

#ifndef MULTITREE_SIM_EVENT_QUEUE_HH
#define MULTITREE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hh"

namespace multitree::sim {

/** Scheduling priorities for same-tick ordering (lower runs first). */
enum class Priority : int {
    High = 0,
    Default = 1,
    Low = 2,
};

/**
 * The event queue driving a simulation. Events are closures executed at
 * their scheduled tick in deterministic order.
 */
class EventQueue
{
  public:
    /** Callback type for scheduled events. */
    using Callback = std::function<void()>;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now().
     */
    void scheduleAt(Tick when, Callback cb,
                    Priority prio = Priority::Default);

    /** Schedule @p cb to run @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback cb,
                       Priority prio = Priority::Default);

    /** Whether any events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Pre-size the event store for at least @p n pending events so a
     * burst of scheduling does not re-allocate mid-run. Capacity is
     * retained across epochs.
     */
    void reserve(std::size_t n) { heap_.reserve(n); }

    /**
     * Run events until the queue drains or @p limit events have run.
     * @return the number of events executed.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Run events with timestamps <= @p until (inclusive).
     * Afterwards now() == until unless the queue drained earlier, in
     * which case now() is the last executed tick.
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Execute exactly one event if available. @return true if one ran. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Begin a new epoch: rewind now() to logical time zero so the
     * next run schedules from the same origin as a fresh queue.
     * @pre empty() — an epoch may only start once the previous run
     * has drained. Lifetime counters (executed(), epoch()) advance
     * monotonically across epochs.
     */
    void reset();

    /** Epochs started so far (0 until the first reset()). */
    std::uint64_t epoch() const { return epoch_; }

  private:
    struct Entry {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Min-heap (via Later) maintained with std::push/pop_heap. */
    std::vector<Entry> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t epoch_ = 0;
};

} // namespace multitree::sim

#endif // MULTITREE_SIM_EVENT_QUEUE_HH
