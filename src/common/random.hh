/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * simulations and tests.
 */

#ifndef MULTITREE_COMMON_RANDOM_HH
#define MULTITREE_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace multitree {

/**
 * A small, fast, deterministic RNG (xoshiro256**). Every simulation
 * component that needs randomness owns its own Rng seeded explicitly so
 * runs are reproducible regardless of module interleaving.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; equal seeds → equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float vector of @p n elements in [-1, 1). */
    std::vector<float> floatVector(std::size_t n);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state_[4];
};

} // namespace multitree

#endif // MULTITREE_COMMON_RANDOM_HH
