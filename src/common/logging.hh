/**
 * @file
 * Severity-split logging utilities in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated: a simulator bug.
 *            Aborts so a debugger/core dump can capture state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument). Exits cleanly.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status for the user.
 */

#ifndef MULTITREE_COMMON_LOGGING_HH
#define MULTITREE_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace multitree {

/** Log severity levels, ordered from chattiest to most severe. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global log threshold. Messages below this level are suppressed.
 * Defaults to Info; tests may lower it to Debug.
 */
LogLevel logThreshold();

/** Set the global log threshold. */
void setLogThreshold(LogLevel level);

namespace detail {

/** Emit a formatted log record to stderr. */
void emitLog(LogLevel level, const std::string &tag,
             const std::string &message, const char *file, int line);

/** Terminate after an internal invariant violation (simulator bug). */
[[noreturn]] void panicImpl(const std::string &message,
                            const char *file, int line);

/** Terminate after a user-caused unrecoverable error. */
[[noreturn]] void fatalImpl(const std::string &message,
                            const char *file, int line);

/** Build a string from a stream expression. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace multitree

/** Report an internal invariant violation and abort. */
#define MT_PANIC(...)                                                       \
    ::multitree::detail::panicImpl(                                        \
        ::multitree::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Report an unrecoverable user error and exit. */
#define MT_FATAL(...)                                                       \
    ::multitree::detail::fatalImpl(                                        \
        ::multitree::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Warn about a suspicious but survivable condition. */
#define MT_WARN(...)                                                        \
    ::multitree::detail::emitLog(                                          \
        ::multitree::LogLevel::Warn, "warn",                               \
        ::multitree::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Inform the user of normal progress. */
#define MT_INFORM(...)                                                      \
    ::multitree::detail::emitLog(                                          \
        ::multitree::LogLevel::Info, "info",                               \
        ::multitree::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Debug-level trace, usually suppressed. */
#define MT_DEBUG(...)                                                       \
    ::multitree::detail::emitLog(                                          \
        ::multitree::LogLevel::Debug, "debug",                             \
        ::multitree::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Check an invariant; panics with the condition text on failure. */
#define MT_ASSERT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::multitree::detail::panicImpl(                                \
                ::multitree::detail::concat(                               \
                    "assertion failed: " #cond " ", __VA_ARGS__),          \
                __FILE__, __LINE__);                                        \
        }                                                                   \
    } while (0)

#endif // MULTITREE_COMMON_LOGGING_HH
