/**
 * @file
 * Flat FIFO ring buffer for simulator hot paths.
 *
 * std::deque allocates/frees map blocks as elements flow through,
 * which shows up as the dominant allocator traffic in the cycle-level
 * network simulator (one push/pop per flit per hop). RingBuffer keeps
 * one contiguous power-of-two array that only ever grows, so a warmed
 * buffer never touches the allocator again — the "reserve once, reuse
 * forever" discipline the tick loop depends on.
 *
 * Restricted to trivially copyable element types on purpose: popped
 * slots are simply abandoned (no destructor runs until the buffer
 * itself dies), which keeps pop_front() to two integer ops.
 */

#ifndef MULTITREE_COMMON_RING_BUFFER_HH
#define MULTITREE_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace multitree {

/** Growable FIFO over one flat array (power-of-two capacity). */
template <typename T>
class RingBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "RingBuffer abandons popped slots without running "
                  "destructors; use it for trivially copyable types");

  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buf_.size(); }

    /** Grow the backing array to hold at least @p n elements. */
    void
    reserve(std::size_t n)
    {
        if (n > buf_.size())
            regrow(n);
    }

    T &
    front()
    {
        MT_ASSERT(count_ > 0, "front() on an empty ring");
        return buf_[head_];
    }

    const T &
    front() const
    {
        MT_ASSERT(count_ > 0, "front() on an empty ring");
        return buf_[head_];
    }

    /** FIFO element @p i positions behind the front (0 = front). */
    const T &
    at(std::size_t i) const
    {
        MT_ASSERT(i < count_, "at(", i, ") on a ring of ", count_);
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void
    push_back(const T &v)
    {
        if (count_ == buf_.size())
            regrow(count_ == 0 ? 8 : count_ * 2);
        buf_[(head_ + count_) & (buf_.size() - 1)] = v;
        ++count_;
    }

    void
    pop_front()
    {
        MT_ASSERT(count_ > 0, "pop_front() on an empty ring");
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    /** Drop every element; capacity is retained. */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    void
    regrow(std::size_t need)
    {
        std::size_t cap = buf_.empty() ? 8 : buf_.size();
        while (cap < need)
            cap *= 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace multitree

#endif // MULTITREE_COMMON_RING_BUFFER_HH
