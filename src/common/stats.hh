/**
 * @file
 * Lightweight statistics collection: scalar counters, running summaries,
 * and histograms. Used by the network simulator and benchmark harness to
 * report utilization, latency distributions and bandwidth.
 */

#ifndef MULTITREE_COMMON_STATS_HH
#define MULTITREE_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace multitree {

/**
 * Running summary of a stream of samples: count, mean, min, max and
 * variance via Welford's algorithm.
 */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples so far. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Mean, or 0 when empty. */
    double mean() const;

    /** Population variance, or 0 when fewer than two samples. */
    double variance() const;

    /** Smallest sample, or +inf when empty. */
    double min() const { return min_; }

    /** Largest sample, or -inf when empty. */
    double max() const { return max_; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width histogram over [lo, hi) with out-of-range samples clamped
 * into the first/last buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the first bucket.
     * @param hi Upper bound of the last bucket.
     * @param buckets Number of buckets. @pre buckets > 0 and hi > lo.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Add one sample. */
    void add(double x);

    /** Samples collected so far (NaN samples excluded). */
    std::uint64_t count() const { return total_; }

    /** Non-finite samples seen: NaN (uncounted) and ±inf (clamped
     *  into the boundary buckets). */
    std::uint64_t nonfinite() const { return nonfinite_; }

    /** Bucket population. */
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /** Approximate p-quantile (0 ≤ p ≤ 1) from bucket midpoints. */
    double quantile(double p) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::uint64_t total_ = 0;
    std::uint64_t nonfinite_ = 0;
    std::vector<std::uint64_t> counts_;
};

/**
 * A named bag of scalar counters, keyed by string. Cheap enough for
 * per-run bookkeeping; not intended for per-cycle hot paths.
 */
class StatRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void inc(const std::string &name, double delta = 1.0);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, double value);

    /** Read a counter; absent counters read as zero. */
    double get(const std::string &name) const;

    /** Drop every counter (per-run stat scoping). */
    void clear();

    /** All counters, sorted by name. */
    const std::map<std::string, double> &all() const { return values_; }

    /** Render a one-line-per-counter dump. */
    std::string render() const;

  private:
    std::map<std::string, double> values_;
};

} // namespace multitree

#endif // MULTITREE_COMMON_STATS_HH
