/**
 * @file
 * Lock-free single-producer/single-consumer FIFO ring.
 *
 * The parallel flit engine hands flits and credits between spatial
 * domains through these rings: the producing domain's worker pushes
 * during its traverse phase while the consuming domain's worker
 * drains arrivals due this cycle — concurrently, with no locks. The
 * storage discipline mirrors common/ring_buffer.hh (one flat
 * power-of-two array, trivially copyable elements, popped slots
 * abandoned); the difference is the atomic head/tail pair that makes
 * one concurrent producer and one concurrent consumer safe.
 *
 * Capacity is fixed while threads run: tryPush() refuses instead of
 * regrowing, because regrowth would move the array under the
 * consumer. Callers stage refused elements and call growTo() at a
 * barrier (no concurrent access), which is also the only time size()
 * and back() may be used. Entries must be pushed in nondecreasing
 * due order — consumers rely on front() being the earliest.
 */

#ifndef MULTITREE_COMMON_SPSC_RING_HH
#define MULTITREE_COMMON_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace multitree {

/** Bounded lock-free SPSC FIFO over one flat power-of-two array. */
template <typename T>
class SpscRing
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SpscRing abandons popped slots without running "
                  "destructors; use it for trivially copyable types");

  public:
    explicit SpscRing(std::size_t capacity = 1024)
    {
        std::size_t cap = 8;
        while (cap < capacity)
            cap *= 2;
        buf_.resize(cap);
    }

    // Rings are owned by the network and addressed by index; moves
    // only happen at fabric construction, before any thread runs
    // (std::atomic itself is immovable, hence the manual transfer).
    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;
    SpscRing(SpscRing &&other) noexcept
        : buf_(std::move(other.buf_)),
          head_(other.head_.load(std::memory_order_relaxed)),
          tail_(other.tail_.load(std::memory_order_relaxed))
    {}
    SpscRing &
    operator=(SpscRing &&other) noexcept
    {
        buf_ = std::move(other.buf_);
        head_.store(other.head_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
        tail_.store(other.tail_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
        return *this;
    }

    /** Producer: append @p v. False when full (stage + growTo()). */
    bool
    tryPush(const T &v)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        const std::size_t h = head_.load(std::memory_order_acquire);
        if (t - h == buf_.size())
            return false;
        buf_[t & (buf_.size() - 1)] = v;
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Consumer: whether no element is visible. */
    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed)
               == tail_.load(std::memory_order_acquire);
    }

    /** Consumer: the oldest element. @pre !empty(). */
    const T &
    front() const
    {
        MT_ASSERT(!empty(), "front() on an empty SPSC ring");
        return buf_[head_.load(std::memory_order_relaxed)
                    & (buf_.size() - 1)];
    }

    /** Consumer: discard the oldest element. @pre !empty(). */
    void
    pop_front()
    {
        MT_ASSERT(!empty(), "pop_front() on an empty SPSC ring");
        head_.fetch_add(1, std::memory_order_release);
    }

    // --- barrier-only accessors (no concurrent producer/consumer) ---

    /** Elements currently queued. Barrier-only. */
    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_relaxed)
               - head_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return buf_.size(); }

    /** The most recently pushed element. Barrier-only. @pre size(). */
    const T &
    back() const
    {
        MT_ASSERT(size() > 0, "back() on an empty SPSC ring");
        return buf_[(tail_.load(std::memory_order_relaxed) - 1)
                    & (buf_.size() - 1)];
    }

    /** FIFO element @p i behind the front. Barrier-only. */
    const T &
    at(std::size_t i) const
    {
        MT_ASSERT(i < size(), "at(", i, ") on a ring of ", size());
        return buf_[(head_.load(std::memory_order_relaxed) + i)
                    & (buf_.size() - 1)];
    }

    /**
     * Grow the backing array to hold at least @p n elements,
     * preserving FIFO contents. Barrier-only: the producer and
     * consumer must both be parked.
     */
    void
    growTo(std::size_t n)
    {
        if (n <= buf_.size())
            return;
        std::size_t cap = buf_.size();
        while (cap < n)
            cap *= 2;
        const std::size_t h = head_.load(std::memory_order_relaxed);
        const std::size_t count =
            tail_.load(std::memory_order_relaxed) - h;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count; ++i)
            next[i] = buf_[(h + i) & (buf_.size() - 1)];
        buf_ = std::move(next);
        head_.store(0, std::memory_order_relaxed);
        tail_.store(count, std::memory_order_relaxed);
    }

    /** Drop every element; capacity retained. Barrier-only. */
    void
    clear()
    {
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
    }

  private:
    std::vector<T> buf_;
    std::atomic<std::size_t> head_{0}; ///< consumer cursor
    std::atomic<std::size_t> tail_{0}; ///< producer cursor
};

} // namespace multitree

#endif // MULTITREE_COMMON_SPSC_RING_HH
