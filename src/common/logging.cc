#include "common/logging.hh"

#include <cstdio>
#include <mutex>

namespace multitree {

namespace {

LogLevel g_threshold = LogLevel::Info;
std::mutex g_log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

namespace detail {

void
emitLog(LogLevel level, const std::string &tag, const std::string &message,
        const char *file, int line)
{
    if (level < g_threshold)
        return;
    std::lock_guard<std::mutex> lock(g_log_mutex);
    if (level >= LogLevel::Warn) {
        std::fprintf(stderr, "[%s] %s (%s:%d)\n", tag.c_str(),
                     message.c_str(), file, line);
    } else {
        std::fprintf(stderr, "[%s] %s\n", tag.c_str(), message.c_str());
    }
    (void)levelName(level);
}

void
panicImpl(const std::string &message, const char *file, int line)
{
    std::fprintf(stderr, "[panic] %s (%s:%d)\n", message.c_str(),
                 file, line);
    std::abort();
}

void
fatalImpl(const std::string &message, const char *file, int line)
{
    std::fprintf(stderr, "[fatal] %s (%s:%d)\n", message.c_str(),
                 file, line);
    std::exit(1);
}

} // namespace detail

} // namespace multitree
