#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace multitree {

void
Summary::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
Summary::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
Summary::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

void
Summary::reset()
{
    *this = Summary();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    MT_ASSERT(buckets > 0 && hi > lo, "bad histogram shape");
}

void
Histogram::add(double x)
{
    // NaN has no meaningful bucket, and casting a non-finite (or huge
    // finite) index to an integer is undefined; count NaN separately
    // and clamp everything else while still in floating point.
    if (std::isnan(x)) {
        ++nonfinite_;
        return;
    }
    double idx = std::floor((x - lo_) / width_);
    if (!std::isfinite(idx))
        ++nonfinite_;
    idx = std::clamp(idx, 0.0,
                     static_cast<double>(counts_.size() - 1));
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::quantile(double p) const
{
    if (total_ == 0)
        return lo_;
    p = std::clamp(p, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
    return hi_;
}

void
StatRegistry::inc(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatRegistry::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatRegistry::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

void
StatRegistry::clear()
{
    values_.clear();
}

std::string
StatRegistry::render() const
{
    std::ostringstream oss;
    for (const auto &[name, value] : values_)
        oss << name << " = " << value << "\n";
    return oss.str();
}

} // namespace multitree
