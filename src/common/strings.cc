#include "common/strings.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace multitree {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    auto begin = s.begin();
    auto end = s.end();
    while (begin != end && std::isspace(static_cast<unsigned char>(*begin)))
        ++begin;
    while (end != begin
           && std::isspace(static_cast<unsigned char>(*(end - 1))))
        --end;
    return std::string(begin, end);
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < std::size(suffixes)) {
        value /= 1024.0;
        ++idx;
    }
    // 1048570 B is 1023.99 KiB, which the one-decimal print below
    // would round to "1024.0 KiB"; promote once more when rounding
    // reaches the next unit.
    if (idx + 1 < std::size(suffixes)
        && std::round(value * 10.0) / 10.0 >= 1024.0) {
        value /= 1024.0;
        ++idx;
    }
    std::ostringstream oss;
    if (value == static_cast<std::uint64_t>(value))
        oss << static_cast<std::uint64_t>(value);
    else
        oss << std::fixed << std::setprecision(1) << value;
    oss << " " << suffixes[idx];
    return oss.str();
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
padLeft(const std::string &s, std::size_t w)
{
    if (s.size() >= w)
        return s;
    return std::string(w - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t w)
{
    if (s.size() >= w)
        return s;
    return s + std::string(w - s.size(), ' ');
}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            oss << padRight(cell, widths[i]);
            if (i + 1 < widths.size())
                oss << "  ";
        }
        oss << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w;
        total += widths.empty() ? 0 : 2 * (widths.size() - 1);
        oss << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return oss.str();
}

} // namespace multitree
