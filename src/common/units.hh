/**
 * @file
 * Common unit types and conversion helpers shared across the simulator.
 *
 * The simulator runs at a 1 GHz reference clock: one Tick is one cycle is
 * one nanosecond. Link bandwidth is expressed in bytes per cycle; a
 * 16-byte flit per cycle equals the paper's 16 GB/s links.
 */

#ifndef MULTITREE_COMMON_UNITS_HH
#define MULTITREE_COMMON_UNITS_HH

#include <cstdint>

namespace multitree {

/** Simulation time in cycles of the 1 GHz reference clock (== ns). */
using Tick = std::uint64_t;

/** A node (accelerator) identifier. */
using NodeId = std::int32_t;

/** An invalid / absent node id. */
constexpr NodeId kInvalidNode = -1;

/** Byte-size literals. */
constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

/** Default flit payload width on every link, in bytes (Table III). */
constexpr std::uint32_t kFlitBytes = 16;

/** Default data-packet payload for baseline flow control (Table III). */
constexpr std::uint32_t kPacketPayloadBytes = 256;

/** Link traversal latency in cycles (150 ns at 1 GHz, Table III). */
constexpr std::uint32_t kLinkLatency = 150;

/** Number of virtual channels per physical link (Table III). */
constexpr std::uint32_t kNumVCs = 4;

/** Per-VC buffer depth in flits; covers the credit round trip. */
constexpr std::uint32_t kVCBufferDepth = 318;

/** Ceiling division for unsigned quantities. */
constexpr std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    return (num + den - 1) / den;
}

/** Number of flits needed to carry @p bytes of payload. */
constexpr std::uint64_t
bytesToFlits(std::uint64_t bytes)
{
    return ceilDiv(bytes, kFlitBytes);
}

/** Convert a tick count (ns) to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-9;
}

/** Bandwidth in GB/s delivered when @p bytes complete in @p ticks. */
inline double
bandwidthGBps(std::uint64_t bytes, Tick ticks)
{
    if (ticks == 0)
        return 0.0;
    return static_cast<double>(bytes) / static_cast<double>(ticks);
}

} // namespace multitree

#endif // MULTITREE_COMMON_UNITS_HH
