/**
 * @file
 * Small string helpers used for report formatting and config parsing.
 */

#ifndef MULTITREE_COMMON_STRINGS_HH
#define MULTITREE_COMMON_STRINGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace multitree {

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/** Render a byte count as a human-friendly string ("4 MiB", "512 B"). */
std::string formatBytes(std::uint64_t bytes);

/** Render a double with @p precision significant fraction digits. */
std::string formatDouble(double value, int precision = 3);

/** Left-pad @p s with spaces to width @p w. */
std::string padLeft(const std::string &s, std::size_t w);

/** Right-pad @p s with spaces to width @p w. */
std::string padRight(const std::string &s, std::size_t w);

/**
 * Minimal fixed-column text table builder for bench/report output that
 * mirrors the rows of the paper's tables and figure series.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace multitree

#endif // MULTITREE_COMMON_STRINGS_HH
