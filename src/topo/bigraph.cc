#include "topo/bigraph.hh"

#include <sstream>

#include "common/logging.hh"

namespace multitree::topo {

BiGraph::BiGraph(int num_upper, int num_lower)
    : num_upper_(num_upper), num_lower_(num_lower)
{
    const int n = num_upper * num_lower;
    MT_ASSERT(n >= 2 && n % 2 == 0, "BiGraph needs an even node count");
    MT_ASSERT((n / 2) % num_upper == 0,
              "upper stage cannot host nodes evenly");
    MT_ASSERT((n / 2) % num_lower == 0,
              "lower stage cannot host nodes evenly");
    nodes_per_upper_ = (n / 2) / num_upper;
    nodes_per_lower_ = (n / 2) / num_lower;

    for (int i = 0; i < n; ++i)
        addVertex(VertexKind::Node);
    for (int u = 0; u < num_upper; ++u)
        addVertex(VertexKind::Switch);
    for (int l = 0; l < num_lower; ++l)
        addVertex(VertexKind::Switch);

    for (int i = 0; i < n; ++i)
        addLink(i, switchOf(i));
    for (int u = 0; u < num_upper; ++u) {
        for (int l = 0; l < num_lower; ++l)
            addLink(upperVertex(u), lowerVertex(l));
    }
}

std::string
BiGraph::name() const
{
    std::ostringstream oss;
    oss << "bigraph-" << num_upper_ << "x" << num_lower_;
    return oss.str();
}

int
BiGraph::switchOf(int n) const
{
    if (isUpperNode(n))
        return upperVertex(n / nodes_per_upper_);
    int j = n - numNodes() / 2;
    return lowerVertex(j / nodes_per_lower_);
}

std::vector<int>
BiGraph::route(int src, int dst) const
{
    if (src == dst)
        return {};
    if (!isNode(src) || !isNode(dst))
        return bfsRoute(src, dst);

    std::vector<int> path;
    auto hop = [&](int u, int v) {
        int cid = channelBetween(u, v);
        MT_ASSERT(cid >= 0, "missing bigraph channel ", u, "->", v);
        path.push_back(cid);
    };
    int s_sw = switchOf(src);
    int d_sw = switchOf(dst);
    hop(src, s_sw);
    if (s_sw != d_sw) {
        bool s_up = isUpperNode(src);
        bool d_up = isUpperNode(dst);
        if (s_up == d_up) {
            // Same stage: bounce through the opposite stage, switch
            // selected deterministically by the destination id.
            int mid = s_up ? lowerVertex(dst % num_lower_)
                           : upperVertex(dst % num_upper_);
            hop(s_sw, mid);
            hop(mid, d_sw);
        } else {
            hop(s_sw, d_sw);
        }
    }
    hop(d_sw, dst);
    return path;
}

} // namespace multitree::topo
