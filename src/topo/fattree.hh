/**
 * @file
 * Two-level Fat-Tree (leaf/spine) indirect topology.
 *
 * `numLeaves` leaf switches each host `nodesPerLeaf` end nodes and
 * connect with one link to each of `numSpines` spine switches. With
 * numSpines == nodesPerLeaf the network has full bisection bandwidth.
 * The paper's 16-node configuration (similar to an NVIDIA DGX-2 with a
 * single physical network) is FatTree2L(4, 4, 4); the 64-node 8-ary
 * 2-level instance is FatTree2L(8, 8, 8).
 */

#ifndef MULTITREE_TOPO_FATTREE_HH
#define MULTITREE_TOPO_FATTREE_HH

#include "topo/topology.hh"

namespace multitree::topo {

/** Two-level leaf/spine fat tree. */
class FatTree2L : public Topology
{
  public:
    /**
     * @param num_leaves Leaf switch count.
     * @param nodes_per_leaf End nodes attached to each leaf.
     * @param num_spines Spine switch count.
     */
    FatTree2L(int num_leaves, int nodes_per_leaf, int num_spines);

    std::string name() const override;

    /** Leaf switch count. */
    int numLeaves() const { return num_leaves_; }

    /** Nodes per leaf switch. */
    int nodesPerLeaf() const { return nodes_per_leaf_; }

    /** Spine switch count. */
    int numSpines() const { return num_spines_; }

    /** Vertex id of leaf switch @p l. */
    int leafVertex(int l) const { return numNodes() + l; }

    /** Vertex id of spine switch @p s. */
    int spineVertex(int s) const
    {
        return numNodes() + num_leaves_ + s;
    }

    /** Leaf switch index hosting node @p n. */
    int leafOf(int n) const { return n / nodes_per_leaf_; }

    /**
     * Deterministic up-down routing. Same-leaf pairs go node→leaf→node;
     * cross-leaf pairs go up to the spine selected by the destination id
     * (ECMP-by-destination) and back down.
     */
    std::vector<int> route(int src, int dst) const override;

    /** Identity order: node ids already group nodes by leaf switch. */
    std::vector<int> ringOrder() const override;

  private:
    int num_leaves_;
    int nodes_per_leaf_;
    int num_spines_;
};

} // namespace multitree::topo

#endif // MULTITREE_TOPO_FATTREE_HH
