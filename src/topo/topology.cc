#include "topo/topology.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace multitree::topo {

int
Topology::channelBetween(int u, int v) const
{
    for (int cid : out_[u]) {
        if (channels_[cid].dst == v)
            return cid;
    }
    return -1;
}

int
Topology::reverseChannel(int cid) const
{
    MT_ASSERT(cid >= 0 && cid < numChannels(), "bad channel ", cid);
    int partner = cid ^ 1;
    const auto &ch = channels_[static_cast<std::size_t>(cid)];
    const auto &rev = channels_[static_cast<std::size_t>(partner)];
    MT_ASSERT(rev.src == ch.dst && rev.dst == ch.src,
              "channel ", cid, " has no paired reverse — was it "
              "created outside addLink()?");
    return partner;
}

std::vector<int>
Topology::preferredNeighbors(int v) const
{
    std::vector<int> out;
    out.reserve(out_[v].size());
    for (int cid : out_[v]) {
        int n = channels_[cid].dst;
        if (std::find(out.begin(), out.end(), n) == out.end())
            out.push_back(n);
    }
    return out;
}

int
Topology::hopCount(int src, int dst) const
{
    return static_cast<int>(route(src, dst).size());
}

int
Topology::diameter() const
{
    int d = 0;
    for (int a = 0; a < numNodes(); ++a) {
        for (int b = 0; b < numNodes(); ++b) {
            if (a != b)
                d = std::max(d, hopCount(a, b));
        }
    }
    return d;
}

std::vector<int>
Topology::ringOrder() const
{
    std::vector<int> order(numNodes());
    for (int i = 0; i < numNodes(); ++i)
        order[i] = i;
    return order;
}

std::vector<int>
Topology::bfsRoute(int src, int dst) const
{
    auto path = tryBfsRoute(src, dst);
    if (!path) {
        MT_PANIC("no path from vertex ", src, " to ", dst,
                 " — topology is disconnected");
    }
    return std::move(*path);
}

std::optional<std::vector<int>>
Topology::tryBfsRoute(int src, int dst) const
{
    return tryBfsRouteAvoiding(src, dst, {});
}

std::optional<std::vector<int>>
Topology::tryBfsRouteAvoiding(int src, int dst,
                              const std::vector<char> &blocked) const
{
    MT_ASSERT(src >= 0 && src < numVertices(), "bad src vertex ", src);
    MT_ASSERT(dst >= 0 && dst < numVertices(), "bad dst vertex ", dst);
    if (src == dst)
        return std::vector<int>{};
    std::vector<int> via(numVertices(), -1); // channel used to reach v
    std::queue<int> frontier;
    frontier.push(src);
    std::vector<bool> seen(numVertices(), false);
    seen[src] = true;
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int cid : out_[u]) {
            const auto c = static_cast<std::size_t>(cid);
            if (c < blocked.size() && blocked[c] != 0)
                continue;
            int v = channels_[cid].dst;
            if (seen[v])
                continue;
            seen[v] = true;
            via[v] = cid;
            if (v == dst) {
                std::vector<int> path;
                for (int w = dst; w != src;
                     w = channels_[via[w]].src) {
                    path.push_back(via[w]);
                }
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push(v);
        }
    }
    return std::nullopt;
}

int
Topology::addVertex(VertexKind k)
{
    int id = numVertices();
    kinds_.push_back(k);
    out_.emplace_back();
    in_.emplace_back();
    if (k == VertexKind::Node) {
        MT_ASSERT(id == num_nodes_,
                  "node vertices must be created before switches");
        ++num_nodes_;
    }
    return id;
}

int
Topology::addChannel(int u, int v)
{
    MT_ASSERT(u != v, "self-loop channel at vertex ", u);
    int id = numChannels();
    channels_.push_back(Channel{id, u, v});
    out_[u].push_back(id);
    in_[v].push_back(id);
    return id;
}

void
Topology::addLink(int u, int v)
{
    addChannel(u, v);
    addChannel(v, u);
}

int
RailGroups::railOf(int cid) const
{
    if (cid < 0 || cid >= static_cast<int>(group_of.size()))
        return 0;
    int gid = group_of[static_cast<std::size_t>(cid)];
    if (gid < 0)
        return 0;
    const auto &g = groups[static_cast<std::size_t>(gid)];
    // Members are ascending, so the insertion point is the rail
    // index. A channel masked out of its group (dead-rail failover)
    // still maps here and reports the rank it held among survivors.
    auto it = std::lower_bound(g.begin(), g.end(), cid);
    return static_cast<int>(it - g.begin());
}

int
RailGroups::maxRails() const
{
    std::size_t widest = 1;
    for (const auto &g : groups)
        widest = std::max(widest, g.size());
    return static_cast<int>(widest);
}

RailGroups
buildRailGroups(const Topology &topo)
{
    RailGroups rg;
    rg.group_of.assign(
        static_cast<std::size_t>(topo.numChannels()), -1);
    // Bucket channels by endpoint pair. Channel ids within a vertex's
    // out-list are ascending, so each bucket comes out ascending too
    // and a channel's bucket position is a stable rail index.
    for (int v = 0; v < topo.numVertices(); ++v) {
        const auto &out = topo.outChannels(v);
        for (std::size_t i = 0; i < out.size(); ++i) {
            int cid = out[i];
            if (rg.group_of[static_cast<std::size_t>(cid)] >= 0)
                continue;
            std::vector<int> bucket{cid};
            int dst = topo.channel(cid).dst;
            for (std::size_t j = i + 1; j < out.size(); ++j) {
                if (topo.channel(out[j]).dst == dst)
                    bucket.push_back(out[j]);
            }
            if (bucket.size() < 2)
                continue;
            int gid = static_cast<int>(rg.groups.size());
            for (int member : bucket)
                rg.group_of[static_cast<std::size_t>(member)] = gid;
            rg.groups.push_back(std::move(bucket));
        }
    }
    return rg;
}

} // namespace multitree::topo
