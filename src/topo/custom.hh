/**
 * @file
 * User-defined topologies.
 *
 * The paper positions MultiTree as the algorithm that generalizes to
 * arbitrary interconnects ("general purpose cluster networks or
 * public clouds if the network topology is provided or can be
 * probed", §VII-B). CustomTopology is that entry point: build any
 * direct or switch-based graph — including multigraphs whose
 * parallel links model heterogeneous bandwidth — and every algorithm
 * whose supports() passes will schedule on it.
 */

#ifndef MULTITREE_TOPO_CUSTOM_HH
#define MULTITREE_TOPO_CUSTOM_HH

#include "topo/topology.hh"

namespace multitree::topo {

/** An explicitly constructed topology with shortest-path routing. */
class CustomTopology : public Topology
{
  public:
    /** @param name Reported by name(). */
    explicit CustomTopology(std::string name = "custom")
        : name_(std::move(name))
    {}

    std::string name() const override { return name_; }

    /** Add an end node. @return its vertex id. */
    int addNode() { return addVertex(VertexKind::Node); }

    /** Add a switch. @return its vertex id. Nodes must come first. */
    int addSwitch() { return addVertex(VertexKind::Switch); }

    /**
     * Connect @p u and @p v with @p multiplicity parallel
     * bidirectional links. A wider physical link is modeled as
     * multiple unit-bandwidth links (§VII-B).
     */
    void
    connect(int u, int v, int multiplicity = 1)
    {
        for (int i = 0; i < multiplicity; ++i)
            addLink(u, v);
    }

    /** Deterministic routing: breadth-first shortest path. */
    std::vector<int>
    route(int src, int dst) const override
    {
        if (src == dst)
            return {};
        return bfsRoute(src, dst);
    }

  private:
    std::string name_;
};

} // namespace multitree::topo

#endif // MULTITREE_TOPO_CUSTOM_HH
