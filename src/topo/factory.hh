/**
 * @file
 * Topology factory: build any evaluated topology from a spec string.
 *
 * Accepted specs:
 *  - "torus-WxH"        e.g. "torus-4x4", "torus-8x8", "torus-16x16"
 *  - "mesh-WxH"         e.g. "mesh-8x8"
 *  - "fattree-L:P:S"    leaves, nodes per leaf, spines
 *  - "fattree-16"       preset: DGX-2-like FatTree2L(4, 4, 4)
 *  - "fattree-64"       preset: 8-ary 2-level FatTree2L(8, 8, 8)
 *  - "bigraph-UxL"      e.g. "bigraph-4x8", "bigraph-4x16"
 *  - "torus3d-XxYxZ"    e.g. "torus3d-4x4x4"
 *  - "dragonfly-G:P"    G groups of G-1 routers, P nodes per router
 */

#ifndef MULTITREE_TOPO_FACTORY_HH
#define MULTITREE_TOPO_FACTORY_HH

#include <memory>
#include <string>

#include "topo/topology.hh"

namespace multitree::topo {

/** Build a topology from a spec string. Fatal on malformed specs. */
std::unique_ptr<Topology> makeTopology(const std::string &spec);

} // namespace multitree::topo

#endif // MULTITREE_TOPO_FACTORY_HH
