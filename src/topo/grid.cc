#include "topo/grid.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace multitree::topo {

Grid2D::Grid2D(int width, int height, bool wrap)
    : width_(width), height_(height), wrap_(wrap)
{
    MT_ASSERT(width >= 1 && height >= 1, "degenerate grid ",
              width, "x", height);
    for (int i = 0; i < width * height; ++i)
        addVertex(VertexKind::Node);

    // +X links per row; a torus closes the row unless width == 2 (the
    // wrap link would duplicate the mesh link) or width == 1.
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x + 1 < width; ++x)
            addLink(nodeAt(x, y), nodeAt(x + 1, y));
        if (wrap && width > 2)
            addLink(nodeAt(width - 1, y), nodeAt(0, y));
    }
    // +Y links per column, same wrap rule.
    for (int x = 0; x < width; ++x) {
        for (int y = 0; y + 1 < height; ++y)
            addLink(nodeAt(x, y), nodeAt(x, y + 1));
        if (wrap && height > 2)
            addLink(nodeAt(x, height - 1), nodeAt(x, 0));
    }
}

std::string
Grid2D::name() const
{
    std::ostringstream oss;
    oss << (wrap_ ? "torus-" : "mesh-") << width_ << "x" << height_;
    return oss.str();
}

int
Grid2D::stepX(int v, int dir) const
{
    int x = xOf(v) + dir;
    if (wrap_)
        x = (x + width_) % width_;
    if (x < 0 || x >= width_)
        return -1;
    int n = nodeAt(x, yOf(v));
    return n == v ? -1 : n;
}

int
Grid2D::stepY(int v, int dir) const
{
    int y = yOf(v) + dir;
    if (wrap_)
        y = (y + height_) % height_;
    if (y < 0 || y >= height_)
        return -1;
    int n = nodeAt(xOf(v), y);
    return n == v ? -1 : n;
}

std::vector<int>
Grid2D::preferredNeighbors(int v) const
{
    std::vector<int> out;
    auto push = [&](int n) {
        if (n < 0)
            return;
        for (int e : out) {
            if (e == n)
                return;
        }
        out.push_back(n);
    };
    push(stepY(v, +1));
    push(stepY(v, -1));
    push(stepX(v, +1));
    push(stepX(v, -1));
    return out;
}

std::vector<int>
Grid2D::route(int src, int dst) const
{
    std::vector<int> path;
    int cur = src;
    // Dimension-order walk: X first, then Y.
    auto advance = [&](bool x_dim) {
        int cur_c = x_dim ? xOf(cur) : yOf(cur);
        int dst_c = x_dim ? xOf(dst) : yOf(dst);
        int size = x_dim ? width_ : height_;
        while (cur_c != dst_c) {
            int delta = dst_c - cur_c;
            int dir;
            if (!wrap_) {
                dir = delta > 0 ? +1 : -1;
            } else {
                int fwd = (delta % size + size) % size;
                dir = fwd <= size - fwd ? +1 : -1;
            }
            int nxt = x_dim ? stepX(cur, dir) : stepY(cur, dir);
            MT_ASSERT(nxt >= 0, "fell off grid routing ", src, "->", dst);
            int cid = channelBetween(cur, nxt);
            MT_ASSERT(cid >= 0, "missing channel ", cur, "->", nxt);
            path.push_back(cid);
            cur = nxt;
            cur_c = x_dim ? xOf(cur) : yOf(cur);
        }
    };
    advance(true);
    advance(false);
    return path;
}

std::vector<int>
Grid2D::ringOrder() const
{
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(width_) * height_);
    for (int y = 0; y < height_; ++y) {
        if (y % 2 == 0) {
            for (int x = 0; x < width_; ++x)
                order.push_back(nodeAt(x, y));
        } else {
            for (int x = width_ - 1; x >= 0; --x)
                order.push_back(nodeAt(x, y));
        }
    }
    return order;
}

} // namespace multitree::topo
