#include "topo/fattree.hh"

#include <sstream>

#include "common/logging.hh"

namespace multitree::topo {

FatTree2L::FatTree2L(int num_leaves, int nodes_per_leaf, int num_spines)
    : num_leaves_(num_leaves), nodes_per_leaf_(nodes_per_leaf),
      num_spines_(num_spines)
{
    MT_ASSERT(num_leaves >= 1 && nodes_per_leaf >= 1 && num_spines >= 1,
              "degenerate fat tree");
    const int n = num_leaves * nodes_per_leaf;
    for (int i = 0; i < n; ++i)
        addVertex(VertexKind::Node);
    for (int l = 0; l < num_leaves; ++l)
        addVertex(VertexKind::Switch);
    for (int s = 0; s < num_spines; ++s)
        addVertex(VertexKind::Switch);

    for (int i = 0; i < n; ++i)
        addLink(i, leafVertex(leafOf(i)));
    for (int l = 0; l < num_leaves; ++l) {
        for (int s = 0; s < num_spines; ++s)
            addLink(leafVertex(l), spineVertex(s));
    }
}

std::string
FatTree2L::name() const
{
    std::ostringstream oss;
    oss << "fattree-" << numNodes() << " (" << num_leaves_ << "x"
        << nodes_per_leaf_ << ", " << num_spines_ << " spines)";
    return oss.str();
}

std::vector<int>
FatTree2L::route(int src, int dst) const
{
    if (src == dst)
        return {};
    // Routes touching switch vertices fall back to shortest path; the
    // deterministic function below is for node-to-node traffic.
    if (!isNode(src) || !isNode(dst))
        return bfsRoute(src, dst);

    std::vector<int> path;
    auto hop = [&](int u, int v) {
        int cid = channelBetween(u, v);
        MT_ASSERT(cid >= 0, "missing fat-tree channel ", u, "->", v);
        path.push_back(cid);
    };
    int src_leaf = leafVertex(leafOf(src));
    int dst_leaf = leafVertex(leafOf(dst));
    hop(src, src_leaf);
    if (src_leaf != dst_leaf) {
        int spine = spineVertex(dst % num_spines_);
        hop(src_leaf, spine);
        hop(spine, dst_leaf);
    }
    hop(dst_leaf, dst);
    return path;
}

std::vector<int>
FatTree2L::ringOrder() const
{
    return Topology::ringOrder();
}

} // namespace multitree::topo
