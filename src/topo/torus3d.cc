#include "topo/torus3d.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace multitree::topo {

Torus3D::Torus3D(int width, int height, int depth)
    : width_(width), height_(height), depth_(depth)
{
    MT_ASSERT(width >= 1 && height >= 1 && depth >= 1,
              "degenerate 3D torus");
    const int n = width * height * depth;
    for (int i = 0; i < n; ++i)
        addVertex(VertexKind::Node);

    auto ring_links = [&](int size, auto node_of) {
        for (int i = 0; i + 1 < size; ++i)
            addLink(node_of(i), node_of(i + 1));
        if (size > 2)
            addLink(node_of(size - 1), node_of(0));
    };
    for (int z = 0; z < depth; ++z) {
        for (int y = 0; y < height; ++y) {
            ring_links(width,
                       [&](int x) { return nodeAt(x, y, z); });
        }
    }
    for (int z = 0; z < depth; ++z) {
        for (int x = 0; x < width; ++x) {
            ring_links(height,
                       [&](int y) { return nodeAt(x, y, z); });
        }
    }
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            ring_links(depth,
                       [&](int z) { return nodeAt(x, y, z); });
        }
    }
}

std::string
Torus3D::name() const
{
    std::ostringstream oss;
    oss << "torus3d-" << width_ << "x" << height_ << "x" << depth_;
    return oss.str();
}

int
Torus3D::step(int v, int dim, int dir) const
{
    int x = xOf(v), y = yOf(v), z = zOf(v);
    switch (dim) {
      case 0:
        x = (x + dir + width_) % width_;
        break;
      case 1:
        y = (y + dir + height_) % height_;
        break;
      default:
        z = (z + dir + depth_) % depth_;
        break;
    }
    int n = nodeAt(x, y, z);
    return n == v ? -1 : n;
}

std::vector<int>
Torus3D::preferredNeighbors(int v) const
{
    std::vector<int> out;
    auto push = [&](int n) {
        if (n < 0)
            return;
        if (std::find(out.begin(), out.end(), n) == out.end())
            out.push_back(n);
    };
    for (int dim : {2, 1, 0}) {
        push(step(v, dim, +1));
        push(step(v, dim, -1));
    }
    return out;
}

std::vector<int>
Torus3D::route(int src, int dst) const
{
    std::vector<int> path;
    int cur = src;
    auto advance = [&](int dim, int size, auto coord) {
        while (coord(cur) != coord(dst)) {
            int delta = coord(dst) - coord(cur);
            int fwd = (delta % size + size) % size;
            int dir = fwd <= size - fwd ? +1 : -1;
            int nxt = step(cur, dim, dir);
            MT_ASSERT(nxt >= 0, "3D torus routing fell off");
            int cid = channelBetween(cur, nxt);
            MT_ASSERT(cid >= 0, "missing 3D torus channel");
            path.push_back(cid);
            cur = nxt;
        }
    };
    advance(0, width_, [&](int v) { return xOf(v); });
    advance(1, height_, [&](int v) { return yOf(v); });
    advance(2, depth_, [&](int v) { return zOf(v); });
    return path;
}

std::vector<int>
Torus3D::ringOrder() const
{
    std::vector<int> order;
    order.reserve(
        static_cast<std::size_t>(width_) * height_ * depth_);
    for (int z = 0; z < depth_; ++z) {
        std::vector<int> plane;
        for (int y = 0; y < height_; ++y) {
            if (y % 2 == 0) {
                for (int x = 0; x < width_; ++x)
                    plane.push_back(nodeAt(x, y, z));
            } else {
                for (int x = width_ - 1; x >= 0; --x)
                    plane.push_back(nodeAt(x, y, z));
            }
        }
        if (z % 2 == 1)
            std::reverse(plane.begin(), plane.end());
        order.insert(order.end(), plane.begin(), plane.end());
    }
    return order;
}

} // namespace multitree::topo
