/**
 * @file
 * Direct 2D grid topologies: Torus2D (with wraparound) and Mesh2D.
 *
 * Every vertex is an end node with an integrated router, matching the
 * Cloud-TPU-style direct networks the paper evaluates. Node ids are
 * row-major: node(x, y) = y * width + x.
 */

#ifndef MULTITREE_TOPO_GRID_HH
#define MULTITREE_TOPO_GRID_HH

#include "topo/topology.hh"

namespace multitree::topo {

/** Common implementation for 2D Torus and Mesh. */
class Grid2D : public Topology
{
  public:
    /**
     * @param width Nodes per row.
     * @param height Nodes per column.
     * @param wrap Whether wraparound (torus) links exist.
     */
    Grid2D(int width, int height, bool wrap);

    std::string name() const override;

    /** Grid width. */
    int width() const { return width_; }

    /** Grid height. */
    int height() const { return height_; }

    /** Whether this grid is a torus. */
    bool isTorus() const { return wrap_; }

    /** Node id at coordinates (@p x, @p y). */
    int nodeAt(int x, int y) const { return y * width_ + x; }

    /** X coordinate of node @p v. */
    int xOf(int v) const { return v % width_; }

    /** Y coordinate of node @p v. */
    int yOf(int v) const { return v / width_; }

    /**
     * Neighbors in the paper's construction order: Y dimension before X
     * (down, up, right, left), skipping absent mesh-edge neighbors.
     */
    std::vector<int> preferredNeighbors(int v) const override;

    /**
     * Dimension-order routing, X first then Y. On a torus each
     * dimension takes the shorter wrap direction (ties go positive).
     */
    std::vector<int> route(int src, int dst) const override;

    /**
     * Serpentine ring: row 0 left-to-right, row 1 right-to-left, and so
     * on. On a torus with even height the closing edge is the single
     * Y-wrap hop, making every ring hop one physical link.
     */
    std::vector<int> ringOrder() const override;

  private:
    /** Step one hop in ±X or ±Y. @return neighbor id or -1 off-mesh. */
    int stepX(int v, int dir) const;
    int stepY(int v, int dir) const;

    int width_;
    int height_;
    bool wrap_;
};

/** 2D Torus built from Grid2D with wraparound links. */
class Torus2D : public Grid2D
{
  public:
    Torus2D(int width, int height) : Grid2D(width, height, true) {}
};

/** 2D Mesh built from Grid2D without wraparound links. */
class Mesh2D : public Grid2D
{
  public:
    Mesh2D(int width, int height) : Grid2D(width, height, false) {}
};

} // namespace multitree::topo

#endif // MULTITREE_TOPO_GRID_HH
