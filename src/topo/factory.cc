#include "topo/factory.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/strings.hh"
#include "topo/bigraph.hh"
#include "topo/dragonfly.hh"
#include "topo/fattree.hh"
#include "topo/grid.hh"
#include "topo/hierarchical.hh"
#include "topo/torus3d.hh"

namespace multitree::topo {

namespace {

/** Parse "AxB" into two positive ints. */
bool
parsePair(const std::string &s, int &a, int &b)
{
    auto parts = split(s, 'x');
    if (parts.size() != 2)
        return false;
    a = std::atoi(parts[0].c_str());
    b = std::atoi(parts[1].c_str());
    return a > 0 && b > 0;
}

} // namespace

std::unique_ptr<Topology>
makeTopology(const std::string &spec)
{
    // "hier:<island>+<spine>[,rails=N]" — parsed before the family
    // split because the component specs contain dashes themselves.
    if (spec.rfind("hier:", 0) == 0) {
        std::string body = spec.substr(5);
        int rails = 1;
        auto rpos = body.rfind(",rails=");
        if (rpos != std::string::npos) {
            rails = std::atoi(body.c_str() + rpos + 7);
            if (rails < 1)
                MT_FATAL("bad rails count in '", spec, "'");
            body = body.substr(0, rpos);
        }
        auto plus = body.find('+');
        if (plus == std::string::npos || plus == 0
            || plus + 1 >= body.size())
            MT_FATAL("bad hierarchical spec '", spec,
                     "' (want hier:<island>+<spine>[,rails=N])");
        return std::make_unique<HierarchicalTopology>(
            makeTopology(body.substr(0, plus)),
            makeTopology(body.substr(plus + 1)), rails);
    }

    auto dash = spec.find('-');
    if (dash == std::string::npos)
        MT_FATAL("malformed topology spec '", spec, "'");
    std::string family = spec.substr(0, dash);
    std::string arg = spec.substr(dash + 1);

    if (family == "torus" || family == "mesh") {
        int w = 0, h = 0;
        if (!parsePair(arg, w, h))
            MT_FATAL("bad grid spec '", spec, "'");
        if (family == "torus")
            return std::make_unique<Torus2D>(w, h);
        return std::make_unique<Mesh2D>(w, h);
    }
    if (family == "fattree") {
        if (arg == "16")
            return std::make_unique<FatTree2L>(4, 4, 4);
        if (arg == "64")
            return std::make_unique<FatTree2L>(8, 8, 8);
        auto parts = split(arg, ':');
        if (parts.size() == 3) {
            int l = std::atoi(parts[0].c_str());
            int p = std::atoi(parts[1].c_str());
            int s = std::atoi(parts[2].c_str());
            if (l > 0 && p > 0 && s > 0)
                return std::make_unique<FatTree2L>(l, p, s);
        }
        MT_FATAL("bad fattree spec '", spec, "'");
    }
    if (family == "bigraph") {
        int u = 0, l = 0;
        if (!parsePair(arg, u, l))
            MT_FATAL("bad bigraph spec '", spec, "'");
        return std::make_unique<BiGraph>(u, l);
    }
    if (family == "torus3d") {
        auto parts = split(arg, 'x');
        if (parts.size() == 3) {
            int x = std::atoi(parts[0].c_str());
            int y = std::atoi(parts[1].c_str());
            int z = std::atoi(parts[2].c_str());
            if (x > 0 && y > 0 && z > 0)
                return std::make_unique<Torus3D>(x, y, z);
        }
        MT_FATAL("bad torus3d spec '", spec, "'");
    }
    if (family == "dragonfly") {
        auto parts = split(arg, ':');
        if (parts.size() == 2) {
            int g = std::atoi(parts[0].c_str());
            int p = std::atoi(parts[1].c_str());
            if (g >= 2 && p >= 1)
                return std::make_unique<Dragonfly>(g, p);
        }
        MT_FATAL("bad dragonfly spec '", spec, "'");
    }
    MT_FATAL("unknown topology family '", family, "'");
}

} // namespace multitree::topo
