#include "topo/hierarchical.hh"

#include <sstream>
#include <utility>

#include "common/logging.hh"

namespace multitree::topo {

HierarchicalTopology::HierarchicalTopology(
    std::unique_ptr<Topology> island, std::unique_ptr<Topology> spine,
    int rails)
    : island_(std::move(island)), spine_(std::move(spine)),
      rails_(rails)
{
    MT_ASSERT(island_ && spine_, "null component topology");
    MT_ASSERT(island_->numNodes() >= 2,
              "island must have >= 2 nodes, got ",
              island_->numNodes());
    MT_ASSERT(spine_->numNodes() >= 2,
              "spine must have >= 2 nodes, got ", spine_->numNodes());
    MT_ASSERT(rails_ >= 1, "rails must be >= 1, got ", rails_);

    num_islands_ = spine_->numNodes();
    island_size_ = island_->numNodes();
    island_switches_ = island_->numVertices() - island_size_;

    // Vertices: all end nodes first (island-major), then each
    // island's switch copies, then the spine's switches.
    for (int v = 0; v < num_islands_ * island_size_; ++v)
        addVertex(VertexKind::Node);
    for (int j = 0; j < num_islands_; ++j) {
        for (int s = 0; s < island_switches_; ++s)
            addVertex(VertexKind::Switch);
    }
    const int spine_switches =
        spine_->numVertices() - spine_->numNodes();
    for (int s = 0; s < spine_switches; ++s)
        addVertex(VertexKind::Switch);
    const int spine_switch_base =
        num_islands_ * island_size_ + num_islands_ * island_switches_;

    // Island channels, replicated per island in prototype order so
    // the consecutive reverse-pair convention carries over.
    for (int j = 0; j < num_islands_; ++j) {
        for (const Channel &ch : island_->channels()) {
            addChannel(mapIslandVertex(j, ch.src),
                       mapIslandVertex(j, ch.dst));
        }
    }
    first_spine_channel_ = numChannels();

    // Spine links, each widened into `rails` parallel bidirectional
    // links. Spine node j attaches at global node j*island_size_.
    auto map_spine = [&](int v) {
        return v < num_islands_
                   ? v * island_size_
                   : spine_switch_base + (v - spine_->numNodes());
    };
    for (int cid = 0; cid < spine_->numChannels(); cid += 2) {
        MT_ASSERT(spine_->reverseChannel(cid) == cid + 1,
                  "spine channels must come in reverse pairs");
        const Channel &ch = spine_->channel(cid);
        int u = map_spine(ch.src);
        int v = map_spine(ch.dst);
        for (int r = 0; r < rails_; ++r)
            addLink(u, v);
    }
}

std::string
HierarchicalTopology::name() const
{
    std::ostringstream oss;
    oss << "hier:" << island_->name() << "+" << spine_->name();
    if (rails_ > 1)
        oss << ",rails=" << rails_;
    return oss.str();
}

std::vector<int>
HierarchicalTopology::route(int src, int dst) const
{
    return bfsRoute(src, dst);
}

std::vector<int>
HierarchicalTopology::ringOrder() const
{
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(numNodes()));
    for (int j : spine_->ringOrder()) {
        for (int local : island_->ringOrder())
            order.push_back(globalNode(j, local));
    }
    return order;
}

int
HierarchicalTopology::islandOf(int v) const
{
    MT_ASSERT(v >= 0 && v < numVertices(), "bad vertex ", v);
    if (v < numNodes())
        return v / island_size_;
    int s = v - numNodes();
    if (s < num_islands_ * island_switches_)
        return s / island_switches_;
    return -1; // spine switch
}

int
HierarchicalTopology::mapIslandVertex(int j, int proto) const
{
    if (proto < island_size_)
        return globalNode(j, proto);
    return numIslands() * island_size_ + j * island_switches_
           + (proto - island_size_);
}

} // namespace multitree::topo
