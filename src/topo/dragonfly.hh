/**
 * @file
 * Dragonfly indirect topology (canonical h=1 arrangement).
 *
 * `g` groups of `g - 1` routers each; routers within a group form a
 * full mesh, and every unordered group pair is joined by exactly one
 * global link (router (j-i-1) of group i to router (i-j-1 mod g) of
 * group j), so each router owns one global port. `p` end nodes hang
 * off every router.
 *
 * Dragonfly is a deliberately MultiTree-unfriendly stress test: no
 * baseline in the paper targets it, but MultiTree's switch-based
 * extension (§III-C3) schedules on it unchanged — the generality
 * claim the fuzz and property suites exercise.
 */

#ifndef MULTITREE_TOPO_DRAGONFLY_HH
#define MULTITREE_TOPO_DRAGONFLY_HH

#include "topo/topology.hh"

namespace multitree::topo {

/** Canonical one-global-port-per-router dragonfly. */
class Dragonfly : public Topology
{
  public:
    /**
     * @param groups Number of groups (>= 2). Routers per group is
     *        groups - 1.
     * @param nodes_per_router End nodes per router (>= 1).
     */
    Dragonfly(int groups, int nodes_per_router);

    std::string name() const override;

    int numGroups() const { return groups_; }
    int routersPerGroup() const { return groups_ - 1; }
    int nodesPerRouter() const { return nodes_per_router_; }

    /** Vertex id of router @p r in group @p grp. */
    int routerVertex(int grp, int r) const;

    /** Group of node @p n. */
    int groupOf(int n) const;

    /** Router vertex hosting node @p n. */
    int routerOf(int n) const;

    /**
     * Minimal routing: local hop to the group's gateway router for
     * the destination group, the single global link, then a local
     * hop inside the destination group.
     */
    std::vector<int> route(int src, int dst) const override;

  private:
    /** Router index inside @p grp owning the global link to @p to. */
    int gatewayIndex(int grp, int to) const;

    int groups_;
    int nodes_per_router_;
};

} // namespace multitree::topo

#endif // MULTITREE_TOPO_DRAGONFLY_HH
