/**
 * @file
 * BiGraph topology from Alibaba's EFLOPS training platform (HPCA 2020).
 *
 * Two stages of switches — `numUpper` upper and `numLower` lower — form
 * a complete bipartite graph. End nodes attach to both stages: half of
 * the nodes hang off upper switches and half off lower switches. Any
 * upper-attached node reaches any lower-attached node through exactly
 * one switch-to-switch link, which HDRM's rank mapping exploits to keep
 * halving-doubling contention-free.
 *
 * The paper's 32-node instance is BiGraph(4, 8) and the 64-node one is
 * BiGraph(4, 16): N = numUpper * numLower nodes in total, N/2 on each
 * stage.
 */

#ifndef MULTITREE_TOPO_BIGRAPH_HH
#define MULTITREE_TOPO_BIGRAPH_HH

#include "topo/topology.hh"

namespace multitree::topo {

/** EFLOPS-style two-stage fully connected BiGraph. */
class BiGraph : public Topology
{
  public:
    /**
     * @param num_upper Upper-stage switch count.
     * @param num_lower Lower-stage switch count.
     *
     * Hosts numUpper*numLower nodes. N/2 must divide evenly across each
     * stage's switches.
     */
    BiGraph(int num_upper, int num_lower);

    std::string name() const override;

    /** Upper-stage switch count. */
    int numUpper() const { return num_upper_; }

    /** Lower-stage switch count. */
    int numLower() const { return num_lower_; }

    /** Nodes attached to each upper switch. */
    int nodesPerUpper() const { return nodes_per_upper_; }

    /** Nodes attached to each lower switch. */
    int nodesPerLower() const { return nodes_per_lower_; }

    /** Whether node @p n hangs off an upper-stage switch. */
    bool isUpperNode(int n) const { return n < numNodes() / 2; }

    /** Vertex id of upper switch @p u. */
    int upperVertex(int u) const { return numNodes() + u; }

    /** Vertex id of lower switch @p l. */
    int lowerVertex(int l) const { return numNodes() + num_upper_ + l; }

    /** Switch vertex that node @p n attaches to. */
    int switchOf(int n) const;

    /**
     * Deterministic routing: same-switch pairs take two hops; an
     * upper-attached and a lower-attached node take the single
     * switch-to-switch link between their switches; same-stage pairs
     * bounce through the opposite stage (switch chosen by destination).
     */
    std::vector<int> route(int src, int dst) const override;

  private:
    int num_upper_;
    int num_lower_;
    int nodes_per_upper_;
    int nodes_per_lower_;
};

} // namespace multitree::topo

#endif // MULTITREE_TOPO_BIGRAPH_HH
