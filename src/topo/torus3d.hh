/**
 * @file
 * 3D Torus direct network (TPU-v4-pod-like).
 *
 * Generalizes the paper's 2D study to the third dimension: every
 * vertex is a node with an integrated six-ported router. Node ids
 * are x-major: node(x, y, z) = (z * height + y) * width + x.
 */

#ifndef MULTITREE_TOPO_TORUS3D_HH
#define MULTITREE_TOPO_TORUS3D_HH

#include "topo/topology.hh"

namespace multitree::topo {

/** 3D torus with full wraparound. */
class Torus3D : public Topology
{
  public:
    Torus3D(int width, int height, int depth);

    std::string name() const override;

    int width() const { return width_; }
    int height() const { return height_; }
    int depth() const { return depth_; }

    /** Node id at (@p x, @p y, @p z). */
    int
    nodeAt(int x, int y, int z) const
    {
        return (z * height_ + y) * width_ + x;
    }

    int xOf(int v) const { return v % width_; }
    int yOf(int v) const { return (v / width_) % height_; }
    int zOf(int v) const { return v / (width_ * height_); }

    /** Z dimension first, then Y, then X (extends the 2D rule). */
    std::vector<int> preferredNeighbors(int v) const override;

    /** Dimension-order routing X → Y → Z with shortest wrap. */
    std::vector<int> route(int src, int dst) const override;

    /**
     * Plane-serpentine Hamiltonian ring: the 2D serpentine of each
     * XY plane, with odd planes traversed in reverse so plane
     * transitions stay one Z hop.
     */
    std::vector<int> ringOrder() const override;

  private:
    /** Neighbor one hop away in dimension @p dim (0=x,1=y,2=z). */
    int step(int v, int dim, int dir) const;

    int width_;
    int height_;
    int depth_;
};

} // namespace multitree::topo

#endif // MULTITREE_TOPO_TORUS3D_HH
