/**
 * @file
 * Hierarchical (island + spine) fabric composition.
 *
 * Real training clusters are DGX-like: fast intra-server islands
 * (NVLink meshes/tori) stitched together by a slower scale-out spine
 * network, often with several parallel "rails". HierarchicalTopology
 * composes two existing topologies under one node numbering: a copy
 * of the island topology per spine endpoint, plus the spine graph
 * whose every link is replicated `rails` times as multigraph edges
 * (the §VII-B heterogeneous-link modeling). Collectives either treat
 * the result as one flat fabric or are composed phase-wise with
 * coll::composeHierarchical().
 */

#ifndef MULTITREE_TOPO_HIERARCHICAL_HH
#define MULTITREE_TOPO_HIERARCHICAL_HH

#include <memory>

#include "topo/topology.hh"

namespace multitree::topo {

/**
 * Composition of an island topology replicated per spine endpoint
 * with a multi-rail spine graph.
 *
 * Node numbering: island j's local node i becomes global node
 * j*islandSize() + i, so all end nodes stay in [0, numNodes()) and
 * within-island ids are contiguous. Island switch copies follow the
 * nodes, then the spine switches. Spine node vertex j attaches to
 * global node j*islandSize() (local node 0 — the island's NIC-facing
 * gateway), and every spine link is widened into `rails` parallel
 * bidirectional links.
 */
class HierarchicalTopology : public Topology
{
  public:
    /**
     * @param island Per-server fabric; replicated spine->numNodes()
     *               times. Must have >= 2 nodes.
     * @param spine Inter-server fabric; its node j stands for island
     *              j. Must have >= 2 nodes.
     * @param rails Parallel links replacing each spine link, >= 1.
     */
    HierarchicalTopology(std::unique_ptr<Topology> island,
                         std::unique_ptr<Topology> spine, int rails);

    std::string name() const override;

    /** Shortest-path routing over the composed graph. */
    std::vector<int> route(int src, int dst) const override;

    /** Spine ring order expanded island-by-island. */
    std::vector<int> ringOrder() const override;

    /** The island prototype. */
    const Topology &island() const { return *island_; }

    /** The spine prototype. */
    const Topology &spine() const { return *spine_; }

    /** Number of islands (spine end nodes). */
    int numIslands() const { return num_islands_; }

    /** End nodes per island. */
    int islandSize() const { return island_size_; }

    /** Parallel links per spine link. */
    int rails() const { return rails_; }

    /** Island of vertex @p v, or -1 for spine switches. */
    int islandOf(int v) const;

    /** Global node id of island @p j's local node @p local. */
    int globalNode(int j, int local) const
    {
        return j * island_size_ + local;
    }

    /** Whether channel @p cid belongs to the spine (any rail). */
    bool isSpineChannel(int cid) const
    {
        return cid >= first_spine_channel_;
    }

  private:
    /** Global vertex of island @p j's prototype vertex @p proto. */
    int mapIslandVertex(int j, int proto) const;

    std::unique_ptr<Topology> island_;
    std::unique_ptr<Topology> spine_;
    int rails_;
    int num_islands_;
    int island_size_;
    int island_switches_;
    int first_spine_channel_;
};

} // namespace multitree::topo

#endif // MULTITREE_TOPO_HIERARCHICAL_HH
