#include "topo/dragonfly.hh"

#include <sstream>

#include "common/logging.hh"

namespace multitree::topo {

Dragonfly::Dragonfly(int groups, int nodes_per_router)
    : groups_(groups), nodes_per_router_(nodes_per_router)
{
    MT_ASSERT(groups >= 2 && nodes_per_router >= 1,
              "degenerate dragonfly");
    const int a = routersPerGroup();
    const int n = groups * a * nodes_per_router;
    for (int i = 0; i < n; ++i)
        addVertex(VertexKind::Node);
    for (int grp = 0; grp < groups; ++grp) {
        for (int r = 0; r < a; ++r)
            addVertex(VertexKind::Switch);
    }

    // Node attachments.
    for (int i = 0; i < n; ++i)
        addLink(i, routerOf(i));
    // Local full mesh inside each group.
    for (int grp = 0; grp < groups; ++grp) {
        for (int r = 0; r < a; ++r) {
            for (int s = r + 1; s < a; ++s)
                addLink(routerVertex(grp, r), routerVertex(grp, s));
        }
    }
    // One global link per unordered group pair.
    for (int i = 0; i < groups; ++i) {
        for (int j = i + 1; j < groups; ++j) {
            addLink(routerVertex(i, gatewayIndex(i, j)),
                    routerVertex(j, gatewayIndex(j, i)));
        }
    }
}

std::string
Dragonfly::name() const
{
    std::ostringstream oss;
    oss << "dragonfly-" << groups_ << "g" << nodes_per_router_ << "p";
    return oss.str();
}

int
Dragonfly::routerVertex(int grp, int r) const
{
    return numNodes() + grp * routersPerGroup() + r;
}

int
Dragonfly::groupOf(int n) const
{
    return n / (routersPerGroup() * nodes_per_router_);
}

int
Dragonfly::routerOf(int n) const
{
    int grp = groupOf(n);
    int within = n - grp * routersPerGroup() * nodes_per_router_;
    return routerVertex(grp, within / nodes_per_router_);
}

int
Dragonfly::gatewayIndex(int grp, int to) const
{
    MT_ASSERT(grp != to, "no gateway to own group");
    // (to - grp - 1) mod g lies in [0, g-2] for to != grp, which is
    // exactly the router index range, and is distinct per target
    // group — each router owns one global port.
    return ((to - grp - 1) % groups_ + groups_) % groups_;
}

std::vector<int>
Dragonfly::route(int src, int dst) const
{
    if (src == dst)
        return {};
    if (!isNode(src) || !isNode(dst))
        return bfsRoute(src, dst);

    std::vector<int> path;
    auto hop = [&](int u, int v) {
        int cid = channelBetween(u, v);
        MT_ASSERT(cid >= 0, "missing dragonfly channel ", u, "->", v);
        path.push_back(cid);
    };
    int sg = groupOf(src);
    int dg = groupOf(dst);
    int sr = routerOf(src);
    int dr = routerOf(dst);
    hop(src, sr);
    if (sg == dg) {
        if (sr != dr)
            hop(sr, dr);
    } else {
        int out = routerVertex(sg, gatewayIndex(sg, dg));
        int in = routerVertex(dg, gatewayIndex(dg, sg));
        if (sr != out)
            hop(sr, out);
        hop(out, in);
        if (in != dr)
            hop(in, dr);
    }
    hop(dr, dst);
    return path;
}

} // namespace multitree::topo
