/**
 * @file
 * Interconnection-network topology abstraction.
 *
 * A Topology is a directed multigraph. Vertices are either end nodes
 * (accelerators with an integrated or attached network interface) or
 * switches. A bidirectional physical link is modelled as two directed
 * channels. By convention node vertices occupy ids [0, numNodes()) and
 * switch vertices follow.
 *
 * Both the cycle-level network simulator and the collective-algorithm
 * library operate on this representation: algorithms allocate channels
 * (MultiTree's link allocation walks the very same channel lists) and
 * the simulators move flits/flows across them.
 */

#ifndef MULTITREE_TOPO_TOPOLOGY_HH
#define MULTITREE_TOPO_TOPOLOGY_HH

#include <optional>
#include <string>
#include <vector>

namespace multitree::topo {

/** What a vertex of the topology graph represents. */
enum class VertexKind {
    Node,   ///< an end node: accelerator + network interface
    Switch, ///< a switching element with no attached compute
};

/** One directed channel (half of a bidirectional link). */
struct Channel {
    int id;  ///< dense identifier, [0, numChannels())
    int src; ///< source vertex
    int dst; ///< destination vertex
};

/**
 * Base class for all topologies. Construction happens in subclass
 * constructors through addVertex()/addLink(); the graph is immutable
 * afterwards.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Human-readable name, e.g. "torus-4x4". */
    virtual std::string name() const = 0;

    /** Total vertices (nodes + switches). */
    int numVertices() const { return static_cast<int>(kinds_.size()); }

    /** Number of end nodes. */
    int numNodes() const { return num_nodes_; }

    /** Number of directed channels. */
    int numChannels() const { return static_cast<int>(channels_.size()); }

    /** Kind of vertex @p v. */
    VertexKind kind(int v) const { return kinds_[v]; }

    /** Whether vertex @p v is an end node. */
    bool isNode(int v) const { return kinds_[v] == VertexKind::Node; }

    /** All directed channels. */
    const std::vector<Channel> &channels() const { return channels_; }

    /** Channel @p id. */
    const Channel &channel(int id) const { return channels_[id]; }

    /** Ids of channels leaving vertex @p v, in insertion order. */
    const std::vector<int> &outChannels(int v) const { return out_[v]; }

    /** Ids of channels entering vertex @p v, in insertion order. */
    const std::vector<int> &inChannels(int v) const { return in_[v]; }

    /** First channel from @p u to @p v, or -1 when not adjacent. */
    int channelBetween(int u, int v) const;

    /**
     * The paired opposite-direction channel of @p cid. Links are
     * created as consecutive channel pairs, so this is exact even on
     * multigraphs (parallel links modeling wider bandwidth, §VII-B
     * of the paper, reverse to their own partner).
     */
    int reverseChannel(int cid) const;

    /**
     * Neighbor vertices of @p v in the order a tree-construction pass
     * should consider them. The paper checks the Y dimension before the
     * X dimension on Torus/Mesh; the default is adjacency order.
     */
    virtual std::vector<int> preferredNeighbors(int v) const;

    /**
     * Minimal route from vertex @p src to vertex @p dst as a channel-id
     * sequence, using the topology's deterministic routing function.
     * Empty when src == dst.
     */
    virtual std::vector<int> route(int src, int dst) const = 0;

    /** Hop count of the deterministic route between two vertices. */
    int hopCount(int src, int dst) const;

    /** Maximum node-to-node hop count under deterministic routing. */
    int diameter() const;

    /**
     * An ordering of all end nodes that a ring all-reduce should follow.
     * Subclasses embed a ring with short hops (serpentine on grids,
     * switch-grouped on indirect networks). Default: id order.
     */
    virtual std::vector<int> ringOrder() const;

    /**
     * Shortest path by breadth-first search, ignoring the deterministic
     * routing function. Used by tests and topology-agnostic helpers.
     */
    std::vector<int> bfsRoute(int src, int dst) const;

    /**
     * Like bfsRoute(), but returns std::nullopt instead of panicking
     * when @p dst is unreachable from @p src. Validators use this to
     * report a disconnected schedule edge as a failure rather than
     * aborting the process.
     */
    std::optional<std::vector<int>> tryBfsRoute(int src,
                                                int dst) const;

    /**
     * Like tryBfsRoute(), but never traverses a channel whose id is
     * flagged in @p blocked (dense channel-id → flag mask; ids past
     * the mask's end count as allowed). The self-healing layer's
     * deterministic route repair: recompute a path around the
     * confirmed-dead channel set. std::nullopt when the dead set
     * disconnects @p dst from @p src.
     */
    std::optional<std::vector<int>>
    tryBfsRouteAvoiding(int src, int dst,
                        const std::vector<char> &blocked) const;

  protected:
    /** Append a vertex of kind @p k. @return its id. */
    int addVertex(VertexKind k);

    /** Append one directed channel u → v. @return channel id. */
    int addChannel(int u, int v);

    /** Append a bidirectional link (two directed channels). */
    void addLink(int u, int v);

  private:
    std::vector<VertexKind> kinds_;
    std::vector<Channel> channels_;
    std::vector<std::vector<int>> out_;
    std::vector<std::vector<int>> in_;
    int num_nodes_ = 0;
};

/**
 * Parallel-link ("rail") structure of a topology: every set of two or
 * more channels sharing the same (src, dst) endpoints forms one rail
 * group. Multigraph edges model wider physical links (§VII-B) and
 * DGX-like multi-rail scale-out networks; the NIC engines use these
 * groups to stripe deterministically-routed traffic across rails.
 */
struct RailGroups {
    /** Member channel ids of each group, ascending; the position of
     *  a channel in its group is its rail index. */
    std::vector<std::vector<int>> groups;
    /** Channel id → group index, or -1 for channels with no parallel
     *  sibling. Dense over [0, numChannels()). */
    std::vector<int> group_of;

    /** Whether the topology has any multi-rail edge at all. */
    bool empty() const { return groups.empty(); }

    /** Rail index of @p cid within its group (0 when ungrouped). */
    int railOf(int cid) const;

    /** The widest group's rail count (1 when no group exists). */
    int maxRails() const;
};

/** Derive the rail groups of @p topo (channels bucketed by their
 *  (src, dst) endpoint pair; singleton buckets are not groups). */
RailGroups buildRailGroups(const Topology &topo);

} // namespace multitree::topo

#endif // MULTITREE_TOPO_TOPOLOGY_HH
