/**
 * @file
 * Link-health monitoring and self-healing policy.
 *
 * The HealthMonitor is the detection half of the self-healing layer:
 * it turns endpoint evidence — per-channel consecutive round-trip
 * failure streaks maintained by the NIC engines, corroborated by the
 * network's in-flight census — into a confirmed dead-channel verdict.
 * Everything is deterministic: evidence arrives in simulation-event
 * order, the threshold is a fixed count, and a verdict fires exactly
 * once per channel, so a (seed, plan, schedule, policy) quadruple
 * always produces the same repair sequence.
 *
 * The repair half lives in runtime::Machine, which subscribes to the
 * verdict callback and — depending on the RecoveryPolicy — masks dead
 * rails out of the rail-steering groups, recomputes affected schedule
 * routes around the dead set, and re-issues the transfers still open
 * in the NIC dependency scoreboards instead of aborting the run.
 *
 * Detection is endpoint-honest on purpose: no endpoint is ever told
 * which hop killed a message. Evidence quality comes from four
 * mechanisms layered on that constraint. (1) Leg attribution: faults
 * drop messages only at injection, so the network's in-flight and
 * delivered censuses prove which leg of a timed-out round trip was
 * lost — senders blame their data route only for data that truly
 * vanished, and a receiver that sees a duplicate blames the exact
 * route of the ack it now knows was dropped. (2) Exoneration: any
 * successful round trip resets the streak of every channel it
 * crossed, and a verdict resets the streaks its storm inflated on
 * route-mates. (3) Evidence-ranked reporting: the hops of a failed
 * route are reported in descending order of fleet-wide blame, so the
 * hop every failing route shares crosses the threshold before a
 * route-mate whose streak rose in lockstep. (4) Explain-away: a
 * failure over a route with a confirmed-dead hop charges only that
 * hop. Residual over-blame is conservative — masking or routing
 * around a healthy channel costs bandwidth, never correctness — and
 * the chaos suite exercises exactly that.
 */

#ifndef MULTITREE_FAULT_HEALTH_HH
#define MULTITREE_FAULT_HEALTH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hh"

namespace multitree::fault {

/** What the runtime does with a confirmed dead channel. */
enum class RecoveryPolicy {
    /** No monitor, no repair: a permanent fault burns the retransmit
     *  budget and ends in a structured watchdog abort (the pre-
     *  self-healing behavior, bit- and tick-identical to it). */
    Off,
    /** Mask dead rails out of the steering groups so re-steered
     *  traffic moves to a live parallel rail; open transfers are
     *  re-issued over their re-steered routes. Routes with a dead
     *  hop that has no live sibling still abort. */
    Failover,
    /** Failover plus deterministic route repair: affected schedule-
     *  table routes are recomputed via BFS avoiding the dead set
     *  (pinned source routes fall back to a repaired BFS route with
     *  a provenance flag), and the collective resumes. */
    RepairResume,
};

/** Stable lower-case name of @p policy (reports, JSON). */
const char *policyName(RecoveryPolicy policy);

/** Self-healing knobs (runtime::RunOptions::recovery). */
struct RecoveryOptions {
    RecoveryPolicy policy = RecoveryPolicy::Off;
    /** Consecutive round-trip failures over a channel before it is
     *  declared dead. Exoneration resets the streak, so only a
     *  channel that never carries a successful round trip while
     *  under suspicion can reach the threshold. */
    std::uint32_t dead_after = 3;
    /** Bound on repair-and-resume rounds per run; exhausting it
     *  stops repairing and lets the watchdog abort structurally. */
    std::uint32_t max_resume_epochs = 8;
};

/** Repair-side activity of one run (RunReport::recovery). */
struct RecoveryCounters {
    std::uint64_t links_dead = 0;        ///< confirmed dead verdicts
    std::uint64_t rails_failed_over = 0; ///< rails masked from groups
    std::uint64_t routes_repaired = 0;   ///< routes rewritten via BFS
    std::uint64_t pinned_repairs = 0;    ///< source routes repaired
    std::uint64_t resumed_transfers = 0; ///< open transfers re-issued
    std::uint64_t resume_epochs = 0;     ///< recovery rounds executed
};

/**
 * The deterministic link-health monitor. One per Machine when the
 * recovery policy is armed; every NIC engine reports its per-channel
 * failure streaks here, and the runtime subscribes to the verdicts.
 */
class HealthMonitor
{
  public:
    /** Invoked exactly once per channel, at confirmation time. */
    using VerdictFn = std::function<void(int channel, Tick now)>;

    /**
     * @param opts The policy in effect; dead_after is the threshold.
     * @param num_channels Channel-id space of the fabric.
     */
    HealthMonitor(const RecoveryOptions &opts, int num_channels);

    /** Subscribe the repair side. Call once at bring-up. */
    void onVerdict(VerdictFn fn) { verdict_ = std::move(fn); }

    /**
     * Feed one engine's updated failure streak for @p channel. The
     * channel is confirmed dead — and the verdict callback fired —
     * the first time a streak reaches the dead_after threshold.
     */
    void reportEvidence(int channel, std::uint32_t streak, Tick now);

    /**
     * Fleet-wide failure reports received for @p channel this epoch.
     * Engines use this to rank the hops of a failed route before
     * reporting: every hop is equally suspect to one engine, but the
     * hop every failing route shares — the dead one — draws blame
     * from the whole fleet and so ranks first. Reporting in that
     * order lets the true culprit cross the threshold before a
     * route-mate whose streak rose in lockstep with it.
     */
    std::uint64_t
    totalEvidence(int channel) const
    {
        const auto c = static_cast<std::size_t>(channel);
        return c < reports_.size() ? reports_[c] : 0;
    }

    /** Whether @p channel has a confirmed dead verdict. */
    bool
    confirmedDead(int channel) const
    {
        const auto c = static_cast<std::size_t>(channel);
        return c < dead_.size() && dead_[c] != 0;
    }

    /** First confirmed-dead channel on @p route, or -1. */
    int firstDeadOn(const std::vector<int> &route) const;

    /** Dense channel-id → dead flag mask (route-repair input). */
    const std::vector<char> &deadMask() const { return dead_; }

    /** Channels with a confirmed dead verdict, ascending. */
    std::vector<int> deadChannels() const;

    /** Number of confirmed-dead channels. */
    std::size_t deadCount() const { return dead_count_; }

    /** The policy in effect. */
    const RecoveryOptions &options() const { return opts_; }

    /** One-line summary for diagnostic dumps. */
    std::string describe() const;

    /** Forget every verdict for a new epoch. */
    void reset();

  private:
    RecoveryOptions opts_;
    VerdictFn verdict_;
    /** Channel id → confirmed-dead flag. */
    std::vector<char> dead_;
    std::size_t dead_count_ = 0;
    /** Channel id → evidence reports received (see totalEvidence). */
    std::vector<std::uint64_t> reports_;
};

} // namespace multitree::fault

#endif // MULTITREE_FAULT_HEALTH_HH
