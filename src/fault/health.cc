#include "fault/health.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace multitree::fault {

const char *
policyName(RecoveryPolicy policy)
{
    switch (policy) {
      case RecoveryPolicy::Off:
        return "off";
      case RecoveryPolicy::Failover:
        return "failover";
      case RecoveryPolicy::RepairResume:
        return "repair+resume";
    }
    return "?";
}

HealthMonitor::HealthMonitor(const RecoveryOptions &opts,
                             int num_channels)
    : opts_(opts)
{
    MT_ASSERT(opts_.policy != RecoveryPolicy::Off,
              "a health monitor with recovery off is dead weight; "
              "leave it unconstructed instead");
    MT_ASSERT(opts_.dead_after >= 1,
              "dead_after = 0 would declare channels dead on no "
              "evidence at all");
    MT_ASSERT(num_channels > 0, "monitoring a fabric with no "
              "channels");
    dead_.assign(static_cast<std::size_t>(num_channels), 0);
    reports_.assign(static_cast<std::size_t>(num_channels), 0);
}

void
HealthMonitor::reportEvidence(int channel, std::uint32_t streak,
                              Tick now)
{
    const auto c = static_cast<std::size_t>(channel);
    MT_ASSERT(c < dead_.size(), "evidence for channel ", channel,
              " outside [0, ", dead_.size(), ")");
    ++reports_[c];
    if (dead_[c] != 0 || streak < opts_.dead_after)
        return;
    dead_[c] = 1;
    ++dead_count_;
    if (verdict_)
        verdict_(channel, now);
}

int
HealthMonitor::firstDeadOn(const std::vector<int> &route) const
{
    if (dead_count_ == 0)
        return -1;
    for (int cid : route) {
        if (confirmedDead(cid))
            return cid;
    }
    return -1;
}

std::vector<int>
HealthMonitor::deadChannels() const
{
    std::vector<int> out;
    out.reserve(dead_count_);
    for (std::size_t c = 0; c < dead_.size(); ++c) {
        if (dead_[c] != 0)
            out.push_back(static_cast<int>(c));
    }
    return out;
}

std::string
HealthMonitor::describe() const
{
    std::ostringstream oss;
    oss << "health monitor (policy " << policyName(opts_.policy)
        << ", dead after " << opts_.dead_after
        << " consecutive failures): " << dead_count_
        << " channel(s) confirmed dead";
    if (dead_count_ > 0) {
        oss << ":";
        for (int cid : deadChannels())
            oss << " " << cid;
    }
    return oss.str();
}

void
HealthMonitor::reset()
{
    std::fill(dead_.begin(), dead_.end(), 0);
    std::fill(reports_.begin(), reports_.end(), 0);
    dead_count_ = 0;
}

} // namespace multitree::fault
