#include "fault/fault.hh"

#include <sstream>

#include "common/logging.hh"

namespace multitree::fault {

FaultPlan::FaultPlan(FaultConfig cfg, int num_channels)
    : cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    MT_ASSERT(cfg_.drop_prob >= 0.0 && cfg_.drop_prob <= 1.0,
              "drop_prob must be a probability, got ",
              cfg_.drop_prob);
    MT_ASSERT(cfg_.corrupt_prob >= 0.0 && cfg_.corrupt_prob <= 1.0,
              "corrupt_prob must be a probability, got ",
              cfg_.corrupt_prob);
    for (const auto &lf : cfg_.links) {
        MT_ASSERT(lf.channel >= 0 && lf.channel < num_channels,
                  "link fault pinned to channel ", lf.channel,
                  " outside [0, ", num_channels, ")");
        MT_ASSERT(lf.until > lf.from, "empty link-fault interval on "
                  "channel ", lf.channel);
        MT_ASSERT(!(lf.down && lf.extra_latency > 0),
                  "channel ", lf.channel, ": a link fault is either "
                  "down or degraded, not both");
        MT_ASSERT(lf.down || lf.extra_latency > 0,
                  "channel ", lf.channel, ": link fault with no "
                  "effect (neither down nor degraded)");
    }
}

net::FaultFate
FaultPlan::onInject(const net::Message &msg, Tick now)
{
    if (!enabled_)
        return {};
    net::FaultFate fate;
    // Scheduled link faults first: deterministic in the route and
    // the injection tick, no randomness consumed.
    for (const auto &lf : cfg_.links) {
        if (now < lf.from || now >= lf.until)
            continue;
        bool crossed = false;
        for (int cid : msg.route) {
            if (cid == lf.channel) {
                crossed = true;
                break;
            }
        }
        if (!crossed)
            continue;
        if (lf.down) {
            stats_.inc("link_down_drops");
            fate.drop = true;
            return fate;
        }
        fate.extra_latency += lf.extra_latency;
        stats_.inc("degraded_traversals");
    }
    // Probabilistic loss, then corruption. A dropped message never
    // draws its corruption fate; determinism is unaffected because
    // the decision sequence itself is deterministic.
    if (cfg_.drop_prob > 0 && rng_.nextDouble() < cfg_.drop_prob) {
        stats_.inc("random_drops");
        fate.drop = true;
        return fate;
    }
    if (cfg_.corrupt_prob > 0
        && rng_.nextDouble() < cfg_.corrupt_prob) {
        stats_.inc("corruptions");
        fate.corrupt = true;
    }
    return fate;
}

void
FaultPlan::reset()
{
    rng_ = Rng(cfg_.seed);
    stats_.clear();
}

int
FaultPlan::downedChannelOn(const std::vector<int> &route,
                           Tick now) const
{
    for (const auto &lf : cfg_.links) {
        if (!lf.down || now < lf.from || now >= lf.until)
            continue;
        for (int cid : route) {
            if (cid == lf.channel)
                return cid;
        }
    }
    return -1;
}

std::vector<int>
FaultPlan::downedChannels(Tick now) const
{
    std::vector<int> out;
    for (const auto &lf : cfg_.links) {
        if (lf.down && now >= lf.from && now < lf.until)
            out.push_back(lf.channel);
    }
    return out;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream oss;
    oss << "fault plan seed " << cfg_.seed << ": drop_prob "
        << cfg_.drop_prob << ", corrupt_prob " << cfg_.corrupt_prob;
    for (const auto &lf : cfg_.links) {
        oss << ", channel " << lf.channel
            << (lf.down ? " down" : " degraded") << " [" << lf.from
            << ", ";
        if (lf.until == std::numeric_limits<Tick>::max())
            oss << "forever)";
        else
            oss << lf.until << ")";
        if (!lf.down)
            oss << " +" << lf.extra_latency << " cycles";
    }
    return oss.str();
}

} // namespace multitree::fault
