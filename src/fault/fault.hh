/**
 * @file
 * Deterministic fault injection for the simulated fabric.
 *
 * A FaultPlan is the single interposition point (net::FaultInterposer)
 * through which every message of both backends passes at injection
 * time. It models three fault classes real distributed-training
 * fabrics exhibit:
 *
 *  - link-down intervals: every message whose route crosses a downed
 *    channel during its active window is lost;
 *  - per-link latency degradation: messages crossing a degraded
 *    channel are delivered late by the configured extra cycles per
 *    affected traversal;
 *  - probabilistic loss/corruption: each message independently drops
 *    or arrives with a failed checksum with the configured
 *    probabilities.
 *
 * All randomness comes from one common::Rng seeded explicitly, and
 * injections execute in deterministic event order, so a (seed, plan,
 * schedule) triple always produces the same fault pattern — the
 * property tests and the CI smoke job depend on this. reset() rewinds
 * the RNG stream so a persistent runtime::Machine replays identical
 * faults every epoch.
 */

#ifndef MULTITREE_FAULT_FAULT_HH
#define MULTITREE_FAULT_FAULT_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "net/network.hh"

namespace multitree::fault {

/** A fault pinned to one physical channel for a time interval. */
struct LinkFault {
    int channel = -1; ///< channel id the fault applies to
    /** First tick the fault is active (inclusive). */
    Tick from = 0;
    /** First tick it is no longer active; default = forever. */
    Tick until = std::numeric_limits<Tick>::max();
    /** Down link: every message routed across it while active is
     *  lost. Mutually exclusive with degradation on one entry. */
    bool down = false;
    /** Degraded link: extra delivery latency in cycles charged per
     *  active traversal (0 = none). */
    Tick extra_latency = 0;
};

/** Everything a FaultPlan needs to decide message fates. */
struct FaultConfig {
    std::uint64_t seed = 1;  ///< RNG seed; equal seeds, equal faults
    double drop_prob = 0;    ///< per-message loss probability
    double corrupt_prob = 0; ///< per-message corruption probability
    std::vector<LinkFault> links; ///< scheduled link faults
};

/**
 * The deterministic fault oracle. One per Machine; consulted by the
 * network for every injection (data, acks and retransmissions alike —
 * a retransmitted copy redraws its fate, which is what makes
 * end-to-end reliability worth testing).
 */
class FaultPlan final : public net::FaultInterposer
{
  public:
    /**
     * @param cfg The plan. @pre probabilities in [0, 1] and every
     *        link fault pinned to a channel in [0, num_channels).
     * @param num_channels Channel-id bound for validation.
     */
    FaultPlan(FaultConfig cfg, int num_channels);

    /** Rule on one injection (net::FaultInterposer). */
    net::FaultFate onInject(const net::Message &msg,
                            Tick now) override;

    /** Rewind the RNG stream and fault statistics for a new epoch. */
    void reset() override;

    /** Enable/disable injection; disabled plans rule "no fault"
     *  without consuming randomness. */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** Whether injection is active. */
    bool enabled() const { return enabled_; }

    /** The configuration in effect. */
    const FaultConfig &config() const { return cfg_; }

    /** Fault decisions made this epoch (drops, corruptions…). */
    const StatRegistry &stats() const { return stats_; }

    /**
     * The first downed channel of @p route active at @p now, or -1.
     * Used by the watchdog to name the link that wedged a message.
     */
    int downedChannelOn(const std::vector<int> &route, Tick now) const;

    /** Channels with a down interval active at @p now. */
    std::vector<int> downedChannels(Tick now) const;

    /** One-line description of the plan for diagnostic dumps. */
    std::string describe() const;

  private:
    FaultConfig cfg_;
    Rng rng_;
    bool enabled_ = true;
    StatRegistry stats_;
};

} // namespace multitree::fault

#endif // MULTITREE_FAULT_FAULT_HH
