/**
 * @file
 * Structural validation of collective schedules.
 *
 * Checked invariants, per flow:
 *  1. The reduce edges form an in-tree spanning all nodes: every node
 *     except the root sends exactly once, the root never sends, and
 *     following parents from any node reaches the root.
 *  2. The gather edges form an out-tree spanning all nodes rooted at
 *     the flow root: every node except the root receives exactly once.
 *  3. Causality: a node sends its reduce contribution strictly after
 *     every reduce edge into it; a node forwards gather data strictly
 *     after receiving it; the root's first gather send is strictly
 *     after its last reduce receive.
 *  4. Explicit routes, when present, connect src to dst hop by hop.
 *
 * And per schedule:
 *  5. Flow fractions sum to 1 and bytes sum to total_bytes.
 *  6. (optional) Contention-freedom: no physical channel is claimed by
 *     transfers of different flows at the same step, except sibling
 *     sub-flows that share every byte of the hop (2D-Ring's row phases
 *     aggregate sub-chunks). MultiTree asserts strict freedom.
 */

#ifndef MULTITREE_COLL_VALIDATE_HH
#define MULTITREE_COLL_VALIDATE_HH

#include <string>

#include "coll/schedule.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::coll {

/** Result of a validation pass. */
struct ValidationResult {
    bool ok = true;
    std::string error; ///< first violated invariant, human readable

    /** Implicit conversion for terse test assertions. */
    explicit operator bool() const { return ok; }
};

/** Validate invariants 1-5 above. */
ValidationResult validateSchedule(const Schedule &sched,
                                  const topo::Topology &topo);

/**
 * Validate invariant 6: strict per-(channel, step) exclusivity across
 * flows. Used for algorithms that claim contention-free operation
 * (MultiTree, HDRM, Ring on friendly topologies).
 */
ValidationResult validateContentionFree(const Schedule &sched,
                                        const topo::Topology &topo);

} // namespace multitree::coll

#endif // MULTITREE_COLL_VALIDATE_HH
