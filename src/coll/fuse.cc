/**
 * @file
 * Schedule rewriter collapsing gather-tree fan-out into multicast.
 *
 * A MultiTree parent broadcasting a reduced chunk to N children emits
 * N gather edges; issued as unicasts, the parent's NIC pays N full
 * serializations back to back, and every interior tree node pays a
 * full store-and-forward relay — receive the chunk, re-inject it —
 * per level. Both are exactly the cost classes the profiler blames
 * for the broadcast-heavy phases. Since a flow carries one chunk,
 * every gather edge of a (flow, phase) tree moves identical data, so
 * fuseMulticast() rewrites each whole tree into one edge from its
 * root with a destination set covering every tree node: the root
 * injects once and the fabric replicates flits where the per-branch
 * routes diverge (the in-network multicast of RunOptions::in_network).
 * Branch routes are the concatenated tree paths, so on a direct
 * network the replication points are precisely the routers of the
 * interior tree nodes the relays used to run on.
 *
 * All-to-all schedules are personalized — an interior relay must NOT
 * become a destination — so there only each node's same-(flow, phase)
 * fan-out is fused, never paths.
 */

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "coll/schedule.hh"
#include "common/logging.hh"
#include "topo/topology.hh"

namespace multitree::coll {

namespace {

/** Append @p e's resolved route (explicit, or @p topo's) to @p out. */
void
appendRoute(const ScheduledEdge &e, const topo::Topology &topo,
            std::vector<int> &out)
{
    const std::vector<int> resolved =
        e.route.empty() ? topo.route(e.src, e.dst) : e.route;
    MT_ASSERT(!resolved.empty(), "no route ", e.src, "->", e.dst,
              " for multicast branch");
    out.insert(out.end(), resolved.begin(), resolved.end());
}

/**
 * Fuse the members (indices into @p edges) of one tree component
 * into the first member whose src is the component root. Returns the
 * lead index; every other member lands in @p drop.
 */
std::size_t
fuseComponent(std::vector<ScheduledEdge> &edges,
              const std::vector<std::size_t> &members, int root,
              const std::map<int, std::size_t> &parent_edge,
              const topo::Topology &topo, std::vector<char> &drop)
{
    std::size_t lead_idx = edges.size();
    for (std::size_t i : members) {
        if (edges[i].src == root) {
            lead_idx = i;
            break;
        }
    }
    MT_ASSERT(lead_idx < edges.size(),
              "gather tree component without a root edge");

    // Root-to-destination route of each member: the member's own
    // route appended to its parent chain's, memoized by destination.
    std::map<int, std::vector<int>> to_dst;
    auto routeTo = [&](auto &&self, int dst) -> const std::vector<int> & {
        auto it = to_dst.find(dst);
        if (it != to_dst.end())
            return it->second;
        const ScheduledEdge &e = edges[parent_edge.at(dst)];
        std::vector<int> full;
        if (e.src != root)
            full = self(self, e.src);
        appendRoute(e, topo, full);
        return to_dst.emplace(dst, std::move(full)).first->second;
    };

    ScheduledEdge &lead = edges[lead_idx];
    // Invariant: dsts[0] == dst, so the lead's own destination leads.
    lead.dsts.push_back(lead.dst);
    lead.dst_routes.push_back(routeTo(routeTo, lead.dst));
    for (std::size_t i : members) {
        const ScheduledEdge &e = edges[i];
        lead.step = std::min(lead.step, e.step);
        if (i == lead_idx)
            continue;
        lead.dsts.push_back(e.dst);
        lead.dst_routes.push_back(routeTo(routeTo, e.dst));
        drop[i] = 1;
    }
    return lead_idx;
}

} // namespace

int
fuseMulticast(Schedule &sched, const topo::Topology &topo)
{
    // Personalized exchanges fuse fan-out only; chunk-replicating
    // collectives fuse whole trees (relays become branch stops).
    const bool whole_tree =
        sched.kind != CollectiveKind::AllToAll;
    int fused = 0;
    for (auto &f : sched.flows) {
        // Partition this flow's gather edges into per-phase trees.
        std::map<int, std::vector<std::size_t>> by_phase;
        for (std::size_t i = 0; i < f.gather.size(); ++i) {
            MT_ASSERT(!f.gather[i].isMulticast(),
                      "fuseMulticast applied twice to flow ",
                      f.flow_id);
            by_phase[f.gather[i].phase].push_back(i);
        }

        std::vector<char> drop(f.gather.size(), 0);
        bool any = false;
        for (const auto &[phase, idx] : by_phase) {
            // Child pointers of this phase's forest: a destination's
            // unique incoming edge. A dst seen twice is not a tree —
            // leave such a phase alone rather than guess.
            std::map<int, std::size_t> parent_edge;
            bool is_forest = true;
            for (std::size_t i : idx) {
                if (!parent_edge.emplace(f.gather[i].dst, i).second)
                    is_forest = false;
            }
            // Component root of each edge: walk src up the forest.
            // Personalized (or non-tree) phases fall back to fusing
            // each node's immediate fan-out.
            std::map<std::pair<int, int>, std::vector<std::size_t>>
                groups;
            for (std::size_t i : idx) {
                int root = f.gather[i].src;
                if (whole_tree && is_forest) {
                    std::size_t hops = 0;
                    for (auto it = parent_edge.find(root);
                         it != parent_edge.end();
                         it = parent_edge.find(root)) {
                        root = f.gather[it->second].src;
                        MT_ASSERT(++hops <= idx.size(),
                                  "gather edges of flow ", f.flow_id,
                                  " form a cycle");
                    }
                }
                groups[{root, phase}].push_back(i);
            }
            for (const auto &[key, members] : groups) {
                if (members.size() < 2)
                    continue;
                if (whole_tree && is_forest) {
                    fuseComponent(f.gather, members, key.first,
                                  parent_edge, topo, drop);
                } else {
                    // Immediate fan-out only: every member shares
                    // the same src (== key.first) by construction.
                    ScheduledEdge &lead = f.gather[members.front()];
                    for (std::size_t i : members) {
                        const ScheduledEdge &e = f.gather[i];
                        lead.step = std::min(lead.step, e.step);
                        lead.dsts.push_back(e.dst);
                        lead.dst_routes.emplace_back();
                        appendRoute(e, topo,
                                    lead.dst_routes.back());
                        if (i != members.front())
                            drop[i] = 1;
                    }
                }
                any = true;
                ++fused;
            }
        }
        if (!any)
            continue;
        // Compact: keep unicast edges and fused leads, drop the
        // members absorbed into a lead, preserving original order.
        std::vector<ScheduledEdge> kept;
        kept.reserve(f.gather.size());
        for (std::size_t i = 0; i < f.gather.size(); ++i) {
            if (!drop[i])
                kept.push_back(std::move(f.gather[i]));
        }
        f.gather = std::move(kept);
    }
    return fused;
}

} // namespace multitree::coll
