/**
 * @file
 * Base interface and registry for all-reduce algorithms.
 */

#ifndef MULTITREE_COLL_ALGORITHM_HH
#define MULTITREE_COLL_ALGORITHM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coll/schedule.hh"
#include "net/network.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::coll {

/**
 * An all-reduce algorithm: given a topology and a payload size, emit a
 * Schedule. Algorithms are stateless; options live in subclasses.
 */
class Algorithm
{
  public:
    virtual ~Algorithm() = default;

    /** Short identifier, e.g. "ring", "dbtree", "multitree". */
    virtual std::string name() const = 0;

    /** Whether this algorithm can run on @p topo. */
    virtual bool supports(const topo::Topology &topo) const = 0;

    /**
     * Build the schedule for an all-reduce of @p total_bytes over all
     * nodes of @p topo. The returned schedule has bytes assigned.
     */
    virtual Schedule build(const topo::Topology &topo,
                           std::uint64_t total_bytes) const = 0;
};

/**
 * Construct a registered algorithm by name. Known names: "ring",
 * "dbtree", "ring2d", "hd", "hdrm", "multitree". Fatal on unknown
 * names.
 */
std::unique_ptr<Algorithm> makeAlgorithm(const std::string &name);

/** Names of all registered algorithms. */
std::vector<std::string> algorithmNames();

/**
 * One runnable registry entry: a public name, the Algorithm that
 * builds its schedules, and the transport tweak (if any) it carries.
 * Variants like "multitree-msg" (MultiTree + message-based flow
 * control, §IV-B) resolve here instead of via string special-cases
 * scattered through runtimes and harnesses.
 */
struct AlgorithmVariant {
    /** Public name, e.g. "multitree-msg". */
    std::string name;
    /** Registry algorithm that builds the schedule ("multitree"). */
    std::string base;
    /** Flow-control override this variant runs under, if any. */
    std::optional<net::FlowControlMode> flow_control;
};

/**
 * Every runnable registry entry, base algorithms and variants alike,
 * in a stable presentation order — what examples and benches iterate
 * to enumerate "all algorithms".
 */
const std::vector<AlgorithmVariant> &algorithmVariants();

/** Resolve @p name (base or variant). Fatal on unknown names. */
const AlgorithmVariant &findAlgorithmVariant(const std::string &name);

} // namespace multitree::coll

#endif // MULTITREE_COLL_ALGORITHM_HH
