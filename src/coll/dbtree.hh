/**
 * @file
 * Double binary tree all-reduce (Sanders et al. [10], NCCL [16]).
 *
 * Two complementary binary trees over the ranks: the leaves of one
 * tree are internal nodes of the other, so each tree carries half the
 * payload and every node both sends and receives at full rate.
 * Segments pipeline through each tree (reduce to the root, then
 * broadcast back down), with the two trees interleaved on even/odd
 * steps as in Fig. 4b of the paper, so a node never serves both trees
 * in the same step.
 *
 * The algorithm is topology-oblivious: ranks map to node ids
 * directly, and tree edges may span multiple physical hops — exactly
 * the mismatch that makes DBTree collapse on Torus/Mesh for large
 * messages in the paper's evaluation.
 */

#ifndef MULTITREE_COLL_DBTREE_HH
#define MULTITREE_COLL_DBTREE_HH

#include "coll/algorithm.hh"

namespace multitree::coll {

/** Pipelining knobs for the double binary tree. */
struct DBTreeOptions {
    /** Target bytes per pipelined segment (half-payload is split). */
    std::uint64_t segment_bytes = 256 * 1024;
    /** Upper bound on segments per tree, to cap schedule size. */
    int max_segments = 64;
};

/** Double binary tree all-reduce. */
class DBTreeAllReduce : public Algorithm
{
  public:
    explicit DBTreeAllReduce(DBTreeOptions opts = {}) : opts_(opts) {}

    std::string name() const override { return "dbtree"; }

    /** Topology-oblivious: runs anywhere with >= 2 nodes. */
    bool supports(const topo::Topology &) const override { return true; }

    Schedule build(const topo::Topology &topo,
                   std::uint64_t total_bytes) const override;

    /**
     * Parent of @p rank in tree @p which (0 or 1) for @p n ranks, or
     * -1 for the root. Exposed for structural tests.
     */
    static int parentOf(int rank, int which, int n);

  private:
    DBTreeOptions opts_;
};

} // namespace multitree::coll

#endif // MULTITREE_COLL_DBTREE_HH
