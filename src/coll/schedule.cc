#include "coll/schedule.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "common/units.hh"
#include "topo/topology.hh"

namespace multitree::coll {

const char *
kindName(CollectiveKind kind)
{
    switch (kind) {
      case CollectiveKind::AllReduce:     return "all-reduce";
      case CollectiveKind::ReduceScatter: return "reduce-scatter";
      case CollectiveKind::AllGather:     return "all-gather";
      case CollectiveKind::AllToAll:      return "all-to-all";
    }
    return "?";
}

void
Schedule::assignBytes(std::uint64_t total)
{
    total_bytes = total;
    constexpr std::uint64_t elem = 4; // float32 gradients
    std::uint64_t elems = total / elem;
    if (total % elem != 0) {
        // A user-supplied size, not an internal invariant: exit
        // cleanly instead of panicking.
        MT_FATAL("all-reduce payload must be a multiple of 4 bytes "
                 "(whole float32 gradients), got ", total);
    }

    // First pass: floor share per flow in elements.
    std::uint64_t assigned = 0;
    for (auto &f : flows) {
        auto share = static_cast<std::uint64_t>(
            std::floor(f.fraction * static_cast<double>(elems)));
        f.bytes = share * elem;
        assigned += share;
    }
    // Spread the remainder one element at a time.
    std::uint64_t rem = elems - assigned;
    for (std::size_t i = 0; rem > 0 && !flows.empty(); ++i, --rem)
        flows[i % flows.size()].bytes += elem;
}

int
Schedule::totalSteps() const
{
    int t = 0;
    for (const auto &f : flows) {
        for (const auto &e : f.reduce)
            t = std::max(t, e.step);
        for (const auto &e : f.gather)
            t = std::max(t, e.step);
    }
    return t;
}

int
Schedule::reduceSteps() const
{
    int t = 0;
    for (const auto &f : flows) {
        for (const auto &e : f.reduce)
            t = std::max(t, e.step);
    }
    return t;
}

ScheduleStats
Schedule::stats(const topo::Topology &topo) const
{
    ScheduleStats s;
    s.total_steps = totalSteps();
    s.reduce_steps = reduceSteps();
    // Distinct flows sharing a (channel, step), keyed densely.
    std::map<std::pair<int, std::uint64_t>, int> channel_step_flows;
    std::vector<double> channel_bytes(
        static_cast<std::size_t>(topo.numChannels()), 0.0);

    auto account = [&](const ChunkFlow &f, const ScheduledEdge &e) {
        ++s.edge_count;
        auto bytes = static_cast<double>(f.bytes);
        // Multicast edges count each delivery branch: the payload
        // still reaches every destination, the saving is in channel
        // sharing (accounted below) and injection serialization.
        for (std::size_t b = 0; b < e.branchCount(); ++b) {
            if (b > 0)
                s.bytes_transferred += bytes;
            const std::vector<int> &br = e.branchRoute(b);
            const std::vector<int> &route =
                br.empty() ? topo.route(e.src, e.branchDst(b)) : br;
            s.byte_hops += bytes * static_cast<double>(route.size());
            for (int cid : route) {
                auto key = std::make_pair(
                    cid, static_cast<std::uint64_t>(e.step));
                int n = ++channel_step_flows[key];
                s.max_channel_flows =
                    std::max(s.max_channel_flows, n);
                channel_bytes[static_cast<std::size_t>(cid)] += bytes;
            }
        }
        s.bytes_transferred += bytes;
    };
    for (const auto &f : flows) {
        for (const auto &e : f.reduce)
            account(f, e);
        for (const auto &e : f.gather)
            account(f, e);
    }
    for (double b : channel_bytes)
        s.max_channel_bytes = std::max(s.max_channel_bytes, b);
    return s;
}

std::vector<std::uint64_t>
Schedule::stepFlitEstimates() const
{
    std::vector<std::uint64_t> est(
        static_cast<std::size_t>(totalSteps()), 0);
    auto accumulate = [&](const ChunkFlow &f, const ScheduledEdge &e) {
        auto &slot = est[static_cast<std::size_t>(e.step - 1)];
        slot = std::max(slot, bytesToFlits(f.bytes));
    };
    for (const auto &f : flows) {
        for (const auto &e : f.reduce)
            accumulate(f, e);
        for (const auto &e : f.gather)
            accumulate(f, e);
    }
    return est;
}

void
Schedule::checkBasicShape() const
{
    MT_ASSERT(num_nodes > 0, "schedule without nodes");
    double total_fraction = 0;
    for (const auto &f : flows) {
        MT_ASSERT(f.root >= 0 && f.root < num_nodes,
                  "flow ", f.flow_id, " has bad root ", f.root);
        total_fraction += f.fraction;
    }
    MT_ASSERT(std::abs(total_fraction - 1.0) < 1e-6,
              "flow fractions sum to ", total_fraction, " not 1");
}

} // namespace multitree::coll
