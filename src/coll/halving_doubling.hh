/**
 * @file
 * Recursive halving-doubling all-reduce (Thakur et al. [11]) and the
 * shared machinery for EFLOPS' rank-mapped variant (HDRM [29]).
 *
 * Reduce-scatter by recursive distance halving: log2(N) steps; at
 * step s every rank exchanges with rank ^ (N >> s), sending the half
 * of its live data owned by the partner's side. All-gather mirrors
 * the exchanges in reverse (distance doubling). Decomposed per final
 * chunk, each chunk follows a binomial tree rooted at its owner,
 * which is how the schedule IR expresses it.
 */

#ifndef MULTITREE_COLL_HALVING_DOUBLING_HH
#define MULTITREE_COLL_HALVING_DOUBLING_HH

#include <functional>

#include "coll/algorithm.hh"

namespace multitree::coll {

/**
 * Build the halving-doubling schedule over @p n ranks (n must be a
 * power of two), mapping logical rank r to physical node map(r).
 */
Schedule buildHalvingDoubling(int n, std::uint64_t total_bytes,
                              const std::function<int(int)> &map,
                              const std::string &algo_name);

/** Plain halving-doubling with the identity rank mapping. */
class HalvingDoublingAllReduce : public Algorithm
{
  public:
    std::string name() const override { return "hd"; }

    /** Needs a power-of-two node count; otherwise topology-oblivious. */
    bool supports(const topo::Topology &topo) const override;

    Schedule build(const topo::Topology &topo,
                   std::uint64_t total_bytes) const override;
};

} // namespace multitree::coll

#endif // MULTITREE_COLL_HALVING_DOUBLING_HH
