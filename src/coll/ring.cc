#include "coll/ring.hh"

#include "common/logging.hh"
#include "topo/topology.hh"

namespace multitree::coll {

Schedule
RingAllReduce::build(const topo::Topology &topo,
                     std::uint64_t total_bytes) const
{
    const int n = topo.numNodes();
    MT_ASSERT(n >= 2, "ring all-reduce needs at least two nodes");
    const std::vector<int> order = topo.ringOrder();
    MT_ASSERT(static_cast<int>(order.size()) == n,
              "ring order does not cover all nodes");

    Schedule sched;
    sched.algorithm = name();
    sched.num_nodes = n;

    // Chunk c is injected at ring position (c + 1) and, moving one
    // position forward per step, arrives fully reduced at position c
    // after n - 1 steps (§II-B walks this exact pattern). The gather
    // phase then pushes it forward another n - 1 steps.
    for (int c = 0; c < n; ++c) {
        ChunkFlow flow;
        flow.flow_id = c;
        flow.root = order[static_cast<std::size_t>(c)];
        flow.fraction = 1.0 / n;
        for (int s = 1; s < n; ++s) {
            int from = order[static_cast<std::size_t>((c + s) % n)];
            int to = order[static_cast<std::size_t>((c + s + 1) % n)];
            flow.reduce.push_back(ScheduledEdge{from, to, s, {}});
        }
        for (int s = 1; s < n; ++s) {
            int from = order[static_cast<std::size_t>((c + s - 1) % n)];
            int to = order[static_cast<std::size_t>((c + s) % n)];
            flow.gather.push_back(
                ScheduledEdge{from, to, (n - 1) + s, {}});
        }
        sched.flows.push_back(std::move(flow));
    }
    sched.assignBytes(total_bytes);
    sched.checkBasicShape();
    return sched;
}

} // namespace multitree::coll
