#include "coll/functional.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"

namespace multitree::coll {

std::vector<std::vector<float>>
runFunctional(const Schedule &sched,
              const std::vector<std::vector<float>> &inputs)
{
    const int n = sched.num_nodes;
    MT_ASSERT(static_cast<int>(inputs.size()) == n,
              "need one input vector per node");
    const std::size_t elems = inputs[0].size();
    for (const auto &v : inputs)
        MT_ASSERT(v.size() == elems, "ragged input vectors");
    MT_ASSERT(elems * 4 == sched.total_bytes,
              "inputs carry ", elems * 4, " bytes, schedule sized for ",
              sched.total_bytes);

    std::vector<std::vector<float>> out = inputs;

    // Assign each flow a contiguous element range, in flow order —
    // the same convention assignBytes() uses for sizing.
    struct Range {
        std::size_t off;
        std::size_t len;
    };
    std::vector<Range> ranges(sched.flows.size());
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < sched.flows.size(); ++i) {
        std::size_t len = sched.flows[i].bytes / 4;
        ranges[i] = Range{cursor, len};
        cursor += len;
    }
    MT_ASSERT(cursor == elems, "flow ranges do not tile the payload");

    // Execute flow by flow. Flows touch disjoint ranges, so inter-flow
    // order is irrelevant; within a flow, edges run in step order.
    for (std::size_t i = 0; i < sched.flows.size(); ++i) {
        const auto &flow = sched.flows[i];
        const auto [off, len] = ranges[i];
        if (len == 0)
            continue;

        // partial[v] = v's running partial sum for this chunk.
        std::vector<std::vector<float>> partial(
            static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) {
            partial[v].assign(inputs[v].begin() + off,
                              inputs[v].begin() + off + len);
        }
        auto reduce_edges = flow.reduce;
        std::stable_sort(reduce_edges.begin(), reduce_edges.end(),
                         [](const auto &a, const auto &b) {
                             return a.step < b.step;
                         });
        // Execute step by step with snapshot semantics: every send in
        // a step reads the sender's state from before the step, so a
        // same-step relay cannot leak data that only arrives now.
        std::size_t i_edge = 0;
        while (i_edge < reduce_edges.size()) {
            std::size_t j = i_edge;
            int step = reduce_edges[i_edge].step;
            while (j < reduce_edges.size()
                   && reduce_edges[j].step == step) {
                ++j;
            }
            std::vector<std::vector<float>> sent(j - i_edge);
            for (std::size_t k = i_edge; k < j; ++k)
                sent[k - i_edge] = partial[reduce_edges[k].src];
            for (std::size_t k = i_edge; k < j; ++k) {
                auto &dst = partial[reduce_edges[k].dst];
                const auto &src = sent[k - i_edge];
                for (std::size_t x = 0; x < len; ++x)
                    dst[x] += src[x];
            }
            i_edge = j;
        }
        // Root's partial is the reduced chunk; broadcast it.
        const auto &result = partial[flow.root];
        std::copy(result.begin(), result.end(),
                  out[flow.root].begin() + off);
        auto gather_edges = flow.gather;
        std::stable_sort(gather_edges.begin(), gather_edges.end(),
                         [](const auto &a, const auto &b) {
                             return a.step < b.step;
                         });
        // Track possession so a forward-before-receive bug surfaces
        // as a wrong result instead of being silently papered over.
        // The root only "has" the reduced chunk after its last
        // reduce arrival: a gather scheduled at or before that step
        // would ship an unreduced partial, so the copy is withheld
        // and the mismatch surfaces downstream.
        int root_ready = 0;
        for (const auto &e : flow.reduce) {
            if (e.dst == flow.root)
                root_ready = std::max(root_ready, e.step);
        }
        std::vector<char> has(static_cast<std::size_t>(n), 0);
        std::size_t g = 0;
        while (g < gather_edges.size()) {
            std::size_t j = g;
            int step = gather_edges[g].step;
            while (j < gather_edges.size()
                   && gather_edges[j].step == step) {
                ++j;
            }
            if (step > root_ready)
                has[static_cast<std::size_t>(flow.root)] = 1;
            std::vector<char> had = has;
            for (std::size_t k = g; k < j; ++k) {
                const auto &e = gather_edges[k];
                if (!had[static_cast<std::size_t>(e.src)])
                    continue; // nothing to forward yet: schedule bug
                // All-to-all relays forward the chunk but do not own
                // the destination's output range; only the terminal
                // node's buffer is written. A multicast edge lands
                // the chunk on every branch destination.
                for (std::size_t b = 0; b < e.branchCount(); ++b) {
                    const int dst = e.branchDst(b);
                    if (sched.kind != CollectiveKind::AllToAll
                        || dst == flow.dst) {
                        std::copy(result.begin(), result.end(),
                                  out[dst].begin() + off);
                    }
                    has[static_cast<std::size_t>(dst)] = 1;
                }
            }
            g = j;
        }
    }
    return out;
}

bool
checkCollectiveCorrect(const Schedule &sched, std::size_t elems,
                       std::uint64_t seed)
{
    if (sched.kind == CollectiveKind::AllReduce)
        return checkAllReduceCorrect(sched, elems, seed);

    const int n = sched.num_nodes;
    Rng rng(seed);
    std::vector<std::vector<float>> inputs;
    inputs.reserve(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
        inputs.push_back(rng.floatVector(elems));
    auto out = runFunctional(sched, inputs);

    // Recompute each flow's element range (same tiling convention as
    // the executor).
    std::size_t off = 0;
    for (const auto &f : sched.flows) {
        std::size_t len = f.bytes / 4;
        auto close = [](float a, float b) {
            float tol = 1e-4f * std::max(1.0f, std::fabs(b));
            return std::fabs(a - b) <= tol;
        };
        switch (sched.kind) {
          case CollectiveKind::ReduceScatter:
            for (std::size_t k = 0; k < len; ++k) {
                float want = 0;
                for (int v = 0; v < n; ++v)
                    want += inputs[static_cast<std::size_t>(v)]
                                  [off + k];
                if (!close(out[static_cast<std::size_t>(f.root)]
                              [off + k],
                           want))
                    return false;
            }
            break;
          case CollectiveKind::AllGather:
            for (int v = 0; v < n; ++v) {
                for (std::size_t k = 0; k < len; ++k) {
                    float want =
                        inputs[static_cast<std::size_t>(f.root)]
                              [off + k];
                    if (!close(out[static_cast<std::size_t>(v)]
                                  [off + k],
                               want))
                        return false;
                }
            }
            break;
          case CollectiveKind::AllToAll:
            for (std::size_t k = 0; k < len; ++k) {
                float want = inputs[static_cast<std::size_t>(f.root)]
                                   [off + k];
                if (!close(out[static_cast<std::size_t>(f.dst)]
                              [off + k],
                           want))
                    return false;
            }
            break;
          case CollectiveKind::AllReduce:
            break; // handled above
        }
        off += len;
    }
    return true;
}

bool
checkAllReduceCorrect(const Schedule &sched, std::size_t elems,
                      std::uint64_t seed)
{
    const int n = sched.num_nodes;
    Rng rng(seed);
    std::vector<std::vector<float>> inputs;
    inputs.reserve(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
        inputs.push_back(rng.floatVector(elems));

    std::vector<float> expect(elems, 0.0f);
    for (const auto &v : inputs) {
        for (std::size_t k = 0; k < elems; ++k)
            expect[k] += v[k];
    }
    auto out = runFunctional(sched, inputs);
    // Floating sums may associate differently per node; allow a small
    // relative tolerance.
    for (int v = 0; v < n; ++v) {
        for (std::size_t k = 0; k < elems; ++k) {
            float got = out[static_cast<std::size_t>(v)][k];
            float want = expect[k];
            float tol = 1e-4f * std::max(1.0f, std::fabs(want));
            if (std::fabs(got - want) > tol)
                return false;
        }
    }
    return true;
}

} // namespace multitree::coll
