/**
 * @file
 * Halving-Doubling with Rank Mapping (HDRM) from Alibaba's EFLOPS
 * platform [29], co-designed with the BiGraph topology.
 *
 * Two observations make halving-doubling contention-free on BiGraph:
 *
 *  1. Every halving-doubling exchange pairs ranks that differ in
 *     exactly one bit, so the two ranks of any pair always differ in
 *     popcount parity. Placing even-parity ranks on upper-stage nodes
 *     and odd-parity ranks on lower-stage nodes guarantees every pair
 *     crosses exactly one upper-lower switch link (and, as the paper
 *     notes, never exploits same-switch one-hop locality — HDRM's
 *     small-message weakness versus MultiTree).
 *
 *  2. With the upper switch chosen by the high log2(U) bits of the
 *     rank and the lower switch by the low log2(L) bits, the map
 *     r -> (upper(r), lower(r ^ 2^k)) is injective for every bit k,
 *     because (high bits, low bits) is the identity up to a constant
 *     xor per step. Hence no two concurrent exchanges of a step share
 *     a switch-to-switch channel in the same direction: the schedule
 *     is contention-free, which the test suite asserts.
 */

#ifndef MULTITREE_COLL_HDRM_HH
#define MULTITREE_COLL_HDRM_HH

#include "coll/algorithm.hh"

namespace multitree::topo {
class BiGraph;
} // namespace multitree::topo

namespace multitree::coll {

/** HDRM all-reduce; BiGraph-only, power-of-two node counts. */
class HDRMAllReduce : public Algorithm
{
  public:
    std::string name() const override { return "hdrm"; }

    /** Requires a BiGraph with power-of-two stage and node counts. */
    bool supports(const topo::Topology &topo) const override;

    Schedule build(const topo::Topology &topo,
                   std::uint64_t total_bytes) const override;

    /**
     * The physical node hosting logical rank @p r on @p bg. Exposed
     * for the contention-freedom and parity property tests.
     */
    static int nodeOfRank(const topo::BiGraph &bg, int r);
};

} // namespace multitree::coll

#endif // MULTITREE_COLL_HDRM_HH
