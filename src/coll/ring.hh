/**
 * @file
 * Ring all-reduce (Baidu [9], [12]): bandwidth-optimal reduce-scatter
 * followed by all-gather around a single embedded ring.
 */

#ifndef MULTITREE_COLL_RING_HH
#define MULTITREE_COLL_RING_HH

#include "coll/algorithm.hh"

namespace multitree::coll {

/**
 * Classic unidirectional ring all-reduce. The payload splits into N
 * chunks; chunk c is reduced around the ring into the node at ring
 * position c (N-1 steps) and then gathered back around (N-1 more
 * steps), all chunks pipelined so every ring hop is busy every step.
 *
 * The ring embedding comes from Topology::ringOrder(): serpentine on
 * grids (every hop one physical link on a torus with even height) and
 * switch-grouped id order on indirect networks.
 */
class RingAllReduce : public Algorithm
{
  public:
    std::string name() const override { return "ring"; }

    /** Rings embed in any connected topology. */
    bool supports(const topo::Topology &) const override { return true; }

    Schedule build(const topo::Topology &topo,
                   std::uint64_t total_bytes) const override;
};

} // namespace multitree::coll

#endif // MULTITREE_COLL_RING_HH
