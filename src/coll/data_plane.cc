#include "coll/data_plane.hh"

#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace multitree::coll {

namespace {

/** 32-bit finalizer (murmur3 fmix32): spreads (node, flow) pairs so
 *  accidental zero/collision contributions are vanishingly rare. */
std::uint32_t
mix32(std::uint32_t x)
{
    x ^= x >> 16;
    x *= 0x85EBCA6Bu;
    x ^= x >> 13;
    x *= 0xC2B2AE35u;
    x ^= x >> 16;
    return x;
}

} // namespace

std::uint32_t
DataPlane::initValue(int node, int flow)
{
    return mix32(static_cast<std::uint32_t>(node) * 0x9E3779B9u
                 ^ (static_cast<std::uint32_t>(flow) + 0x7F4A7C15u));
}

std::uint32_t
DataPlane::gatherToken(int flow)
{
    return mix32(0x94D049BBu ^ static_cast<std::uint32_t>(flow));
}

DataPlane::DataPlane(const Schedule &sched)
{
    for (const auto &f : sched.flows) {
        // Reduce phase: each edge src→dst ships src's running partial,
        // i.e. the wraparound sum over src's reduce subtree. Compute
        // subtree sums bottom-up with an explicit stack (ring-shaped
        // reduce "trees" are n deep — no recursion).
        std::map<int, std::vector<int>> children; // dst → srcs
        for (const auto &e : f.reduce)
            children[e.dst].push_back(e.src);
        auto subtreeOf = [&](int v) -> std::uint32_t {
            auto key = Key{f.flow_id, v};
            auto it = subtree_.find(key);
            if (it != subtree_.end())
                return it->second;
            std::vector<int> stack{v};
            while (!stack.empty()) {
                int u = stack.back();
                auto uk = Key{f.flow_id, u};
                if (subtree_.count(uk)) {
                    stack.pop_back();
                    continue;
                }
                bool ready = true;
                auto cit = children.find(u);
                if (cit != children.end()) {
                    for (int c : cit->second) {
                        if (!subtree_.count(Key{f.flow_id, c})) {
                            stack.push_back(c);
                            ready = false;
                        }
                    }
                }
                if (!ready)
                    continue;
                std::uint32_t sum = initValue(u, f.flow_id);
                if (cit != children.end()) {
                    for (int c : cit->second)
                        sum += subtree_.at(Key{f.flow_id, c});
                }
                subtree_[uk] = sum;
                stack.pop_back();
            }
            return subtree_.at(key);
        };
        for (const auto &e : f.reduce)
            expect_reduce_[Key{e.dst, f.flow_id}] += subtreeOf(e.src);
        // Gather phase: every edge carries the reduced chunk (one
        // fixed token per flow); relays and terminals alike receive
        // exactly one copy per inbound edge — a multicast edge is
        // one copy per branch destination.
        for (const auto &e : f.gather) {
            for (std::size_t b = 0; b < e.branchCount(); ++b) {
                expect_gather_[Key{e.branchDst(b), f.flow_id}] +=
                    gatherToken(f.flow_id);
            }
        }
    }
}

void
DataPlane::onAccept(int src, int dst, int flow, bool gather,
                    bool corrupted)
{
    std::uint32_t contrib;
    if (gather) {
        contrib = gatherToken(flow);
    } else {
        auto it = subtree_.find(Key{flow, src});
        // An unscheduled sender still must not vanish silently: use
        // its init value so the mismatch surfaces.
        contrib = it != subtree_.end() ? it->second
                                       : initValue(src, flow);
    }
    if (corrupted)
        contrib ^= kCorruptionTaint;
    auto &slot = gather ? got_gather_[Key{dst, flow}]
                        : got_reduce_[Key{dst, flow}];
    slot += contrib;
}

void
DataPlane::reset()
{
    got_reduce_.clear();
    got_gather_.clear();
}

bool
DataPlane::consistent() const
{
    return got_reduce_ == expect_reduce_
           && got_gather_ == expect_gather_;
}

std::string
DataPlane::describeMismatch(std::size_t max_items) const
{
    std::ostringstream oss;
    std::size_t shown = 0;
    auto compare = [&](const char *phase, const auto &expect,
                       const auto &got) {
        for (const auto &[key, want] : expect) {
            auto it = got.find(key);
            std::uint32_t have = it == got.end() ? 0u : it->second;
            if (have == want)
                continue;
            if (shown++ < max_items) {
                oss << "  node " << key.first << " flow "
                    << key.second << " " << phase << ": got 0x"
                    << std::hex << have << ", want 0x" << want
                    << std::dec << "\n";
            }
        }
        for (const auto &[key, have] : got) {
            if (expect.count(key))
                continue;
            if (shown++ < max_items) {
                oss << "  node " << key.first << " flow "
                    << key.second << " " << phase
                    << ": unexpected traffic (0x" << std::hex << have
                    << std::dec << ")\n";
            }
        }
    };
    compare("reduce", expect_reduce_, got_reduce_);
    compare("gather", expect_gather_, got_gather_);
    if (shown > max_items)
        oss << "  ... " << shown - max_items << " more\n";
    if (shown == 0)
        return {};
    return "data-plane mismatches:\n" + oss.str();
}

} // namespace multitree::coll
