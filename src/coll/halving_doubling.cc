#include "coll/halving_doubling.hh"

#include "common/logging.hh"
#include "topo/topology.hh"

namespace multitree::coll {

namespace {

bool
isPow2(int x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

} // namespace

Schedule
buildHalvingDoubling(int n, std::uint64_t total_bytes,
                     const std::function<int(int)> &map,
                     const std::string &algo_name)
{
    MT_ASSERT(isPow2(n), "halving-doubling needs a power-of-two rank "
                         "count, got ", n);
    int m = 0;
    while ((1 << m) < n)
        ++m;

    Schedule sched;
    sched.algorithm = algo_name;
    sched.num_nodes = n;

    // Chunk c lives at rank c after reduce-scatter. At step s
    // (1-based) the exchange distance is n >> s; the ranks still
    // holding a partial of chunk c are those agreeing with c on bits
    // m-1 .. m-s+1, and the half of them that differs from c at bit
    // m-s ships its partial across.
    for (int c = 0; c < n; ++c) {
        ChunkFlow flow;
        flow.flow_id = c;
        flow.root = map(c);
        flow.fraction = 1.0 / n;
        for (int s = 1; s <= m; ++s) {
            int bit = m - s;
            int dist = 1 << bit;
            int high_mask = ~((dist << 1) - 1); // bits above 'bit'
            for (int r = 0; r < n; ++r) {
                bool live_before =
                    ((r ^ c) & high_mask & (n - 1)) == 0;
                bool loses = ((r >> bit) & 1) != ((c >> bit) & 1);
                if (live_before && loses) {
                    flow.reduce.push_back(ScheduledEdge{
                        map(r), map(r ^ dist), s, {}});
                    // Mirrored all-gather edge (distance doubling).
                    flow.gather.push_back(ScheduledEdge{
                        map(r ^ dist), map(r), 2 * m - s + 1, {}});
                }
            }
        }
        sched.flows.push_back(std::move(flow));
    }
    sched.assignBytes(total_bytes);
    sched.checkBasicShape();
    return sched;
}

bool
HalvingDoublingAllReduce::supports(const topo::Topology &topo) const
{
    return isPow2(topo.numNodes()) && topo.numNodes() >= 2;
}

Schedule
HalvingDoublingAllReduce::build(const topo::Topology &topo,
                                std::uint64_t total_bytes) const
{
    return buildHalvingDoubling(topo.numNodes(), total_bytes,
                                [](int r) { return r; }, name());
}

} // namespace multitree::coll
