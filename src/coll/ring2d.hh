/**
 * @file
 * 2D-Ring all-reduce (Ying et al. [28]), the TPU-pod algorithm for 2D
 * Torus/Mesh networks.
 *
 * Three phases over bidirectional row/column rings:
 *  1. reduce-scatter along every row (X rings) at chunk granularity
 *     D / width,
 *  2. all-reduce along every column (Y rings) of the row partials at
 *     sub-chunk granularity D / (width * height),
 *  3. all-gather along every row.
 *
 * Each ring runs bidirectionally — half of each chunk travels
 * clockwise and half counter-clockwise — so phases 1 and 3 keep every
 * X channel busy and phase 2 every Y channel. The algorithm uses all
 * the links (unlike flat ring) and needs only O(width + height)
 * steps, but it moves roughly 2x the bandwidth-optimal data volume:
 * the row phases each push ~D/2 per link versus MultiTree's ~D/4
 * full-network spread — the factor the paper quantifies as 2N(N-1)
 * versus N^2 - 1 transmitted units.
 */

#ifndef MULTITREE_COLL_RING2D_HH
#define MULTITREE_COLL_RING2D_HH

#include "coll/algorithm.hh"

namespace multitree::coll {

/** 2D-Ring all-reduce, supported on Grid2D topologies only. */
class Ring2DAllReduce : public Algorithm
{
  public:
    std::string name() const override { return "ring2d"; }

    /** Requires a 2D grid (Torus or Mesh) with >= 2 rows and cols. */
    bool supports(const topo::Topology &topo) const override;

    Schedule build(const topo::Topology &topo,
                   std::uint64_t total_bytes) const override;
};

} // namespace multitree::coll

#endif // MULTITREE_COLL_RING2D_HH
