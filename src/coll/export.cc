#include "coll/export.hh"

#include <set>
#include <sstream>

#include "topo/topology.hh"

namespace multitree::coll {

std::string
toDot(const Schedule &sched, int max_flows)
{
    std::ostringstream oss;
    oss << "digraph \"" << sched.algorithm << "\" {\n";
    oss << "  rankdir=TB;\n  node [shape=circle];\n";
    int drawn = 0;
    for (const auto &f : sched.flows) {
        if (max_flows >= 0 && drawn >= max_flows)
            break;
        ++drawn;
        oss << "  subgraph cluster_flow" << f.flow_id << " {\n";
        oss << "    label=\"flow " << f.flow_id << " (root "
            << f.root << ")\";\n";
        auto node_id = [&](int v) {
            std::ostringstream id;
            id << "f" << f.flow_id << "n" << v;
            return id.str();
        };
        std::set<int> nodes;
        auto emit = [&](const ScheduledEdge &e, bool dashed) {
            oss << "    " << node_id(e.src) << " -> "
                << node_id(e.dst) << " [label=\"" << e.step << "\"";
            if (dashed)
                oss << ", style=dashed";
            oss << "];\n";
            nodes.insert(e.src);
            nodes.insert(e.dst);
        };
        for (const auto &e : f.gather)
            emit(e, false);
        // Gather-less schedules (reduce-scatter) show their reduce
        // tree instead, dashed to mark the direction toward the root.
        if (f.gather.empty()) {
            for (const auto &e : f.reduce)
                emit(e, true);
        }
        for (int v : nodes) {
            oss << "    " << node_id(v) << " [label=\"" << v
                << "\"];\n";
        }
        oss << "  }\n";
    }
    oss << "}\n";
    return oss.str();
}

std::string
toCsv(const Schedule &sched, const topo::Topology &topo)
{
    std::ostringstream oss;
    oss << "phase,flow,src,dst,step,bytes,hops\n";
    auto hops = [&](const ScheduledEdge &e) {
        return e.route.empty() ? topo.route(e.src, e.dst).size()
                               : e.route.size();
    };
    for (const auto &f : sched.flows) {
        for (const auto &e : f.reduce) {
            oss << "reduce," << f.flow_id << "," << e.src << ","
                << e.dst << "," << e.step << "," << f.bytes << ","
                << hops(e) << "\n";
        }
        for (const auto &e : f.gather) {
            oss << "gather," << f.flow_id << "," << e.src << ","
                << e.dst << "," << e.step << "," << f.bytes << ","
                << hops(e) << "\n";
        }
    }
    return oss.str();
}

} // namespace multitree::coll
