#include "coll/export.hh"

#include <set>
#include <sstream>

#include "topo/topology.hh"

namespace multitree::coll {

std::string
toDot(const Schedule &sched, int max_flows)
{
    std::ostringstream oss;
    oss << "digraph \"" << sched.algorithm << "\" {\n";
    oss << "  rankdir=TB;\n  node [shape=circle];\n";
    int drawn = 0;
    for (const auto &f : sched.flows) {
        if (max_flows >= 0 && drawn >= max_flows)
            break;
        ++drawn;
        oss << "  subgraph cluster_flow" << f.flow_id << " {\n";
        oss << "    label=\"flow " << f.flow_id << " (root "
            << f.root << ")\";\n";
        auto node_id = [&](int v) {
            std::ostringstream id;
            id << "f" << f.flow_id << "n" << v;
            return id.str();
        };
        std::set<int> nodes;
        auto emit = [&](const ScheduledEdge &e, bool dashed) {
            for (std::size_t b = 0; b < e.branchCount(); ++b) {
                oss << "    " << node_id(e.src) << " -> "
                    << node_id(e.branchDst(b)) << " [label=\""
                    << e.step << "\"";
                if (dashed)
                    oss << ", style=dashed";
                if (e.isMulticast())
                    oss << ", color=blue";
                oss << "];\n";
                nodes.insert(e.src);
                nodes.insert(e.branchDst(b));
            }
        };
        for (const auto &e : f.gather)
            emit(e, false);
        // Gather-less schedules (reduce-scatter) show their reduce
        // tree instead, dashed to mark the direction toward the root.
        if (f.gather.empty()) {
            for (const auto &e : f.reduce)
                emit(e, true);
        }
        for (int v : nodes) {
            oss << "    " << node_id(v) << " [label=\"" << v
                << "\"];\n";
        }
        oss << "  }\n";
    }
    oss << "}\n";
    return oss.str();
}

std::string
toCsv(const Schedule &sched, const topo::Topology &topo)
{
    std::ostringstream oss;
    oss << "phase,flow,src,dst,step,bytes,hops\n";
    auto hops = [&](const ScheduledEdge &e, std::size_t b) {
        const auto &br = e.branchRoute(b);
        return br.empty() ? topo.route(e.src, e.branchDst(b)).size()
                          : br.size();
    };
    for (const auto &f : sched.flows) {
        for (const auto &e : f.reduce) {
            oss << "reduce," << f.flow_id << "," << e.src << ","
                << e.dst << "," << e.step << "," << f.bytes << ","
                << hops(e, 0) << "\n";
        }
        for (const auto &e : f.gather) {
            // One row per delivery branch so multicast fan-out stays
            // visible in the flat projection.
            for (std::size_t b = 0; b < e.branchCount(); ++b) {
                oss << (e.isMulticast() ? "mcast," : "gather,")
                    << f.flow_id << "," << e.src << ","
                    << e.branchDst(b) << "," << e.step << ","
                    << f.bytes << "," << hops(e, b) << "\n";
            }
        }
    }
    return oss.str();
}

} // namespace multitree::coll
