/**
 * @file
 * Exact-arithmetic data-plane oracle for protocol-level correctness.
 *
 * The simulator moves message *headers*, not tensor payloads, so
 * "every algorithm produces bit-identical reduced tensors under
 * faults" needs a stand-in for the data. A DataPlane models each
 * flow's chunk as a 32-bit value per node and uses wraparound
 * (mod 2^32) addition, which is associative and commutative: the
 * accumulated result is independent of arrival order and therefore
 * *exact* — no float-tolerance noise. What the oracle then certifies
 * is exactly-once delivery semantics:
 *
 *  - a lost message contributes nothing (observed < expected),
 *  - a duplicated (e.g. spuriously retransmitted but not deduped)
 *    message contributes twice (observed > expected),
 *  - a corrupted message accepted by an unreliable receiver taints
 *    its contribution with a fixed XOR mask (observed != expected).
 *
 * Feed it every message a NIC engine *accepts* (after reliability
 * dedup/checksum filtering); at the end of a run consistent() holds
 * iff the reduced tensor every node reconstructs is bit-identical to
 * the fault-free run's.
 */

#ifndef MULTITREE_COLL_DATA_PLANE_HH
#define MULTITREE_COLL_DATA_PLANE_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "coll/schedule.hh"

namespace multitree::coll {

/**
 * Accumulates per-(receiver, flow) contributions of accepted
 * messages and compares them against the schedule's expectation.
 */
class DataPlane
{
  public:
    /** XOR mask applied to a corrupted message's contribution. */
    static constexpr std::uint32_t kCorruptionTaint = 0xDEADBEEFu;

    /** Precompute expected contributions from @p sched. */
    explicit DataPlane(const Schedule &sched);

    /**
     * Record one accepted message. @p gather selects the phase
     * (false = reduce). Reliability acks must not be fed here —
     * they carry no chunk data.
     */
    void onAccept(int src, int dst, int flow, bool gather,
                  bool corrupted);

    /** Forget all observed traffic (new run, same schedule). */
    void reset();

    /** Whether observed contributions match the schedule exactly. */
    bool consistent() const;

    /** First few (receiver, flow, phase) mismatches, or empty. */
    std::string describeMismatch(std::size_t max_items = 8) const;

  private:
    using Key = std::pair<int, int>; ///< (receiver node, flow id)

    /** Deterministic initial chunk value of @p node in @p flow. */
    static std::uint32_t initValue(int node, int flow);

    /** Token standing in for @p flow's fully-reduced chunk. */
    static std::uint32_t gatherToken(int flow);

    std::map<Key, std::uint32_t> expect_reduce_;
    std::map<Key, std::uint32_t> expect_gather_;
    std::map<Key, std::uint32_t> got_reduce_;
    std::map<Key, std::uint32_t> got_gather_;
    /** (flow, node) → wraparound sum over the node's reduce subtree
     *  (its own init value plus everything reduced into it). */
    std::map<Key, std::uint32_t> subtree_;
};

} // namespace multitree::coll

#endif // MULTITREE_COLL_DATA_PLANE_HH
