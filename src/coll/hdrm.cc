#include "coll/hdrm.hh"

#include <bit>
#include <vector>

#include "coll/halving_doubling.hh"
#include "common/logging.hh"
#include "topo/bigraph.hh"

namespace multitree::coll {

namespace {

bool
isPow2(int x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

int
log2i(int x)
{
    int k = 0;
    while ((1 << k) < x)
        ++k;
    return k;
}

} // namespace

int
HDRMAllReduce::nodeOfRank(const topo::BiGraph &bg, int r)
{
    const int n = bg.numNodes();
    const int lg_l = log2i(bg.numLower());
    const bool even_parity =
        (std::popcount(static_cast<unsigned>(r)) % 2) == 0;
    if (even_parity) {
        // Upper stage: switch = high bits; port = the index of r
        // among same-prefix even-parity ranks (their low bits are
        // every other value, so dividing the low bits by two ranks
        // them densely).
        int upper = r >> lg_l;
        int low = r & ((1 << lg_l) - 1);
        int port = low / 2;
        return upper * bg.nodesPerUpper() + port;
    }
    // Lower stage: switch = low bits; port indexes the odd-parity
    // ranks sharing them (every other prefix value).
    int lower = r & ((1 << lg_l) - 1);
    int high = r >> lg_l;
    int port = high / 2;
    return n / 2 + lower * bg.nodesPerLower() + port;
}

bool
HDRMAllReduce::supports(const topo::Topology &topo) const
{
    auto *bg = dynamic_cast<const topo::BiGraph *>(&topo);
    if (bg == nullptr)
        return false;
    return isPow2(bg->numNodes()) && isPow2(bg->numUpper())
           && isPow2(bg->numLower()) && bg->numNodes() >= 4;
}

Schedule
HDRMAllReduce::build(const topo::Topology &topo,
                     std::uint64_t total_bytes) const
{
    auto *bg = dynamic_cast<const topo::BiGraph *>(&topo);
    MT_ASSERT(bg != nullptr, "hdrm requires a BiGraph topology");
    const int n = bg->numNodes();

    // Precompute and sanity-check the rank map: it must be a
    // bijection onto the nodes.
    std::vector<int> node_of(static_cast<std::size_t>(n));
    std::vector<char> used(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n; ++r) {
        int v = nodeOfRank(*bg, r);
        MT_ASSERT(v >= 0 && v < n, "rank ", r, " maps off-range to ",
                  v);
        MT_ASSERT(!used[static_cast<std::size_t>(v)],
                  "rank map collides at node ", v);
        used[static_cast<std::size_t>(v)] = 1;
        node_of[static_cast<std::size_t>(r)] = v;
    }
    return buildHalvingDoubling(
        n, total_bytes,
        [&node_of](int r) {
            return node_of[static_cast<std::size_t>(r)];
        },
        name());
}

} // namespace multitree::coll
