#include "coll/hierarchical.hh"

#include "common/logging.hh"
#include "topo/hierarchical.hh"

namespace multitree::coll {

bool
parseHierarchicalAlgo(const std::string &name, std::string &island,
                      std::string &spine)
{
    if (name.rfind("hier:", 0) != 0)
        return false;
    std::string body = name.substr(5);
    auto plus = body.find('+');
    if (plus == std::string::npos || plus == 0
        || plus + 1 >= body.size())
        return false;
    island = body.substr(0, plus);
    spine = body.substr(plus + 1);
    return true;
}

Schedule
composeHierarchical(const topo::HierarchicalTopology &topo,
                    const Algorithm &island_algo,
                    const Algorithm &spine_algo,
                    std::uint64_t total_bytes)
{
    MT_ASSERT(island_algo.supports(topo.island()), "island algorithm ",
              island_algo.name(), " does not support ",
              topo.island().name());
    MT_ASSERT(spine_algo.supports(topo.spine()), "spine algorithm ",
              spine_algo.name(), " does not support ",
              topo.spine().name());

    const Schedule s_island =
        island_algo.build(topo.island(), total_bytes);
    const Schedule s_spine =
        spine_algo.build(topo.spine(), total_bytes);
    MT_ASSERT(s_island.kind == CollectiveKind::AllReduce
                  && s_spine.kind == CollectiveKind::AllReduce,
              "hierarchical composition needs all-reduce phases");

    // Phase boundaries: spine steps start after the slowest island
    // reduce; island gathers start after the whole spine exchange.
    const int island_reduce_steps = s_island.reduceSteps();
    const int spine_steps = s_spine.totalSteps();
    const int k = topo.numIslands();

    Schedule out;
    out.algorithm =
        "hier:" + island_algo.name() + "+" + spine_algo.name();
    out.kind = CollectiveKind::AllReduce;
    out.num_nodes = topo.numNodes();
    // Composed edges cross island boundaries the component algorithms
    // never saw, so their explicitly allocated routes do not transfer;
    // deterministic routing (and with it rail striping) takes over,
    // and lockstep pacing loses its contention-free premise.
    out.lockstep = false;
    out.phase_names = {"island-reduce", "spine-allreduce",
                       "island-gather"};

    for (const ChunkFlow &f : s_island.flows) {
        for (const ChunkFlow &g : s_spine.flows) {
            ChunkFlow cf;
            cf.flow_id = static_cast<int>(out.flows.size());
            cf.root = topo.globalNode(g.root, f.root);
            cf.fraction = f.fraction * g.fraction;

            // Phase 1: every island reduces its copy of this chunk
            // toward its local leader (j, f.root).
            for (int j = 0; j < k; ++j) {
                for (const ScheduledEdge &e : f.reduce) {
                    cf.reduce.push_back(
                        {topo.globalNode(j, e.src),
                         topo.globalNode(j, e.dst), e.step, {}, 0});
                }
            }
            // Phase 2: leaders all-reduce over the spine; spine node
            // ids map to each island's leader.
            for (const ScheduledEdge &e : g.reduce) {
                cf.reduce.push_back(
                    {topo.globalNode(e.src, f.root),
                     topo.globalNode(e.dst, f.root),
                     e.step + island_reduce_steps,
                     {},
                     1});
            }
            for (const ScheduledEdge &e : g.gather) {
                cf.gather.push_back(
                    {topo.globalNode(e.src, f.root),
                     topo.globalNode(e.dst, f.root),
                     e.step + island_reduce_steps,
                     {},
                     1});
            }
            // Phase 3: every leader broadcasts the fully reduced
            // chunk back through its island.
            for (int j = 0; j < k; ++j) {
                for (const ScheduledEdge &e : f.gather) {
                    cf.gather.push_back(
                        {topo.globalNode(j, e.src),
                         topo.globalNode(j, e.dst),
                         e.step + island_reduce_steps + spine_steps,
                         {},
                         2});
                }
            }
            out.flows.push_back(std::move(cf));
        }
    }

    out.assignBytes(total_bytes);
    out.checkBasicShape();
    return out;
}

} // namespace multitree::coll
