#include "coll/dbtree.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"
#include "topo/topology.hh"

namespace multitree::coll {

namespace {

/**
 * Build the in-order binary tree over labels [lo, hi] (1-based). The
 * subtree root is lo - 1 + 2^floor(log2(size)), which keeps every odd
 * label a leaf and every even label internal. Fills parent_of_label.
 */
void
buildInOrder(int lo, int hi, int parent_label,
             std::vector<int> &parent_of_label)
{
    if (lo > hi)
        return;
    int size = hi - lo + 1;
    int pow2 = 1;
    while (pow2 * 2 <= size)
        pow2 *= 2;
    int root = lo - 1 + pow2;
    parent_of_label[static_cast<std::size_t>(root)] = parent_label;
    buildInOrder(lo, root - 1, root, parent_of_label);
    buildInOrder(root + 1, hi, root, parent_of_label);
}

/** Parent array by rank for one of the two trees. */
std::vector<int>
treeParents(int n, int which)
{
    // Tree 0 is the in-order tree over labels 1..n. Tree 1 mirrors it
    // (label -> n + 1 - label), which for even n swaps the odd-label
    // leaves with the even-label internal nodes. For odd n the
    // classic shift-by-one (label -> label % n + 1) is used instead.
    std::vector<int> parent_of_label(static_cast<std::size_t>(n) + 1,
                                     -1);
    buildInOrder(1, n, 0, parent_of_label); // 0 marks the root's parent
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    auto to_rank = [&](int label) -> int {
        if (which == 0)
            return label - 1;
        if (n % 2 == 0)
            return n - label; // mirror
        return label % n;     // shift
    };
    for (int label = 1; label <= n; ++label) {
        int p_label = parent_of_label[static_cast<std::size_t>(label)];
        parent[static_cast<std::size_t>(to_rank(label))] =
            p_label == 0 ? -1 : to_rank(p_label);
    }
    return parent;
}

} // namespace

int
DBTreeAllReduce::parentOf(int rank, int which, int n)
{
    auto parents = treeParents(n, which);
    return parents[static_cast<std::size_t>(rank)];
}

Schedule
DBTreeAllReduce::build(const topo::Topology &topo,
                       std::uint64_t total_bytes) const
{
    const int n = topo.numNodes();
    MT_ASSERT(n >= 2, "dbtree needs at least two nodes");

    Schedule sched;
    sched.algorithm = name();
    sched.num_nodes = n;

    const std::uint64_t half = total_bytes / 2;
    int segments = static_cast<int>(
        std::min<std::uint64_t>(
            static_cast<std::uint64_t>(opts_.max_segments),
            std::max<std::uint64_t>(
                1, ceilDiv(half, opts_.segment_bytes))));

    for (int which = 0; which < 2; ++which) {
        auto parent = treeParents(n, which);
        int root = -1;
        std::vector<std::vector<int>> children(
            static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            if (parent[static_cast<std::size_t>(r)] < 0)
                root = r;
            else
                children[static_cast<std::size_t>(
                             parent[static_cast<std::size_t>(r)])]
                    .push_back(r);
        }
        MT_ASSERT(root >= 0, "tree ", which, " has no root");

        // height: distance to the deepest leaf below; depth: distance
        // from the root. Computed iteratively over the parent links.
        std::vector<int> height(static_cast<std::size_t>(n), 0);
        std::vector<int> order(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r)
            order[static_cast<std::size_t>(r)] = r;
        // Repeated relaxation is O(n * depth); fine at this scale.
        bool changed = true;
        while (changed) {
            changed = false;
            for (int r = 0; r < n; ++r) {
                int p = parent[static_cast<std::size_t>(r)];
                if (p < 0)
                    continue;
                int want = height[static_cast<std::size_t>(r)] + 1;
                if (height[static_cast<std::size_t>(p)] < want) {
                    height[static_cast<std::size_t>(p)] = want;
                    changed = true;
                }
            }
        }
        std::vector<int> depth(static_cast<std::size_t>(n), 0);
        for (int r = 0; r < n; ++r) {
            int d = 0;
            for (int v = r; parent[static_cast<std::size_t>(v)] >= 0;
                 v = parent[static_cast<std::size_t>(v)]) {
                ++d;
            }
            depth[static_cast<std::size_t>(r)] = d;
        }
        int root_height = height[static_cast<std::size_t>(root)];

        // Segment q of this tree is one flow; steps interleave the
        // two trees on even/odd parity (Fig. 4b).
        int reduce_slots = (segments - 1) + root_height;
        for (int q = 0; q < segments; ++q) {
            ChunkFlow flow;
            flow.flow_id = which * segments + q;
            flow.root = root;
            flow.fraction = 0.5 / segments;
            for (int r = 0; r < n; ++r) {
                int p = parent[static_cast<std::size_t>(r)];
                if (p < 0)
                    continue;
                int up_slot = q + height[static_cast<std::size_t>(r)];
                flow.reduce.push_back(ScheduledEdge{
                    r, p, 2 * up_slot + which + 1, {}});
                int down_slot = reduce_slots + 1 + q
                                + depth[static_cast<std::size_t>(r)];
                flow.gather.push_back(ScheduledEdge{
                    p, r, 2 * down_slot + which + 1, {}});
            }
            sched.flows.push_back(std::move(flow));
        }
    }
    sched.assignBytes(total_bytes);
    sched.checkBasicShape();
    return sched;
}

} // namespace multitree::coll
