/**
 * @file
 * The collective-schedule intermediate representation.
 *
 * Every all-reduce algorithm in this library — MultiTree and all the
 * baselines — compiles to the same IR: a set of per-chunk *flows*. A
 * flow owns one contiguous slice of the all-reduce payload and carries
 * it through a reduce tree (edges pointing child → parent toward the
 * flow's root, the reduce-scatter phase) and a gather tree (edges
 * parent → child away from the root, the all-gather phase). Every edge
 * is annotated with a logical time step; the co-designed network
 * interface paces issue by these steps (§IV-A of the paper), and the
 * per-node schedule tables of Fig. 5 are a direct projection of this
 * structure.
 *
 * Using one IR for every algorithm mirrors the paper's methodology
 * note that the hardware scheduling mechanism is applied to all the
 * baselines for a fair comparison, and lets one validator, one
 * functional executor and one NI engine serve everything.
 */

#ifndef MULTITREE_COLL_SCHEDULE_HH
#define MULTITREE_COLL_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::coll {

/**
 * What a schedule computes. All-reduce is the paper's headline, but
 * the same IR carries its two halves as standalone primitives (for
 * hybrid parallelism, §VII-B) and the all-to-all personalization
 * exchange of DLRM-style models, which rides the gather-tree paths.
 */
enum class CollectiveKind {
    AllReduce,
    ReduceScatter,
    AllGather,
    AllToAll,
};

/** Human-readable collective name. */
const char *kindName(CollectiveKind kind);

/**
 * One scheduled transfer of a flow's chunk between two end nodes.
 * When @ref route is empty the transfer follows the topology's
 * deterministic routing; MultiTree fills it with the explicitly
 * allocated channel path (source routing, §IV-B).
 *
 * A *multicast* edge (produced by fuseMulticast()) carries the same
 * chunk to several destinations with one injection: @ref dsts lists
 * every receiver (with @ref dst == dsts[0] kept as the primary so
 * single-destination consumers stay correct) and @ref dst_routes
 * holds one explicit route per destination, index-aligned with
 * dsts. The fabric replicates flits where those routes diverge.
 */
struct ScheduledEdge {
    int src = -1;           ///< sending node
    int dst = -1;           ///< receiving node (primary for multicast)
    int step = 0;           ///< 1-based logical time step
    std::vector<int> route; ///< explicit channel path (may be empty)
    /** Schedule phase this edge belongs to (index into the owning
     *  Schedule's phase_names; 0 for single-phase schedules). */
    int phase = 0;

    /** Multicast fan-out set; empty for plain unicast edges. When
     *  non-empty, dsts[0] == dst and dst_routes is aligned with it. */
    std::vector<int> dsts;
    /** Per-destination explicit routes (never empty entries) for a
     *  multicast edge; aligned with @ref dsts. */
    std::vector<std::vector<int>> dst_routes;

    /** Whether this edge fans out to more than one destination. */
    bool isMulticast() const { return dsts.size() > 1; }

    /** Number of delivery branches (1 for unicast). */
    std::size_t branchCount() const
    {
        return isMulticast() ? dsts.size() : 1;
    }

    /** Destination of branch @p i (unicast: only branch 0). */
    int branchDst(std::size_t i) const
    {
        return isMulticast() ? dsts[i] : dst;
    }

    /** Route of branch @p i (may be empty only for unicast). */
    const std::vector<int> &branchRoute(std::size_t i) const
    {
        return isMulticast() ? dst_routes[i] : route;
    }
};

/**
 * The life of one payload chunk: reduced along a tree into @ref root,
 * then broadcast back out along a gather tree.
 */
struct ChunkFlow {
    int flow_id = -1;    ///< tree / chunk identifier (Fig. 5 FlowID)
    int root = -1;       ///< node holding the reduced chunk after RS
    /** All-to-all only: the single destination of this flow. */
    int dst = -1;
    double fraction = 0; ///< share of the total all-reduce payload
    std::uint64_t bytes = 0; ///< chunk size; set by assignBytes()

    std::vector<ScheduledEdge> reduce; ///< child → parent edges
    std::vector<ScheduledEdge> gather; ///< parent → child edges
};

/** Aggregate statistics of a schedule, used by tests and Table I. */
struct ScheduleStats {
    int total_steps = 0;          ///< largest step label used
    int reduce_steps = 0;         ///< largest step in any reduce edge
    std::uint64_t edge_count = 0; ///< scheduled transfers
    double bytes_transferred = 0; ///< sum of edge bytes (both phases)
    double byte_hops = 0;         ///< bytes weighted by route length
    int max_channel_flows = 0;    ///< peak distinct flows sharing one
                                  ///< (channel, step); >1 hints at
                                  ///< aggregated or contended use
    double max_channel_bytes = 0; ///< heaviest per-channel byte load
                                  ///< over the whole schedule — the
                                  ///< serialization-time proxy that
                                  ///< separates Ring (~2D), 2D-Ring
                                  ///< (~D) and MultiTree (~D/2)
};

/**
 * A complete all-reduce schedule for one (algorithm, topology, size)
 * triple.
 */
class Schedule
{
  public:
    /** Algorithm that produced this schedule (e.g. "multitree"). */
    std::string algorithm;

    /** Which collective this schedule realizes. */
    CollectiveKind kind = CollectiveKind::AllReduce;

    /** Participating end nodes. */
    int num_nodes = 0;

    /** Total all-reduce payload in bytes. */
    std::uint64_t total_bytes = 0;

    /**
     * Whether the NI should insert lockstep NOPs to pace steps
     * (enabled for MultiTree's contention-free guarantee, §IV-A).
     */
    bool lockstep = false;

    /** All flows. */
    std::vector<ChunkFlow> flows;

    /**
     * Names of the schedule's phases, indexed by ScheduledEdge::phase.
     * Empty for single-phase schedules (everything is phase 0);
     * coll::composeHierarchical labels its three stages.
     */
    std::vector<std::string> phase_names;

    /** Number of attribution phases (at least 1). */
    int numPhases() const
    {
        return phase_names.empty()
                   ? 1
                   : static_cast<int>(phase_names.size());
    }

    /**
     * Distribute @p total over the flows proportionally to their
     * fractions, rounding to whole 4-byte elements with the remainder
     * spread over the first flows. Also records total_bytes.
     */
    void assignBytes(std::uint64_t total);

    /** Largest step label across both phases. */
    int totalSteps() const;

    /** Largest step label used by any reduce edge. */
    int reduceSteps() const;

    /**
     * Compute summary statistics. Route lengths come from each edge's
     * explicit route when present, otherwise from @p topo's routing.
     */
    ScheduleStats stats(const topo::Topology &topo) const;

    /**
     * Per-step upper bound of the serialized flit count any single
     * channel must carry, used by the NI lockstep estimation
     * (footnote 4 of the paper). Index 0 corresponds to step 1.
     */
    std::vector<std::uint64_t> stepFlitEstimates() const;

    /** Sanity-check flow ids are dense and fractions sum to ~1. */
    void checkBasicShape() const;
};

/**
 * Collapse each (flow, phase) gather tree into one multicast edge
 * from its root, issued at the tree's earliest step: one injection
 * serves every tree node, with the fabric replicating flits where
 * the concatenated per-branch routes diverge (the in-network
 * multicast of RunOptions::in_network) — interior relays become
 * branch stops instead of store-and-forward NIC hops. All-to-all
 * schedules are personalized, so there only each node's immediate
 * same-(flow, phase) fan-out is fused. Edges whose routes were
 * implicit are resolved against @p topo so every branch carries an
 * explicit path. Returns the number of fused edges; a phase whose
 * component has a single edge is returned unchanged.
 */
int fuseMulticast(Schedule &sched, const topo::Topology &topo);

} // namespace multitree::coll

#endif // MULTITREE_COLL_SCHEDULE_HH
