#include "coll/primitives.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "topo/topology.hh"

namespace multitree::coll {

Schedule
buildReduceScatter(const Algorithm &algo, const topo::Topology &topo,
                   std::uint64_t total_bytes)
{
    Schedule sched = algo.build(topo, total_bytes);
    sched.kind = CollectiveKind::ReduceScatter;
    sched.algorithm = algo.name() + "-rs";
    for (auto &f : sched.flows)
        f.gather.clear();
    return sched;
}

Schedule
buildAllGather(const Algorithm &algo, const topo::Topology &topo,
               std::uint64_t total_bytes)
{
    Schedule sched = algo.build(topo, total_bytes);
    int base = sched.reduceSteps();
    sched.kind = CollectiveKind::AllGather;
    sched.algorithm = algo.name() + "-ag";
    for (auto &f : sched.flows) {
        f.reduce.clear();
        for (auto &e : f.gather) {
            e.step -= base;
            MT_ASSERT(e.step >= 1, "gather step underflow in ",
                      sched.algorithm);
        }
    }
    return sched;
}

Schedule
buildAllToAllShift(const topo::Topology &topo,
                   std::uint64_t total_bytes)
{
    const int n = topo.numNodes();
    MT_ASSERT(n >= 2, "all-to-all needs at least two nodes");
    const auto order = topo.ringOrder();

    Schedule sched;
    sched.kind = CollectiveKind::AllToAll;
    sched.algorithm = "shift";
    sched.num_nodes = n;
    int flow_id = 0;
    for (int k = 1; k < n; ++k) {
        for (int p = 0; p < n; ++p) {
            ChunkFlow f;
            f.flow_id = flow_id++;
            f.root = order[static_cast<std::size_t>(p)];
            f.dst = order[static_cast<std::size_t>((p + k) % n)];
            f.fraction = 1.0 / (static_cast<double>(n) * (n - 1));
            f.gather.push_back(ScheduledEdge{f.root, f.dst, k, {}});
            sched.flows.push_back(std::move(f));
        }
    }
    sched.assignBytes(total_bytes);
    sched.checkBasicShape();
    return sched;
}

Schedule
buildAllToAllFromTrees(const Schedule &tree_schedule,
                       std::uint64_t total_bytes)
{
    const int n = tree_schedule.num_nodes;
    MT_ASSERT(tree_schedule.kind == CollectiveKind::AllReduce,
              "tree-path all-to-all derives from an all-reduce "
              "schedule");
    const int base = tree_schedule.reduceSteps();

    Schedule sched;
    sched.kind = CollectiveKind::AllToAll;
    sched.algorithm = tree_schedule.algorithm + "-a2a";
    sched.num_nodes = n;
    sched.lockstep = tree_schedule.lockstep;

    int flow_id = 0;
    for (const auto &tree : tree_schedule.flows) {
        // Parent pointers of the gather tree rooted at tree.root.
        std::vector<const ScheduledEdge *> up(
            static_cast<std::size_t>(n), nullptr);
        for (const auto &e : tree.gather) {
            MT_ASSERT(up[static_cast<std::size_t>(e.dst)] == nullptr,
                      "flow ", tree.flow_id, " is not a tree");
            up[static_cast<std::size_t>(e.dst)] = &e;
        }
        for (int d = 0; d < n; ++d) {
            if (d == tree.root)
                continue;
            ChunkFlow f;
            f.flow_id = flow_id++;
            f.root = tree.root;
            f.dst = d;
            f.fraction = 1.0 / (static_cast<double>(n) * (n - 1));
            // Walk d -> root, then reverse into the forward path.
            for (int cur = d; cur != tree.root;) {
                const ScheduledEdge *e =
                    up[static_cast<std::size_t>(cur)];
                MT_ASSERT(e != nullptr, "node ", cur,
                          " unreachable in tree ", tree.flow_id);
                f.gather.push_back(ScheduledEdge{
                    e->src, e->dst, e->step - base, e->route});
                cur = e->src;
            }
            std::reverse(f.gather.begin(), f.gather.end());
            sched.flows.push_back(std::move(f));
        }
    }
    sched.assignBytes(total_bytes);
    sched.checkBasicShape();
    return sched;
}

} // namespace multitree::coll
