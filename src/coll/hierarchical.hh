/**
 * @file
 * Hierarchical collective composition on the schedule IR.
 *
 * A hierarchical all-reduce over a topo::HierarchicalTopology runs in
 * three phases: each island reduces internally toward a per-island
 * leader, the leaders all-reduce across the spine, and each island
 * broadcasts the result back out. composeHierarchical() builds this
 * as a pure schedule-IR composition — any registered algorithm can
 * serve as the island or spine phase, and the result is an ordinary
 * Schedule that validators, oracles and both network backends consume
 * unchanged (the TACCL-style hierarchy-aware construction the ISSUE
 * motivates, expressed on the existing per-node schedule tables).
 */

#ifndef MULTITREE_COLL_HIERARCHICAL_HH
#define MULTITREE_COLL_HIERARCHICAL_HH

#include <cstdint>
#include <string>

#include "coll/algorithm.hh"
#include "coll/schedule.hh"

namespace multitree::topo {
class HierarchicalTopology;
} // namespace multitree::topo

namespace multitree::coll {

/**
 * Parse a composed algorithm name "hier:<island>+<spine>" into its
 * component algorithm names. @return false when @p name is not a
 * hierarchical spec (no "hier:" prefix or no '+').
 */
bool parseHierarchicalAlgo(const std::string &name,
                           std::string &island, std::string &spine);

/**
 * Compose a hierarchical all-reduce schedule: @p island_algo reduces
 * and broadcasts within every island copy, @p spine_algo all-reduces
 * among the per-island leaders over the spine. Composition is flow ×
 * flow — each (island flow f, spine flow g) pair becomes one composed
 * flow owning fraction f·g of the payload, rooted at island g.root's
 * copy of node f.root — with spine steps offset past the island
 * reduce and island gather steps offset past the spine. All edges use
 * deterministic routing (empty routes), so rail striping applies.
 */
Schedule composeHierarchical(const topo::HierarchicalTopology &topo,
                             const Algorithm &island_algo,
                             const Algorithm &spine_algo,
                             std::uint64_t total_bytes);

/**
 * Name-resolving overload: looks the component algorithms up in the
 * registry (variant names allowed; their flow-control tweaks are
 * ignored — transport options belong to RunOptions). Defined with
 * the registry in src/core so mt_coll stays independent of it.
 */
Schedule composeHierarchical(const topo::HierarchicalTopology &topo,
                             const std::string &island_algo,
                             const std::string &spine_algo,
                             std::uint64_t total_bytes);

} // namespace multitree::coll

#endif // MULTITREE_COLL_HIERARCHICAL_HH
