#include "coll/validate.hh"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "topo/topology.hh"

namespace multitree::coll {

namespace {

/** Build a failure result with a formatted message. */
template <typename... Args>
ValidationResult
fail(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return ValidationResult{false, oss.str()};
}

/**
 * Check an edge is realizable on the topology: an explicit route must
 * connect the edge's endpoints channel by channel, and an edge that
 * relies on deterministic routing must at least have *some* path (a
 * schedule naming transfers between disconnected vertices would hang
 * or crash the simulated NI).
 */
ValidationResult
checkOneRoute(const ChunkFlow &f, int src, int dst,
              const std::vector<int> &route,
              const topo::Topology &topo)
{
    if (route.empty()) {
        if (!topo.tryBfsRoute(src, dst))
            return fail("flow ", f.flow_id, ": edge ", src, "->",
                        dst, " has no path in the topology");
        return {};
    }
    int cur = src;
    for (int cid : route) {
        if (cid < 0 || cid >= topo.numChannels())
            return fail("flow ", f.flow_id, ": bad channel id ", cid);
        const auto &ch = topo.channel(cid);
        if (ch.src != cur)
            return fail("flow ", f.flow_id,
                        ": route discontinuity at vertex ", cur);
        cur = ch.dst;
    }
    if (cur != dst)
        return fail("flow ", f.flow_id, ": route ends at vertex ",
                    cur, " not ", dst);
    return {};
}

/**
 * Check an edge is realizable on the topology: an explicit route must
 * connect the edge's endpoints channel by channel, and an edge that
 * relies on deterministic routing must at least have *some* path (a
 * schedule naming transfers between disconnected vertices would hang
 * or crash the simulated NI). Multicast edges are checked branch by
 * branch, plus their structural alignment invariants.
 */
ValidationResult
checkRoute(const ChunkFlow &f, const ScheduledEdge &e,
           const topo::Topology &topo)
{
    if (!e.isMulticast())
        return checkOneRoute(f, e.src, e.dst, e.route, topo);
    if (e.dsts.size() != e.dst_routes.size())
        return fail("flow ", f.flow_id, ": multicast edge from ",
                    e.src, " has ", e.dsts.size(), " dsts but ",
                    e.dst_routes.size(), " routes");
    if (e.dsts.front() != e.dst)
        return fail("flow ", f.flow_id, ": multicast primary dst ",
                    e.dst, " is not dsts[0]=", e.dsts.front());
    std::set<int> seen;
    for (std::size_t b = 0; b < e.dsts.size(); ++b) {
        if (!seen.insert(e.dsts[b]).second)
            return fail("flow ", f.flow_id,
                        ": multicast edge from ", e.src,
                        " names dst ", e.dsts[b], " twice");
        if (e.dst_routes[b].empty())
            return fail("flow ", f.flow_id,
                        ": multicast branch to ", e.dsts[b],
                        " lacks an explicit route");
        if (auto r = checkOneRoute(f, e.src, e.dsts[b],
                                   e.dst_routes[b], topo);
            !r.ok)
            return r;
    }
    return {};
}

/**
 * Validate an all-to-all flow: the gather edges form a simple path
 * from the flow root to flow.dst with strictly increasing steps.
 */
ValidationResult
validatePathFlow(const ChunkFlow &f, int n, const topo::Topology &topo)
{
    if (!f.reduce.empty())
        return fail("flow ", f.flow_id,
                    ": all-to-all flows carry no reduction");
    if (f.dst < 0 || f.dst >= n || f.dst == f.root)
        return fail("flow ", f.flow_id, ": bad all-to-all dst ",
                    f.dst);
    // next[v] = the edge leaving v, if any.
    std::vector<const ScheduledEdge *> next(
        static_cast<std::size_t>(n), nullptr);
    for (const auto &e : f.gather) {
        if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n)
            return fail("flow ", f.flow_id, ": edge off range");
        if (next[static_cast<std::size_t>(e.src)] != nullptr)
            return fail("flow ", f.flow_id, ": node ", e.src,
                        " forwards twice");
        next[static_cast<std::size_t>(e.src)] = &e;
        if (auto r = checkRoute(f, e, topo); !r.ok)
            return r;
    }
    int cur = f.root;
    int last_step = 0;
    std::size_t hops = 0;
    while (cur != f.dst) {
        const ScheduledEdge *e = next[static_cast<std::size_t>(cur)];
        if (e == nullptr)
            return fail("flow ", f.flow_id, ": path stops at ", cur);
        if (e->step <= last_step)
            return fail("flow ", f.flow_id,
                        ": non-increasing step at ", cur);
        last_step = e->step;
        cur = e->dst;
        if (++hops > f.gather.size())
            return fail("flow ", f.flow_id, ": path cycles");
    }
    if (hops != f.gather.size())
        return fail("flow ", f.flow_id, ": stray edges off the path");
    return {};
}

/** Validate one flow; returns ok or the first violation. */
ValidationResult
validateFlow(const ChunkFlow &f, int n, const topo::Topology &topo,
             CollectiveKind kind)
{
    if (kind == CollectiveKind::AllToAll)
        return validatePathFlow(f, n, topo);
    if (kind == CollectiveKind::ReduceScatter && !f.gather.empty())
        return fail("flow ", f.flow_id,
                    ": reduce-scatter must not gather");
    if (kind == CollectiveKind::AllGather && !f.reduce.empty())
        return fail("flow ", f.flow_id,
                    ": all-gather must not reduce");

    // --- invariant 1: reduce in-tree ---
    std::vector<int> send_step(static_cast<std::size_t>(n), -1);
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    std::vector<int> last_recv(static_cast<std::size_t>(n), 0);
    for (const auto &e : f.reduce) {
        if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n)
            return fail("flow ", f.flow_id, ": edge outside node range");
        if (send_step[e.src] != -1)
            return fail("flow ", f.flow_id, ": node ", e.src,
                        " sends reduce twice");
        if (e.step < 1)
            return fail("flow ", f.flow_id, ": non-positive step");
        send_step[e.src] = e.step;
        parent[e.src] = e.dst;
        last_recv[e.dst] = std::max(last_recv[e.dst], e.step);
    }
    if (send_step[f.root] != -1)
        return fail("flow ", f.flow_id, ": root ", f.root,
                    " sends in reduce phase");
    if (kind != CollectiveKind::AllGather) {
        for (int v = 0; v < n; ++v) {
            if (v != f.root && send_step[v] == -1)
                return fail("flow ", f.flow_id, ": node ", v,
                            " never contributes to the reduction");
        }
        // Parent chains must reach the root without cycles.
        for (int v = 0; v < n; ++v) {
            int cur = v;
            int hops = 0;
            while (cur != f.root) {
                cur = parent[cur];
                if (cur < 0 || ++hops > n)
                    return fail("flow ", f.flow_id,
                                ": reduce parents of node ", v,
                                " do not reach root");
            }
        }
    }
    // --- invariant 3a: reduce causality ---
    for (const auto &e : f.reduce) {
        if (last_recv[e.src] >= e.step)
            return fail("flow ", f.flow_id, ": node ", e.src,
                        " sends at step ", e.step,
                        " before its last child arrives at step ",
                        last_recv[e.src]);
    }
    int root_ready = last_recv[f.root];

    // --- invariant 2: gather out-tree ---
    std::vector<int> recv_step(static_cast<std::size_t>(n), -1);
    for (const auto &e : f.gather) {
        if (e.src < 0 || e.src >= n)
            return fail("flow ", f.flow_id,
                        ": gather edge outside node range");
        for (std::size_t b = 0; b < e.branchCount(); ++b) {
            const int dst = e.branchDst(b);
            if (dst < 0 || dst >= n)
                return fail("flow ", f.flow_id,
                            ": gather edge outside node range");
            if (recv_step[dst] != -1)
                return fail("flow ", f.flow_id, ": node ", dst,
                            " receives gather twice");
            recv_step[dst] = e.step;
        }
    }
    if (recv_step[f.root] != -1)
        return fail("flow ", f.flow_id, ": root receives own gather");
    if (kind != CollectiveKind::ReduceScatter) {
        for (int v = 0; v < n; ++v) {
            if (v != f.root && recv_step[v] == -1)
                return fail("flow ", f.flow_id, ": node ", v,
                            " never receives the gathered chunk");
        }
    }
    // --- invariant 3b: gather causality ---
    for (const auto &e : f.gather) {
        int have = e.src == f.root ? root_ready : recv_step[e.src];
        if (e.src != f.root && have == -1)
            return fail("flow ", f.flow_id, ": node ", e.src,
                        " forwards gather it never received");
        if (have >= e.step)
            return fail("flow ", f.flow_id, ": node ", e.src,
                        " forwards at step ", e.step,
                        " before holding data (ready at ", have, ")");
    }
    // --- invariant 4: explicit routes connect src to dst ---
    for (const auto &e : f.reduce) {
        if (auto r = checkRoute(f, e, topo); !r.ok)
            return r;
    }
    for (const auto &e : f.gather) {
        if (auto r = checkRoute(f, e, topo); !r.ok)
            return r;
    }
    return {};
}

} // namespace

ValidationResult
validateSchedule(const Schedule &sched, const topo::Topology &topo)
{
    const int n = sched.num_nodes;
    if (n != topo.numNodes())
        return fail("schedule nodes ", n, " != topology nodes ",
                    topo.numNodes());
    double fraction = 0;
    std::uint64_t bytes = 0;
    for (const auto &f : sched.flows) {
        fraction += f.fraction;
        bytes += f.bytes;
        if (auto r = validateFlow(f, n, topo, sched.kind); !r.ok)
            return r;
    }
    if (sched.kind == CollectiveKind::AllToAll) {
        // Exactly one flow per ordered (src, dst) pair.
        std::set<std::pair<int, int>> pairs;
        for (const auto &f : sched.flows) {
            if (!pairs.insert({f.root, f.dst}).second)
                return fail("duplicate all-to-all pair ", f.root,
                            "->", f.dst);
        }
        if (pairs.size()
            != static_cast<std::size_t>(n) * (n - 1)) {
            return fail("all-to-all covers ", pairs.size(), " of ",
                        n * (n - 1), " pairs");
        }
    }
    if (fraction < 1.0 - 1e-6 || fraction > 1.0 + 1e-6)
        return fail("flow fractions sum to ", fraction);
    if (bytes != sched.total_bytes)
        return fail("flow bytes sum to ", bytes, " not ",
                    sched.total_bytes);
    return {};
}

ValidationResult
validateContentionFree(const Schedule &sched, const topo::Topology &topo)
{
    // (channel, step) → flow id of first claim; a second claim by a
    // different flow is contention unless both transfers are sibling
    // sub-flows traveling the identical (src, dst) hop, which the
    // network serializes as one aggregate without conflict.
    std::map<std::pair<int, int>, std::pair<int, std::pair<int, int>>>
        claims;
    auto visit = [&](const ChunkFlow &f,
                     const ScheduledEdge &e) -> ValidationResult {
        // Multicast branches claim with the edge's *primary*
        // endpoints: sibling branches share their route prefix by
        // construction (one flit stream until the replication point),
        // so a shared channel is one physical transfer, not a clash.
        auto val = std::make_pair(f.flow_id,
                                  std::make_pair(e.src, e.dst));
        for (std::size_t b = 0; b < e.branchCount(); ++b) {
            const std::vector<int> &br = e.branchRoute(b);
            const std::vector<int> route =
                br.empty() ? topo.route(e.src, e.branchDst(b)) : br;
            for (int cid : route) {
                auto key = std::make_pair(cid, e.step);
                auto [it, inserted] = claims.emplace(key, val);
                // A second claim is contention whenever the
                // transfers have different endpoints — same-flow
                // edges included (two edges of one flow colliding on
                // a channel is just as physical). Identical
                // endpoints aggregate safely.
                if (!inserted && it->second.second != val.second) {
                    return fail("channel ", cid, " claimed at step ",
                                e.step, " by flows ",
                                it->second.first, " and ", f.flow_id,
                                " with different endpoints");
                }
            }
        }
        return {};
    };
    for (const auto &f : sched.flows) {
        for (const auto &e : f.reduce) {
            if (auto r = visit(f, e); !r.ok)
                return r;
        }
        for (const auto &e : f.gather) {
            if (auto r = visit(f, e); !r.ok)
                return r;
        }
    }
    return {};
}

} // namespace multitree::coll
