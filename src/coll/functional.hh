/**
 * @file
 * Functional (data-carrying) execution of collective schedules.
 *
 * Runs a schedule on real float vectors — every node starts with its
 * own gradient vector and the executor moves/reduces actual data along
 * the scheduled edges in step order. Afterwards every node must hold
 * the exact element-wise sum of all inputs. This is the strongest
 * correctness oracle in the test suite: it catches wrong trees, wrong
 * step ordering, wrong chunk ranges and double counting for every
 * algorithm on every topology.
 */

#ifndef MULTITREE_COLL_FUNCTIONAL_HH
#define MULTITREE_COLL_FUNCTIONAL_HH

#include <vector>

#include "coll/schedule.hh"

namespace multitree::coll {

/**
 * Execute @p sched over per-node input vectors.
 *
 * @param sched A sized schedule (assignBytes() already called).
 * @param inputs One gradient vector per node, all the same length,
 *               with length * 4 == sched.total_bytes.
 * @return One output vector per node.
 */
std::vector<std::vector<float>>
runFunctional(const Schedule &sched,
              const std::vector<std::vector<float>> &inputs);

/**
 * Convenience oracle: run @p sched on deterministic pseudo-random
 * inputs of @p elems elements and compare every node's output with the
 * true sum.
 * @return true when every element of every node matches.
 */
bool checkAllReduceCorrect(const Schedule &sched, std::size_t elems,
                           std::uint64_t seed = 1);

/**
 * Kind-aware oracle: verifies the semantics the schedule's kind
 * promises —
 *  - AllReduce: every node holds the element-wise sum;
 *  - ReduceScatter: each flow root holds the sum over its slice;
 *  - AllGather: every node holds every root's original slice;
 *  - AllToAll: node d holds s's personalized slice for every (s, d).
 */
bool checkCollectiveCorrect(const Schedule &sched, std::size_t elems,
                            std::uint64_t seed = 1);

} // namespace multitree::coll

#endif // MULTITREE_COLL_FUNCTIONAL_HH
