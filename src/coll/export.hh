/**
 * @file
 * Schedule export for visualization and external tooling.
 *
 * Two formats:
 *  - Graphviz DOT of the gather trees (edges labeled with their time
 *    step), the view the paper draws in Fig. 3d/3e;
 *  - a line-oriented CSV of every scheduled transfer, convenient for
 *    plotting per-step link activity.
 */

#ifndef MULTITREE_COLL_EXPORT_HH
#define MULTITREE_COLL_EXPORT_HH

#include <string>

#include "coll/schedule.hh"

namespace multitree::topo {
class Topology;
} // namespace multitree::topo

namespace multitree::coll {

/**
 * Render the trees of @p sched as a Graphviz digraph: gather edges
 * solid, and — for schedules without a gather phase (reduce-scatter)
 * — the reduce edges dashed. With @p max_flows >= 0 only the first
 * flows are drawn (big schedules are unreadable otherwise).
 */
std::string toDot(const Schedule &sched, int max_flows = -1);

/**
 * Render every transfer as CSV rows:
 * `phase,flow,src,dst,step,bytes,hops`, resolving implicit routes
 * through @p topo so hop counts match Schedule::stats().
 */
std::string toCsv(const Schedule &sched, const topo::Topology &topo);

} // namespace multitree::coll

#endif // MULTITREE_COLL_EXPORT_HH
