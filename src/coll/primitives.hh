/**
 * @file
 * Standalone collective primitives beyond all-reduce (§VII-B).
 *
 * Hybrid-parallel training needs reduce-scatter and all-gather on
 * their own, and DLRM-style models exchange embeddings with
 * all-to-all. All of them reuse the all-reduce machinery:
 *
 *  - reduce-scatter / all-gather are the two halves of any all-reduce
 *    schedule, so they derive from the chosen algorithm's schedule by
 *    dropping the other phase (all-gather steps re-based to 1).
 *  - all-to-all rides the MultiTree gather trees: the personalized
 *    chunk s→d follows tree s's unique path to d, inheriting each
 *    tree edge's time step — the paper's observation that "the
 *    all-gather trees can also easily support all-to-all". A
 *    ring-based linear-shift baseline is provided for comparison.
 */

#ifndef MULTITREE_COLL_PRIMITIVES_HH
#define MULTITREE_COLL_PRIMITIVES_HH

#include "coll/algorithm.hh"

namespace multitree::coll {

/**
 * Reduce-scatter of @p total_bytes: node i ends with flow i's slice
 * of the sum. Derived from @p algo's all-reduce schedule.
 */
Schedule buildReduceScatter(const Algorithm &algo,
                            const topo::Topology &topo,
                            std::uint64_t total_bytes);

/**
 * All-gather: flow i's slice starts at its root and ends everywhere.
 * Derived from @p algo's all-reduce schedule with gather steps
 * re-based to start at 1.
 */
Schedule buildAllGather(const Algorithm &algo,
                        const topo::Topology &topo,
                        std::uint64_t total_bytes);

/**
 * All-to-all of @p total_bytes total payload per node pair set:
 * every ordered pair (s, d) exchanges a personalized chunk of
 * total_bytes / (N * (N-1)).
 *
 * Linear-shift baseline: N-1 rounds over the embedded ring order; in
 * round k node at position p sends to position p + k.
 */
Schedule buildAllToAllShift(const topo::Topology &topo,
                            std::uint64_t total_bytes);

/**
 * Tree-path all-to-all: chunk (s, d) follows the path from s to d
 * inside @p tree_schedule's gather tree rooted at s, inheriting each
 * tree edge's (re-based) time step — so a MultiTree schedule yields a
 * per-step contention-free exchange in which same-edge chunks
 * aggregate. @p tree_schedule must be an all-reduce schedule with one
 * gather tree per node (MultiTree always qualifies).
 */
Schedule buildAllToAllFromTrees(const Schedule &tree_schedule,
                                std::uint64_t total_bytes);

} // namespace multitree::coll

#endif // MULTITREE_COLL_PRIMITIVES_HH
