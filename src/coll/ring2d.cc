#include "coll/ring2d.hh"

#include "common/logging.hh"
#include "topo/grid.hh"

namespace multitree::coll {

bool
Ring2DAllReduce::supports(const topo::Topology &topo) const
{
    auto *grid = dynamic_cast<const topo::Grid2D *>(&topo);
    return grid != nullptr && grid->width() >= 2 && grid->height() >= 2;
}

Schedule
Ring2DAllReduce::build(const topo::Topology &topo,
                       std::uint64_t total_bytes) const
{
    auto *grid = dynamic_cast<const topo::Grid2D *>(&topo);
    MT_ASSERT(grid != nullptr, "ring2d requires a 2D grid topology");
    const int w = grid->width();
    const int h = grid->height();

    Schedule sched;
    sched.algorithm = name();
    sched.num_nodes = grid->numNodes();

    // Flow (cx, j, dir): column chunk cx, column sub-chunk j, ring
    // direction dir (0 = forward, 1 = backward). dir reverses every
    // ring index so both channel directions carry half the data.
    const int steps_p1 = w - 1;           // row reduce-scatter
    const int steps_p2r = h - 1;          // column reduce-scatter
    const int steps_p2g = h - 1;          // column all-gather
    auto rowNode = [&](int x, int y) {
        return grid->nodeAt(((x % w) + w) % w, y);
    };
    auto colNode = [&](int x, int y) {
        return grid->nodeAt(x, ((y % h) + h) % h);
    };

    for (int dir = 0; dir < 2; ++dir) {
        // Ring position -> coordinate, reversed for the backward ring.
        auto xpos = [&](int p) { return dir == 0 ? p : -p; };
        auto ypos = [&](int p) { return dir == 0 ? p : -p; };
        for (int cx = 0; cx < w; ++cx) {
            // The forward ring of chunk cx collects into column cx;
            // the backward ring (every index negated) collects into
            // the mirrored column.
            const int col = dir == 0 ? cx : (w - cx) % w;
            for (int j = 0; j < h; ++j) {
                ChunkFlow flow;
                flow.flow_id = (dir * w + cx) * h + j;
                flow.fraction = 1.0 / (2.0 * w * h);
                // Phase 1: chunk cx circles every row into `col`.
                for (int y = 0; y < h; ++y) {
                    for (int s = 1; s <= steps_p1; ++s) {
                        flow.reduce.push_back(ScheduledEdge{
                            rowNode(xpos(cx + s), y),
                            rowNode(xpos(cx + s + 1), y), s, {}});
                    }
                }
                // Phase 2 reduce: sub-chunk j circles the column.
                for (int s = 1; s <= steps_p2r; ++s) {
                    flow.reduce.push_back(ScheduledEdge{
                        colNode(col, ypos(j + s)),
                        colNode(col, ypos(j + s + 1)), steps_p1 + s,
                        {}});
                }
                flow.root = colNode(col, ypos(j));
                // Phase 2 gather: spread back down the column.
                int base = steps_p1 + steps_p2r;
                for (int s = 1; s <= steps_p2g; ++s) {
                    flow.gather.push_back(ScheduledEdge{
                        colNode(col, ypos(j + s - 1)),
                        colNode(col, ypos(j + s)), base + s, {}});
                }
                // Phase 3: all-gather along every row from column cx.
                base = steps_p1 + steps_p2r + steps_p2g;
                for (int y = 0; y < h; ++y) {
                    for (int s = 1; s <= steps_p1; ++s) {
                        flow.gather.push_back(ScheduledEdge{
                            rowNode(xpos(cx + s - 1), y),
                            rowNode(xpos(cx + s), y), base + s, {}});
                    }
                }
                sched.flows.push_back(std::move(flow));
            }
        }
    }
    sched.assignBytes(total_bytes);
    sched.checkBasicShape();
    return sched;
}

} // namespace multitree::coll
