/**
 * @file
 * Tests for the standalone collective primitives (§VII-B):
 * reduce-scatter, all-gather and the two all-to-all strategies.
 */

#include <gtest/gtest.h>

#include "coll/functional.hh"
#include "coll/primitives.hh"
#include "coll/ring.hh"
#include "coll/validate.hh"
#include "core/multitree.hh"
#include "runtime/allreduce_runtime.hh"
#include "topo/factory.hh"
#include "topo/grid.hh"

namespace multitree::coll {
namespace {

TEST(ReduceScatter, ValidAndCorrect)
{
    topo::Torus2D t(4, 4);
    for (const char *algo : {"ring", "multitree", "hd"}) {
        auto a = makeAlgorithm(algo);
        auto s = buildReduceScatter(*a, t, 16 * 1024);
        EXPECT_EQ(s.kind, CollectiveKind::ReduceScatter);
        auto r = validateSchedule(s, t);
        ASSERT_TRUE(r.ok) << algo << ": " << r.error;
        EXPECT_TRUE(checkCollectiveCorrect(s, 4096)) << algo;
    }
}

TEST(ReduceScatter, HalfTheAllReduceSteps)
{
    topo::Torus2D t(4, 4);
    core::MultiTreeAllReduce mt;
    auto full = mt.build(t, 16 * 1024);
    auto rs = buildReduceScatter(mt, t, 16 * 1024);
    EXPECT_EQ(rs.totalSteps(), full.reduceSteps());
}

TEST(AllGather, ValidAndCorrect)
{
    topo::Torus2D t(4, 4);
    for (const char *algo : {"ring", "multitree", "hd"}) {
        auto a = makeAlgorithm(algo);
        auto s = buildAllGather(*a, t, 16 * 1024);
        EXPECT_EQ(s.kind, CollectiveKind::AllGather);
        auto r = validateSchedule(s, t);
        ASSERT_TRUE(r.ok) << algo << ": " << r.error;
        EXPECT_TRUE(checkCollectiveCorrect(s, 4096)) << algo;
    }
}

TEST(AllGather, StepsRebaseToOne)
{
    topo::Torus2D t(4, 4);
    core::MultiTreeAllReduce mt;
    auto s = buildAllGather(mt, t, 16 * 1024);
    int min_step = 1 << 30;
    for (const auto &f : s.flows) {
        for (const auto &e : f.gather)
            min_step = std::min(min_step, e.step);
    }
    EXPECT_EQ(min_step, 1);
}

TEST(AllToAllShift, ValidAndCorrect)
{
    topo::Torus2D t(4, 4);
    auto s = buildAllToAllShift(t, 16 * 16 * 15 * 4);
    EXPECT_EQ(s.kind, CollectiveKind::AllToAll);
    EXPECT_EQ(s.flows.size(), 16u * 15u);
    auto r = validateSchedule(s, t);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(checkCollectiveCorrect(s, 16 * 15 * 16));
}

TEST(AllToAllTree, ValidAndCorrectOnEveryTopology)
{
    core::MultiTreeAllReduce mt;
    for (const char *spec :
         {"torus-4x4", "mesh-4x4", "fattree-16", "bigraph-4x8"}) {
        auto topo = topo::makeTopology(spec);
        int n = topo->numNodes();
        std::uint64_t bytes =
            static_cast<std::uint64_t>(n) * (n - 1) * 16;
        auto trees = mt.build(*topo, 4096);
        auto s = buildAllToAllFromTrees(trees, bytes);
        auto r = validateSchedule(s, *topo);
        ASSERT_TRUE(r.ok) << spec << ": " << r.error;
        EXPECT_TRUE(checkCollectiveCorrect(s, bytes / 4)) << spec;
    }
}

TEST(AllToAllTree, TreePathsAggregateContentionFree)
{
    // Same-step transfers may share channels only with identical
    // endpoints (aggregation), never with different ones.
    topo::Torus2D t(4, 4);
    core::MultiTreeAllReduce mt;
    auto trees = mt.build(t, 4096);
    auto s = buildAllToAllFromTrees(trees, 16 * 15 * 64);
    auto c = validateContentionFree(s, t);
    EXPECT_TRUE(c.ok) << c.error;
}

TEST(Primitives, RunOnTheSimulatedNetwork)
{
    auto topo = topo::makeTopology("torus-4x4");
    core::MultiTreeAllReduce mt;
    RingAllReduce ring;

    auto rs = buildReduceScatter(mt, *topo, 256 * 1024);
    auto ag = buildAllGather(mt, *topo, 256 * 1024);
    auto full = mt.build(*topo, 256 * 1024);
    auto t_rs = runtime::runAllReduce(*topo, rs).time;
    auto t_ag = runtime::runAllReduce(*topo, ag).time;
    auto t_full = runtime::runAllReduce(*topo, full).time;
    EXPECT_GT(t_rs, 0u);
    EXPECT_GT(t_ag, 0u);
    // Each half costs meaningfully less than the full all-reduce,
    // and not more than it.
    EXPECT_LT(t_rs, t_full);
    EXPECT_LT(t_ag, t_full);
    EXPECT_GE(t_rs + t_ag, t_full);
}

TEST(Primitives, TreeAllToAllBeatsShiftOnTorus)
{
    auto topo = topo::makeTopology("torus-8x8");
    core::MultiTreeAllReduce mt;
    std::uint64_t bytes = 64ull * 63 * 1024; // 1 KiB per pair
    auto shift = buildAllToAllShift(*topo, bytes);
    auto tree =
        buildAllToAllFromTrees(mt.build(*topo, 4096), bytes);
    auto t_shift = runtime::runAllReduce(*topo, shift).time;
    auto t_tree = runtime::runAllReduce(*topo, tree).time;
    EXPECT_LT(t_tree, t_shift);
}

} // namespace
} // namespace multitree::coll
