/**
 * @file
 * Tests for the extension topologies: 3D Torus and Dragonfly,
 * including MultiTree generality on both.
 */

#include <gtest/gtest.h>

#include <set>

#include "coll/functional.hh"
#include "coll/validate.hh"
#include "core/multitree.hh"
#include "runtime/allreduce_runtime.hh"
#include "topo/dragonfly.hh"
#include "topo/factory.hh"
#include "topo/torus3d.hh"

namespace multitree::topo {
namespace {

int
walk(const Topology &t, int src, const std::vector<int> &route)
{
    int cur = src;
    for (int cid : route) {
        EXPECT_EQ(t.channel(cid).src, cur);
        cur = t.channel(cid).dst;
    }
    return cur;
}

TEST(Torus3D, ShapeAndDegree)
{
    Torus3D t(4, 4, 4);
    EXPECT_EQ(t.numNodes(), 64);
    // 3 dims x 64 nodes x 2 directions.
    EXPECT_EQ(t.numChannels(), 3 * 64 * 2);
    for (int v = 0; v < 64; ++v)
        EXPECT_EQ(t.outChannels(v).size(), 6u);
}

TEST(Torus3D, RoutesAreMinimalAndCorrect)
{
    Torus3D t(4, 3, 2);
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b) {
            auto r = t.route(a, b);
            EXPECT_EQ(walk(t, a, r), b);
            EXPECT_EQ(r.size(), t.bfsRoute(a, b).size())
                << a << "->" << b;
        }
    }
}

TEST(Torus3D, PreferredNeighborsZFirst)
{
    Torus3D t(4, 4, 4);
    auto nb = t.preferredNeighbors(0);
    ASSERT_EQ(nb.size(), 6u);
    EXPECT_EQ(nb[0], t.nodeAt(0, 0, 1)); // Z+
    EXPECT_EQ(nb[2], t.nodeAt(0, 1, 0)); // Y+
    EXPECT_EQ(nb[4], t.nodeAt(1, 0, 0)); // X+
}

TEST(Torus3D, SerpentineRingIsHamiltonian)
{
    Torus3D t(4, 4, 2);
    auto order = t.ringOrder();
    std::set<int> uniq(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(uniq.size()), t.numNodes());
    // Every forward hop within and between planes is one link.
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
        EXPECT_EQ(t.route(order[i], order[i + 1]).size(), 1u);
}

TEST(Torus3D, MultiTreeExploitsSixPorts)
{
    auto t = makeTopology("torus3d-4x4x4");
    auto ring = runtime::runAllReduce(*t, "ring", 4 * MiB);
    auto mt = runtime::runAllReduce(*t, "multitree", 4 * MiB);
    // Six links per node versus the ring's one: large speedup.
    EXPECT_GT(static_cast<double>(ring.time) / mt.time, 3.0);
}

TEST(Dragonfly, ShapeAndGlobalLinks)
{
    Dragonfly d(5, 2);
    EXPECT_EQ(d.numGroups(), 5);
    EXPECT_EQ(d.routersPerGroup(), 4);
    EXPECT_EQ(d.numNodes(), 40);
    // 40 node links + 5 groups x C(4,2)=6 local + C(5,2)=10 global.
    EXPECT_EQ(d.numChannels(), 2 * (40 + 30 + 10));
}

TEST(Dragonfly, RoutesReachAndStayShort)
{
    Dragonfly d(5, 2);
    int max_hops = 0;
    for (int a = 0; a < d.numNodes(); ++a) {
        for (int b = 0; b < d.numNodes(); ++b) {
            if (a == b)
                continue;
            auto r = d.route(a, b);
            EXPECT_EQ(walk(d, a, r), b);
            max_hops = std::max(max_hops,
                                static_cast<int>(r.size()));
        }
    }
    // node, <=2 local, 1 global, node: at most 5 hops minimal.
    EXPECT_LE(max_hops, 5);
}

TEST(Dragonfly, MultiTreeSchedulesValidCorrectContentionFree)
{
    for (auto [g, p] : {std::pair{4, 2}, std::pair{5, 2}}) {
        Dragonfly d(g, p);
        core::MultiTreeAllReduce mt;
        auto s = mt.build(d, static_cast<std::uint64_t>(
                                 d.numNodes())
                                 * 512);
        auto r = coll::validateSchedule(s, d);
        ASSERT_TRUE(r.ok) << d.name() << ": " << r.error;
        auto c = coll::validateContentionFree(s, d);
        EXPECT_TRUE(c.ok) << d.name() << ": " << c.error;
        EXPECT_TRUE(coll::checkAllReduceCorrect(
            s, static_cast<std::size_t>(d.numNodes()) * 128));
    }
}

TEST(Dragonfly, MultiTreeBeatsRing)
{
    auto d = makeTopology("dragonfly-5:2");
    auto ring = runtime::runAllReduce(*d, "ring", 1 * MiB);
    auto mt = runtime::runAllReduce(*d, "multitree", 1 * MiB);
    EXPECT_LT(mt.time, ring.time);
}

TEST(Factory, NewSpecsParse)
{
    EXPECT_EQ(makeTopology("torus3d-4x4x4")->numNodes(), 64);
    EXPECT_EQ(makeTopology("torus3d-2x3x4")->numNodes(), 24);
    EXPECT_EQ(makeTopology("dragonfly-5:2")->numNodes(), 40);
    EXPECT_EXIT(makeTopology("torus3d-4x4"),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(makeTopology("dragonfly-1:2"),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace multitree::topo
