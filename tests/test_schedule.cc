/**
 * @file
 * Unit tests for the schedule IR, validator and functional executor,
 * exercised through hand-built schedules with planted defects.
 */

#include <gtest/gtest.h>

#include "coll/functional.hh"
#include "coll/schedule.hh"
#include "coll/validate.hh"
#include "topo/grid.hh"

namespace multitree::coll {
namespace {

/** A correct 2-node schedule: node 1 reduces to 0, 0 gathers to 1. */
Schedule
twoNodeSchedule()
{
    Schedule s;
    s.algorithm = "hand";
    s.num_nodes = 2;
    ChunkFlow f;
    f.flow_id = 0;
    f.root = 0;
    f.fraction = 1.0;
    f.reduce.push_back(ScheduledEdge{1, 0, 1, {}});
    f.gather.push_back(ScheduledEdge{0, 1, 2, {}});
    s.flows.push_back(f);
    s.assignBytes(64);
    return s;
}

TEST(Schedule, AssignBytesTilesPayload)
{
    Schedule s;
    s.num_nodes = 3;
    for (int i = 0; i < 3; ++i) {
        ChunkFlow f;
        f.flow_id = i;
        f.root = i;
        f.fraction = 1.0 / 3.0;
        s.flows.push_back(f);
    }
    s.assignBytes(40); // 10 elements over 3 flows: 4+3+3
    EXPECT_EQ(s.flows[0].bytes + s.flows[1].bytes + s.flows[2].bytes,
              40u);
    for (const auto &f : s.flows)
        EXPECT_EQ(f.bytes % 4, 0u);
    EXPECT_EQ(s.flows[0].bytes, 16u);
}

TEST(Schedule, StepAccounting)
{
    auto s = twoNodeSchedule();
    EXPECT_EQ(s.totalSteps(), 2);
    EXPECT_EQ(s.reduceSteps(), 1);
    auto est = s.stepFlitEstimates();
    ASSERT_EQ(est.size(), 2u);
    EXPECT_EQ(est[0], 4u); // 64 bytes = 4 flits
}

TEST(Validate, AcceptsCorrectSchedule)
{
    topo::Mesh2D m(2, 1);
    auto s = twoNodeSchedule();
    auto r = validateSchedule(s, m);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(validateContentionFree(s, m).ok);
}

TEST(Validate, RejectsRootSendingInReduce)
{
    topo::Mesh2D m(2, 1);
    auto s = twoNodeSchedule();
    s.flows[0].reduce.push_back(ScheduledEdge{0, 1, 2, {}});
    EXPECT_FALSE(validateSchedule(s, m).ok);
}

TEST(Validate, RejectsMissingContribution)
{
    topo::Mesh2D m(3, 1);
    Schedule s;
    s.num_nodes = 3;
    ChunkFlow f;
    f.flow_id = 0;
    f.root = 0;
    f.fraction = 1.0;
    f.reduce.push_back(ScheduledEdge{1, 0, 1, {}});
    // node 2 never contributes
    f.gather.push_back(ScheduledEdge{0, 1, 2, {}});
    f.gather.push_back(ScheduledEdge{0, 2, 2, {}});
    s.flows.push_back(f);
    s.assignBytes(64);
    auto r = validateSchedule(s, m);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("never contributes"), std::string::npos);
}

TEST(Validate, RejectsCausalityViolation)
{
    topo::Mesh2D m(3, 1);
    Schedule s;
    s.num_nodes = 3;
    ChunkFlow f;
    f.flow_id = 0;
    f.root = 0;
    f.fraction = 1.0;
    // 2 -> 1 at step 2 but 1 -> 0 already at step 1: node 1 forwards
    // before its child arrived.
    f.reduce.push_back(ScheduledEdge{2, 1, 2, {}});
    f.reduce.push_back(ScheduledEdge{1, 0, 1, {}});
    f.gather.push_back(ScheduledEdge{0, 1, 3, {}});
    f.gather.push_back(ScheduledEdge{1, 2, 4, {}});
    s.flows.push_back(f);
    s.assignBytes(64);
    EXPECT_FALSE(validateSchedule(s, m).ok);
}

TEST(Validate, RejectsGatherBeforeRootReady)
{
    topo::Mesh2D m(2, 1);
    auto s = twoNodeSchedule();
    s.flows[0].gather[0].step = 1; // same step as the reduce arrival
    EXPECT_FALSE(validateSchedule(s, m).ok);
}

TEST(Validate, RejectsBrokenExplicitRoute)
{
    topo::Mesh2D m(2, 1);
    auto s = twoNodeSchedule();
    // Channel 0 is 0 -> 1; as a route for edge 1 -> 0 it is backwards.
    s.flows[0].reduce[0].route = {0};
    EXPECT_FALSE(validateSchedule(s, m).ok);
}

TEST(Validate, FlagsCrossFlowChannelClash)
{
    topo::Mesh2D m(2, 1);
    Schedule s;
    s.num_nodes = 2;
    for (int i = 0; i < 2; ++i) {
        ChunkFlow f;
        f.flow_id = i;
        f.root = 0;
        f.fraction = 0.5;
        f.reduce.push_back(ScheduledEdge{1, 0, 1, {}});
        f.gather.push_back(ScheduledEdge{0, 1, 2, {}});
        s.flows.push_back(f);
    }
    s.assignBytes(64);
    EXPECT_TRUE(validateSchedule(s, m).ok);
    // Same endpoints: aggregation, not contention.
    EXPECT_TRUE(validateContentionFree(s, m).ok);

    // Now force flow 1 through the same channel with different
    // endpoints via an explicit route in a 1x3 mesh.
    topo::Mesh2D line(3, 1);
    Schedule s2;
    s2.num_nodes = 3;
    ChunkFlow a;
    a.flow_id = 0;
    a.root = 2;
    a.fraction = 0.5;
    a.reduce.push_back(ScheduledEdge{0, 1, 1, {}});
    a.reduce.push_back(ScheduledEdge{1, 2, 2, {}});
    a.gather.push_back(ScheduledEdge{2, 1, 3, {}});
    a.gather.push_back(ScheduledEdge{1, 0, 4, {}});
    ChunkFlow b = a;
    b.flow_id = 1;
    // Flow b's first hop 0->2 crosses the 0->1 channel at step 1 too,
    // with different endpoints: contention.
    b.reduce.clear();
    b.reduce.push_back(ScheduledEdge{0, 2, 1, {}});
    b.reduce.push_back(ScheduledEdge{1, 2, 2, {}});
    b.gather.clear();
    b.gather.push_back(ScheduledEdge{2, 1, 3, {}});
    b.gather.push_back(ScheduledEdge{1, 0, 4, {}});
    s2.flows.push_back(a);
    s2.flows.push_back(b);
    s2.assignBytes(64);
    EXPECT_FALSE(validateContentionFree(s2, line).ok);
}

TEST(Functional, TwoNodeSumsCorrectly)
{
    auto s = twoNodeSchedule();
    std::vector<std::vector<float>> in = {
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
        {16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}};
    auto out = runFunctional(s, in);
    for (int v = 0; v < 2; ++v) {
        for (float x : out[static_cast<std::size_t>(v)])
            EXPECT_FLOAT_EQ(x, 17.0f);
    }
}

TEST(Functional, OracleDetectsWrongTree)
{
    // Node 2's contribution is dropped: the oracle must notice.
    Schedule s;
    s.num_nodes = 3;
    ChunkFlow f;
    f.flow_id = 0;
    f.root = 0;
    f.fraction = 1.0;
    f.reduce.push_back(ScheduledEdge{1, 0, 1, {}});
    f.reduce.push_back(ScheduledEdge{2, 1, 2, {}}); // arrives too late
    f.gather.push_back(ScheduledEdge{0, 1, 3, {}});
    f.gather.push_back(ScheduledEdge{0, 2, 3, {}});
    s.flows.push_back(f);
    s.assignBytes(64);
    EXPECT_FALSE(checkAllReduceCorrect(s, 16));
}

TEST(Functional, OracleDetectsPrematureGatherForward)
{
    // Node 1 forwards to node 2 at the same step it receives.
    Schedule s;
    s.num_nodes = 3;
    ChunkFlow f;
    f.flow_id = 0;
    f.root = 0;
    f.fraction = 1.0;
    f.reduce.push_back(ScheduledEdge{1, 0, 1, {}});
    f.reduce.push_back(ScheduledEdge{2, 0, 1, {}});
    f.gather.push_back(ScheduledEdge{0, 1, 2, {}});
    f.gather.push_back(ScheduledEdge{1, 2, 2, {}}); // premature
    s.flows.push_back(f);
    s.assignBytes(64);
    EXPECT_FALSE(checkAllReduceCorrect(s, 16));
}

} // namespace
} // namespace multitree::coll
