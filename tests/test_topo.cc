/**
 * @file
 * Unit tests for the topology library: grids, fat tree, bigraph,
 * routing and ring embeddings.
 */

#include <gtest/gtest.h>

#include <set>

#include "topo/bigraph.hh"
#include "topo/factory.hh"
#include "topo/fattree.hh"
#include "topo/grid.hh"

namespace multitree::topo {
namespace {

/** Follow a channel route and return the endpoint vertex. */
int
walkRoute(const Topology &t, int src, const std::vector<int> &route)
{
    int cur = src;
    for (int cid : route) {
        EXPECT_EQ(t.channel(cid).src, cur) << "route discontinuity";
        cur = t.channel(cid).dst;
    }
    return cur;
}

TEST(Torus, CountsAndDegree)
{
    Torus2D t(4, 4);
    EXPECT_EQ(t.numNodes(), 16);
    EXPECT_EQ(t.numVertices(), 16);
    // 2 dims x 16 nodes bidirectional = 64 directed channels; the
    // paper's 25%-utilization example counts exactly these.
    EXPECT_EQ(t.numChannels(), 64);
    for (int v = 0; v < 16; ++v)
        EXPECT_EQ(t.outChannels(v).size(), 4u);
}

TEST(Mesh, CountsAndDegree)
{
    Mesh2D m(4, 4);
    EXPECT_EQ(m.numChannels(), 2 * 24); // 24 bidirectional links
    EXPECT_EQ(m.outChannels(m.nodeAt(0, 0)).size(), 2u);
    EXPECT_EQ(m.outChannels(m.nodeAt(1, 0)).size(), 3u);
    EXPECT_EQ(m.outChannels(m.nodeAt(1, 1)).size(), 4u);
}

TEST(Torus, Width2HasNoDuplicateLinks)
{
    Torus2D t(2, 2);
    // A 2x2 torus degenerates to a 2x2 mesh: 4 links, 8 channels.
    EXPECT_EQ(t.numChannels(), 8);
}

TEST(Grid, PreferredNeighborsYFirst)
{
    Mesh2D m(2, 2);
    // Node 0 at (0,0): Y+ neighbor is node 2, then X+ neighbor 1.
    auto nb = m.preferredNeighbors(0);
    ASSERT_EQ(nb.size(), 2u);
    EXPECT_EQ(nb[0], 2);
    EXPECT_EQ(nb[1], 1);
    // Node 3 at (1,1): Y- is 1, X- is 2.
    nb = m.preferredNeighbors(3);
    ASSERT_EQ(nb.size(), 2u);
    EXPECT_EQ(nb[0], 1);
    EXPECT_EQ(nb[1], 2);
}

TEST(Grid, RouteReachesDestination)
{
    Torus2D t(4, 4);
    Mesh2D m(5, 3);
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b)
            EXPECT_EQ(walkRoute(t, a, t.route(a, b)), b);
    }
    for (int a = 0; a < m.numNodes(); ++a) {
        for (int b = 0; b < m.numNodes(); ++b)
            EXPECT_EQ(walkRoute(m, a, m.route(a, b)), b);
    }
}

TEST(Grid, TorusRouteTakesShortWrap)
{
    Torus2D t(8, 8);
    // (0,0) to (7,0): one hop through the wrap link.
    EXPECT_EQ(t.route(t.nodeAt(0, 0), t.nodeAt(7, 0)).size(), 1u);
    EXPECT_EQ(t.route(t.nodeAt(0, 0), t.nodeAt(4, 0)).size(), 4u);
    EXPECT_EQ(t.diameter(), 8);
}

TEST(Grid, MeshDiameter)
{
    Mesh2D m(4, 4);
    EXPECT_EQ(m.diameter(), 6);
}

TEST(Grid, SerpentineRingIsHamiltonianOneHopOnTorus)
{
    Torus2D t(4, 4);
    auto order = t.ringOrder();
    ASSERT_EQ(order.size(), 16u);
    std::set<int> uniq(order.begin(), order.end());
    EXPECT_EQ(uniq.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i) {
        int a = order[i];
        int b = order[(i + 1) % order.size()];
        EXPECT_EQ(t.route(a, b).size(), 1u)
            << "ring hop " << a << "->" << b << " is not one link";
    }
}

TEST(Grid, SerpentineRingOnMeshHasOneLongHop)
{
    Mesh2D m(4, 4);
    auto order = m.ringOrder();
    int long_hops = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        int a = order[i];
        int b = order[(i + 1) % order.size()];
        if (m.route(a, b).size() > 1)
            ++long_hops;
    }
    EXPECT_EQ(long_hops, 1); // only the closing edge
}

TEST(FatTree, Shape)
{
    FatTree2L ft(4, 4, 4);
    EXPECT_EQ(ft.numNodes(), 16);
    EXPECT_EQ(ft.numVertices(), 16 + 4 + 4);
    // 16 node links + 16 leaf-spine links, doubled for direction.
    EXPECT_EQ(ft.numChannels(), 2 * (16 + 16));
    EXPECT_EQ(ft.leafOf(0), 0);
    EXPECT_EQ(ft.leafOf(15), 3);
}

TEST(FatTree, RoutesUpDown)
{
    FatTree2L ft(4, 4, 4);
    // Same leaf: 2 hops through the shared switch.
    EXPECT_EQ(ft.route(0, 1).size(), 2u);
    // Cross leaf: 4 hops, up to a spine and back down.
    EXPECT_EQ(ft.route(0, 15).size(), 4u);
    for (int a = 0; a < ft.numNodes(); ++a) {
        for (int b = 0; b < ft.numNodes(); ++b) {
            if (a != b) {
                EXPECT_EQ(walkRoute(ft, a, ft.route(a, b)), b);
            }
        }
    }
}

TEST(BiGraph, Shape)
{
    BiGraph bg(4, 8);
    EXPECT_EQ(bg.numNodes(), 32);
    EXPECT_EQ(bg.nodesPerUpper(), 4);
    EXPECT_EQ(bg.nodesPerLower(), 2);
    EXPECT_EQ(bg.numVertices(), 32 + 12);
    // 32 node links + 32 switch-switch links.
    EXPECT_EQ(bg.numChannels(), 2 * (32 + 32));
    EXPECT_TRUE(bg.isUpperNode(0));
    EXPECT_FALSE(bg.isUpperNode(16));
}

TEST(BiGraph, CrossStagePairsTakeThreeHops)
{
    BiGraph bg(4, 8);
    // Upper node 0 to lower node 16: node-up-low-node.
    EXPECT_EQ(bg.route(0, 16).size(), 3u);
    // Same-switch pair: two hops.
    EXPECT_EQ(bg.route(0, 1).size(), 2u);
    // Same-stage different-switch: four hops via the other stage.
    EXPECT_EQ(bg.route(0, 4).size(), 4u);
    for (int a = 0; a < bg.numNodes(); ++a) {
        for (int b = 0; b < bg.numNodes(); ++b) {
            if (a != b) {
                EXPECT_EQ(walkRoute(bg, a, bg.route(a, b)), b);
            }
        }
    }
}

TEST(Topology, BfsRouteMatchesShortestOnGrid)
{
    Mesh2D m(4, 4);
    for (int a = 0; a < m.numNodes(); ++a) {
        for (int b = 0; b < m.numNodes(); ++b) {
            EXPECT_EQ(m.bfsRoute(a, b).size(), m.route(a, b).size());
        }
    }
}

TEST(Factory, BuildsAllSpecs)
{
    EXPECT_EQ(makeTopology("torus-4x4")->numNodes(), 16);
    EXPECT_EQ(makeTopology("mesh-8x8")->numNodes(), 64);
    EXPECT_EQ(makeTopology("fattree-16")->numNodes(), 16);
    EXPECT_EQ(makeTopology("fattree-64")->numNodes(), 64);
    EXPECT_EQ(makeTopology("fattree-2:3:2")->numNodes(), 6);
    EXPECT_EQ(makeTopology("bigraph-4x8")->numNodes(), 32);
    EXPECT_EQ(makeTopology("bigraph-4x16")->numNodes(), 64);
}

TEST(FactoryDeath, RejectsGarbage)
{
    EXPECT_EXIT(makeTopology("nonsense"), testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(makeTopology("torus-0x4"), testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace multitree::topo
