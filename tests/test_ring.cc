/**
 * @file
 * Unit tests for ring all-reduce schedules.
 */

#include <gtest/gtest.h>

#include "coll/functional.hh"
#include "coll/ring.hh"
#include "coll/validate.hh"
#include "topo/bigraph.hh"
#include "topo/fattree.hh"
#include "topo/grid.hh"

namespace multitree::coll {
namespace {

TEST(Ring, StepCountIsTwoNMinusTwo)
{
    topo::Torus2D t(4, 4);
    RingAllReduce ring;
    auto s = ring.build(t, 64 * 1024);
    EXPECT_EQ(s.totalSteps(), 2 * (16 - 1));
    EXPECT_EQ(s.reduceSteps(), 15);
    EXPECT_EQ(s.flows.size(), 16u);
    auto r = validateSchedule(s, t);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Ring, MatchesPaperWalkthrough)
{
    // §II-B: on 4 nodes, segment 0 goes 1->2, 2->3, 3->0 in reduce-
    // scatter and 0->1, 1->2, 2->3 in all-gather.
    topo::Mesh2D line(4, 1);
    RingAllReduce ring;
    auto s = ring.build(line, 1024);
    const auto &f0 = s.flows[0];
    EXPECT_EQ(f0.root, 0);
    ASSERT_EQ(f0.reduce.size(), 3u);
    EXPECT_EQ(f0.reduce[0].src, 1);
    EXPECT_EQ(f0.reduce[0].dst, 2);
    EXPECT_EQ(f0.reduce[1].src, 2);
    EXPECT_EQ(f0.reduce[1].dst, 3);
    EXPECT_EQ(f0.reduce[2].src, 3);
    EXPECT_EQ(f0.reduce[2].dst, 0);
    ASSERT_EQ(f0.gather.size(), 3u);
    EXPECT_EQ(f0.gather[0].src, 0);
    EXPECT_EQ(f0.gather[0].dst, 1);
}

TEST(Ring, ContentionFreeOnTorus)
{
    topo::Torus2D t(4, 4);
    RingAllReduce ring;
    auto s = ring.build(t, 64 * 1024);
    auto r = validateContentionFree(s, t);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Ring, Uses25PercentOfTorusChannels)
{
    topo::Torus2D t(4, 4);
    RingAllReduce ring;
    auto s = ring.build(t, 16 * 1024);
    // Collect distinct channels touched by any edge.
    std::set<int> used;
    for (const auto &f : s.flows) {
        for (const auto &e : f.reduce) {
            for (int cid : t.route(e.src, e.dst))
                used.insert(cid);
        }
    }
    // The paper's motivating number: a unidirectional Hamiltonian
    // ring touches 16 of the 64 directed channels of a 4x4 torus.
    EXPECT_EQ(used.size(), 16u);
    EXPECT_EQ(t.numChannels(), 64);
}

TEST(Ring, FunctionallyCorrectEverywhere)
{
    RingAllReduce ring;
    topo::Torus2D t(4, 4);
    topo::Mesh2D m(3, 3);
    topo::FatTree2L ft(4, 4, 4);
    topo::BiGraph bg(4, 8);
    for (const topo::Topology *topo :
         {static_cast<const topo::Topology *>(&t),
          static_cast<const topo::Topology *>(&m),
          static_cast<const topo::Topology *>(&ft),
          static_cast<const topo::Topology *>(&bg)}) {
        auto s = ring.build(*topo, 4096);
        auto r = validateSchedule(s, *topo);
        EXPECT_TRUE(r.ok) << topo->name() << ": " << r.error;
        EXPECT_TRUE(checkAllReduceCorrect(s, 1024)) << topo->name();
    }
}

TEST(Ring, BytesBalancedAcrossFlows)
{
    topo::Torus2D t(4, 4);
    RingAllReduce ring;
    auto s = ring.build(t, 1 * 1024 * 1024);
    std::uint64_t lo = UINT64_MAX, hi = 0, sum = 0;
    for (const auto &f : s.flows) {
        lo = std::min(lo, f.bytes);
        hi = std::max(hi, f.bytes);
        sum += f.bytes;
    }
    EXPECT_EQ(sum, 1024u * 1024u);
    EXPECT_LE(hi - lo, 4u);
}

} // namespace
} // namespace multitree::coll
