/**
 * @file
 * Unit tests for the MultiTree algorithm, including an exact
 * reproduction of the paper's 2x2-Mesh worked example (Figs. 3 and 5).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "coll/functional.hh"
#include "coll/validate.hh"
#include "core/multitree.hh"
#include "topo/bigraph.hh"
#include "topo/factory.hh"
#include "topo/fattree.hh"
#include "topo/grid.hh"

namespace multitree::core {
namespace {

using coll::Schedule;

/** Find the reduce edge of @p flow sent by node @p src. */
const coll::ScheduledEdge *
reduceEdgeFrom(const Schedule &s, int flow, int src)
{
    for (const auto &e : s.flows[static_cast<std::size_t>(flow)].reduce) {
        if (e.src == src)
            return &e;
    }
    return nullptr;
}

TEST(MultiTree, Fig3And5WorkedExample)
{
    // 2x2 Mesh: nodes 0,1 on the top row, 2,3 below. The paper's
    // schedule tables (Fig. 5) pin down every tree:
    //   tree 0: gather edges 0->1 and 0->2 at step 1, 2->3 at step 2
    //   tree 1: 1->3 and 1->0 at step 1, 3->2 at step 2
    //   tree 2: 2->0 at step 1, 0->1 at step 2
    //   tree 3: 3->1 at step 1, 1->0 at step 2
    // With tot_t = 2 the reduce steps are (3 - gather step).
    topo::Mesh2D m(2, 2);
    MultiTreeAllReduce mt;
    auto s = mt.build(m, 4096);
    ASSERT_EQ(s.flows.size(), 4u);

    // Accelerator 0's table rows from Fig. 5.
    auto *e = reduceEdgeFrom(s, 3, 0); // Reduce flow 3 parent 1 step 1
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->dst, 1);
    EXPECT_EQ(e->step, 1);
    e = reduceEdgeFrom(s, 1, 0); // Reduce flow 1 parent 1 step 2
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->dst, 1);
    EXPECT_EQ(e->step, 2);
    e = reduceEdgeFrom(s, 2, 0); // Reduce flow 2 parent 2 step 2
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->dst, 2);
    EXPECT_EQ(e->step, 2);

    // Accelerator 0 as tree-0 root gathers to children 1 and 2 at
    // step 3 (= tot_t + 1).
    const auto &f0 = s.flows[0];
    std::set<std::pair<int, int>> gathers;
    for (const auto &g : f0.gather)
        gathers.insert({g.src == 0 ? g.dst : -1, g.step});
    EXPECT_TRUE(gathers.count({1, 3}));
    EXPECT_TRUE(gathers.count({2, 3}));

    // Tree 2's second-level gather 0->1 happens at step 4.
    bool found = false;
    for (const auto &g : s.flows[2].gather)
        found |= g.src == 0 && g.dst == 1 && g.step == 4;
    EXPECT_TRUE(found);
}

TEST(MultiTree, ValidAndCorrectOnAllEvaluatedTopologies)
{
    MultiTreeAllReduce mt;
    for (const char *spec :
         {"torus-4x4", "torus-8x8", "mesh-4x4", "mesh-8x8",
          "fattree-16", "fattree-64", "bigraph-4x8", "bigraph-4x16"}) {
        auto topo = topo::makeTopology(spec);
        auto s = mt.build(*topo, 16 * 1024);
        auto r = coll::validateSchedule(s, *topo);
        ASSERT_TRUE(r.ok) << spec << ": " << r.error;
        auto c = coll::validateContentionFree(s, *topo);
        EXPECT_TRUE(c.ok) << spec << ": " << c.error;
        EXPECT_TRUE(coll::checkAllReduceCorrect(s, 4096)) << spec;
    }
}

TEST(MultiTree, EveryEdgeIsSingleHopOnDirectNetworks)
{
    MultiTreeAllReduce mt;
    topo::Torus2D t(8, 8);
    auto s = mt.build(t, 16 * 1024);
    for (const auto &f : s.flows) {
        for (const auto &e : f.reduce) {
            ASSERT_EQ(e.route.size(), 1u);
            EXPECT_EQ(t.channel(e.route[0]).src, e.src);
            EXPECT_EQ(t.channel(e.route[0]).dst, e.dst);
        }
    }
}

TEST(MultiTree, FewerStepsThanRingOnTorus)
{
    MultiTreeAllReduce mt;
    topo::Torus2D t(8, 8);
    auto s = mt.build(t, 16 * 1024);
    // Ring needs 2 * 63 steps; MultiTree should be far below.
    EXPECT_LT(s.totalSteps(), 2 * 63 / 2);
    EXPECT_GE(s.totalSteps(),
              2 * t.diameter()); // cannot beat the diameter
}

TEST(MultiTree, PeakChannelLoadNearQuarterOfRing)
{
    // Full link utilization: MultiTree spreads ~2D total bytes over
    // all 4 channels per node, so its heaviest channel carries about
    // a quarter of Ring's.
    MultiTreeAllReduce mt;
    topo::Torus2D t(8, 8);
    std::uint64_t bytes = 4 * 1024 * 1024;
    auto mt_stats = mt.build(t, bytes).stats(t);
    EXPECT_GT(mt_stats.max_channel_bytes, 0);
    // ~2 * D / 4 with slack for imperfect balance.
    double d = static_cast<double>(bytes);
    EXPECT_LT(mt_stats.max_channel_bytes, 0.9 * d);
}

TEST(MultiTree, TreesAreBalanced)
{
    MultiTreeAllReduce mt;
    topo::Torus2D t(4, 4);
    auto s = mt.build(t, 16 * 1024);
    // Every tree spans all 16 nodes and has 15 edges; heights spread
    // by at most a couple of steps on a symmetric torus.
    int min_h = 1 << 30, max_h = 0;
    for (const auto &f : s.flows) {
        EXPECT_EQ(f.gather.size(), 15u);
        int h = 0;
        for (const auto &e : f.gather)
            h = std::max(h, e.step);
        min_h = std::min(min_h, h);
        max_h = std::max(max_h, h);
    }
    EXPECT_LE(max_h - min_h, 2);
}

TEST(MultiTree, IndirectEdgesCarryExplicitRoutes)
{
    MultiTreeAllReduce mt;
    topo::FatTree2L ft(4, 4, 4);
    auto s = mt.build(ft, 16 * 1024);
    int same_switch_hops = 0;
    for (const auto &f : s.flows) {
        for (const auto &e : f.gather) {
            ASSERT_GE(e.route.size(), 2u); // node-switch-...-node
            if (e.route.size() == 2)
                ++same_switch_hops;
        }
    }
    // MultiTree exploits same-switch one-hop locality (§VI-A).
    EXPECT_GT(same_switch_hops, 0);
}

TEST(MultiTree, NICapacityRespectedOnIndirectNetworks)
{
    // A node's single NIC uplink admits at most one child per step.
    MultiTreeAllReduce mt;
    topo::BiGraph bg(4, 8);
    auto s = mt.build(bg, 16 * 1024);
    std::map<std::pair<int, int>, int> sends; // (node, step) -> count
    for (const auto &f : s.flows) {
        for (const auto &e : f.gather)
            ++sends[{e.src, e.step}];
    }
    for (const auto &[key, count] : sends)
        EXPECT_LE(count, 1) << "node " << key.first << " step "
                            << key.second;
}

TEST(MultiTree, RootsCoverAllNodes)
{
    MultiTreeAllReduce mt;
    topo::Mesh2D m(4, 4);
    auto s = mt.build(m, 16 * 1024);
    std::set<int> roots;
    for (const auto &f : s.flows)
        roots.insert(f.root);
    EXPECT_EQ(roots.size(), 16u);
}

TEST(MultiTree, AsymmetricMeshTreesHaveDifferentHeights)
{
    // §III-B: "for networks like a 4x4 Mesh where the longest
    // distance from a source node varies depending on its position,
    // the trees are asymmetric with different heights."
    topo::Mesh2D m(4, 4);
    MultiTreeAllReduce mt;
    auto s = mt.build(m, 16 * 1024);
    std::set<int> heights;
    for (const auto &f : s.flows) {
        int h = 0;
        for (const auto &e : f.gather)
            h = std::max(h, e.step);
        heights.insert(h);
    }
    EXPECT_GT(heights.size(), 1u);
}

TEST(MultiTree, StepCountGoldenValues)
{
    // Packing quality snapshot: construction steps per phase against
    // each topology's structural lower bound (N-1 receives over the
    // per-node ejection-link count, and at least the diameter).
    // These document the allocator's quality; loosen only with a
    // justified packing change.
    struct Golden {
        const char *spec;
        int tot_t;
    };
    const Golden golden[] = {
        {"torus-4x4", 5},    // bound: max(15/4, 4) = 4
        {"torus-8x8", 17},   // bound: max(63/4, 8) = 16
        {"mesh-4x4", 8},     // bound >= 6 (diameter)
        {"mesh-8x8", 32},    // boundary links dominate
        {"fattree-16", 15},  // bound: 15 (one NIC downlink)
        {"fattree-64", 63},  // bound: 63
        {"bigraph-4x8", 32}, // bound: 31
        {"torus3d-4x4x4", 12}, // bound: ceil(63/6) = 11
    };
    MultiTreeAllReduce mt;
    for (const auto &g : golden) {
        auto topo = topo::makeTopology(g.spec);
        auto s = mt.build(*topo, 4096);
        EXPECT_EQ(s.reduceSteps(), g.tot_t) << g.spec;
    }
}

TEST(MultiTree, ConstructionIsDeterministic)
{
    topo::Torus2D t(4, 4);
    MultiTreeAllReduce mt;
    auto a = mt.build(t, 64 * 1024);
    auto b = mt.build(t, 64 * 1024);
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t i = 0; i < a.flows.size(); ++i) {
        ASSERT_EQ(a.flows[i].gather.size(),
                  b.flows[i].gather.size());
        for (std::size_t j = 0; j < a.flows[i].gather.size(); ++j) {
            EXPECT_EQ(a.flows[i].gather[j].src,
                      b.flows[i].gather[j].src);
            EXPECT_EQ(a.flows[i].gather[j].dst,
                      b.flows[i].gather[j].dst);
            EXPECT_EQ(a.flows[i].gather[j].step,
                      b.flows[i].gather[j].step);
        }
    }
}

TEST(MultiTree, LockstepFlagFollowsOptions)
{
    topo::Torus2D t(4, 4);
    MultiTreeAllReduce on;
    EXPECT_TRUE(on.build(t, 1024).lockstep);
    MultiTreeOptions opts;
    opts.lockstep = false;
    MultiTreeAllReduce off(opts);
    EXPECT_FALSE(off.build(t, 1024).lockstep);
}

TEST(MultiTree, DeepTreePriorityStillValid)
{
    MultiTreeOptions opts;
    opts.prioritize_deep_trees = true;
    MultiTreeAllReduce mt(opts);
    topo::Mesh2D m(4, 4);
    auto s = mt.build(m, 16 * 1024);
    auto r = coll::validateSchedule(s, m);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(coll::checkAllReduceCorrect(s, 4096));
}

} // namespace
} // namespace multitree::core
