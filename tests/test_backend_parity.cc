/**
 * @file
 * Backend stat-parity suite.
 *
 * Both transport backends charge their StatRegistry counters from
 * the same wireBreakdown() at injection time, so on a lossless run
 * the transport accounting — messages, payload/head flits and their
 * hop products — must agree exactly between the cycle-level
 * FlitNetwork and the analytic FlowNetwork even though their timing
 * differs. The scenarios mirror the bench_validation_flit_vs_flow
 * sweep: every algorithm family on the topology classes it supports.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "common/units.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

namespace multitree {
namespace {

struct Scenario {
    const char *algo;
    const char *topo;
};

class BackendParity : public ::testing::TestWithParam<Scenario>
{
};

TEST_P(BackendParity, TransportCountersAgree)
{
    const Scenario &sc = GetParam();
    const std::uint64_t bytes = 128 * KiB;

    runtime::RunResult results[2];
    const runtime::Backend backends[2] = {runtime::Backend::Flow,
                                          runtime::Backend::Flit};
    for (int i = 0; i < 2; ++i) {
        auto topo = topo::makeTopology(sc.topo);
        runtime::RunOptions opts;
        opts.backend = backends[i];
        runtime::Machine m(*topo, opts);
        results[i] = m.run(sc.algo, bytes);
    }

    const auto &flow = results[0];
    const auto &flit = results[1];
    EXPECT_EQ(flow.messages, flit.messages);
    EXPECT_EQ(flow.payload_flits, flit.payload_flits);
    EXPECT_EQ(flow.head_flits, flit.head_flits);
    EXPECT_EQ(flow.flit_hops, flit.flit_hops);
    EXPECT_EQ(flow.head_hops, flit.head_hops);
    EXPECT_GT(flow.messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, BackendParity,
    ::testing::Values(Scenario{"ring", "torus-4x4"},
                      Scenario{"multitree", "torus-4x4"},
                      Scenario{"ring2d", "torus-4x4"},
                      Scenario{"dbtree", "torus-4x4"},
                      Scenario{"multitree", "mesh-4x4"},
                      Scenario{"ring", "fattree-16"},
                      Scenario{"multitree", "fattree-16"},
                      Scenario{"hdrm", "bigraph-4x8"},
                      Scenario{"multitree", "bigraph-4x8"},
                      // Hierarchical fabrics: flat ring over the
                      // composed graph, composed collectives, and a
                      // 2-rail spine whose striping must not perturb
                      // the transport accounting (parallel links
                      // share endpoints, so hop counts agree however
                      // each backend's rail picks fall).
                      Scenario{"ring",
                               "hier:mesh-2x2+mesh-2x2,rails=2"},
                      Scenario{"hier:ring+ring",
                               "hier:mesh-2x2+mesh-2x2,rails=2"},
                      Scenario{"hier:multitree+dbtree",
                               "hier:torus-2x2+torus-2x2"}),
    [](const ::testing::TestParamInfo<Scenario> &info) {
        std::string name = std::string(info.param.algo) + "_"
                           + info.param.topo;
        for (char &c : name) {
            if (std::isalnum(static_cast<unsigned char>(c)) == 0)
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace multitree
