/**
 * @file
 * Integration tests for training-iteration timing (Fig. 11 shapes).
 */

#include <gtest/gtest.h>

#include "accel/model_zoo.hh"
#include "topo/factory.hh"
#include "train/trainer.hh"

namespace multitree::train {
namespace {

TEST(Trainer, BreakdownIsConsistent)
{
    auto topo = topo::makeTopology("torus-4x4");
    auto model = accel::makeResNet50();
    auto t = evaluateIteration(model, *topo, "ring");
    EXPECT_GT(t.fwd, 0u);
    EXPECT_GT(t.bwd, t.fwd);
    EXPECT_GT(t.allreduce, 0u);
    EXPECT_EQ(t.total_nonoverlap, t.fwd + t.bwd + t.allreduce);
    EXPECT_EQ(t.total_overlap, t.fwd + t.bwd + t.exposed_comm);
    EXPECT_EQ(t.overlap_hidden + t.exposed_comm, t.comm_layerwise);
}

TEST(Trainer, OverlapNeverSlowerThanNonOverlapForCNNs)
{
    auto topo = topo::makeTopology("torus-4x4");
    for (const char *name : {"resnet50", "googlenet"}) {
        auto model = accel::makeModel(name);
        auto t = evaluateIteration(model, *topo, "ring");
        // Layer-wise overlap hides most CNN communication.
        EXPECT_LT(t.exposed_comm, t.allreduce) << name;
        EXPECT_LT(t.total_overlap, t.total_nonoverlap) << name;
    }
}

TEST(Trainer, CommunicationDominantModelsStayCommBound)
{
    auto topo = topo::makeTopology("torus-4x4");
    for (const char *name : {"ncf", "transformer"}) {
        auto model = accel::makeModel(name);
        auto t = evaluateIteration(model, *topo, "ring");
        double comm_frac =
            static_cast<double>(t.allreduce)
            / static_cast<double>(t.total_nonoverlap);
        EXPECT_GT(comm_frac, 0.6) << name;
        // Even with overlap the bottleneck stays communication.
        EXPECT_GT(t.exposed_comm, t.fwd + t.bwd) << name;
    }
}

TEST(Trainer, MultiTreeCutsTrainingTime)
{
    auto topo = topo::makeTopology("torus-4x4");
    for (const char *name : {"resnet50", "ncf"}) {
        auto model = accel::makeModel(name);
        auto ring = evaluateIteration(model, *topo, "ring");
        auto mt = evaluateIteration(model, *topo, "multitree");
        EXPECT_LT(mt.allreduce, ring.allreduce) << name;
        EXPECT_LT(mt.total_nonoverlap, ring.total_nonoverlap) << name;
        EXPECT_LE(mt.total_overlap, ring.total_overlap) << name;
    }
}

TEST(Trainer, BucketingReducesSmallCollectiveOverhead)
{
    // Transformer has ~100 small per-layer gradients: per-layer
    // all-reduce pays the step latency each time, while 4 MiB
    // buckets amortize it. Bucketed overlap must not be slower.
    auto topo = topo::makeTopology("torus-4x4");
    auto model = accel::makeModel("transformer");
    train::TrainOptions layerwise;
    train::TrainOptions bucketed;
    bucketed.bucket_bytes = 4 * MiB;
    auto a = evaluateIteration(model, *topo, "multitree", layerwise);
    auto b = evaluateIteration(model, *topo, "multitree", bucketed);
    EXPECT_LT(b.comm_layerwise, a.comm_layerwise);
    // Total overlap trades amortized latency against a later comm
    // start; it must stay in the same ballpark.
    EXPECT_LT(static_cast<double>(b.total_overlap),
              1.05 * static_cast<double>(a.total_overlap));
    // Extreme bucketing (one bucket) degenerates to non-overlap
    // communication volume.
    train::TrainOptions one_bucket;
    one_bucket.bucket_bytes = UINT64_MAX;
    auto c = evaluateIteration(model, *topo, "multitree", one_bucket);
    EXPECT_NEAR(static_cast<double>(c.comm_layerwise),
                static_cast<double>(c.allreduce),
                0.02 * static_cast<double>(c.allreduce));
}

TEST(Trainer, DlrmIsCommunicationDominant)
{
    auto topo = topo::makeTopology("torus-4x4");
    auto model = accel::makeModel("dlrm");
    EXPECT_GT(model.totalParams(), 500'000'000u / 8); // ~64M+
    auto t = evaluateIteration(model, *topo, "ring");
    EXPECT_GT(static_cast<double>(t.allreduce) / t.total_nonoverlap,
              0.9);
}

TEST(Trainer, CommFractionSpreadMatchesPaperRange)
{
    // §VI-C: under RING, communication is 30-88% of iteration time
    // across the workload suite (8x8 torus). Check the spread exists:
    // some model below ~45%, some above ~75%.
    auto topo = topo::makeTopology("torus-4x4");
    double lo = 1.0, hi = 0.0;
    for (const auto &name : accel::modelNames()) {
        auto model = accel::makeModel(name);
        auto t = evaluateIteration(model, *topo, "ring");
        double frac = static_cast<double>(t.allreduce)
                      / static_cast<double>(t.total_nonoverlap);
        lo = std::min(lo, frac);
        hi = std::max(hi, frac);
    }
    EXPECT_LT(lo, 0.45);
    EXPECT_GT(hi, 0.75);
}

} // namespace
} // namespace multitree::train
