/**
 * @file
 * Observability-layer tests: exporter validity, sink overhead
 * contract, timelines and the metrics snapshot.
 *
 * The Perfetto golden test checks the three properties a trace
 * viewer actually needs — the JSON parses, every event is a complete
 * ("X") span with ts+dur or an instant/metadata record, and
 * timestamps are monotone within each (pid, tid) track — using a
 * minimal in-test JSON parser rather than an external dependency.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "coll/algorithm.hh"
#include "coll/hierarchical.hh"
#include "fault/fault.hh"
#include "net/energy.hh"
#include "ni/nic_engine.hh"
#include "obs/heatmap.hh"
#include "obs/perfetto.hh"
#include "obs/profile.hh"
#include "obs/results.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "runtime/machine.hh"
#include "runtime/metrics.hh"
#include "topo/factory.hh"
#include "topo/hierarchical.hh"

namespace multitree {
namespace {

using obs::EventKind;

// ---------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, bools).
// ---------------------------------------------------------------

struct JsonValue {
    enum Kind { Null, Bool, Num, Str, Arr, Obj };
    Kind kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    bool has(const std::string &key) const
    {
        return kind == Obj && obj.count(key) > 0;
    }
    const JsonValue &
    at(const std::string &key) const
    {
        static const JsonValue none;
        auto it = obj.find(key);
        return it == obj.end() ? none : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse(JsonValue &out)
    {
        bool ok = value(out);
        skipWs();
        return ok && pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size()
               && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind = JsonValue::Str;
            return string(out.str);
        }
        if (c == 't') {
            out.kind = JsonValue::Bool;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Bool;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Null;
            return literal("null");
        }
        return number(out);
    }

    bool
    number(JsonValue &out)
    {
        char *end = nullptr;
        out.num = std::strtod(s_.c_str() + pos_, &end);
        if (end == s_.c_str() + pos_)
            return false;
        out.kind = JsonValue::Num;
        pos_ = static_cast<std::size_t>(end - s_.c_str());
        return true;
    }

    bool
    string(std::string &out)
    {
        if (s_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                char esc = s_[pos_++];
                switch (esc) {
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 'u':
                    pos_ += 4; // tests never inspect the code point
                    out.push_back('?');
                    break;
                  default:
                    out.push_back(esc);
                }
            } else {
                out.push_back(c);
            }
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Obj;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue val;
            if (!value(val))
                return false;
            out.obj.emplace(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Arr;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue val;
            if (!value(val))
                return false;
            out.arr.push_back(std::move(val));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------

runtime::RunResult
tracedRun(const std::string &topo_spec, runtime::Backend backend,
          std::uint64_t bytes, obs::Trace &trace,
          obs::FabricInfo *fabric = nullptr)
{
    auto topo = topo::makeTopology(topo_spec);
    runtime::RunOptions opts;
    opts.backend = backend;
    opts.sink = &trace;
    runtime::Machine m(*topo, opts);
    if (fabric != nullptr)
        *fabric = m.fabricInfo();
    return m.run("multitree", bytes);
}

/** Validate one exported trace per the golden-test contract. */
void
validatePerfetto(const std::string &json, int expect_nodes)
{
    JsonValue root;
    ASSERT_TRUE(JsonParser(json).parse(root)) << json.substr(0, 400);
    ASSERT_EQ(root.kind, JsonValue::Obj);
    const JsonValue &events = root.at("traceEvents");
    ASSERT_EQ(events.kind, JsonValue::Arr);
    ASSERT_FALSE(events.arr.empty());

    std::map<std::pair<int, int>, double> last_ts;
    std::set<int> node_tids;
    bool saw_link_track = false;
    for (const JsonValue &ev : events.arr) {
        ASSERT_EQ(ev.kind, JsonValue::Obj);
        ASSERT_TRUE(ev.has("ph"));
        const std::string &ph = ev.at("ph").str;
        ASSERT_TRUE(ev.has("pid"));
        ASSERT_TRUE(ev.has("tid"));
        const int pid = static_cast<int>(ev.at("pid").num);
        const int tid = static_cast<int>(ev.at("tid").num);
        if (ph == "M")
            continue; // metadata carries no timestamp
        // Complete spans need ts+dur; instants need ts. No other
        // phases (B/E pairs would need balancing) are emitted.
        ASSERT_TRUE(ph == "X" || ph == "i") << "phase " << ph;
        ASSERT_TRUE(ev.has("ts"));
        ASSERT_EQ(ev.at("ts").kind, JsonValue::Num);
        if (ph == "X") {
            ASSERT_TRUE(ev.has("dur"));
            ASSERT_EQ(ev.at("dur").kind, JsonValue::Num);
            ASSERT_GE(ev.at("dur").num, 0.0);
        }
        const double ts = ev.at("ts").num;
        auto key = std::make_pair(pid, tid);
        auto it = last_ts.find(key);
        if (it != last_ts.end())
            ASSERT_GE(ts, it->second)
                << "track (" << pid << "," << tid
                << ") timestamps not monotone";
        last_ts[key] = ts;
        if (pid == 2)
            node_tids.insert(tid);
        if (pid == 3)
            saw_link_track = true;
    }
    // Every node produced NIC-track events, and some link carried
    // traffic.
    EXPECT_EQ(static_cast<int>(node_tids.size()), expect_nodes);
    EXPECT_TRUE(saw_link_track);
}

// ---------------------------------------------------------------
// Golden exporter tests (2x2 mesh MultiTree, both backends)
// ---------------------------------------------------------------

TEST(Perfetto, FlowBackendExportsValidTrace)
{
    obs::Trace trace;
    obs::FabricInfo fabric;
    tracedRun("mesh-2x2", runtime::Backend::Flow, 64 * KiB, trace,
              &fabric);
    validatePerfetto(obs::perfettoTraceJson(fabric, trace.events()),
                     4);
}

TEST(Perfetto, FlitBackendExportsValidTrace)
{
    obs::Trace trace;
    obs::FabricInfo fabric;
    tracedRun("mesh-2x2", runtime::Backend::Flit, 64 * KiB, trace,
              &fabric);
    validatePerfetto(obs::perfettoTraceJson(fabric, trace.events()),
                     4);
}

TEST(Perfetto, EmptyTraceStillParses)
{
    obs::FabricInfo fabric;
    fabric.name = "empty";
    fabric.num_nodes = 2;
    fabric.links.push_back({0, 0, 1});
    JsonValue root;
    ASSERT_TRUE(
        JsonParser(obs::perfettoTraceJson(fabric, {})).parse(root));
    // Metadata only: process/thread names for runs, nodes, links.
    ASSERT_EQ(root.at("traceEvents").kind, JsonValue::Arr);
    EXPECT_FALSE(root.at("traceEvents").arr.empty());
}

// ---------------------------------------------------------------
// Overhead contract: a sink never changes simulated timing
// ---------------------------------------------------------------

void
expectSinkInvariance(runtime::Backend backend)
{
    auto topo = topo::makeTopology("mesh-2x2");

    runtime::RunOptions plain;
    plain.backend = backend;
    runtime::Machine m_plain(*topo, plain);
    const auto base = m_plain.run("multitree", 256 * KiB);

    obs::Trace trace;
    runtime::RunOptions traced = plain;
    traced.sink = &trace;
    runtime::Machine m_traced(*topo, traced);
    const auto obs_res = m_traced.run("multitree", 256 * KiB);

    EXPECT_EQ(base.time, obs_res.time);
    EXPECT_EQ(base.messages, obs_res.messages);
    EXPECT_EQ(base.payload_flits, obs_res.payload_flits);
    EXPECT_EQ(base.head_flits, obs_res.head_flits);
    EXPECT_EQ(base.flit_hops, obs_res.flit_hops);
    EXPECT_EQ(base.nop_windows, obs_res.nop_windows);
    EXPECT_FALSE(trace.events().empty());
}

TEST(TraceSink, FlowRunIsTickIdenticalWithAndWithoutSink)
{
    expectSinkInvariance(runtime::Backend::Flow);
}

TEST(TraceSink, FlitRunIsTickIdenticalWithAndWithoutSink)
{
    expectSinkInvariance(runtime::Backend::Flit);
}

// ---------------------------------------------------------------
// Event accounting
// ---------------------------------------------------------------

TEST(TraceSink, LosslessRunBalancesInjectAndDeliver)
{
    obs::Trace trace;
    const auto res = tracedRun("mesh-2x2", runtime::Backend::Flow,
                               64 * KiB, trace);
    EXPECT_EQ(trace.countOf(EventKind::MsgInject), res.messages);
    EXPECT_EQ(trace.countOf(EventKind::MsgDeliver), res.messages);
    EXPECT_EQ(trace.countOf(EventKind::MsgDrop), 0u);
    EXPECT_EQ(trace.countOf(EventKind::MsgRetransmit), 0u);
    EXPECT_EQ(trace.countOf(EventKind::RunBegin), 1u);
    EXPECT_EQ(trace.countOf(EventKind::RunEnd), 1u);
    // The RunEnd span carries the collective's duration.
    for (const auto &ev : trace.events()) {
        if (ev.kind == EventKind::RunEnd)
            EXPECT_EQ(ev.duration, res.time);
    }
}

TEST(TraceSink, TeesIntoLegacyTraceVector)
{
    auto topo = topo::makeTopology("mesh-2x2");
    obs::Trace trace;
    std::vector<runtime::TraceRecord> legacy;
    runtime::RunOptions opts;
    opts.sink = &trace;
    opts.trace = &legacy;
    runtime::Machine m(*topo, opts);
    const auto res = m.run("multitree", 64 * KiB);
    // Every delivered data message appears in both views.
    EXPECT_EQ(legacy.size(), res.messages);
    EXPECT_EQ(trace.countOf(EventKind::MsgDeliver), res.messages);
    EXPECT_EQ(legacy.back().delivered, res.time);
    for (const auto &rec : legacy) {
        EXPECT_EQ(rec.attempt, 0u);
        EXPECT_FALSE(rec.corrupted);
    }
}

// ---------------------------------------------------------------
// Link timelines
// ---------------------------------------------------------------

TEST(Timeline, BusyFractionsAreSane)
{
    obs::Trace trace;
    obs::FabricInfo fabric;
    const auto res = tracedRun("mesh-2x2", runtime::Backend::Flow,
                               256 * KiB, trace, &fabric);
    const Tick window = std::max<Tick>(1, res.time / 32);
    const auto tl =
        obs::buildLinkTimeline(fabric, trace.events(), window);
    ASSERT_GT(tl.num_windows, 0);
    ASSERT_EQ(tl.busy.size(), fabric.links.size());
    double total = 0;
    for (const auto &row : tl.busy) {
        ASSERT_EQ(static_cast<int>(row.size()), tl.num_windows);
        for (double b : row) {
            EXPECT_GE(b, 0.0);
            EXPECT_LE(b, 1.0);
            total += b;
        }
    }
    EXPECT_GT(total, 0.0); // some link carried traffic

    std::ostringstream text;
    obs::renderTimelineText(text, fabric, tl);
    EXPECT_NE(text.str().find("link utilization"),
              std::string::npos);
    std::ostringstream csv;
    obs::renderTimelineCsv(csv, fabric, tl);
    EXPECT_EQ(csv.str().rfind("channel,src,dst,window_start,busy",
                              0),
              0u);
}

TEST(Timeline, SpansClipAcrossWindows)
{
    obs::FabricInfo fabric;
    fabric.name = "synthetic";
    fabric.num_nodes = 2;
    fabric.links.push_back({0, 0, 1});
    std::vector<obs::TraceEvent> events(1);
    events[0].kind = EventKind::LinkBusy;
    events[0].channel = 0;
    events[0].tick = 5;
    events[0].duration = 10; // covers [5, 15) over 10-tick windows
    const auto tl = obs::buildLinkTimeline(fabric, events, 10);
    ASSERT_EQ(tl.num_windows, 2);
    EXPECT_DOUBLE_EQ(tl.busy[0][0], 0.5);
    EXPECT_DOUBLE_EQ(tl.busy[0][1], 0.5);
}

// ---------------------------------------------------------------
// Metrics snapshot
// ---------------------------------------------------------------

TEST(Metrics, SnapshotIsValidJson)
{
    auto topo = topo::makeTopology("mesh-2x2");
    runtime::RunOptions opts;
    runtime::Machine m(*topo, opts);
    const auto res = m.run("multitree", 64 * KiB);
    const std::string json = runtime::metricsJson(m, res);
    JsonValue root;
    ASSERT_TRUE(JsonParser(json).parse(root)) << json;
    EXPECT_EQ(root.at("topology").str, topo->name());
    EXPECT_EQ(root.at("backend").str, "flow");
    EXPECT_EQ(static_cast<int>(root.at("nodes").num), 4);
    EXPECT_EQ(root.at("result").at("time").num,
              static_cast<double>(res.time));
    EXPECT_TRUE(root.at("network_stats").has("messages"));
    EXPECT_FALSE(root.has("report"));
}

TEST(Metrics, ReportSectionSerializes)
{
    auto topo = topo::makeTopology("mesh-2x2");
    runtime::RunOptions opts;
    opts.reliability.enabled = true;
    runtime::Machine m(*topo, opts);
    const auto rep = m.tryRun("multitree", 64 * KiB);
    ASSERT_TRUE(rep.ok);
    const std::string json =
        runtime::metricsJson(m, rep.result, &rep);
    JsonValue root;
    ASSERT_TRUE(JsonParser(json).parse(root)) << json;
    ASSERT_TRUE(root.has("report"));
    EXPECT_TRUE(root.at("report").at("ok").b);
    EXPECT_GT(root.at("report").at("acks").num, 0.0);
}

TEST(Metrics, EnergySectionMatchesHopCounters)
{
    auto topo = topo::makeTopology("mesh-2x2");
    runtime::RunOptions opts;
    runtime::Machine m(*topo, opts);
    const auto res = m.run("multitree", 64 * KiB);
    JsonValue root;
    ASSERT_TRUE(JsonParser(runtime::metricsJson(m, res)).parse(root));
    ASSERT_TRUE(root.has("energy"));
    const auto expect =
        net::computeEnergy(res.flit_hops, res.head_hops);
    EXPECT_NEAR(root.at("energy").at("datapath_nj").num,
                expect.datapath_nj, 1e-6);
    EXPECT_NEAR(root.at("energy").at("control_nj").num,
                expect.control_nj, 1e-6);
    EXPECT_NEAR(root.at("energy").at("total_nj").num,
                expect.total_nj(), 1e-6);
}

// ---------------------------------------------------------------
// Latency-attribution profiler
// ---------------------------------------------------------------

/** Run @p algo with an attached profiler on a 4x4 torus. */
runtime::RunResult
profiledRun(const std::string &algo, runtime::Backend backend,
            obs::Profiler &prof, std::uint32_t reduction_bw = 0,
            obs::FabricInfo *fabric = nullptr)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions opts;
    opts.backend = backend;
    opts.profiler = &prof;
    opts.ni_reduction_bw = reduction_bw;
    runtime::Machine m(*topo, opts);
    if (fabric != nullptr)
        *fabric = m.fabricInfo();
    return m.run(algo, 64 * KiB);
}

void
expectProfilerInvariance(runtime::Backend backend)
{
    auto topo = topo::makeTopology("torus-4x4");

    runtime::RunOptions plain;
    plain.backend = backend;
    runtime::Machine m_plain(*topo, plain);
    const auto base = m_plain.run("multitree", 256 * KiB);

    obs::Profiler prof;
    runtime::RunOptions profiled = plain;
    profiled.profiler = &prof;
    runtime::Machine m_prof(*topo, profiled);
    const auto res = m_prof.run("multitree", 256 * KiB);

    EXPECT_EQ(base.time, res.time);
    EXPECT_EQ(base.messages, res.messages);
    EXPECT_EQ(base.payload_flits, res.payload_flits);
    EXPECT_EQ(base.head_flits, res.head_flits);
    EXPECT_EQ(base.flit_hops, res.flit_hops);
    EXPECT_EQ(base.nop_windows, res.nop_windows);
    EXPECT_EQ(prof.records().size(), res.messages);
}

TEST(Profiler, FlowRunIsTickIdenticalWithAndWithoutProfiler)
{
    expectProfilerInvariance(runtime::Backend::Flow);
}

TEST(Profiler, FlitRunIsTickIdenticalWithAndWithoutProfiler)
{
    expectProfilerInvariance(runtime::Backend::Flit);
}

TEST(Profiler, PerMessageCategoriesSumExactly)
{
    for (auto backend :
         {runtime::Backend::Flow, runtime::Backend::Flit}) {
        obs::Profiler prof;
        const auto res = profiledRun("multitree", backend, prof);
        ASSERT_TRUE(prof.runComplete());
        EXPECT_EQ(prof.runEnd() - prof.runBegin(), res.time);
        for (const auto &r : prof.records()) {
            ASSERT_TRUE(r.done);
            EXPECT_EQ(r.inj_queue + r.head_route + r.serialization
                          + r.credit_stall,
                      r.total())
                << "message " << r.src << "->" << r.dst;
        }
        const auto sum = prof.summary();
        EXPECT_EQ(sum.messages, res.messages);
        EXPECT_EQ(sum.inj_queue + sum.head_route + sum.serialization
                      + sum.credit_stall,
                  sum.total_latency);
    }
}

TEST(Profiler, CriticalPathSumsToCompletionForEveryAlgorithm)
{
    // The acceptance bar: on deterministic lossless runs the
    // extracted chain's category rollup equals the end-to-end
    // completion cycles exactly, per algorithm, on both backends.
    for (const char *algo : {"ring", "dbtree", "ring2d", "multitree",
                             "multitree-msg"}) {
        for (auto backend :
             {runtime::Backend::Flow, runtime::Backend::Flit}) {
            obs::Profiler prof;
            const auto res = profiledRun(algo, backend, prof);
            const auto cp = obs::extractCriticalPath(prof);
            ASSERT_TRUE(cp.ok) << algo << ": " << cp.error;
            EXPECT_EQ(cp.total, res.time) << algo;
            Tick sum = 0;
            for (Tick t : cp.by_category)
                sum += t;
            EXPECT_EQ(sum, res.time)
                << algo << " on "
                << (backend == runtime::Backend::Flow ? "flow"
                                                      : "flit");
            EXPECT_FALSE(cp.hops.empty()) << algo;
        }
    }
}

TEST(Profiler, CriticalPathChargesFiniteRateReductions)
{
    obs::Profiler prof;
    const auto res = profiledRun("multitree", runtime::Backend::Flow,
                                 prof, /*reduction_bw=*/64);
    EXPECT_FALSE(prof.reductions().empty());
    const auto cp = obs::extractCriticalPath(prof);
    ASSERT_TRUE(cp.ok) << cp.error;
    Tick sum = 0;
    for (Tick t : cp.by_category)
        sum += t;
    EXPECT_EQ(sum, res.time);
    EXPECT_GT(cp.by_category[static_cast<std::size_t>(
                  obs::LatencyCategory::Reduction)],
              0u);
}

TEST(Profiler, ProfileJsonParsesAndMatchesRun)
{
    obs::Profiler prof;
    obs::FabricInfo fabric;
    const auto res = profiledRun("multitree", runtime::Backend::Flit,
                                 prof, 0, &fabric);
    const auto cp = obs::extractCriticalPath(prof);
    std::ostringstream oss;
    obs::writeProfileJson(oss, fabric, prof, cp);
    JsonValue root;
    ASSERT_TRUE(JsonParser(oss.str()).parse(root))
        << oss.str().substr(0, 400);
    EXPECT_EQ(root.at("run").at("cycles").num,
              static_cast<double>(res.time));
    EXPECT_TRUE(root.at("critical_path").at("ok").b);
    EXPECT_EQ(root.at("summary").at("messages").num,
              static_cast<double>(res.messages));
    ASSERT_EQ(root.at("channel_profile").kind, JsonValue::Arr);
    EXPECT_EQ(root.at("channel_profile").arr.size(),
              fabric.links.size());
    // The flit backend contributes router counters too.
    ASSERT_EQ(root.at("router_profile").kind, JsonValue::Arr);
    EXPECT_FALSE(root.at("router_profile").arr.empty());
}

// ---------------------------------------------------------------
// Congestion heatmaps
// ---------------------------------------------------------------

TEST(Heatmap, MapAndRenderersCoverTheFabric)
{
    obs::Profiler prof;
    obs::FabricInfo fabric;
    profiledRun("multitree", runtime::Backend::Flow, prof, 0,
                &fabric);
    const auto map = obs::buildCongestionMap(fabric, prof);
    ASSERT_EQ(map.links.size(), fabric.links.size());
    EXPECT_GT(map.peak_link_flits, 0u);
    double max_load = 0;
    for (const auto &l : map.links)
        max_load = std::max(max_load, l.load);
    EXPECT_DOUBLE_EQ(max_load, 1.0);

    std::ostringstream ascii;
    obs::renderLinkHeatmapAscii(ascii, fabric, map);
    obs::renderRouterHeatmapAscii(ascii, fabric, map);
    EXPECT_NE(ascii.str().find("link heatmap"), std::string::npos);
    EXPECT_NE(ascii.str().find("router heatmap"), std::string::npos);

    std::ostringstream csv;
    obs::writeHeatmapCsv(csv, fabric, map);
    std::istringstream lines(csv.str());
    std::string line;
    std::size_t rows = 0;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line,
              "channel,src,dst,rail,flits,messages,busy,queue,load");
    while (std::getline(lines, line))
        ++rows;
    EXPECT_EQ(rows, fabric.links.size());
}

// ---------------------------------------------------------------
// Time-series sampler
// ---------------------------------------------------------------

/** Overhead contract: sampling never changes a tick, on either
 *  backend, and the series it leaves behind is self-consistent. */
void
expectSamplerInvariance(runtime::Backend backend)
{
    auto topo = topo::makeTopology("torus-4x4");

    runtime::RunOptions plain;
    plain.backend = backend;
    runtime::Machine m_plain(*topo, plain);
    const auto base = m_plain.run("multitree", 256 * KiB);

    obs::Sampler sampler;
    runtime::RunOptions sampled = plain;
    sampled.sampler = &sampler;
    sampled.sample_every = 64;
    runtime::Machine m_sampled(*topo, sampled);
    const auto res = m_sampled.run("multitree", 256 * KiB);

    EXPECT_EQ(base.time, res.time);
    EXPECT_EQ(base.messages, res.messages);
    EXPECT_EQ(base.payload_flits, res.payload_flits);
    EXPECT_EQ(base.head_flits, res.head_flits);
    EXPECT_EQ(base.flit_hops, res.flit_hops);
    EXPECT_EQ(base.nop_windows, res.nop_windows);

    const auto &frames = sampler.frames();
    ASSERT_GT(frames.size(), 2u);
    EXPECT_EQ(sampler.runEnd() - sampler.runBegin(), res.time);
    // Cumulative counters never decrease, and the final frame (taken
    // at completion) accounts for every message.
    for (std::size_t i = 1; i < frames.size(); ++i) {
        EXPECT_GE(frames[i].tick, frames[i - 1].tick);
        EXPECT_GE(frames[i].injected, frames[i - 1].injected);
        EXPECT_GE(frames[i].delivered, frames[i - 1].delivered);
    }
    EXPECT_EQ(frames.back().delivered, res.messages);
    EXPECT_EQ(frames.back().in_flight_msgs, 0u);
    EXPECT_EQ(frames.back().link_flits.size(),
              static_cast<std::size_t>(topo->numChannels()));
}

TEST(Sampler, FlowRunIsTickIdenticalWithAndWithoutSampler)
{
    expectSamplerInvariance(runtime::Backend::Flow);
}

TEST(Sampler, FlitRunIsTickIdenticalWithAndWithoutSampler)
{
    expectSamplerInvariance(runtime::Backend::Flit);
}

TEST(Sampler, MetricsJsonEmbedsTimeseriesAndSchemaVersion)
{
    auto topo = topo::makeTopology("mesh-2x2");
    obs::Sampler sampler;
    runtime::RunOptions opts;
    opts.sampler = &sampler;
    opts.sample_every = 32;
    runtime::Machine m(*topo, opts);
    const auto res = m.run("multitree", 64 * KiB);

    const std::string json = runtime::metricsJson(m, res);
    JsonValue root;
    ASSERT_TRUE(JsonParser(json).parse(root)) << json.substr(0, 400);
    EXPECT_EQ(static_cast<int>(root.at("schema_version").num),
              runtime::kMetricsSchemaVersion);
    ASSERT_TRUE(root.has("timeseries"));
    const JsonValue &ts = root.at("timeseries");
    EXPECT_EQ(static_cast<std::size_t>(ts.at("num_frames").num),
              sampler.frames().size());
    ASSERT_EQ(ts.at("frames").kind, JsonValue::Arr);
    ASSERT_FALSE(ts.at("frames").arr.empty());
    EXPECT_EQ(ts.at("frames").arr.back().at("delivered").num,
              static_cast<double>(res.messages));

    // Without a sampler the section is absent entirely.
    runtime::Machine m_plain(*topo, {});
    const auto res_plain = m_plain.run("multitree", 64 * KiB);
    JsonValue plain_root;
    ASSERT_TRUE(JsonParser(runtime::metricsJson(m_plain, res_plain))
                    .parse(plain_root));
    EXPECT_FALSE(plain_root.has("timeseries"));
}

TEST(Sampler, CsvIsRectangularAndCoversEveryFrame)
{
    auto topo = topo::makeTopology("mesh-2x2");
    obs::Sampler sampler;
    runtime::RunOptions opts;
    opts.sampler = &sampler;
    opts.sample_every = 32;
    runtime::Machine m(*topo, opts);
    m.run("multitree", 64 * KiB);

    std::istringstream lines(sampler.csv());
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header.rfind("tick,in_flight_msgs", 0), 0u);
    const auto cols =
        1 + std::count(header.begin(), header.end(), ',');
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(1 + std::count(line.begin(), line.end(), ','),
                  cols);
        ++rows;
    }
    EXPECT_EQ(rows, sampler.frames().size());
}

TEST(Sampler, PerfettoCounterTracksRenderFromTheSeries)
{
    auto topo = topo::makeTopology("mesh-2x2");
    obs::Trace trace;
    obs::Sampler sampler;
    runtime::RunOptions opts;
    opts.backend = runtime::Backend::Flit;
    opts.sink = &trace;
    opts.sampler = &sampler;
    opts.sample_every = 32;
    runtime::Machine m(*topo, opts);
    m.run("multitree", 64 * KiB);

    std::ostringstream oss;
    obs::writePerfettoTrace(oss, m.fabricInfo(), trace.events(),
                            &sampler);
    JsonValue root;
    ASSERT_TRUE(JsonParser(oss.str()).parse(root))
        << oss.str().substr(0, 400);
    std::size_t counters = 0;
    for (const JsonValue &ev : root.at("traceEvents").arr) {
        if (ev.at("ph").str == "C")
            ++counters;
    }
    EXPECT_GT(counters, 0u);
}

// ---------------------------------------------------------------
// Phase attribution (composed hierarchical schedules)
// ---------------------------------------------------------------

TEST(Phases, HierarchicalRunSplitsByPhaseInProfilerAndSampler)
{
    auto topo =
        topo::makeTopology("hier:torus-2x2+fattree-2:2:2,rails=2");
    auto *hier = dynamic_cast<const topo::HierarchicalTopology *>(
        topo.get());
    ASSERT_NE(hier, nullptr);
    const auto sched = coll::composeHierarchical(*hier, "multitree",
                                                 "ring", 256 * KiB);
    ASSERT_EQ(sched.phase_names.size(), 3u);

    obs::Profiler prof;
    obs::Sampler sampler;
    runtime::RunOptions opts;
    opts.backend = runtime::Backend::Flit;
    opts.profiler = &prof;
    opts.sampler = &sampler;
    opts.sample_every = 128;
    runtime::Machine m(*topo, opts);
    m.run(sched);

    ASSERT_EQ(sampler.phaseNames().size(), 3u);
    EXPECT_EQ(sampler.phaseNames()[0], "island-reduce");
    EXPECT_EQ(sampler.phaseNames()[1], "spine-allreduce");
    EXPECT_EQ(sampler.phaseNames()[2], "island-gather");

    // Every phase delivered payload, and the per-phase profiler
    // rollup covers every finished data message.
    const auto &last = sampler.frames().back();
    ASSERT_EQ(last.phase_bytes.size(), 3u);
    for (std::uint64_t b : last.phase_bytes)
        EXPECT_GT(b, 0u);
    const auto by_phase = prof.summaryByPhase();
    ASSERT_EQ(by_phase.size(), 3u);
    std::uint64_t covered = 0;
    for (const auto &ps : by_phase) {
        EXPECT_GT(ps.messages, 0u);
        covered += ps.messages;
    }
    EXPECT_EQ(covered, prof.summary().messages);

    // Phases do not overlap in time: the spine phase's messages all
    // inject after every island-reduce delivery it depends on at the
    // same node would allow — cheap sanity: phase tags appear in the
    // profile JSON.
    const auto cp = obs::extractCriticalPath(prof);
    std::ostringstream oss;
    obs::writeProfileJson(oss, m.fabricInfo(), prof, cp);
    JsonValue root;
    ASSERT_TRUE(JsonParser(oss.str()).parse(root));
    EXPECT_EQ(static_cast<int>(root.at("schema_version").num),
              obs::kProfileSchemaVersion);
    ASSERT_EQ(root.at("phases").kind, JsonValue::Arr);
    ASSERT_EQ(root.at("phases").arr.size(), 3u);
    EXPECT_EQ(root.at("phases").arr[1].at("name").str,
              "spine-allreduce");
}

// ---------------------------------------------------------------
// Acceptance: windowed rail imbalance that totals do not reveal
// ---------------------------------------------------------------

TEST(Sampler, WindowedRailImbalanceVisibleOnlyInTimeseries)
{
    auto topo =
        topo::makeTopology("hier:torus-2x2+fattree-2:2:2,rails=2");
    auto *hier = dynamic_cast<const topo::HierarchicalTopology *>(
        topo.get());
    ASSERT_NE(hier, nullptr);
    const auto sched = coll::composeHierarchical(*hier, "multitree",
                                                 "ring", 256 * KiB);

    // Baseline run fixes the fault window relative to completion.
    runtime::RunOptions base;
    base.backend = runtime::Backend::Flit;
    base.rail_policy = ni::RailPolicy::Backlog;
    runtime::Machine m0(*topo, base);
    const auto res0 = m0.run(sched);

    // Degrade every rail-1 spine channel for the middle half of the
    // run: backlog-steered NICs shift spine traffic onto rail 0
    // while the window is open, and back afterwards.
    const topo::RailGroups rg = topo::buildRailGroups(*topo);
    fault::FaultConfig fc;
    fc.seed = 1;
    for (const auto &ch : topo->channels()) {
        if (!hier->isSpineChannel(ch.id) || rg.railOf(ch.id) != 1)
            continue;
        fault::LinkFault lf;
        lf.channel = ch.id;
        lf.from = res0.time / 4;
        lf.until = res0.time / 2;
        lf.extra_latency = 2000;
        fc.links.push_back(lf);
    }
    ASSERT_FALSE(fc.links.empty());

    obs::Sampler sampler;
    runtime::RunOptions opts = base;
    opts.fault = fc;
    opts.sampler = &sampler;
    opts.sample_every = std::max<Tick>(res0.time / 64, 1);
    runtime::Machine m(*topo, opts);
    const auto rep = m.tryRun(sched);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;

    // Spine-only per-rail traffic from the frame series.
    const auto spineRail =
        [&](const std::vector<std::uint64_t> &link_flits, int rail) {
            std::uint64_t sum = 0;
            for (const auto &ch : topo->channels()) {
                if (!hier->isSpineChannel(ch.id)
                    || rg.railOf(ch.id) != rail)
                    continue;
                const auto c = static_cast<std::size_t>(ch.id);
                if (c < link_flits.size())
                    sum += link_flits[c];
            }
            return sum;
        };
    const auto skew = [](std::uint64_t a, std::uint64_t b) {
        return a + b == 0
                   ? 0.0
                   : std::abs(static_cast<double>(a)
                              - static_cast<double>(b))
                         / static_cast<double>(a + b);
    };

    const auto &frames = sampler.frames();
    ASSERT_GT(frames.size(), 8u);
    const double whole_run_skew =
        skew(spineRail(frames.back().link_flits, 0),
             spineRail(frames.back().link_flits, 1));

    double worst_window_skew = 0;
    for (std::size_t i = 1; i < frames.size(); ++i) {
        const std::uint64_t d0 =
            spineRail(frames[i].link_flits, 0)
            - spineRail(frames[i - 1].link_flits, 0);
        const std::uint64_t d1 =
            spineRail(frames[i].link_flits, 1)
            - spineRail(frames[i - 1].link_flits, 1);
        if (d0 + d1 < 64)
            continue; // idle window: no utilization to compare
        worst_window_skew =
            std::max(worst_window_skew, skew(d0, d1));
    }

    // The transient is invisible in the whole-run totals but
    // unmistakable in the windows: this is the sampler's reason to
    // exist.
    EXPECT_GT(worst_window_skew, whole_run_skew + 0.2)
        << "worst window " << worst_window_skew << " vs whole run "
        << whole_run_skew;
    EXPECT_GT(worst_window_skew, 0.5);
}

// ---------------------------------------------------------------
// Results schema stamp and sweep cache-key coverage
// ---------------------------------------------------------------

TEST(Results, SchemaVersionGatesTheReader)
{
    const std::string path =
        ::testing::TempDir() + "/mt_results_schema.json";
    obs::ResultRow row;
    row.name = "schema/test";
    row.topology = "mesh-2x2";
    row.algorithm = "ring";
    row.bytes = 1024;
    row.cycles = 99;
    row.mode = "active";
    row.commit = "abc1234";
    ASSERT_TRUE(obs::writeResultRows(path, {row}));

    auto rows = obs::readResultRows(path);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].name, "schema/test");
    EXPECT_EQ(rows[0].commit, "abc1234");

    // A foreign version reads as an empty (regenerable) cache.
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    const std::string stamp =
        "\"schema_version\": "
        + std::to_string(obs::kResultsSchemaVersion);
    const std::size_t at = text.find(stamp);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, stamp.size(), "\"schema_version\": 9999");
    {
        std::ofstream out(path);
        out << text;
    }
    EXPECT_TRUE(obs::readResultRows(path).empty());
    std::remove(path.c_str());
}

TEST(Results, SweepConfigKeyCoversEveryAxis)
{
    const obs::SweepPointConfig base;
    std::set<std::string> keys;
    keys.insert(obs::sweepConfigKey(base));

    // Vary one axis at a time; every variation must land on its own
    // cache key, or two different campaigns would alias one entry.
    std::vector<obs::SweepPointConfig> variants(13, base);
    variants[0].topo = "torus-8x8";
    variants[1].algo = "ring";
    variants[2].bytes = 4096;
    variants[3].seed = 7;
    variants[4].backend = "flow";
    variants[5].drop = 0.001;
    variants[6].corrupt = 0.001;
    variants[7].reliable = true;
    variants[8].dense = true;
    variants[9].rail_policy = "backlog";
    variants[10].recovery = "failover";
    variants[11].in_network = "mcast+reduce";
    variants[12].combiner_entries = 2;
    for (const auto &v : variants)
        keys.insert(obs::sweepConfigKey(v));
    EXPECT_EQ(keys.size(), variants.size() + 1)
        << "two sweep axes alias onto one cache key";

    for (const auto &v : variants)
        EXPECT_NE(obs::sweepConfigHash(v),
                  obs::sweepConfigHash(base));
}

} // namespace
} // namespace multitree
