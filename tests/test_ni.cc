/**
 * @file
 * Unit tests for schedule tables and the NIC engine.
 */

#include <gtest/gtest.h>

#include <map>

#include "coll/ring.hh"
#include "core/multitree.hh"
#include "ni/schedule_table.hh"
#include "topo/factory.hh"
#include "topo/grid.hh"

namespace multitree::ni {
namespace {

TEST(ScheduleTable, Fig5ShapeOn2x2Mesh)
{
    topo::Mesh2D m(2, 2);
    core::MultiTreeAllReduce mt;
    auto sched = mt.build(m, 4096);
    auto tables = buildScheduleTables(sched, m);
    ASSERT_EQ(tables.size(), 4u);

    // Each node's table: one Reduce per other tree (3) + gather rows.
    // Fig. 5 shows 5 rows per accelerator on this example.
    for (const auto &t : tables) {
        int reduces = 0, gathers = 0;
        for (const auto &e : t.entries) {
            if (e.op == Op::Reduce)
                ++reduces;
            else
                ++gathers;
        }
        EXPECT_EQ(reduces, 3) << "node " << t.node;
        EXPECT_EQ(gathers, 2) << "node " << t.node;
    }

    // Accelerator 0, per Fig. 5: head entry Reduce flow 3 parent 1
    // step 1; the root-gather row has children {1, 2} at step 3.
    const auto &t0 = tables[0];
    EXPECT_EQ(t0.entries[0].op, Op::Reduce);
    EXPECT_EQ(t0.entries[0].flow, 3);
    EXPECT_EQ(t0.entries[0].parent, 1);
    EXPECT_EQ(t0.entries[0].step, 1);
    bool found_root_gather = false;
    for (const auto &e : t0.entries) {
        if (e.op == Op::Gather && e.flow == 0) {
            EXPECT_EQ(e.parent, -1);
            EXPECT_EQ(e.step, 3);
            EXPECT_EQ(e.children.size(), 2u);
            found_root_gather = true;
        }
    }
    EXPECT_TRUE(found_root_gather);
}

TEST(ScheduleTable, EntriesSortedByStep)
{
    topo::Torus2D t(4, 4);
    coll::RingAllReduce ring;
    auto sched = ring.build(t, 64 * 1024);
    for (const auto &table : buildScheduleTables(sched, t)) {
        for (std::size_t i = 1; i < table.entries.size(); ++i) {
            EXPECT_LE(table.entries[i - 1].step,
                      table.entries[i].step);
        }
    }
}

TEST(ScheduleTable, RoutesResolvedForEveryEntry)
{
    topo::Torus2D t(4, 4);
    coll::RingAllReduce ring;
    auto sched = ring.build(t, 64 * 1024);
    for (const auto &table : buildScheduleTables(sched, t)) {
        for (const auto &e : table.entries) {
            ASSERT_EQ(e.routes.size(),
                      e.op == Op::Reduce ? 1u : e.children.size());
            for (const auto &r : e.routes)
                EXPECT_FALSE(r.empty());
        }
    }
}

TEST(ScheduleTable, GatherRowsGroupSameStepChildren)
{
    topo::Torus2D t(4, 4);
    core::MultiTreeAllReduce mt;
    auto sched = mt.build(t, 64 * 1024);
    auto tables = buildScheduleTables(sched, t);
    bool any_multi_child = false;
    for (const auto &table : tables) {
        for (const auto &e : table.entries) {
            if (e.op == Op::Gather && e.children.size() > 1)
                any_multi_child = true;
        }
    }
    // On a torus the NI:link ratio is 4, so multi-child rows exist.
    EXPECT_TRUE(any_multi_child);
}

TEST(ScheduleTable, ChildrenFieldWidthIsNiLinkRatio)
{
    // Footnote 3: field width = NI:link bandwidth ratio.
    EXPECT_EQ(childrenFieldWidth(*topo::makeTopology("torus-8x8")),
              4u);
    EXPECT_EQ(
        childrenFieldWidth(*topo::makeTopology("torus3d-4x4x4")),
        6u);
    EXPECT_EQ(childrenFieldWidth(*topo::makeTopology("fattree-16")),
              1u);
}

TEST(ScheduleTable, GatherEntriesRespectFieldWidth)
{
    // MultiTree's contention-free schedules fit by construction.
    auto topo = topo::makeTopology("torus3d-4x4x4");
    core::MultiTreeAllReduce mt;
    auto sched = mt.build(*topo, 256 * 1024);
    std::size_t width = childrenFieldWidth(*topo);
    for (const auto &table : buildScheduleTables(sched, *topo)) {
        for (const auto &e : table.entries) {
            if (e.op == Op::Gather) {
                EXPECT_LE(e.children.size(), width);
                EXPECT_EQ(e.routes.size(), e.children.size());
            }
        }
    }

    // A hand-built schedule that fans out past the field width must
    // split into consecutive rows.
    topo::Mesh2D line(3, 1); // width = 2 (middle node degree)
    coll::Schedule s;
    s.kind = coll::CollectiveKind::AllGather;
    s.num_nodes = 3;
    coll::ChunkFlow f;
    f.flow_id = 0;
    f.root = 1;
    f.fraction = 1.0;
    f.gather.push_back(coll::ScheduledEdge{1, 0, 1, {}});
    f.gather.push_back(coll::ScheduledEdge{1, 2, 1, {}});
    s.flows.push_back(f);
    s.assignBytes(64);
    // Artificially narrow: a 2-wide field with 2 children fits in
    // one row; verify the row count directly.
    auto tables = buildScheduleTables(s, line);
    int gather_rows = 0;
    for (const auto &e : tables[1].entries)
        gather_rows += e.op == Op::Gather ? 1 : 0;
    EXPECT_EQ(gather_rows, 1);
}

TEST(ScheduleTable, RenderMentionsCoreFields)
{
    topo::Mesh2D m(2, 2);
    core::MultiTreeAllReduce mt;
    auto sched = mt.build(m, 4096);
    auto tables = buildScheduleTables(sched, m);
    auto text = renderTable(tables[0]);
    EXPECT_NE(text.find("Accelerator 0"), std::string::npos);
    EXPECT_NE(text.find("Reduce"), std::string::npos);
    EXPECT_NE(text.find("Gather"), std::string::npos);
    EXPECT_NE(text.find("nil"), std::string::npos);
}

TEST(ScheduleTable, CostMatchesPaperEstimate)
{
    // §V-A: a 64-node system needs 128 entries of 200 bits ≈ 3.2 KB.
    auto c = tableCost(64);
    EXPECT_EQ(c.entries, 128);
    EXPECT_NEAR(c.bits_per_entry, 200, 20);
    EXPECT_NEAR(c.kib, 3.2, 0.5);
}

} // namespace
} // namespace multitree::ni
