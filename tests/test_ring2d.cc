/**
 * @file
 * Unit tests for 2D-Ring all-reduce.
 */

#include <gtest/gtest.h>

#include "coll/ring.hh"
#include "coll/ring2d.hh"
#include "coll/functional.hh"
#include "coll/validate.hh"
#include "topo/fattree.hh"
#include "topo/grid.hh"

namespace multitree::coll {
namespace {

TEST(Ring2D, SupportsGridsOnly)
{
    Ring2DAllReduce r2;
    topo::Torus2D t(4, 4);
    topo::Mesh2D m(8, 8);
    topo::FatTree2L ft(4, 4, 4);
    EXPECT_TRUE(r2.supports(t));
    EXPECT_TRUE(r2.supports(m));
    EXPECT_FALSE(r2.supports(ft));
}

TEST(Ring2D, StepCountIsLinearInDimensions)
{
    Ring2DAllReduce r2;
    topo::Torus2D t(4, 4);
    auto s = r2.build(t, 256 * 1024);
    // (w-1) + (h-1) reduce steps, same again for gather.
    EXPECT_EQ(s.totalSteps(), 2 * (3 + 3));
    auto r = validateSchedule(s, t);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Ring2D, ContentionFreeOnTorus)
{
    Ring2DAllReduce r2;
    topo::Torus2D t(4, 4);
    auto s = r2.build(t, 256 * 1024);
    auto r = validateContentionFree(s, t);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Ring2D, FunctionallyCorrect)
{
    Ring2DAllReduce r2;
    topo::Torus2D t(4, 4);
    topo::Mesh2D m(4, 4);
    for (const topo::Topology *topo :
         {static_cast<const topo::Topology *>(&t),
          static_cast<const topo::Topology *>(&m)}) {
        auto s = r2.build(*topo, 8192);
        auto r = validateSchedule(s, *topo);
        ASSERT_TRUE(r.ok) << topo->name() << ": " << r.error;
        EXPECT_TRUE(checkAllReduceCorrect(s, 2048)) << topo->name();
    }
}

TEST(Ring2D, HalvesRingPeakChannelLoad)
{
    // The paper's 2N(N-1) vs N^2-1 accounting, in serialization
    // terms: the heaviest channel carries ~2D under flat Ring but
    // only ~D under 2D-Ring (each phase spreads over one dimension's
    // bidirectional links), which is still ~2x MultiTree's ~D/2.
    topo::Torus2D t(8, 8);
    Ring2DAllReduce r2;
    RingAllReduce ring;
    std::uint64_t bytes = 8 * 1024 * 1024;
    auto st2 = r2.build(t, bytes).stats(t);
    auto st1 = ring.build(t, bytes).stats(t);
    double ratio = st1.max_channel_bytes / st2.max_channel_bytes;
    EXPECT_GT(ratio, 1.7);
    EXPECT_LT(ratio, 2.3);
    // And both moved the same per-node volume in total.
    EXPECT_NEAR(st2.bytes_transferred / st1.bytes_transferred, 1.0,
                0.05);
}

TEST(Ring2D, BothChannelDirectionsCarryData)
{
    topo::Torus2D t(4, 4);
    Ring2DAllReduce r2;
    auto s = r2.build(t, 256 * 1024);
    std::set<int> used;
    for (const auto &f : s.flows) {
        for (const auto &e : f.reduce) {
            for (int cid : t.route(e.src, e.dst))
                used.insert(cid);
        }
        for (const auto &e : f.gather) {
            for (int cid : t.route(e.src, e.dst))
                used.insert(cid);
        }
    }
    // Bidirectional rings in both phases touch every channel.
    EXPECT_EQ(static_cast<int>(used.size()), t.numChannels());
}

} // namespace
} // namespace multitree::coll
