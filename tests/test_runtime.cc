/**
 * @file
 * Integration tests: full all-reduce simulations through the runtime
 * on both network backends, and the flit-vs-flow agreement property.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "runtime/allreduce_runtime.hh"
#include "topo/factory.hh"

namespace multitree::runtime {
namespace {

TEST(Runtime, RingCompletesAndMatchesHandTiming)
{
    auto t = topo::makeTopology("torus-4x4");
    RunOptions opts;
    auto res = runAllReduce(*t, "ring", 64 * 1024, opts);
    EXPECT_GT(res.time, 0u);
    // 30 steps, each one chunk of 4 KiB = 272 wire flits plus a hop:
    // dependency-chained, so roughly 30 * (272 + 153).
    Tick per_step = 272 + 153;
    EXPECT_GE(res.time, 30 * per_step);
    EXPECT_LE(res.time, 30 * per_step + 30 * 16);
    EXPECT_EQ(res.messages, 2u * 16 * 15);
}

TEST(Runtime, MultiTreeBeatsRingEverywhere)
{
    for (const char *spec : {"torus-4x4", "torus-8x8", "mesh-8x8",
                             "fattree-16", "bigraph-4x8"}) {
        auto t = topo::makeTopology(spec);
        for (std::uint64_t bytes : {64ull * 1024, 4ull * 1024 * 1024}) {
            auto ring = runAllReduce(*t, "ring", bytes);
            auto mt = runAllReduce(*t, "multitree", bytes);
            EXPECT_LT(mt.time, ring.time)
                << spec << " @ " << bytes << " bytes";
        }
    }
}

TEST(Runtime, MessageFlowControlAddsBandwidth)
{
    auto t = topo::makeTopology("torus-8x8");
    auto plain = runAllReduce(*t, "multitree", 8 * 1024 * 1024);
    auto msg = runAllReduce(*t, "multitree-msg", 8 * 1024 * 1024);
    EXPECT_LT(msg.time, plain.time);
    // ~6% serialization saving (§VI-A): allow a broad window since
    // latency dilutes it.
    double gain = static_cast<double>(plain.time)
                  / static_cast<double>(msg.time);
    EXPECT_GT(gain, 1.02);
    EXPECT_LT(gain, 1.09);
}

TEST(Runtime, DBTreeLosesToMultiTreeOnTorusLargeData)
{
    auto t = topo::makeTopology("torus-8x8");
    auto db = runAllReduce(*t, "dbtree", 16 * 1024 * 1024);
    auto mt = runAllReduce(*t, "multitree", 16 * 1024 * 1024);
    EXPECT_GT(db.time, 2 * mt.time);
}

TEST(Runtime, LockstepRunsAndReportsNops)
{
    auto t = topo::makeTopology("mesh-8x8");
    auto res = runAllReduce(*t, "multitree", 1 * 1024 * 1024);
    // Mesh trees are imbalanced: some nodes must idle through NOP
    // windows (§IV-A observes this for irregular networks).
    EXPECT_GT(res.nop_windows, 0u);
}

TEST(Runtime, FlitBackendCompletesSmallRuns)
{
    auto t = topo::makeTopology("torus-4x4");
    RunOptions opts;
    opts.backend = Backend::Flit;
    for (const char *algo : {"ring", "multitree", "dbtree", "hd"}) {
        auto res = runAllReduce(*t, algo, 32 * 1024, opts);
        EXPECT_GT(res.time, 0u) << algo;
        EXPECT_GT(res.bandwidth, 0.0) << algo;
    }
}

/**
 * The methodology defence: the fast flow model must agree with the
 * cycle-level flit model on all-reduce completion time within a
 * modest tolerance across algorithms and topologies.
 */
class FlitVsFlow
    : public testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(FlitVsFlow, AgreeWithinTolerance)
{
    const auto &[algo, spec] = GetParam();
    auto t = topo::makeTopology(spec);
    const std::uint64_t bytes = 256 * 1024;
    RunOptions flow;
    RunOptions flit;
    flit.backend = Backend::Flit;
    auto a = runAllReduce(*t, algo, bytes, flow);
    auto b = runAllReduce(*t, algo, bytes, flit);
    double ratio = static_cast<double>(b.time)
                   / static_cast<double>(a.time);
    EXPECT_GT(ratio, 0.85) << "flit=" << b.time << " flow=" << a.time;
    // The documented worst case is MultiTree on small meshes (~1.4,
    // see EXPERIMENTS.md); most configs agree within ~15%.
    EXPECT_LT(ratio, 1.45) << "flit=" << b.time << " flow=" << a.time;
}

INSTANTIATE_TEST_SUITE_P(
    Agreement, FlitVsFlow,
    testing::Values(std::tuple{"ring", "torus-4x4"},
                    std::tuple{"multitree", "torus-4x4"},
                    std::tuple{"ring2d", "torus-4x4"},
                    std::tuple{"multitree", "mesh-4x4"},
                    std::tuple{"ring", "fattree-16"},
                    std::tuple{"multitree", "fattree-16"},
                    std::tuple{"hdrm", "bigraph-4x8"},
                    std::tuple{"multitree", "bigraph-4x8"}),
    [](const auto &info) {
        std::string s = std::get<0>(info.param) + "_"
                        + std::get<1>(info.param);
        for (auto &c : s) {
            if (c == '-' || c == ':')
                c = '_';
        }
        return s;
    });

} // namespace
} // namespace multitree::runtime
