/**
 * @file
 * Tests for the persistent Machine runtime: fabric reuse across
 * back-to-back collectives, per-run stat scoping, the asynchronous
 * post()/drain() session API, construction-time option validation,
 * and the algorithm-variant registry.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coll/algorithm.hh"
#include "runtime/allreduce_runtime.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

namespace multitree {
namespace {

void
expectSameResult(const runtime::RunResult &a,
                 const runtime::RunResult &b)
{
    EXPECT_EQ(a.time, b.time);
    EXPECT_DOUBLE_EQ(a.bandwidth, b.bandwidth);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_DOUBLE_EQ(a.payload_flits, b.payload_flits);
    EXPECT_DOUBLE_EQ(a.head_flits, b.head_flits);
    EXPECT_DOUBLE_EQ(a.flit_hops, b.flit_hops);
    EXPECT_DOUBLE_EQ(a.head_hops, b.head_hops);
    EXPECT_EQ(a.nop_windows, b.nop_windows);
}

class MachineReuse
    : public ::testing::TestWithParam<runtime::Backend>
{};

// The headline reuse guarantee: a Machine running N consecutive
// collectives yields per-run results bit-identical to N fresh
// single-shot simulations — for every registered variant, under both
// backends, including a repeat after the whole sweep (no state leaks
// across runs).
TEST_P(MachineReuse, BackToBackMatchesFreshForEveryVariant)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions opts;
    opts.backend = GetParam();
    const std::uint64_t bytes =
        GetParam() == runtime::Backend::Flit ? 32 * KiB : 256 * KiB;

    runtime::Machine machine(*topo, opts);
    for (const auto &v : coll::algorithmVariants()) {
        if (!coll::makeAlgorithm(v.base)->supports(*topo))
            continue;
        SCOPED_TRACE(v.name);
        auto fresh =
            runtime::runAllReduce(*topo, v.name, bytes, opts);
        expectSameResult(machine.run(v.name, bytes), fresh);
    }
    // Rerunning the first algorithm after the sweep (including the
    // message-based variant in between) still matches fresh.
    auto fresh = runtime::runAllReduce(*topo, "ring", bytes, opts);
    expectSameResult(machine.run("ring", bytes), fresh);
    EXPECT_TRUE(machine.idle());
}

// Network::reset() fully recovers the fabric from fault activity: a
// clean (injection-disabled) run after a faulted-but-completed run,
// and after a watchdog-aborted run, is bit-identical to a clean run
// on a freshly built fabric.
TEST_P(MachineReuse, CleanRunAfterFaultedAndAbortedRunsMatchesFresh)
{
    auto topo = topo::makeTopology("torus-4x4");
    const std::uint64_t bytes =
        GetParam() == runtime::Backend::Flit ? 16 * KiB : 256 * KiB;

    runtime::RunOptions opts;
    opts.backend = GetParam();
    opts.reliability.enabled = true;
    opts.reliability.max_attempts = 3;
    runtime::RunOverrides clean;
    clean.inject_faults = false;
    runtime::Machine reference(*topo, opts);
    auto baseline = reference.run("ring", bytes, clean);

    // After a faulted-but-completed run (probabilistic loss,
    // retransmission recovers) the next clean run matches fresh.
    runtime::RunOptions lossy = opts;
    fault::FaultConfig fc;
    fc.seed = 7;
    fc.drop_prob = 1e-3;
    lossy.fault = fc;
    runtime::Machine survivor(*topo, lossy);
    auto faulted = survivor.tryRun("ring", bytes);
    ASSERT_TRUE(faulted.ok) << faulted.diagnostic;
    expectSameResult(survivor.run("ring", bytes, clean), baseline);

    // After a watchdog abort (permanently downed link, retries
    // exhausted) the same machine still recovers to bit-identical.
    auto sched = coll::makeAlgorithm("ring")->build(*topo, bytes);
    const auto &edge = sched.flows[0].reduce[0];
    auto route = edge.route.empty() ? topo->route(edge.src, edge.dst)
                                    : edge.route;
    ASSERT_FALSE(route.empty());
    runtime::RunOptions downed = opts;
    fault::FaultConfig down_fc;
    fault::LinkFault lf;
    lf.channel = route[0];
    lf.down = true;
    down_fc.links.push_back(lf);
    downed.fault = down_fc;
    runtime::Machine aborted(*topo, downed);
    auto wedged = aborted.tryRun("ring", bytes);
    ASSERT_FALSE(wedged.ok);
    ASSERT_TRUE(aborted.idle());
    expectSameResult(aborted.run("ring", bytes, clean), baseline);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, MachineReuse,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

TEST(Machine, FlowControlOverrideDoesNotStick)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::Machine machine(*topo);
    auto pkt = machine.run("multitree", 256 * KiB);
    auto msg = machine.run("multitree-msg", 256 * KiB);
    // One head flit per message instead of one per 256 B packet.
    EXPECT_LT(msg.head_flits, pkt.head_flits);
    // The per-run override is gone on the next run.
    auto pkt2 = machine.run("multitree", 256 * KiB);
    expectSameResult(pkt2, pkt);
}

TEST(Machine, LifetimeStatsAccumulateAcrossScopedRuns)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::Machine machine(*topo);
    auto a = machine.run("ring", 64 * KiB);
    auto b = machine.run("dbtree", 64 * KiB);
    EXPECT_EQ(machine.runsCompleted(), 2u);
    EXPECT_DOUBLE_EQ(machine.lifetimeStats().get("runs"), 2.0);
    EXPECT_DOUBLE_EQ(machine.lifetimeStats().get("messages"),
                     static_cast<double>(a.messages + b.messages));
    // run() opens a fresh epoch, so the fabric-level counters hold
    // only the latest run; cross-run accumulation lives in the
    // machine's lifetime registry above.
    EXPECT_DOUBLE_EQ(machine.network().stats().get("messages"),
                     static_cast<double>(b.messages));
}

TEST(Machine, TraceCollectsAcrossReuse)
{
    auto topo = topo::makeTopology("torus-4x4");
    std::vector<runtime::TraceRecord> trace;
    runtime::RunOptions opts;
    opts.trace = &trace;
    runtime::Machine machine(*topo, opts);
    auto a = machine.run("ring", 64 * KiB);
    EXPECT_EQ(trace.size(), a.messages);
    EXPECT_EQ(trace.back().delivered, a.time);
    auto b = machine.run("ring", 64 * KiB);
    EXPECT_EQ(trace.size(), a.messages + b.messages);
}

TEST(MachineSession, PostedCollectivesRunBackToBack)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::Machine machine(*topo);
    auto algo = coll::makeAlgorithm("multitree");
    auto sched = algo->build(*topo, 64 * KiB);
    auto solo = machine.run(sched);

    machine.beginEpoch();
    std::vector<runtime::RunResult> results;
    std::vector<Tick> ends;
    auto record = [&](const runtime::RunResult &r) {
        results.push_back(r);
        ends.push_back(machine.eventQueue().now());
    };
    machine.post(sched, record);
    machine.post(sched, record);
    EXPECT_FALSE(machine.idle());
    Tick final = machine.drain();

    ASSERT_EQ(results.size(), 2u);
    // First collective: identical timing to a solo run; second:
    // starts the moment the first completes, and the warm-but-idle
    // fabric gives it the same duration.
    EXPECT_EQ(results[0].time, solo.time);
    EXPECT_EQ(ends[0], solo.time);
    EXPECT_EQ(results[1].time, solo.time);
    EXPECT_EQ(ends[1], 2 * solo.time);
    EXPECT_EQ(final, ends[1]);
    expectSameResult(results[0], solo);
    expectSameResult(results[1], solo);
    EXPECT_TRUE(machine.idle());
    EXPECT_EQ(machine.runsCompleted(), 3u);
}

TEST(MachineSession, ComputeEventsShareTheTimeAxis)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::Machine machine(*topo);
    auto algo = coll::makeAlgorithm("multitree");
    auto sched = algo->build(*topo, 64 * KiB);
    auto solo = machine.run(sched);

    // A "gradient ready" compute event at tick 1000 posts the
    // collective; it completes 1000 + solo.time later.
    machine.beginEpoch();
    Tick comm_end = 0;
    machine.scheduleAt(1000, [&] {
        machine.post(sched, [&](const runtime::RunResult &) {
            comm_end = machine.eventQueue().now();
        });
    });
    machine.drain();
    EXPECT_EQ(comm_end, 1000 + solo.time);
}

TEST(MachineSession, DegenerateEmptyScheduleCompletes)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::Machine machine(*topo);
    coll::Schedule sched;
    sched.num_nodes = topo->numNodes();
    auto res = machine.run(sched);
    EXPECT_EQ(res.time, 0u);
    EXPECT_EQ(res.messages, 0u);
    EXPECT_TRUE(machine.idle());
}

TEST(MachineDeath, RejectsZeroBufferDepth)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions opts;
    opts.net.vc_buffer_depth = 0;
    EXPECT_DEATH(runtime::Machine(*topo, opts), "vc_buffer_depth");
}

TEST(MachineDeath, RejectsFlitNotDividingPacket)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions opts;
    opts.net.flit_bytes = 48; // 256 % 48 != 0
    EXPECT_DEATH(runtime::Machine(*topo, opts),
                 "divide packet_payload");
}

TEST(MachineDeath, RejectsBufferAdjustedOnFlowBackend)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions opts;
    opts.backend = runtime::Backend::Flow;
    opts.buffer_adjusted_estimates = true;
    EXPECT_DEATH(runtime::Machine(*topo, opts), "Flit backend");
}

TEST(AlgorithmRegistry, VariantResolvesBaseAndFlowControl)
{
    const auto &v = coll::findAlgorithmVariant("multitree-msg");
    EXPECT_EQ(v.base, "multitree");
    ASSERT_TRUE(v.flow_control.has_value());
    EXPECT_EQ(*v.flow_control, net::FlowControlMode::MessageBased);
    // Every base algorithm resolves to itself with no override.
    for (const auto &name : coll::algorithmNames()) {
        const auto &b = coll::findAlgorithmVariant(name);
        EXPECT_EQ(b.base, name);
        EXPECT_FALSE(b.flow_control.has_value());
    }
}

TEST(AlgorithmRegistryDeath, UnknownNamePanics)
{
    EXPECT_DEATH(coll::findAlgorithmVariant("nccl"),
                 "unknown all-reduce algorithm");
}

} // namespace
} // namespace multitree
