/**
 * @file
 * Tests for user-defined topologies (§VII-B generality): arbitrary
 * graphs, heterogeneous (multigraph) links, and a randomized fuzz
 * sweep proving MultiTree stays valid, correct and contention-free
 * on irregular networks.
 */

#include <gtest/gtest.h>

#include <set>

#include "coll/functional.hh"
#include "coll/ring.hh"
#include "coll/validate.hh"
#include "common/random.hh"
#include "core/multitree.hh"
#include "runtime/allreduce_runtime.hh"
#include "topo/custom.hh"

namespace multitree {
namespace {

using topo::CustomTopology;

/** A 5-node direct "kite" graph: irregular degrees. */
CustomTopology
kite()
{
    CustomTopology t("kite");
    for (int i = 0; i < 5; ++i)
        t.addNode();
    t.connect(0, 1);
    t.connect(0, 2);
    t.connect(1, 2);
    t.connect(1, 3);
    t.connect(2, 3);
    t.connect(3, 4);
    return t;
}

TEST(CustomTopology, BfsRoutingWorks)
{
    auto t = kite();
    EXPECT_EQ(t.route(0, 4).size(), 3u); // 0-1/2-3-4
    EXPECT_EQ(t.route(4, 4).size(), 0u);
    EXPECT_EQ(t.numChannels(), 12);
}

TEST(CustomTopology, ReverseChannelPairsHold)
{
    auto t = kite();
    for (int cid = 0; cid < t.numChannels(); ++cid) {
        int rev = t.reverseChannel(cid);
        EXPECT_EQ(t.channel(rev).src, t.channel(cid).dst);
        EXPECT_EQ(t.channel(rev).dst, t.channel(cid).src);
        EXPECT_EQ(t.reverseChannel(rev), cid);
    }
}

TEST(CustomTopology, MultiTreeHandlesIrregularGraph)
{
    auto t = kite();
    core::MultiTreeAllReduce mt;
    auto s = mt.build(t, 4000);
    auto r = coll::validateSchedule(s, t);
    ASSERT_TRUE(r.ok) << r.error;
    auto c = coll::validateContentionFree(s, t);
    EXPECT_TRUE(c.ok) << c.error;
    EXPECT_TRUE(coll::checkAllReduceCorrect(s, 1000));
}

TEST(CustomTopology, RingFallsBackToIdOrder)
{
    auto t = kite();
    coll::RingAllReduce ring;
    auto s = ring.build(t, 4000);
    EXPECT_TRUE(coll::validateSchedule(s, t).ok);
    EXPECT_TRUE(coll::checkAllReduceCorrect(s, 1000));
}

TEST(HeterogeneousLinks, WiderBridgeCarriesMorePerStep)
{
    // A dumbbell: two 4-node cliques joined by a bridge. Every tree
    // must cross the bridge once, so the schedule length is bridge-
    // capacity-bound (not diameter-bound); doubling the bridge width
    // (two parallel links, the §VII-B multigraph modeling) must
    // shorten the schedule.
    auto build_dumbbell = [](int bridge_mult) {
        CustomTopology t(bridge_mult > 1 ? "fat-dumbbell"
                                         : "dumbbell");
        for (int i = 0; i < 8; ++i)
            t.addNode();
        for (int a = 0; a < 4; ++a) {
            for (int b = a + 1; b < 4; ++b) {
                t.connect(a, b);
                t.connect(4 + a, 4 + b);
            }
        }
        t.connect(3, 4, bridge_mult);
        return t;
    };
    auto thin = build_dumbbell(1);
    auto fat = build_dumbbell(2);
    core::MultiTreeAllReduce mt;
    auto s_thin = mt.build(thin, 64 * 1024);
    auto s_fat = mt.build(fat, 64 * 1024);
    const std::pair<const coll::Schedule *, const topo::Topology *>
        cases[] = {{&s_thin, &thin}, {&s_fat, &fat}};
    for (const auto &[sched, topo] : cases) {
        auto r = coll::validateSchedule(*sched, *topo);
        ASSERT_TRUE(r.ok) << r.error;
        auto c = coll::validateContentionFree(*sched, *topo);
        EXPECT_TRUE(c.ok) << c.error;
        EXPECT_TRUE(coll::checkAllReduceCorrect(*sched, 16384));
    }
    auto t_thin = runtime::runAllReduce(thin, s_thin).time;
    auto t_fat = runtime::runAllReduce(fat, s_fat).time;
    EXPECT_LT(t_fat, t_thin);
}

/** Random connected direct graph of @p n nodes. */
CustomTopology
randomGraph(int n, std::uint64_t seed)
{
    Rng rng(seed);
    CustomTopology t("random-" + std::to_string(seed));
    for (int i = 0; i < n; ++i)
        t.addNode();
    // Random spanning tree keeps it connected...
    for (int i = 1; i < n; ++i) {
        int j = static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(i)));
        t.connect(i, j);
    }
    // ...plus extra random edges (possibly multi-links).
    std::set<std::pair<int, int>> have;
    int extra = n;
    while (extra-- > 0) {
        int a = static_cast<int>(
            rng.nextBounded(static_cast<std::uint64_t>(n)));
        int b = static_cast<int>(
            rng.nextBounded(static_cast<std::uint64_t>(n)));
        if (a == b)
            continue;
        t.connect(a, b);
    }
    return t;
}

class MultiTreeFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MultiTreeFuzz, RandomGraphsStayValidCorrectContentionFree)
{
    std::uint64_t seed = GetParam();
    int n = 4 + static_cast<int>(seed % 9); // 4..12 nodes
    auto t = randomGraph(n, seed * 7919 + 13);
    core::MultiTreeAllReduce mt;
    auto s = mt.build(t, static_cast<std::uint64_t>(n) * 256);
    auto r = coll::validateSchedule(s, t);
    ASSERT_TRUE(r.ok) << t.name() << ": " << r.error;
    auto c = coll::validateContentionFree(s, t);
    EXPECT_TRUE(c.ok) << t.name() << ": " << c.error;
    EXPECT_TRUE(coll::checkAllReduceCorrect(
        s, static_cast<std::size_t>(n) * 64))
        << t.name();
    // And it must actually run on the simulated network.
    auto res = runtime::runAllReduce(t, s);
    EXPECT_GT(res.time, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiTreeFuzz,
                         testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace multitree
