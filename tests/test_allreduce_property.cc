/**
 * @file
 * Cross-algorithm property suite: for every (algorithm, topology,
 * size) combination that the algorithm supports, the schedule must
 * validate structurally and produce the exact all-reduce sum through
 * the functional executor. This is the library's strongest invariant
 * sweep, run as a parameterized gtest.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "coll/algorithm.hh"
#include "coll/functional.hh"
#include "coll/validate.hh"
#include "topo/factory.hh"

namespace multitree {
namespace {

using Param = std::tuple<std::string, std::string, std::uint64_t>;

/** Make a topology spec safe for a gtest test name. */
std::string
sanitize(std::string s)
{
    for (auto &c : s) {
        if (c == '-' || c == ':')
            c = '_';
    }
    return s;
}

std::string
sweepName(const testing::TestParamInfo<Param> &info)
{
    const auto &[a, t, b] = info.param;
    return a + "_" + sanitize(t) + "_" + std::to_string(b);
}

std::string
claimName(
    const testing::TestParamInfo<std::tuple<std::string, std::string>>
        &info)
{
    const auto &[a, t] = info.param;
    return a + "_" + sanitize(t);
}

class AllReduceProperty : public testing::TestWithParam<Param>
{
};

TEST_P(AllReduceProperty, ValidatesAndSums)
{
    const auto &[algo_name, topo_spec, bytes] = GetParam();
    auto topo = topo::makeTopology(topo_spec);
    auto algo = coll::makeAlgorithm(algo_name);
    if (!algo->supports(*topo))
        GTEST_SKIP() << algo_name << " does not support " << topo_spec;

    auto sched = algo->build(*topo, bytes);
    EXPECT_EQ(sched.num_nodes, topo->numNodes());
    EXPECT_EQ(sched.total_bytes, bytes);

    auto r = coll::validateSchedule(sched, *topo);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(coll::checkAllReduceCorrect(sched, bytes / 4));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllReduceProperty,
    testing::Combine(
        testing::Values("ring", "dbtree", "ring2d", "hd", "hdrm",
                        "multitree"),
        testing::Values("torus-4x4", "torus-8x8", "mesh-4x4",
                        "mesh-8x8", "mesh-5x3", "fattree-16",
                        "fattree-64", "bigraph-4x8", "bigraph-4x16",
                        "torus3d-4x4x4", "dragonfly-5:2"),
        testing::Values<std::uint64_t>(1024, 64 * 1024)),
    sweepName);

/** Contention-freedom holds where the paper claims it (Table I). */
class ContentionFree
    : public testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(ContentionFree, NoChannelClashes)
{
    const auto &[algo_name, topo_spec] = GetParam();
    auto topo = topo::makeTopology(topo_spec);
    auto algo = coll::makeAlgorithm(algo_name);
    if (!algo->supports(*topo))
        GTEST_SKIP();
    auto sched = algo->build(*topo, 64 * 1024);
    auto r = coll::validateContentionFree(sched, *topo);
    EXPECT_TRUE(r.ok) << r.error;
}

INSTANTIATE_TEST_SUITE_P(
    Claims, ContentionFree,
    testing::Values(
        // Ring is contention-free on tori (perfect embedded ring).
        std::tuple{"ring", "torus-4x4"},
        std::tuple{"ring", "torus-8x8"},
        // 2D-Ring is contention-free on tori.
        std::tuple{"ring2d", "torus-4x4"},
        std::tuple{"ring2d", "torus-8x8"},
        // HDRM's rank mapping keeps BiGraph clash-free.
        std::tuple{"hdrm", "bigraph-4x8"},
        std::tuple{"hdrm", "bigraph-4x16"},
        // MultiTree is contention-free everywhere by construction.
        std::tuple{"multitree", "torus-4x4"},
        std::tuple{"multitree", "torus-8x8"},
        std::tuple{"multitree", "mesh-4x4"},
        std::tuple{"multitree", "mesh-8x8"},
        std::tuple{"multitree", "fattree-16"},
        std::tuple{"multitree", "fattree-64"},
        std::tuple{"multitree", "bigraph-4x8"},
        std::tuple{"multitree", "bigraph-4x16"}),
    claimName);

} // namespace
} // namespace multitree
