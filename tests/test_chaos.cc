/**
 * @file
 * Self-healing fabric tests: failure detection, rail failover, route
 * repair, resumable collectives — and a seeded chaos sweep.
 *
 * Headline property: a permanent link or rail kill either ends in a
 * recovered run whose reduced data the exact-arithmetic DataPlane
 * oracle certifies bit-identical, or in a clean structured RunReport
 * abort — never a hang, never a crash. The acceptance scenario kills
 * one spine rail of a 2-rail hierarchical fabric mid-collective and
 * requires completion via failover on both network backends.
 *
 * The chaos sweep honors MT_FAULT_SEED (default 1) so the CI
 * chaos-smoke job can replay it under several fixed seeds.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "coll/algorithm.hh"
#include "coll/data_plane.hh"
#include "coll/hierarchical.hh"
#include "common/random.hh"
#include "fault/fault.hh"
#include "fault/health.hh"
#include "ni/nic_engine.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"
#include "topo/hierarchical.hh"

namespace multitree {
namespace {

/** Seed for the chaos sweep; CI replays several values. */
std::uint64_t
faultSeed()
{
    const char *env = std::getenv("MT_FAULT_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

void
expectSameResult(const runtime::RunResult &a,
                 const runtime::RunResult &b)
{
    EXPECT_EQ(a.time, b.time);
    EXPECT_DOUBLE_EQ(a.bandwidth, b.bandwidth);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_DOUBLE_EQ(a.payload_flits, b.payload_flits);
    EXPECT_DOUBLE_EQ(a.head_flits, b.head_flits);
    EXPECT_DOUBLE_EQ(a.flit_hops, b.flit_hops);
    EXPECT_DOUBLE_EQ(a.head_hops, b.head_hops);
    EXPECT_EQ(a.nop_windows, b.nop_windows);
}

/** Wire a DataPlane oracle into @p machine's accept stream. */
void
attachOracle(runtime::Machine &machine, coll::DataPlane &plane)
{
    machine.setAcceptSink([&plane](const net::Message &msg) {
        if (msg.tag == ni::kTagAck)
            return;
        plane.onAccept(msg.src, msg.dst, msg.flow_id,
                       msg.tag == ni::kTagGather, msg.corrupted);
    });
}

/**
 * Spine channels of rail @p rail at island @p island's gateway,
 * both directions — the physical extent of one --kill-rail.
 */
std::vector<int>
railChannels(const topo::HierarchicalTopology &hier, int island,
             int rail)
{
    const topo::RailGroups rg = topo::buildRailGroups(hier);
    const int gateway = hier.globalNode(island, 0);
    std::vector<int> out;
    for (const auto &ch : hier.channels()) {
        if (!hier.isSpineChannel(ch.id))
            continue;
        if (ch.src != gateway && ch.dst != gateway)
            continue;
        if (rg.railOf(ch.id) == rail)
            out.push_back(ch.id);
    }
    return out;
}

// --- HealthMonitor unit behaviour ---------------------------------

TEST(HealthMonitor, ThresholdConfirmsAndFiresVerdictOnce)
{
    fault::RecoveryOptions opts;
    opts.policy = fault::RecoveryPolicy::Failover;
    opts.dead_after = 3;
    fault::HealthMonitor mon(opts, 8);
    int verdicts = 0;
    int dead_channel = -1;
    Tick dead_tick = 0;
    mon.onVerdict([&](int channel, Tick now) {
        ++verdicts;
        dead_channel = channel;
        dead_tick = now;
    });

    mon.reportEvidence(5, 1, 100);
    mon.reportEvidence(5, 2, 200);
    EXPECT_FALSE(mon.confirmedDead(5));
    EXPECT_EQ(verdicts, 0);
    mon.reportEvidence(5, 3, 300);
    EXPECT_TRUE(mon.confirmedDead(5));
    EXPECT_EQ(verdicts, 1);
    EXPECT_EQ(dead_channel, 5);
    EXPECT_EQ(dead_tick, 300u);
    // Further evidence for a confirmed channel is a no-op.
    mon.reportEvidence(5, 4, 400);
    EXPECT_EQ(verdicts, 1);
    EXPECT_EQ(mon.deadCount(), 1u);
    EXPECT_EQ(mon.deadChannels(), std::vector<int>{5});

    // Verdicts name only the channel that crossed the threshold.
    EXPECT_FALSE(mon.confirmedDead(4));
    EXPECT_EQ(mon.firstDeadOn({1, 4, 5, 6}), 5);
    EXPECT_EQ(mon.firstDeadOn({1, 4, 6}), -1);

    mon.reset();
    EXPECT_FALSE(mon.confirmedDead(5));
    EXPECT_EQ(mon.deadCount(), 0u);
}

// --- The acceptance scenario: spine-rail failover -----------------

class RailFailover
    : public ::testing::TestWithParam<runtime::Backend>
{};

// Kill one spine rail of a 2-rail hierarchical fabric permanently
// mid-collective. The health monitor must confirm the dead rail, the
// runtime must mask it from its steering group and resume the open
// transfers over the surviving rail, and the collective must finish
// with bit-identical reduced data — on both backends.
TEST_P(RailFailover, SpineRailKillCompletesViaFailover)
{
    auto topo =
        topo::makeTopology("hier:torus-2x2+fattree-2:2:2,rails=2");
    auto *hier = dynamic_cast<const topo::HierarchicalTopology *>(
        topo.get());
    ASSERT_NE(hier, nullptr);
    ASSERT_EQ(hier->rails(), 2);
    const std::vector<int> rail = railChannels(*hier, 1, 1);
    ASSERT_FALSE(rail.empty());

    runtime::RunOptions opts;
    opts.backend = GetParam();
    opts.reliability.enabled = true;
    opts.recovery.policy = fault::RecoveryPolicy::Failover;
    fault::FaultConfig fc;
    fc.seed = faultSeed();
    for (int cid : rail) {
        fault::LinkFault lf;
        lf.channel = cid;
        lf.from = 2000;
        lf.down = true;
        fc.links.push_back(lf);
    }
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);

    auto sched = coll::composeHierarchical(*hier, "multitree",
                                           "ring", 64 * KiB);
    coll::DataPlane plane(sched);
    attachOracle(machine, plane);
    auto rep = machine.tryRun(sched);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    EXPECT_TRUE(plane.consistent()) << plane.describeMismatch();

    // The repair actually happened: dead verdicts, at least one rail
    // masked, open transfers re-issued, all within the epoch bound.
    const fault::RecoveryCounters &rc = rep.recovery;
    EXPECT_GT(rc.links_dead, 0u);
    EXPECT_GT(rc.rails_failed_over, 0u);
    EXPECT_GT(rc.resumed_transfers, 0u);
    EXPECT_GT(rc.resume_epochs, 0u);
    EXPECT_LE(rc.resume_epochs,
              opts.recovery.max_resume_epochs);
    EXPECT_EQ(rc.routes_repaired, 0u); // failover never rewrites
    EXPECT_GT(rep.dropped, 0u);        // the kill was real
    EXPECT_TRUE(machine.idle());
    machine.setAcceptSink(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, RailFailover,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

// --- Route repair + resume on pinned source routes ----------------

class RepairResume
    : public ::testing::TestWithParam<runtime::Backend>
{};

// Kill a channel the MultiTree schedule provably crosses on a flat
// torus (no parallel rail to fail over to). Under RepairResume the
// runtime must rewrite the affected steer-pinned source routes via
// BFS around the dead link — flagging them as repaired — and resume
// to oracle-certified completion.
TEST_P(RepairResume, PinnedRouteRepairCompletesAroundDeadLink)
{
    auto topo = topo::makeTopology("torus-4x4");
    auto sched =
        coll::makeAlgorithm("multitree")->build(*topo, 64 * KiB);
    const auto &edge = sched.flows[0].reduce[0];
    auto route = edge.route.empty()
                     ? topo->route(edge.src, edge.dst)
                     : edge.route;
    ASSERT_FALSE(route.empty());
    const int downed = route[0];

    runtime::RunOptions opts;
    opts.backend = GetParam();
    opts.reliability.enabled = true;
    opts.recovery.policy = fault::RecoveryPolicy::RepairResume;
    fault::FaultConfig fc;
    fc.seed = faultSeed();
    fault::LinkFault lf;
    lf.channel = downed;
    lf.from = 1000;
    lf.down = true;
    fc.links.push_back(lf);
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);

    coll::DataPlane plane(sched);
    attachOracle(machine, plane);
    auto rep = machine.tryRun(sched);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    EXPECT_TRUE(plane.consistent()) << plane.describeMismatch();

    const fault::RecoveryCounters &rc = rep.recovery;
    EXPECT_GT(rc.links_dead, 0u);
    EXPECT_GT(rc.routes_repaired, 0u);
    EXPECT_GT(rc.pinned_repairs, 0u);
    EXPECT_GT(rc.resumed_transfers, 0u);
    EXPECT_GT(rep.dropped, 0u);
    // The report accessor and the machine agree.
    EXPECT_EQ(rc.links_dead,
              machine.recoveryCounters().links_dead);
    EXPECT_TRUE(machine.idle());
    machine.setAcceptSink(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, RepairResume,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

// --- Inertness of the armed-but-idle layer ------------------------

class RecoveryInert
    : public ::testing::TestWithParam<runtime::Backend>
{};

// An armed recovery policy on a fault-free fabric never triggers and
// must be tick-identical to the same machine with recovery off: the
// monitor's evidence bookkeeping is pure accounting, and the
// dead-aware routing paths only diverge once a verdict exists.
TEST_P(RecoveryInert, ArmedButIdleIsTickIdentical)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions off;
    off.backend = GetParam();
    off.reliability.enabled = true;
    runtime::Machine base(*topo, off);

    runtime::RunOptions armed = off;
    armed.recovery.policy = fault::RecoveryPolicy::RepairResume;
    runtime::Machine healing(*topo, armed);

    for (const std::string algo : {"ring", "multitree"}) {
        SCOPED_TRACE(algo);
        auto a = base.tryRun(algo, 64 * KiB);
        auto b = healing.tryRun(algo, 64 * KiB);
        ASSERT_TRUE(a.ok) << a.diagnostic;
        ASSERT_TRUE(b.ok) << b.diagnostic;
        expectSameResult(a.result, b.result);
        const fault::RecoveryCounters &rc = b.recovery;
        EXPECT_EQ(rc.links_dead, 0u);
        EXPECT_EQ(rc.resume_epochs, 0u);
        EXPECT_EQ(b.retx_into_dead_link, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, RecoveryInert,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

// --- Recovery off: the sharpened structured abort -----------------

// With recovery off a permanent kill must still end in the watchdog's
// structured abort — now ranking the downed channel first among the
// suspects from the failure-evidence counters.
TEST(StallDiagnostic, RanksTheDownedChannelAsTopSuspect)
{
    auto topo = topo::makeTopology("torus-4x4");
    auto sched =
        coll::makeAlgorithm("ring")->build(*topo, 16 * KiB);
    const auto &edge = sched.flows[0].reduce[0];
    auto route = edge.route.empty()
                     ? topo->route(edge.src, edge.dst)
                     : edge.route;
    const int downed = route[0];

    runtime::RunOptions opts;
    opts.reliability.enabled = true;
    opts.reliability.max_attempts = 3;
    fault::FaultConfig fc;
    fault::LinkFault lf;
    lf.channel = downed;
    lf.down = true;
    fc.links.push_back(lf);
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);

    auto rep = machine.tryRun(sched);
    EXPECT_FALSE(rep.ok);
    EXPECT_TRUE(machine.idle());
    ASSERT_NE(rep.diagnostic.find("suspect channel"),
              std::string::npos)
        << rep.diagnostic;
    // The downed channel leads the ranking: it appears on the first
    // suspect line after the header.
    const auto header = rep.diagnostic.find("suspect channel");
    const auto line = rep.diagnostic.find('\n', header);
    ASSERT_NE(line, std::string::npos);
    const auto end = rep.diagnostic.find('\n', line + 1);
    const std::string first =
        rep.diagnostic.substr(line + 1, end - line - 1);
    EXPECT_NE(first.find("channel " + std::to_string(downed)),
              std::string::npos)
        << rep.diagnostic;
}

// --- The chaos sweep ----------------------------------------------

class Chaos : public ::testing::TestWithParam<runtime::Backend>
{};

// Seeded random kill schedules across algorithms, topologies and
// backends. Every run must terminate inside the ctest watchdog bound
// in one of exactly two ways: a recovered success whose data the
// oracle certifies, or a clean structured abort that leaves the
// machine idle. Crashes and hangs are the bugs this sweep exists to
// catch; which of the two legal outcomes a given draw lands on is
// the fabric's call (a killed terminal link is unroutable-around).
TEST_P(Chaos, RandomKillsRecoverOrAbortCleanly)
{
    struct Config {
        const char *topo;
        const char *algo;
    };
    const Config configs[] = {
        {"torus-4x4", "multitree"},
        {"fattree-16", "ring"},
        {"hier:torus-2x2+fattree-2:2:2,rails=2", "ring"},
    };
    const std::uint64_t bytes =
        GetParam() == runtime::Backend::Flit ? 8 * KiB : 32 * KiB;
    Rng rng(faultSeed() * 7919 + 17);

    int recovered = 0;
    int aborted = 0;
    for (const auto &cfg : configs) {
        auto topo = topo::makeTopology(cfg.topo);
        auto algo = coll::makeAlgorithm(cfg.algo);
        ASSERT_TRUE(algo->supports(*topo)) << cfg.topo;
        auto sched = algo->build(*topo, bytes);
        for (int draw = 0; draw < 3; ++draw) {
            SCOPED_TRACE(std::string(cfg.topo) + "/" + cfg.algo
                         + " draw " + std::to_string(draw));
            runtime::RunOptions opts;
            opts.backend = GetParam();
            opts.reliability.enabled = true;
            opts.recovery.policy =
                fault::RecoveryPolicy::RepairResume;
            fault::FaultConfig fc;
            fc.seed = faultSeed() + 31 * draw;
            // One or two random permanent kills at a random tick.
            const int kills =
                1 + static_cast<int>(rng.nextBounded(2));
            for (int k = 0; k < kills; ++k) {
                fault::LinkFault lf;
                lf.channel = static_cast<int>(rng.nextBounded(
                    static_cast<std::uint64_t>(
                        topo->numChannels())));
                lf.from = rng.nextBounded(20000);
                lf.down = true;
                fc.links.push_back(lf);
            }
            opts.fault = fc;
            runtime::Machine machine(*topo, opts);
            coll::DataPlane plane(sched);
            attachOracle(machine, plane);
            auto rep = machine.tryRun(sched);
            if (rep.ok) {
                EXPECT_TRUE(plane.consistent())
                    << plane.describeMismatch();
                ++recovered;
            } else {
                // Structured abort: a diagnostic, a drained fabric.
                EXPECT_FALSE(rep.diagnostic.empty());
                ++aborted;
            }
            EXPECT_LE(rep.recovery.resume_epochs,
                      opts.recovery.max_resume_epochs);
            EXPECT_TRUE(machine.idle());
            machine.setAcceptSink(nullptr);
        }
    }
    // Every draw landed on one of the two legal outcomes.
    EXPECT_EQ(recovered + aborted, 9);
    // A sweep where nothing ever recovers would mean the healing
    // layer is inert; random single-link kills on these fabrics are
    // overwhelmingly routable-around.
    EXPECT_GT(recovered, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, Chaos,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

} // namespace
} // namespace multitree
