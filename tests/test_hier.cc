/**
 * @file
 * Hierarchical fabric and composed-collective suite.
 *
 * Covers the island+spine composition end to end: the
 * HierarchicalTopology vertex/channel layout and factory spec, the
 * validator's edge-existence check, composeHierarchical()'s schedule
 * structure (validated and functionally exact for island × spine
 * algorithm combinations), DataPlane-certified execution on both
 * network backends — lossless and under injected faults with the
 * reliability layer on — and rail-aware NIC striping: round-robin
 * spreads load over every spine rail, and queue-depth steering makes
 * a multi-rail spine strictly faster than the single-rail build.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "coll/data_plane.hh"
#include "coll/functional.hh"
#include "coll/hierarchical.hh"
#include "coll/schedule.hh"
#include "coll/validate.hh"
#include "common/units.hh"
#include "ni/nic_engine.hh"
#include "obs/profile.hh"
#include "runtime/machine.hh"
#include "topo/custom.hh"
#include "topo/factory.hh"
#include "topo/hierarchical.hh"

namespace multitree {
namespace {

/** Wire a DataPlane oracle into @p machine's accept stream. */
void
attachOracle(runtime::Machine &machine, coll::DataPlane &plane)
{
    machine.setAcceptSink([&plane](const net::Message &msg) {
        if (msg.tag == ni::kTagAck)
            return;
        plane.onAccept(msg.src, msg.dst, msg.flow_id,
                       msg.tag == ni::kTagGather, msg.corrupted);
    });
}

// --- Topology composition -----------------------------------------

TEST(HierTopology, ComposedLayout)
{
    auto base = topo::makeTopology("hier:torus-2x2+mesh-2x2,rails=2");
    auto *hier =
        dynamic_cast<const topo::HierarchicalTopology *>(base.get());
    ASSERT_NE(hier, nullptr);

    EXPECT_EQ(hier->numNodes(), 16);
    EXPECT_EQ(hier->numIslands(), 4);
    EXPECT_EQ(hier->islandSize(), 4);
    EXPECT_EQ(hier->rails(), 2);

    // Every end node belongs to its id/islandSize island; the global
    // numbering round-trips through globalNode().
    for (int v = 0; v < hier->numNodes(); ++v) {
        EXPECT_EQ(hier->islandOf(v), v / 4);
        EXPECT_EQ(hier->globalNode(v / 4, v % 4), v);
    }

    // Bidirectional links keep the reverse-pair channel convention
    // across both the replicated islands and the multi-rail spine.
    for (int c = 0; c < hier->numChannels(); ++c)
        EXPECT_EQ(hier->reverseChannel(hier->reverseChannel(c)), c);

    // mesh-2x2 spine: 4 undirected links, each widened to 2 rails.
    auto rails = topo::buildRailGroups(*hier);
    ASSERT_FALSE(rails.empty());
    EXPECT_EQ(rails.groups.size(), 8u); // 4 links x 2 directions
    for (const auto &group : rails.groups) {
        EXPECT_EQ(group.size(), 2u);
        for (std::size_t r = 0; r < group.size(); ++r) {
            EXPECT_TRUE(hier->isSpineChannel(group[r]));
            EXPECT_EQ(rails.railOf(group[r]), static_cast<int>(r));
        }
    }
    EXPECT_EQ(rails.maxRails(), 2);

    // Intra-island (torus-2x2) channels are single-rail.
    EXPECT_EQ(rails.railOf(0), 0);
    EXPECT_EQ(rails.group_of[0], -1);

    // ringOrder() is a permutation of every end node.
    auto order = hier->ringOrder();
    ASSERT_EQ(order.size(), 16u);
    std::vector<bool> seen(16, false);
    for (int v : order) {
        ASSERT_GE(v, 0);
        ASSERT_LT(v, 16);
        EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
        seen[static_cast<std::size_t>(v)] = true;
    }

    // Deterministic routing crosses islands through the spine.
    auto route = hier->route(1, 5);
    EXPECT_FALSE(route.empty());
}

TEST(HierTopology, FlatFabricsHaveNoRailGroups)
{
    for (const char *spec :
         {"torus-4x4", "mesh-4x4", "fattree-16", "bigraph-4x8"}) {
        SCOPED_TRACE(spec);
        auto topo = topo::makeTopology(spec);
        EXPECT_TRUE(topo::buildRailGroups(*topo).empty());
    }
    // rails=1 hierarchies are likewise single-rail everywhere.
    auto one = topo::makeTopology("hier:torus-2x2+mesh-2x2");
    EXPECT_TRUE(topo::buildRailGroups(*one).empty());
}

TEST(HierTopology, AlgoNameParses)
{
    std::string island;
    std::string spine;
    EXPECT_TRUE(
        coll::parseHierarchicalAlgo("hier:ring+dbtree", island, spine));
    EXPECT_EQ(island, "ring");
    EXPECT_EQ(spine, "dbtree");
    EXPECT_FALSE(coll::parseHierarchicalAlgo("ring", island, spine));
    EXPECT_FALSE(
        coll::parseHierarchicalAlgo("hier:ring", island, spine));
}

// --- Validator edge-existence regression --------------------------

// Before the fix, validateSchedule accepted deterministically-routed
// edges between nodes with no connecting path; the first sign of the
// bad schedule was a panic deep in the NI's route resolution. The
// validator must reject it with a diagnostic instead.
TEST(HierValidate, RejectsEdgeWithNoPath)
{
    // Two disconnected components: {0,1} and {2,3}.
    topo::CustomTopology split("split");
    for (int i = 0; i < 4; ++i)
        split.addNode();
    split.connect(0, 1);
    split.connect(2, 3);

    coll::Schedule sched;
    sched.algorithm = "handmade";
    sched.num_nodes = 4;
    coll::ChunkFlow f;
    f.flow_id = 0;
    f.root = 0;
    f.fraction = 1.0;
    f.reduce.push_back(coll::ScheduledEdge{1, 0, 1, {}});
    f.reduce.push_back(coll::ScheduledEdge{3, 2, 1, {}});
    f.reduce.push_back(coll::ScheduledEdge{2, 0, 2, {}}); // no path
    f.gather.push_back(coll::ScheduledEdge{0, 1, 3, {}});
    f.gather.push_back(coll::ScheduledEdge{0, 2, 3, {}}); // no path
    f.gather.push_back(coll::ScheduledEdge{2, 3, 4, {}});
    sched.flows.push_back(f);
    sched.assignBytes(64);

    auto bad = coll::validateSchedule(sched, split);
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("no path"), std::string::npos)
        << bad.error;

    // The identical schedule on a connected fabric is fine.
    topo::CustomTopology joined("joined");
    for (int i = 0; i < 4; ++i)
        joined.addNode();
    joined.connect(0, 1);
    joined.connect(2, 3);
    joined.connect(0, 2);
    EXPECT_TRUE(coll::validateSchedule(sched, joined).ok);
}

// --- Composed schedules -------------------------------------------

const char *const kIslandAlgos[] = {"ring", "multitree"};
const char *const kSpineAlgos[] = {"ring", "dbtree"};

TEST(HierCompose, ValidatedAndFunctionallyExact)
{
    auto base = topo::makeTopology("hier:torus-2x2+mesh-2x2,rails=2");
    auto *hier =
        dynamic_cast<const topo::HierarchicalTopology *>(base.get());
    ASSERT_NE(hier, nullptr);
    const std::uint64_t bytes = 4 * KiB;

    for (const char *island : kIslandAlgos) {
        for (const char *spine : kSpineAlgos) {
            SCOPED_TRACE(std::string(island) + "+" + spine);
            auto sched = coll::composeHierarchical(
                *hier, std::string(island), std::string(spine),
                bytes);
            EXPECT_EQ(sched.algorithm, std::string("hier:") + island
                                           + "+" + spine);
            EXPECT_EQ(sched.num_nodes, 16);
            EXPECT_FALSE(sched.lockstep);
            auto ok = coll::validateSchedule(sched, *hier);
            EXPECT_TRUE(ok.ok) << ok.error;
            EXPECT_TRUE(
                coll::checkAllReduceCorrect(sched, bytes / 4));
        }
    }
}

// --- Oracle-certified execution on both backends ------------------

class HierBackend : public ::testing::TestWithParam<runtime::Backend>
{
};

TEST_P(HierBackend, OracleCertifiesComposedCombos)
{
    auto base = topo::makeTopology("hier:torus-2x2+mesh-2x2,rails=2");
    auto *hier =
        dynamic_cast<const topo::HierarchicalTopology *>(base.get());
    ASSERT_NE(hier, nullptr);
    const std::uint64_t bytes =
        GetParam() == runtime::Backend::Flit ? 16 * KiB : 64 * KiB;

    runtime::RunOptions opts;
    opts.backend = GetParam();
    runtime::Machine machine(*base, opts);
    for (const char *island : kIslandAlgos) {
        for (const char *spine : kSpineAlgos) {
            SCOPED_TRACE(std::string(island) + "+" + spine);
            auto sched = coll::composeHierarchical(
                *hier, std::string(island), std::string(spine),
                bytes);
            coll::DataPlane plane(sched);
            attachOracle(machine, plane);
            auto res = machine.run(sched);
            EXPECT_GT(res.time, 0u);
            EXPECT_TRUE(plane.consistent())
                << plane.describeMismatch();
            machine.setAcceptSink(nullptr);
        }
    }
}

// Faulted reliable run: drops and corruptions are retransmitted and
// the composed result stays bit-exact.
TEST_P(HierBackend, OracleCertifiesFaultedReliableRun)
{
    auto base = topo::makeTopology("hier:torus-2x2+mesh-2x2,rails=2");
    auto *hier =
        dynamic_cast<const topo::HierarchicalTopology *>(base.get());
    ASSERT_NE(hier, nullptr);
    const std::uint64_t bytes =
        GetParam() == runtime::Backend::Flit ? 16 * KiB : 256 * KiB;

    runtime::RunOptions opts;
    opts.backend = GetParam();
    opts.reliability.enabled = true;
    fault::FaultConfig fc;
    fc.seed = 1;
    fc.drop_prob = 1e-3;
    fc.corrupt_prob = 1e-4;
    opts.fault = fc;
    runtime::Machine machine(*base, opts);

    auto sched = coll::composeHierarchical(*hier, "multitree", "ring",
                                           bytes);
    coll::DataPlane plane(sched);
    attachOracle(machine, plane);
    auto rep = machine.tryRun(sched);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    EXPECT_TRUE(plane.consistent()) << plane.describeMismatch();
}

// Machine::run(name, bytes) resolves "hier:" names through the same
// composition path the explicit overload uses.
TEST_P(HierBackend, NamedRunMatchesExplicitComposition)
{
    auto base = topo::makeTopology("hier:torus-2x2+mesh-2x2,rails=2");
    auto *hier =
        dynamic_cast<const topo::HierarchicalTopology *>(base.get());
    ASSERT_NE(hier, nullptr);
    const std::uint64_t bytes = 16 * KiB;

    runtime::RunOptions opts;
    opts.backend = GetParam();
    runtime::Machine machine(*base, opts);
    auto named = machine.run("hier:ring+dbtree", bytes);
    auto sched =
        coll::composeHierarchical(*hier, "ring", "dbtree", bytes);
    auto explicit_run = machine.run(sched);
    EXPECT_EQ(named.time, explicit_run.time);
    EXPECT_EQ(named.messages, explicit_run.messages);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, HierBackend,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow" : "Flit";
    });

// --- Rail-aware striping ------------------------------------------

/** Per-rail message totals over every multi-rail channel group. */
std::vector<std::uint64_t>
railMessageTotals(const topo::Topology &topo,
                  const obs::Profiler &prof)
{
    auto rails = topo::buildRailGroups(topo);
    std::vector<std::uint64_t> totals(
        static_cast<std::size_t>(rails.maxRails()), 0);
    const auto &chans = prof.channels();
    for (const auto &group : rails.groups) {
        for (std::size_t r = 0; r < group.size(); ++r) {
            auto cid = static_cast<std::size_t>(group[r]);
            if (cid < chans.size())
                totals[r] += chans[cid].messages;
        }
    }
    return totals;
}

// Round-robin steering must put traffic on every rail of a 4-rail
// spine — the per-rail load spread the heatmap rollup visualizes.
TEST(HierRails, RoundRobinSpreadsAcrossEveryRail)
{
    auto topo = topo::makeTopology("hier:torus-2x2+mesh-2x2,rails=4");
    obs::Profiler prof;
    runtime::RunOptions opts;
    opts.backend = runtime::Backend::Flow;
    opts.profiler = &prof;
    runtime::Machine machine(*topo, opts);
    auto res = machine.run("hier:ring+ring", 256 * KiB);
    EXPECT_GT(res.time, 0u);

    auto totals = railMessageTotals(*topo, prof);
    ASSERT_EQ(totals.size(), 4u);
    for (std::size_t r = 0; r < totals.size(); ++r)
        EXPECT_GT(totals[r], 0u) << "rail " << r << " idle";
}

// Queue-depth steering exploits the parallel rails: the multi-rail
// spine strictly beats the single-rail build of the same fabric.
TEST(HierRails, BacklogSteeringBeatsSingleRail)
{
    const std::uint64_t bytes = 1 * MiB;
    Tick times[2] = {0, 0};
    const char *specs[2] = {"hier:torus-2x2+fattree-2:2:2",
                            "hier:torus-2x2+fattree-2:2:2,rails=2"};
    for (int i = 0; i < 2; ++i) {
        auto topo = topo::makeTopology(specs[i]);
        runtime::RunOptions opts;
        opts.backend = runtime::Backend::Flow;
        opts.rail_policy = ni::RailPolicy::Backlog;
        runtime::Machine machine(*topo, opts);
        times[i] = machine.run("hier:multitree+ring", bytes).time;
    }
    EXPECT_LT(times[1], times[0]);
}

// The backlog policy also completes (and certifies) on the flit
// backend, where per-channel backlog drains at cycle granularity.
TEST(HierRails, BacklogPolicyCertifiesOnFlit)
{
    auto base = topo::makeTopology("hier:torus-2x2+mesh-2x2,rails=2");
    auto *hier =
        dynamic_cast<const topo::HierarchicalTopology *>(base.get());
    ASSERT_NE(hier, nullptr);
    runtime::RunOptions opts;
    opts.backend = runtime::Backend::Flit;
    opts.rail_policy = ni::RailPolicy::Backlog;
    runtime::Machine machine(*base, opts);
    auto sched =
        coll::composeHierarchical(*hier, "ring", "ring", 16 * KiB);
    coll::DataPlane plane(sched);
    attachOracle(machine, plane);
    auto res = machine.run(sched);
    EXPECT_GT(res.time, 0u);
    EXPECT_TRUE(plane.consistent()) << plane.describeMismatch();
}

// --- Observability metadata ---------------------------------------

TEST(HierRails, FabricInfoCarriesRailAndIslandMetadata)
{
    auto topo = topo::makeTopology("hier:torus-2x2+mesh-2x2,rails=2");
    runtime::Machine machine(*topo);
    auto info = machine.fabricInfo();
    EXPECT_EQ(info.rails, 2);
    EXPECT_EQ(info.num_islands, 4);
    EXPECT_EQ(info.island_size, 4);
    bool saw_rail1 = false;
    for (const auto &link : info.links)
        saw_rail1 = saw_rail1 || link.rail == 1;
    EXPECT_TRUE(saw_rail1);

    // Flat fabrics report the single-rail defaults.
    auto flat = topo::makeTopology("torus-4x4");
    runtime::Machine flat_machine(*flat);
    auto flat_info = flat_machine.fabricInfo();
    EXPECT_EQ(flat_info.rails, 1);
    EXPECT_EQ(flat_info.num_islands, 0);
    for (const auto &link : flat_info.links)
        EXPECT_EQ(link.rail, 0);
}

} // namespace
} // namespace multitree
