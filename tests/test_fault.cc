/**
 * @file
 * Fault-injection and end-to-end reliability tests.
 *
 * Headline property: every registered all-reduce algorithm, on both
 * network backends, completes with bit-identical reduced data under
 * injected message drops and corruptions once retransmission is
 * enabled — certified by the exact-arithmetic coll::DataPlane
 * oracle. Around it: FaultPlan determinism, degraded-link latency
 * accounting, corruption detection with the reliability layer off,
 * the progress watchdog's structured abort on a permanently downed
 * link, and machine reusability after an abort.
 *
 * The probabilistic tests honor MT_FAULT_SEED (default 1) so the CI
 * smoke job can replay the suite under several fixed seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "coll/algorithm.hh"
#include "coll/data_plane.hh"
#include "fault/fault.hh"
#include "ni/nic_engine.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

namespace multitree {
namespace {

/** Seed for the probabilistic tests; CI replays several values. */
std::uint64_t
faultSeed()
{
    const char *env = std::getenv("MT_FAULT_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

void
expectSameResult(const runtime::RunResult &a,
                 const runtime::RunResult &b)
{
    EXPECT_EQ(a.time, b.time);
    EXPECT_DOUBLE_EQ(a.bandwidth, b.bandwidth);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_DOUBLE_EQ(a.payload_flits, b.payload_flits);
    EXPECT_DOUBLE_EQ(a.head_flits, b.head_flits);
    EXPECT_DOUBLE_EQ(a.flit_hops, b.flit_hops);
    EXPECT_DOUBLE_EQ(a.head_hops, b.head_hops);
    EXPECT_EQ(a.nop_windows, b.nop_windows);
}

/** Wire a DataPlane oracle into @p machine's accept stream. */
void
attachOracle(runtime::Machine &machine, coll::DataPlane &plane)
{
    machine.setAcceptSink([&plane](const net::Message &msg) {
        if (msg.tag == ni::kTagAck)
            return;
        plane.onAccept(msg.src, msg.dst, msg.flow_id,
                       msg.tag == ni::kTagGather, msg.corrupted);
    });
}

// --- FaultPlan unit behaviour -------------------------------------

TEST(FaultPlan, SameSeedSameFates)
{
    fault::FaultConfig cfg;
    cfg.seed = faultSeed();
    cfg.drop_prob = 0.1;
    cfg.corrupt_prob = 0.1;
    fault::FaultPlan a(cfg, 8);
    fault::FaultPlan b(cfg, 8);
    net::Message msg;
    msg.route = {0, 1};
    for (int i = 0; i < 1000; ++i) {
        auto fa = a.onInject(msg, i);
        auto fb = b.onInject(msg, i);
        EXPECT_EQ(fa.drop, fb.drop);
        EXPECT_EQ(fa.corrupt, fb.corrupt);
    }
}

TEST(FaultPlan, ResetReplaysTheStream)
{
    fault::FaultConfig cfg;
    cfg.seed = faultSeed();
    cfg.drop_prob = 0.2;
    fault::FaultPlan plan(cfg, 4);
    net::Message msg;
    msg.route = {2};
    std::vector<bool> first;
    for (int i = 0; i < 500; ++i)
        first.push_back(plan.onInject(msg, i).drop);
    plan.reset();
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(plan.onInject(msg, i).drop, first[i]);
    // Some fate must have differed within the stream, or the test
    // proves nothing.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultPlan, LinkDownDropsOnlyCrossingWindowedTraffic)
{
    fault::FaultConfig cfg;
    fault::LinkFault lf;
    lf.channel = 3;
    lf.from = 100;
    lf.until = 200;
    lf.down = true;
    cfg.links.push_back(lf);
    fault::FaultPlan plan(cfg, 8);
    net::Message crossing;
    crossing.route = {1, 3, 5};
    net::Message clear;
    clear.route = {1, 5};
    EXPECT_FALSE(plan.onInject(crossing, 99).drop);  // before window
    EXPECT_TRUE(plan.onInject(crossing, 100).drop);  // inclusive from
    EXPECT_TRUE(plan.onInject(crossing, 199).drop);
    EXPECT_FALSE(plan.onInject(crossing, 200).drop); // exclusive until
    EXPECT_FALSE(plan.onInject(clear, 150).drop);    // other route
    EXPECT_EQ(plan.downedChannelOn(crossing.route, 150), 3);
    EXPECT_EQ(plan.downedChannelOn(crossing.route, 250), -1);
}

TEST(FaultPlan, DisabledPlanRulesNoFault)
{
    fault::FaultConfig cfg;
    cfg.drop_prob = 1.0;
    fault::FaultPlan plan(cfg, 2);
    plan.setEnabled(false);
    net::Message msg;
    msg.route = {0};
    EXPECT_FALSE(plan.onInject(msg, 0).drop);
    plan.setEnabled(true);
    EXPECT_TRUE(plan.onInject(msg, 0).drop);
}

TEST(FaultPlanDeath, RejectsMalformedConfigs)
{
    fault::FaultConfig bad_prob;
    bad_prob.drop_prob = 1.5;
    EXPECT_DEATH(fault::FaultPlan(bad_prob, 4), "probability");

    fault::FaultConfig bad_channel;
    bad_channel.links.push_back(
        fault::LinkFault{9, 0, 10, true, 0});
    EXPECT_DEATH(fault::FaultPlan(bad_channel, 4), "outside");

    fault::FaultConfig empty_window;
    empty_window.links.push_back(
        fault::LinkFault{1, 10, 10, true, 0});
    EXPECT_DEATH(fault::FaultPlan(empty_window, 4), "interval");

    fault::FaultConfig both;
    both.links.push_back(fault::LinkFault{1, 0, 10, true, 5});
    EXPECT_DEATH(fault::FaultPlan(both, 4), "not both");
}

// --- The headline property ----------------------------------------

class FaultedAllReduce
    : public ::testing::TestWithParam<runtime::Backend>
{};

// Every registered algorithm completes under drop/corrupt faults
// once retransmission is on, with the data plane bit-identical to a
// fault-free execution, on both backends. Retransmission work must
// actually happen somewhere across the sweep (the faults are real).
TEST_P(FaultedAllReduce, EveryAlgorithmBitIdenticalUnderFaults)
{
    auto topo = topo::makeTopology("torus-4x4");
    const std::uint64_t bytes =
        GetParam() == runtime::Backend::Flit ? 16 * KiB : 256 * KiB;

    std::uint64_t total_retransmits = 0;
    std::uint64_t total_faults = 0;
    std::uint64_t idx = 0;
    for (const auto &v : coll::algorithmVariants()) {
        auto algo = coll::makeAlgorithm(v.base);
        if (!algo->supports(*topo))
            continue;
        SCOPED_TRACE(v.name);
        // One machine (and fault plan) per variant: beginEpoch()
        // replays a machine's fault stream identically every run, so
        // independent fault draws need per-variant seeds.
        runtime::RunOptions opts;
        opts.backend = GetParam();
        opts.reliability.enabled = true;
        fault::FaultConfig fc;
        fc.seed = faultSeed() + 1000 * idx++;
        fc.drop_prob = 1e-3;
        fc.corrupt_prob = 1e-4;
        opts.fault = fc;
        runtime::Machine machine(*topo, opts);
        auto sched = algo->build(*topo, bytes);
        coll::DataPlane plane(sched);
        attachOracle(machine, plane);
        runtime::RunOverrides ov;
        ov.flow_control = v.flow_control;
        auto rep = machine.tryRun(sched, ov);
        ASSERT_TRUE(rep.ok) << rep.diagnostic;
        EXPECT_TRUE(plane.consistent()) << plane.describeMismatch();
        total_retransmits += rep.retransmits;
        total_faults += rep.dropped + rep.corrupted;
        // Every drop/corruption must be answered by a timeout.
        if (rep.dropped + rep.corrupt_discarded > 0)
            EXPECT_GT(rep.timeouts, 0u);
    }
    // At drop 1e-3 over thousands of injections, a faultless sweep
    // would mean the interposer is not wired at all.
    EXPECT_GT(total_faults, 0u);
    EXPECT_GT(total_retransmits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, FaultedAllReduce,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

// --- In-network reduction certification ---------------------------

class FusedFaultedAllReduce
    : public ::testing::TestWithParam<runtime::Backend>
{};

// In-network multicast and switch-resident combining are transport
// rewrites the collective's semantics must not notice: with
// InNetworkMode::MulticastReduce on, under drops and corruptions
// with retransmission enabled, every algorithm still completes with
// bit-identical reduced data — certified by a DataPlane oracle built
// from the UNFUSED schedule. The sweep runs each variant twice, at
// the default combining capacity and at a single-entry buffer; the
// tiny buffer must actually force the deterministic unicast fallback
// somewhere, or that path went untested.
TEST_P(FusedFaultedAllReduce, BitIdenticalUnderFaultsAndFallback)
{
    // A fat tree, not a torus: direct-torus reduce edges are one-hop
    // neighbor routes with no intermediate switch, so combining never
    // has a vertex to run on there and the fallback assertion below
    // would be vacuous.
    auto topo = topo::makeTopology("fattree-16");
    const std::uint64_t bytes =
        GetParam() == runtime::Backend::Flit ? 16 * KiB : 256 * KiB;

    std::uint64_t total_mcast = 0;
    std::uint64_t total_combined = 0;
    double total_fallbacks = 0;
    std::uint64_t idx = 0;
    for (const auto &v : coll::algorithmVariants()) {
        auto algo = coll::makeAlgorithm(v.base);
        if (!algo->supports(*topo))
            continue;
        for (std::uint32_t entries : {0u, 1u}) {
            SCOPED_TRACE(v.name + (entries == 0 ? "/default"
                                                : "/tiny-buffer"));
            runtime::RunOptions opts;
            opts.backend = GetParam();
            opts.reliability.enabled = true;
            opts.net.in_network = net::InNetworkMode::MulticastReduce;
            if (entries > 0)
                opts.net.combiner_entries = entries;
            fault::FaultConfig fc;
            fc.seed = faultSeed() + 1000 * idx++;
            fc.drop_prob = 1e-3;
            fc.corrupt_prob = 1e-4;
            opts.fault = fc;
            runtime::Machine machine(*topo, opts);
            auto sched = algo->build(*topo, bytes);
            coll::DataPlane plane(sched);
            attachOracle(machine, plane);
            runtime::RunOverrides ov;
            ov.flow_control = v.flow_control;
            auto rep = machine.tryRun(sched, ov);
            ASSERT_TRUE(rep.ok) << rep.diagnostic;
            EXPECT_TRUE(plane.consistent())
                << plane.describeMismatch();
            total_mcast += rep.result.mcast_injections;
            total_combined += rep.result.combined_groups;
            total_fallbacks +=
                machine.network().stats().get("combiner_fallbacks");
        }
    }
    // The sweep must exercise the machinery it certifies: fused
    // injections, completed combines, and capacity-forced fallbacks.
    EXPECT_GT(total_mcast, 0u);
    EXPECT_GT(total_combined, 0u);
    EXPECT_GT(total_fallbacks, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, FusedFaultedAllReduce,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

// --- Bit-identity of the lossless paths ---------------------------

class LosslessIdentity
    : public ::testing::TestWithParam<runtime::Backend>
{};

// A machine carrying a (disabled) fault plan and no reliability is
// bit-identical to one built without either — the new code paths are
// inert until switched on.
TEST_P(LosslessIdentity, DisabledFaultPlanChangesNothing)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions plain;
    plain.backend = GetParam();
    runtime::Machine base(*topo, plain);

    runtime::RunOptions faulted = plain;
    fault::FaultConfig fc;
    fc.seed = faultSeed();
    fc.drop_prob = 0.5;
    faulted.fault = fc;
    runtime::Machine carrier(*topo, faulted);

    const std::uint64_t bytes = 64 * KiB;
    for (const std::string algo : {"ring", "multitree"}) {
        SCOPED_TRACE(algo);
        runtime::RunOverrides ov;
        ov.inject_faults = false;
        expectSameResult(carrier.run(algo, bytes, ov),
                         base.run(algo, bytes));
    }
}

// Reliability without faults completes with zero retransmission work
// and strictly later than the lossless run — the ack settle is real,
// honestly accounted overhead.
TEST_P(LosslessIdentity, ReliabilityOverheadIsAcksOnly)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions plain;
    plain.backend = GetParam();
    runtime::Machine base(*topo, plain);

    runtime::RunOptions rel = plain;
    rel.reliability.enabled = true;
    runtime::Machine reliable(*topo, rel);

    const std::uint64_t bytes = 64 * KiB;
    auto loss_free = base.run("ring", bytes);
    auto rep = reliable.tryRun("ring", bytes);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    EXPECT_EQ(rep.retransmits, 0u);
    EXPECT_EQ(rep.duplicates, 0u);
    EXPECT_GT(rep.acks, 0u);
    // Completion now includes delivering the final ack.
    EXPECT_GT(rep.result.time, loss_free.time);
    // One ack per data message rides the wire.
    EXPECT_EQ(rep.result.messages, 2 * loss_free.messages);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, LosslessIdentity,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

// --- Degraded links -----------------------------------------------

TEST(DegradedLink, ExtraLatencyStretchesCompletion)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions plain;
    runtime::Machine base(*topo, plain);
    auto healthy = base.run("ring", 64 * KiB);

    runtime::RunOptions opts;
    fault::FaultConfig fc;
    fault::LinkFault lf;
    lf.channel = 0;
    lf.extra_latency = 50000;
    fc.links.push_back(lf);
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);
    auto rep = machine.tryRun("ring", 64 * KiB);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    EXPECT_GT(rep.degraded, 0u);
    EXPECT_EQ(rep.dropped, 0u);
    EXPECT_GT(rep.result.time, healthy.time);
    // Degradation delays, it does not destroy: same wire traffic.
    EXPECT_EQ(rep.result.messages, healthy.messages);
}

// --- Corruption without reliability -------------------------------

TEST(Corruption, UnreliableReceiverAcceptsTaintedData)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions opts;
    fault::FaultConfig fc;
    fc.seed = faultSeed();
    fc.corrupt_prob = 0.05;
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);

    auto sched =
        coll::makeAlgorithm("ring")->build(*topo, 64 * KiB);
    coll::DataPlane plane(sched);
    attachOracle(machine, plane);
    auto rep = machine.tryRun(sched);
    // Corrupted messages still traverse and clear dependencies, so
    // the run completes — with silently wrong data, which only the
    // oracle notices. This is exactly the failure mode the
    // reliability layer exists to close.
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    EXPECT_GT(rep.corrupted, 0u);
    EXPECT_FALSE(plane.consistent());
    machine.setAcceptSink(nullptr);
}

TEST(Corruption, ReliableReceiverDiscardsAndRecovers)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions opts;
    opts.reliability.enabled = true;
    fault::FaultConfig fc;
    fc.seed = faultSeed();
    fc.corrupt_prob = 0.05;
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);

    auto sched =
        coll::makeAlgorithm("ring")->build(*topo, 64 * KiB);
    coll::DataPlane plane(sched);
    attachOracle(machine, plane);
    auto rep = machine.tryRun(sched);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    EXPECT_GT(rep.corrupted, 0u);
    EXPECT_GT(rep.corrupt_discarded, 0u);
    EXPECT_TRUE(plane.consistent()) << plane.describeMismatch();
    machine.setAcceptSink(nullptr);
}

// --- Trace fidelity under loss ------------------------------------

// The delivery trace carries enough provenance (seq, attempt,
// corrupted) that an analysis can recover exact goodput from a lossy
// run: summing each transfer's bytes once — first clean delivery per
// (src, seq), corrupted copies excluded — must reproduce the byte
// total of a fault-free reference trace, while the naive sum over
// all records double-counts retransmitted duplicates.
TEST(TraceFidelity, UniqueCleanRecordsMatchFaultFreeByteTotals)
{
    auto topo = topo::makeTopology("torus-4x4");
    const std::uint64_t bytes = 256 * KiB;

    std::vector<runtime::TraceRecord> clean;
    runtime::RunOptions plain;
    plain.trace = &clean;
    runtime::Machine base(*topo, plain);
    base.run("ring", bytes);
    ASSERT_FALSE(clean.empty());
    std::uint64_t want = 0;
    for (const auto &r : clean)
        want += r.bytes;

    std::vector<runtime::TraceRecord> lossy;
    runtime::RunOptions opts;
    opts.reliability.enabled = true;
    opts.trace = &lossy;
    fault::FaultConfig fc;
    fc.seed = faultSeed();
    fc.drop_prob = 5e-3;
    fc.corrupt_prob = 1e-3;
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);
    auto rep = machine.tryRun("ring", bytes);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    ASSERT_GT(rep.dropped + rep.corrupted, 0u);

    std::uint64_t naive = 0;
    std::uint64_t goodput = 0;
    std::set<std::pair<int, std::uint64_t>> seen;
    for (const auto &r : lossy) {
        naive += r.bytes;
        if (r.corrupted)
            continue; // tainted copy: a clean retransmit follows
        if (!seen.insert({r.src, r.seq}).second)
            continue; // duplicate delivery of an already-acked seq
        goodput += r.bytes;
    }
    EXPECT_EQ(goodput, want);
    EXPECT_GE(naive, goodput);
    // Whenever the run actually delivered duplicates or tainted
    // copies, the naive total must overcount — the provenance fields
    // are what separates the two.
    if (rep.duplicates + rep.corrupted > 0)
        EXPECT_GT(naive, goodput);
}

// --- The progress watchdog ----------------------------------------

class Watchdog : public ::testing::TestWithParam<runtime::Backend>
{};

// A permanently downed link exhausts the bounded retransmissions;
// the watchdog must surface a structured failure naming the link and
// the dead transfers — no crash, no hang — and leave the machine
// reusable.
TEST_P(Watchdog, DownedLinkAbortsStructurallyAndMachineRecovers)
{
    auto topo = topo::makeTopology("torus-4x4");
    auto sched =
        coll::makeAlgorithm("ring")->build(*topo, 16 * KiB);
    // Down a channel the schedule provably crosses: the first reduce
    // edge's first hop.
    const auto &edge = sched.flows[0].reduce[0];
    auto route = edge.route.empty()
                     ? topo->route(edge.src, edge.dst)
                     : edge.route;
    ASSERT_FALSE(route.empty());
    const int downed = route[0];

    runtime::RunOptions opts;
    opts.backend = GetParam();
    opts.reliability.enabled = true;
    opts.reliability.max_attempts = 3;
    fault::FaultConfig fc;
    fault::LinkFault lf;
    lf.channel = downed;
    lf.down = true;
    fc.links.push_back(lf);
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);

    auto rep = machine.tryRun(sched);
    EXPECT_FALSE(rep.ok);
    ASSERT_FALSE(rep.failures.empty());
    for (const auto &f : rep.failures)
        EXPECT_EQ(f.attempts, 3u);
    EXPECT_GT(rep.dropped, 0u);
    // The diagnostic names the downed channel, the dead transfers
    // and the stalled engines.
    EXPECT_NE(rep.diagnostic.find("downed channel"),
              std::string::npos)
        << rep.diagnostic;
    EXPECT_NE(rep.diagnostic.find(std::to_string(downed)),
              std::string::npos);
    EXPECT_NE(rep.diagnostic.find("FAILED"), std::string::npos);
    EXPECT_NE(rep.diagnostic.find("awaiting"), std::string::npos);
    EXPECT_TRUE(machine.idle());

    // The watchdog abort leaves the fabric recoverable: a clean run
    // on the same machine matches a fresh machine bit-for-bit.
    runtime::RunOptions clean_opts;
    clean_opts.backend = GetParam();
    clean_opts.reliability.enabled = true;
    clean_opts.reliability.max_attempts = 3;
    runtime::Machine fresh(*topo, clean_opts);
    auto fresh_rep = fresh.tryRun(sched);
    ASSERT_TRUE(fresh_rep.ok) << fresh_rep.diagnostic;
    runtime::RunOverrides ov;
    ov.inject_faults = false;
    auto retry = machine.tryRun(sched, ov);
    ASSERT_TRUE(retry.ok) << retry.diagnostic;
    expectSameResult(retry.result, fresh_rep.result);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, Watchdog,
    ::testing::Values(runtime::Backend::Flow,
                      runtime::Backend::Flit),
    [](const ::testing::TestParamInfo<runtime::Backend> &info) {
        return info.param == runtime::Backend::Flow ? "Flow"
                                                    : "Flit";
    });

// With reliability off, losing a message a later send depends on
// wedges the collective; tryRun must abort with a diagnostic instead
// of hanging or dying, and name the lost progress.
TEST(Watchdog, UnreliableLossWedgesWithDiagnostic)
{
    auto topo = topo::makeTopology("torus-4x4");
    auto sched =
        coll::makeAlgorithm("ring")->build(*topo, 16 * KiB);
    const auto &edge = sched.flows[0].reduce[0];
    auto route = edge.route.empty()
                     ? topo->route(edge.src, edge.dst)
                     : edge.route;
    const int downed = route[0];

    runtime::RunOptions opts;
    fault::FaultConfig fc;
    fault::LinkFault lf;
    lf.channel = downed;
    lf.down = true;
    fc.links.push_back(lf);
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);
    auto rep = machine.tryRun(sched);
    EXPECT_FALSE(rep.ok);
    EXPECT_GT(rep.dropped, 0u);
    EXPECT_NE(rep.diagnostic.find("issued"), std::string::npos)
        << rep.diagnostic;
    EXPECT_TRUE(machine.idle());
}

// Per-node attribution: the RunReport names which senders lost
// messages and which engines did the retransmission work.
TEST(RunReport, PerNodeCountersAttributeTheWork)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions opts;
    opts.reliability.enabled = true;
    fault::FaultConfig fc;
    fc.seed = faultSeed();
    fc.drop_prob = 5e-3;
    opts.fault = fc;
    runtime::Machine machine(*topo, opts);
    auto rep = machine.tryRun("ring", 256 * KiB);
    ASSERT_TRUE(rep.ok) << rep.diagnostic;
    ASSERT_EQ(rep.nodes.size(),
              static_cast<std::size_t>(topo->numNodes()));
    std::uint64_t node_retransmits = 0;
    std::uint64_t node_drops = 0;
    for (const auto &nr : rep.nodes) {
        node_retransmits += nr.reliability.retransmits;
        node_drops += nr.drops_as_source;
    }
    EXPECT_EQ(node_retransmits, rep.retransmits);
    EXPECT_EQ(node_drops, rep.dropped);
    EXPECT_GT(rep.dropped, 0u);
}

} // namespace
} // namespace multitree
