/**
 * @file
 * Unit tests for halving-doubling and HDRM.
 */

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "coll/functional.hh"
#include "coll/halving_doubling.hh"
#include "coll/hdrm.hh"
#include "coll/validate.hh"
#include "topo/bigraph.hh"
#include "topo/fattree.hh"
#include "topo/grid.hh"

namespace multitree::coll {
namespace {

TEST(HalvingDoubling, StepCountIsLogarithmic)
{
    HalvingDoublingAllReduce hd;
    topo::Torus2D t(4, 4);
    auto s = hd.build(t, 64 * 1024);
    EXPECT_EQ(s.totalSteps(), 2 * 4); // 2 * log2(16)
    auto r = validateSchedule(s, t);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(HalvingDoubling, PayloadHalvesPerStep)
{
    HalvingDoublingAllReduce hd;
    topo::Torus2D t(4, 4);
    auto s = hd.build(t, 64 * 1024);
    // Edges at step s across all flows: n/2 pairs, each pair moving
    // n / 2^s chunks -> total edges n^2 / 2^s.
    std::map<int, int> edges_at;
    for (const auto &f : s.flows) {
        for (const auto &e : f.reduce)
            ++edges_at[e.step];
    }
    EXPECT_EQ(edges_at[1], 16 * 8);
    EXPECT_EQ(edges_at[2], 16 * 4);
    EXPECT_EQ(edges_at[3], 16 * 2);
    EXPECT_EQ(edges_at[4], 16 * 1);
}

TEST(HalvingDoubling, RequiresPowerOfTwo)
{
    HalvingDoublingAllReduce hd;
    topo::Mesh2D m(3, 3);
    EXPECT_FALSE(hd.supports(m));
    topo::Mesh2D m2(4, 4);
    EXPECT_TRUE(hd.supports(m2));
}

TEST(HalvingDoubling, FunctionallyCorrect)
{
    HalvingDoublingAllReduce hd;
    topo::Torus2D t(4, 4);
    auto s = hd.build(t, 16 * 1024);
    EXPECT_TRUE(checkAllReduceCorrect(s, 4096));
}

TEST(HDRM, RankMapIsBijection)
{
    for (auto [u, l] : {std::pair{4, 8}, std::pair{4, 16}}) {
        topo::BiGraph bg(u, l);
        std::set<int> nodes;
        for (int r = 0; r < bg.numNodes(); ++r) {
            int v = HDRMAllReduce::nodeOfRank(bg, r);
            EXPECT_GE(v, 0);
            EXPECT_LT(v, bg.numNodes());
            nodes.insert(v);
        }
        EXPECT_EQ(static_cast<int>(nodes.size()), bg.numNodes());
    }
}

TEST(HDRM, ParitySplitsStages)
{
    topo::BiGraph bg(4, 8);
    for (int r = 0; r < bg.numNodes(); ++r) {
        bool even =
            std::popcount(static_cast<unsigned>(r)) % 2 == 0;
        int v = HDRMAllReduce::nodeOfRank(bg, r);
        EXPECT_EQ(bg.isUpperNode(v), even) << "rank " << r;
    }
}

TEST(HDRM, EveryExchangeCrossesStages)
{
    // The paper's observation: HDRM pairs always involve one upper-
    // and one lower-attached node, so it never exploits same-switch
    // one-hop locality.
    topo::BiGraph bg(4, 8);
    HDRMAllReduce hdrm;
    auto s = hdrm.build(bg, 64 * 1024);
    for (const auto &f : s.flows) {
        for (const auto &e : f.reduce) {
            EXPECT_NE(bg.isUpperNode(e.src), bg.isUpperNode(e.dst));
            EXPECT_EQ(bg.route(e.src, e.dst).size(), 3u);
        }
    }
}

TEST(HDRM, ContentionFreeOnBiGraph)
{
    for (auto [u, l] : {std::pair{4, 8}, std::pair{4, 16}}) {
        topo::BiGraph bg(u, l);
        HDRMAllReduce hdrm;
        auto s = hdrm.build(bg, 128 * 1024);
        auto r = validateSchedule(s, bg);
        ASSERT_TRUE(r.ok) << r.error;
        auto c = validateContentionFree(s, bg);
        EXPECT_TRUE(c.ok) << c.error;
    }
}

TEST(HDRM, FunctionallyCorrect)
{
    topo::BiGraph bg(4, 8);
    HDRMAllReduce hdrm;
    auto s = hdrm.build(bg, 32 * 1024);
    EXPECT_TRUE(checkAllReduceCorrect(s, 8192));
}

TEST(HDRM, SupportsOnlyBiGraph)
{
    HDRMAllReduce hdrm;
    topo::Torus2D t(4, 4);
    topo::FatTree2L ft(4, 4, 4);
    topo::BiGraph bg(4, 8);
    EXPECT_FALSE(hdrm.supports(t));
    EXPECT_FALSE(hdrm.supports(ft));
    EXPECT_TRUE(hdrm.supports(bg));
}

} // namespace
} // namespace multitree::coll
