/**
 * @file
 * Unit tests for src/common: units, RNG, stats, strings.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "common/random.hh"
#include "common/ring_buffer.hh"
#include "common/spsc_ring.hh"
#include "common/stats.hh"
#include "common/strings.hh"
#include "common/units.hh"

namespace multitree {
namespace {

TEST(Units, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(8, 4), 2u);
}

TEST(Units, BytesToFlits)
{
    EXPECT_EQ(bytesToFlits(0), 0u);
    EXPECT_EQ(bytesToFlits(1), 1u);
    EXPECT_EQ(bytesToFlits(16), 1u);
    EXPECT_EQ(bytesToFlits(17), 2u);
    EXPECT_EQ(bytesToFlits(256), 16u);
}

TEST(Units, BandwidthGBps)
{
    // 16 bytes per cycle at 1 GHz is the paper's 16 GB/s link.
    EXPECT_DOUBLE_EQ(bandwidthGBps(16, 1), 16.0);
    EXPECT_DOUBLE_EQ(bandwidthGBps(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(bandwidthGBps(1600, 100), 16.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool any_diff = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        any_diff |= a2.next() != c.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(5);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Summary, Moments)
{
    Summary s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(Summary, EmptyIsSafe)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BucketsAndQuantiles)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_NEAR(h.quantile(0.0), 0.5, 1e-9);
    EXPECT_NEAR(h.quantile(1.0), 9.5, 1e-9);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-5.0);
    h.add(5.0);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
}

TEST(Histogram, NonFiniteSamplesAreSafe)
{
    Histogram h(0.0, 1.0, 2);
    h.add(std::nan(""));
    // NaN has no bucket: uncounted, but visible via nonfinite().
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.nonfinite(), 1u);
    h.add(std::numeric_limits<double>::infinity());
    h.add(-std::numeric_limits<double>::infinity());
    // ±inf clamp into the boundary buckets and still count.
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.nonfinite(), 3u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    // Huge finite values (index overflows int64) clamp too.
    h.add(1e300);
    h.add(-1e300);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 2u);
}

TEST(StatRegistry, IncSetGet)
{
    StatRegistry reg;
    EXPECT_DOUBLE_EQ(reg.get("x"), 0.0);
    reg.inc("x");
    reg.inc("x", 2.0);
    EXPECT_DOUBLE_EQ(reg.get("x"), 3.0);
    reg.set("x", 7.0);
    EXPECT_DOUBLE_EQ(reg.get("x"), 7.0);
    EXPECT_NE(reg.render().find("x = 7"), std::string::npos);
}

TEST(Strings, SplitAndTrim)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(trim("  hello\t "), "hello");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(32 * KiB), "32 KiB");
    EXPECT_EQ(formatBytes(64 * MiB), "64 MiB");
    EXPECT_EQ(formatBytes(1536), "1.5 KiB");
}

TEST(Strings, FormatBytesPromotesAtRoundingBoundary)
{
    // 1048570 B = 1023.99 KiB, which one-decimal rounding would
    // print as the nonsensical "1024.0 KiB"; it must promote.
    EXPECT_EQ(formatBytes(1048570), "1.0 MiB");
    EXPECT_EQ(formatBytes(MiB - 1), "1.0 MiB");
    EXPECT_EQ(formatBytes(1023), "1023 B");
    // 1023.9 KiB rounds within its own suffix: no promotion.
    EXPECT_EQ(formatBytes(1048477), "1023.9 KiB");
    // The last suffix never promotes, however large the value.
    EXPECT_EQ(formatBytes(2048ull * GiB * KiB), "2048 TiB");
}

TEST(RingBuffer, RegrowAcrossWrappedHeadPreservesFifo)
{
    RingBuffer<int> rb;
    // Fill to the initial capacity (8), then pop a few so the head
    // sits mid-array and the live window wraps after more pushes.
    for (int i = 0; i < 8; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.capacity(), 8u);
    for (int i = 0; i < 5; ++i)
        rb.pop_front();
    for (int i = 8; i < 13; ++i)
        rb.push_back(i); // wraps: head=5, window crosses the seam
    EXPECT_EQ(rb.size(), 8u);
    // The next push forces a regrow while the window is wrapped; the
    // copy-out must linearize in FIFO order, not array order.
    rb.push_back(13);
    EXPECT_GT(rb.capacity(), 8u);
    for (int want = 5; want <= 13; ++want) {
        EXPECT_EQ(rb.front(), want);
        rb.pop_front();
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, AtIndexesAcrossTheWrapSeam)
{
    RingBuffer<int> rb;
    for (int i = 0; i < 8; ++i)
        rb.push_back(i);
    for (int i = 0; i < 6; ++i)
        rb.pop_front();
    for (int i = 8; i < 12; ++i)
        rb.push_back(i);
    // Window is 6..11 with the physical seam between 7 and 8.
    ASSERT_EQ(rb.size(), 6u);
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb.at(i), static_cast<int>(6 + i));
}

TEST(RingBuffer, ClearRetainsCapacityForReuse)
{
    RingBuffer<int> rb;
    rb.reserve(64);
    const std::size_t warm = rb.capacity();
    EXPECT_GE(warm, 64u);
    for (int i = 0; i < 50; ++i)
        rb.push_back(i);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), warm);
    // Reuse after clear starts a fresh FIFO in the same storage.
    for (int i = 100; i < 110; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.capacity(), warm);
    for (int i = 100; i < 110; ++i) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
}

TEST(SpscRing, RefusesWhenFullAndGrowToPreservesFifo)
{
    SpscRing<int> ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99)); // full: refuse, never regrow
    ring.pop_front();
    ring.pop_front();
    EXPECT_TRUE(ring.tryPush(8)); // wrapped window: 2..8
    ring.growTo(32);
    EXPECT_EQ(ring.capacity(), 32u);
    EXPECT_EQ(ring.size(), 7u);
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i), static_cast<int>(2 + i));
    for (int want = 2; want <= 8; ++want) {
        EXPECT_EQ(ring.front(), want);
        ring.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ConcurrentProducerConsumerKeepsOrder)
{
    // One producer thread, one consumer thread, every element
    // accounted for in order — the contract the parallel flit
    // engine's handoff lanes rely on every cycle.
    SpscRing<int> ring(64);
    constexpr int kCount = 20000;
    std::thread producer([&] {
        for (int i = 0; i < kCount;) {
            if (ring.tryPush(i))
                ++i;
        }
    });
    int expect = 0;
    while (expect < kCount) {
        if (!ring.empty()) {
            ASSERT_EQ(ring.front(), expect);
            ring.pop_front();
            ++expect;
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(Strings, TextTableAligns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    auto s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
}

} // namespace
} // namespace multitree
