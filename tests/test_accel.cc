/**
 * @file
 * Unit tests for the systolic compute model and the DNN model zoo.
 */

#include <gtest/gtest.h>

#include "accel/model_zoo.hh"
#include "accel/systolic.hh"

namespace multitree::accel {
namespace {

TEST(Systolic, FoldFormula)
{
    AcceleratorConfig cfg;
    // One fold: M,N <= 32: 2*32 + 32 + K - 2 cycles.
    EXPECT_EQ(gemmCycles(32, 32, 100, cfg), 64u + 32 + 100 - 2);
    // Four folds when M doubles and N doubles.
    EXPECT_EQ(gemmCycles(64, 64, 100, cfg),
              4 * (64u + 32 + 100 - 2));
    EXPECT_EQ(gemmCycles(0, 32, 32, cfg), 0u);
}

TEST(Systolic, BatchSpreadsOverPEs)
{
    Layer l = fcLayer("fc", 1024, 1024);
    AcceleratorConfig cfg;
    cfg.batch = 16;
    cfg.pes = 16;
    Tick one = forwardCycles(l, cfg);
    cfg.batch = 32;
    EXPECT_EQ(forwardCycles(l, cfg), 2 * one);
}

TEST(Systolic, BackwardCostsAboutTwiceForward)
{
    Layer l = convLayer("c", 14, 14, 256, 3, 3, 256);
    AcceleratorConfig cfg;
    Tick fwd = forwardCycles(l, cfg);
    Tick bwd = backwardCycles(l, cfg, false);
    EXPECT_GT(bwd, fwd);              // dW + dX
    EXPECT_LT(bwd, 3 * fwd);          // but no worse than ~2x-ish
    EXPECT_LT(backwardCycles(l, cfg, true), bwd); // first layer: no dX
}

TEST(Systolic, EmbeddingBackwardIsCheap)
{
    Layer e = embeddingLayer("emb", 100000, 64);
    AcceleratorConfig cfg;
    EXPECT_LE(backwardCycles(e, cfg, false), 2u);
}

TEST(ModelZoo, ParameterCountsMatchPublishedModels)
{
    // Gradient volume is the quantity the communication study needs;
    // check each model lands near its published parameter count.
    EXPECT_NEAR(makeAlexNet().totalParams() / 1e6, 3.7, 0.4);
    EXPECT_NEAR(makeResNet50().totalParams() / 1e6, 25.5, 1.5);
    EXPECT_NEAR(makeGoogLeNet().totalParams() / 1e6, 6.0, 1.5);
    EXPECT_NEAR(makeAlphaGoZero().totalParams() / 1e6, 24.0, 2.5);
    EXPECT_NEAR(makeFasterRCNN().totalParams() / 1e6, 17.0, 3.0);
    EXPECT_NEAR(makeNCF().totalParams() / 1e6, 31.9, 2.0);
    EXPECT_NEAR(makeTransformer().totalParams() / 1e6, 63.0, 8.0);
}

TEST(ModelZoo, CNNsAreComputeHeavyNCFAndTransformerAreNot)
{
    // The §VI-C dichotomy: per-sample MACs per gradient byte is high
    // for CNNs and tiny for embedding/attention models.
    auto intensity = [](const DnnModel &m) {
        return static_cast<double>(m.forwardMacs())
               / static_cast<double>(m.gradientBytes());
    };
    for (const char *cnn :
         {"alexnet", "alphagozero", "fasterrcnn", "googlenet",
          "resnet50"}) {
        EXPECT_GT(intensity(makeModel(cnn)), 5.0) << cnn;
    }
    EXPECT_LT(intensity(makeModel("ncf")), 0.1);
    // The vocabulary generator GEMM gives Transformer some compute,
    // but it stays well under the CNN range.
    EXPECT_LT(intensity(makeModel("transformer")), 20.0);
}

TEST(ModelZoo, MakeModelRoundTrips)
{
    for (const auto &name : modelNames()) {
        auto m = makeModel(name);
        EXPECT_FALSE(m.layers.empty()) << name;
        EXPECT_GT(m.totalParams(), 0u) << name;
    }
}

TEST(ModelZoo, BackwardFinishOffsetsAreMonotone)
{
    auto m = makeResNet50();
    AcceleratorConfig cfg;
    auto c = modelCompute(m, cfg);
    ASSERT_EQ(c.bwd_finish.size(), m.layers.size());
    // Earlier layers finish backward later.
    for (std::size_t i = 1; i < c.bwd_finish.size(); ++i)
        EXPECT_GE(c.bwd_finish[i - 1], c.bwd_finish[i]);
    EXPECT_EQ(c.bwd_finish[0], c.bwd);
}

} // namespace
} // namespace multitree::accel
