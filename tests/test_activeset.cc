/**
 * @file
 * Active-set vs dense-tick equivalence for the flit backend.
 *
 * The active-set scheduler (worklist + quiescence fast-forward +
 * pooled storage) is a pure performance transformation: DESIGN.md
 * §"Simulator performance" promises it is tick- and stat-identical
 * to the dense reference loop that evaluates every router every
 * cycle. This suite holds it to that promise across algorithms and
 * topologies by comparing, between a dense-tick Machine and an
 * active-set Machine:
 *  - the scoped RunResult of every run (time, bandwidth, counters),
 *  - the network StatRegistry in full,
 *  - FlitNetwork::activeCycles() (the utilization denominator),
 *  - the complete lifecycle trace, event by event and field by field,
 *  - the rendered latency-attribution profile JSON,
 *  - the fixed-cadence telemetry time-series, byte for byte in both
 *    the CSV and JSON serializations,
 * over back-to-back runs on persistent machines (warm pools), and
 * under faults + reliability (retransmission timing).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "coll/algorithm.hh"
#include "net/flit_network.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

namespace multitree {
namespace {

void
expectSameResult(const runtime::RunResult &a,
                 const runtime::RunResult &b)
{
    EXPECT_EQ(a.time, b.time);
    EXPECT_DOUBLE_EQ(a.bandwidth, b.bandwidth);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_DOUBLE_EQ(a.payload_flits, b.payload_flits);
    EXPECT_DOUBLE_EQ(a.head_flits, b.head_flits);
    EXPECT_DOUBLE_EQ(a.flit_hops, b.flit_hops);
    EXPECT_DOUBLE_EQ(a.head_hops, b.head_hops);
    EXPECT_EQ(a.nop_windows, b.nop_windows);
    EXPECT_EQ(a.mcast_injections, b.mcast_injections);
    EXPECT_EQ(a.combined_groups, b.combined_groups);
    EXPECT_DOUBLE_EQ(a.combiner_alu_flits, b.combiner_alu_flits);
}

void
expectSameStats(const runtime::Machine &active,
                const runtime::Machine &dense)
{
    const auto &a = active.network().stats().all();
    const auto &d = dense.network().stats().all();
    ASSERT_EQ(a.size(), d.size());
    auto ai = a.begin();
    auto di = d.begin();
    for (; ai != a.end(); ++ai, ++di) {
        EXPECT_EQ(ai->first, di->first);
        EXPECT_DOUBLE_EQ(ai->second, di->second)
            << "stat " << ai->first;
    }
}

void
expectSameTrace(const obs::Trace &active, const obs::Trace &dense)
{
    const auto &a = active.events();
    const auto &d = dense.events();
    ASSERT_EQ(a.size(), d.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("event " + std::to_string(i));
        EXPECT_EQ(a[i].kind, d[i].kind);
        EXPECT_EQ(a[i].tick, d[i].tick);
        EXPECT_EQ(a[i].duration, d[i].duration);
        EXPECT_EQ(a[i].node, d[i].node);
        EXPECT_EQ(a[i].peer, d[i].peer);
        EXPECT_EQ(a[i].channel, d[i].channel);
        EXPECT_EQ(a[i].flow, d[i].flow);
        EXPECT_EQ(a[i].step, d[i].step);
        EXPECT_EQ(a[i].bytes, d[i].bytes);
        EXPECT_EQ(a[i].tag, d[i].tag);
        EXPECT_EQ(a[i].seq, d[i].seq);
        EXPECT_EQ(a[i].attempt, d[i].attempt);
        EXPECT_EQ(a[i].corrupted, d[i].corrupted);
    }
}

std::uint64_t
activeCyclesOf(const runtime::Machine &m)
{
    const auto *net =
        dynamic_cast<const net::FlitNetwork *>(&m.network());
    EXPECT_NE(net, nullptr);
    return net != nullptr ? net->activeCycles() : 0;
}

std::string
profileJson(const runtime::Machine &m, const obs::Profiler &prof)
{
    std::ostringstream oss;
    obs::writeProfileJson(oss, m.fabricInfo(), prof,
                          obs::extractCriticalPath(prof));
    return oss.str();
}

/** One observed fabric: Machine + trace + profiler + time-series
 *  sampler wired up. */
struct Rig {
    explicit Rig(const topo::Topology &topo, bool dense,
                 std::uint32_t reduction_bw = 0,
                 std::uint32_t threads = 1,
                 net::InNetworkMode in_network =
                     net::InNetworkMode::Off)
    {
        runtime::RunOptions opts;
        opts.backend = runtime::Backend::Flit;
        opts.net.dense_tick = dense;
        opts.net.threads = threads;
        opts.net.in_network = in_network;
        opts.sink = &trace;
        opts.profiler = &prof;
        opts.sampler = &sampler;
        opts.sample_every = 64;
        opts.ni_reduction_bw = reduction_bw;
        machine = std::make_unique<runtime::Machine>(topo, opts);
    }

    obs::Trace trace;
    obs::Profiler prof;
    obs::Sampler sampler;
    std::unique_ptr<runtime::Machine> machine;
};

/** Every cross-scheduler observable at once: result, stats, active
 *  cycles, full trace, rendered profile, and the fixed-cadence
 *  time-series (byte-for-byte in both serializations). */
void
expectSameEverything(Rig &a, const runtime::RunResult &ra, Rig &b,
                     const runtime::RunResult &rb)
{
    expectSameResult(ra, rb);
    expectSameStats(*a.machine, *b.machine);
    EXPECT_EQ(activeCyclesOf(*a.machine),
              activeCyclesOf(*b.machine));
    expectSameTrace(a.trace, b.trace);
    EXPECT_EQ(profileJson(*a.machine, a.prof),
              profileJson(*b.machine, b.prof));
    EXPECT_EQ(a.sampler.csv(), b.sampler.csv());
    EXPECT_EQ(a.sampler.json(), b.sampler.json());
}

class ActiveSetParity
    : public ::testing::TestWithParam<const char *>
{};

// The headline guarantee, swept over every registered algorithm
// variant: two back-to-back runs on warm fabrics agree between the
// schedulers in results, stats, active-cycle counts, full traces and
// rendered profiles.
TEST_P(ActiveSetParity, BitIdenticalToDenseForEveryVariant)
{
    auto topo = topo::makeTopology(GetParam());
    Rig active(*topo, false);
    Rig dense(*topo, true);
    EXPECT_FALSE(dynamic_cast<const net::FlitNetwork &>(
                     active.machine->network())
                     .denseTick());
    EXPECT_TRUE(dynamic_cast<const net::FlitNetwork &>(
                    dense.machine->network())
                    .denseTick());

    for (const auto &v : coll::algorithmVariants()) {
        if (!coll::makeAlgorithm(v.base)->supports(*topo))
            continue;
        SCOPED_TRACE(v.name);
        for (int rep = 0; rep < 2; ++rep) {
            SCOPED_TRACE("rep " + std::to_string(rep));
            auto ra = active.machine->run(v.name, 16 * KiB);
            auto rd = dense.machine->run(v.name, 16 * KiB);
            expectSameEverything(active, ra, dense, rd);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ActiveSetParity,
                         ::testing::Values("torus-4x4", "mesh-4x4",
                                           "torus-8x8",
                                           "fattree-16"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n) {
                                 if (c == '-' || c == ':')
                                     c = '_';
                             }
                             return n;
                         });

class ThreadedParity : public ::testing::TestWithParam<const char *>
{};

// The parallel engine's guarantee: partitioning the routers across a
// worker pool is invisible. For every algorithm variant, an active-set
// machine at 2 and at 4 threads and a dense-tick machine at 4 threads
// all reproduce the serial dense oracle bit for bit — results, stats,
// active-cycle counts, traces, profiles and telemetry time-series —
// across back-to-back runs on warm fabrics.
TEST_P(ThreadedParity, BitIdenticalToDenseOracle)
{
    auto topo = topo::makeTopology(GetParam());
    Rig oracle(*topo, /*dense=*/true);
    Rig active2(*topo, false, 0, /*threads=*/2);
    Rig active4(*topo, false, 0, /*threads=*/4);
    Rig dense4(*topo, true, 0, /*threads=*/4);
    EXPECT_EQ(dynamic_cast<const net::FlitNetwork &>(
                  active4.machine->network())
                  .threads(),
              4);

    for (const auto &v : coll::algorithmVariants()) {
        if (!coll::makeAlgorithm(v.base)->supports(*topo))
            continue;
        SCOPED_TRACE(v.name);
        for (int rep = 0; rep < 2; ++rep) {
            SCOPED_TRACE("rep " + std::to_string(rep));
            auto ro = oracle.machine->run(v.name, 16 * KiB);
            auto r2 = active2.machine->run(v.name, 16 * KiB);
            auto r4 = active4.machine->run(v.name, 16 * KiB);
            auto rd = dense4.machine->run(v.name, 16 * KiB);
            expectSameEverything(active2, r2, oracle, ro);
            expectSameEverything(active4, r4, oracle, ro);
            expectSameEverything(dense4, rd, oracle, ro);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThreadedParity,
                         ::testing::Values("torus-4x4", "mesh-4x4",
                                           "torus-8x8",
                                           "fattree-16"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n) {
                                 if (c == '-' || c == ':')
                                     c = '_';
                             }
                             return n;
                         });

// Faults + reliability under the parallel engine: retransmission
// timers, ack traffic and drop decisions must land on the same cycles
// regardless of the worker count.
TEST(ThreadedParityExtra, FaultedReliableThreadedRunMatches)
{
    auto topo = topo::makeTopology("torus-4x4");
    fault::FaultConfig fc;
    fc.seed = 11;
    fc.drop_prob = 2e-3;

    auto report = [&](bool dense_tick, std::uint32_t threads) {
        runtime::RunOptions opts;
        opts.backend = runtime::Backend::Flit;
        opts.net.dense_tick = dense_tick;
        opts.net.threads = threads;
        opts.reliability.enabled = true;
        opts.fault = fc;
        runtime::Machine machine(*topo, opts);
        return machine.tryRun("multitree", 16 * KiB);
    };
    auto oracle = report(true, 1);
    ASSERT_TRUE(oracle.ok) << oracle.diagnostic;
    for (std::uint32_t threads : {2u, 4u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        auto rt = report(false, threads);
        ASSERT_TRUE(rt.ok) << rt.diagnostic;
        expectSameResult(rt.result, oracle.result);
        EXPECT_EQ(rt.dropped, oracle.dropped);
        EXPECT_EQ(rt.retransmits, oracle.retransmits);
        EXPECT_EQ(rt.timeouts, oracle.timeouts);
        EXPECT_EQ(rt.acks, oracle.acks);
        EXPECT_EQ(rt.duplicates, oracle.duplicates);
    }
}

class McastParity : public ::testing::TestWithParam<const char *>
{};

// In-network replication and switch-resident combining are transport
// features, not scheduler features: with fusion on, an active-set
// machine at 1, 2 and 4 threads must still reproduce the serial
// dense oracle bit for bit across every observable — and the runs
// must actually exercise the fused path (nonzero multicast
// injections), or the parity claim is vacuous.
TEST_P(McastParity, FusedRunsMatchDenseOracleAtEveryThreadCount)
{
    auto topo = topo::makeTopology(GetParam());
    const auto mode = net::InNetworkMode::MulticastReduce;
    Rig oracle(*topo, /*dense=*/true, 0, 1, mode);
    Rig active1(*topo, false, 0, /*threads=*/1, mode);
    Rig active2(*topo, false, 0, /*threads=*/2, mode);
    Rig active4(*topo, false, 0, /*threads=*/4, mode);

    for (const char *algo : {"multitree", "dbtree", "ring"}) {
        if (!coll::makeAlgorithm(algo)->supports(*topo))
            continue;
        SCOPED_TRACE(algo);
        for (int rep = 0; rep < 2; ++rep) {
            SCOPED_TRACE("rep " + std::to_string(rep));
            auto ro = oracle.machine->run(algo, 16 * KiB);
            auto r1 = active1.machine->run(algo, 16 * KiB);
            auto r2 = active2.machine->run(algo, 16 * KiB);
            auto r4 = active4.machine->run(algo, 16 * KiB);
            expectSameEverything(active1, r1, oracle, ro);
            expectSameEverything(active2, r2, oracle, ro);
            expectSameEverything(active4, r4, oracle, ro);
            if (std::string(algo) != "ring")
                EXPECT_GT(ro.mcast_injections, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, McastParity,
                         ::testing::Values("torus-8x8",
                                           "fattree-16"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n) {
                                 if (c == '-' || c == ':')
                                     c = '_';
                             }
                             return n;
                         });

// InNetworkMode::Off is the default: a machine constructed with it
// spelled out is the same machine, and no multicast or combiner
// counter may move — the off path is the pre-fusion transport.
TEST(McastParityExtra, OffModeIsDefaultAndLeavesCountersZero)
{
    auto topo = topo::makeTopology("torus-4x4");
    Rig dflt(*topo, false);
    Rig off(*topo, false, 0, 1, net::InNetworkMode::Off);
    auto rd = dflt.machine->run("multitree", 16 * KiB);
    auto ro = off.machine->run("multitree", 16 * KiB);
    expectSameEverything(off, ro, dflt, rd);
    EXPECT_EQ(rd.mcast_injections, 0u);
    EXPECT_EQ(rd.combined_groups, 0u);
    EXPECT_DOUBLE_EQ(rd.combiner_alu_flits, 0.0);
}

// Finite-rate reductions with the pool engaged: delayed dependency
// clears ride the ordered merge, not the worker schedule.
TEST(ThreadedParityExtra, FiniteRateReductionThreadedMatches)
{
    auto topo = topo::makeTopology("torus-4x4");
    Rig oracle(*topo, true, /*reduction_bw=*/8);
    Rig threaded(*topo, false, /*reduction_bw=*/8, /*threads=*/4);
    for (const char *algo : {"ring", "multitree"}) {
        SCOPED_TRACE(algo);
        expectSameResult(threaded.machine->run(algo, 16 * KiB),
                         oracle.machine->run(algo, 16 * KiB));
        expectSameTrace(threaded.trace, oracle.trace);
    }
}

// Finite-rate reductions reshape the issue timing (delayed dependency
// clears); the schedulers must still agree.
TEST(ActiveSetParityExtra, FiniteRateReductionMatches)
{
    auto topo = topo::makeTopology("torus-4x4");
    Rig active(*topo, false, /*reduction_bw=*/8);
    Rig dense(*topo, true, /*reduction_bw=*/8);
    for (const char *algo : {"ring", "multitree"}) {
        SCOPED_TRACE(algo);
        expectSameResult(active.machine->run(algo, 16 * KiB),
                         dense.machine->run(algo, 16 * KiB));
        expectSameTrace(active.trace, dense.trace);
    }
}

// Faults + reliability exercise retransmission timers, ack traffic
// and the watchdog path on both schedulers.
TEST(ActiveSetParityExtra, FaultedReliableRunMatches)
{
    auto topo = topo::makeTopology("torus-4x4");
    fault::FaultConfig fc;
    fc.seed = 11;
    fc.drop_prob = 2e-3;

    auto report = [&](bool dense_tick) {
        runtime::RunOptions opts;
        opts.backend = runtime::Backend::Flit;
        opts.net.dense_tick = dense_tick;
        opts.reliability.enabled = true;
        opts.fault = fc;
        runtime::Machine machine(*topo, opts);
        return machine.tryRun("multitree", 16 * KiB);
    };
    auto ra = report(false);
    auto rd = report(true);
    ASSERT_TRUE(ra.ok) << ra.diagnostic;
    ASSERT_TRUE(rd.ok) << rd.diagnostic;
    expectSameResult(ra.result, rd.result);
    EXPECT_EQ(ra.dropped, rd.dropped);
    EXPECT_EQ(ra.retransmits, rd.retransmits);
    EXPECT_EQ(ra.timeouts, rd.timeouts);
    EXPECT_EQ(ra.acks, rd.acks);
    EXPECT_EQ(ra.duplicates, rd.duplicates);
}

// The point of the exercise: the active-set scheduler must do
// strictly less event-queue work than the dense loop on a fabric
// with idle cycles to skip.
TEST(ActiveSetParityExtra, ActiveModeExecutesFewerEvents)
{
    auto topo = topo::makeTopology("torus-8x8");
    auto executed = [&](bool dense_tick) {
        runtime::RunOptions opts;
        opts.backend = runtime::Backend::Flit;
        opts.net.dense_tick = dense_tick;
        runtime::Machine machine(*topo, opts);
        machine.run("ring", 4 * KiB);
        return machine.eventQueue().executed();
    };
    EXPECT_LT(executed(false), executed(true));
}

} // namespace
} // namespace multitree
