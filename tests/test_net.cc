/**
 * @file
 * Unit tests for the network backends and flow-control accounting.
 */

#include <gtest/gtest.h>

#include "net/flit_network.hh"
#include "net/flow_control.hh"
#include "net/flow_network.hh"
#include "sim/event_queue.hh"
#include "topo/fattree.hh"
#include "topo/grid.hh"

namespace multitree::net {
namespace {

using sim::EventQueue;

Message
makeMsg(const topo::Topology &t, int src, int dst,
        std::uint64_t bytes)
{
    Message m;
    m.src = src;
    m.dst = dst;
    m.bytes = bytes;
    m.route = t.route(src, dst);
    m.flow_id = 0;
    return m;
}

TEST(FlowControl, HeadFlitOverheadMatchesFig2)
{
    // Fig. 2: 16-byte flits, payload 64-256 bytes → 6-25% overhead.
    EXPECT_NEAR(headFlitOverhead(64, 16), 0.20, 1e-9);
    EXPECT_NEAR(headFlitOverhead(128, 16), 1.0 / 9.0, 1e-9);
    EXPECT_NEAR(headFlitOverhead(256, 16), 1.0 / 17.0, 1e-9);
    EXPECT_LT(headFlitOverhead(256, 16), 0.0625);
    EXPECT_GT(headFlitOverhead(64, 16), 0.19);
}

TEST(FlowControl, WireBreakdownPacketVsMessage)
{
    NetworkConfig cfg;
    auto pkt = wireBreakdown(1 << 20, FlowControlMode::PacketBased,
                             cfg);
    auto msg = wireBreakdown(1 << 20, FlowControlMode::MessageBased,
                             cfg);
    EXPECT_EQ(pkt.payload_flits, (1u << 20) / 16);
    EXPECT_EQ(pkt.head_flits, (1u << 20) / 256);
    EXPECT_EQ(msg.head_flits, 1u);
    // The ~6% saving the paper reports for MULTITREEMSG.
    double saving = static_cast<double>(pkt.total_flits)
                    / static_cast<double>(msg.total_flits);
    EXPECT_NEAR(saving, 1.0625, 0.001);
}

TEST(FlowNetwork, SingleTransferTiming)
{
    topo::Mesh2D m(2, 1);
    EventQueue eq;
    NetworkConfig cfg;
    FlowNetwork net(eq, m, cfg);
    Tick delivered = 0;
    net.onDeliver([&](const Message &) { delivered = eq.now(); });
    // 4096 bytes = 256 payload flits + 16 head flits.
    net.inject(makeMsg(m, 0, 1, 4096));
    eq.run();
    Tick expect = (cfg.link_latency + cfg.router_pipeline) + 256 + 16;
    EXPECT_EQ(delivered, expect);
}

TEST(FlowNetwork, MessageModeSavesHeads)
{
    topo::Mesh2D m(2, 1);
    EventQueue eq;
    NetworkConfig cfg;
    cfg.mode = FlowControlMode::MessageBased;
    FlowNetwork net(eq, m, cfg);
    Tick delivered = 0;
    net.onDeliver([&](const Message &) { delivered = eq.now(); });
    net.inject(makeMsg(m, 0, 1, 4096));
    eq.run();
    EXPECT_EQ(delivered,
              Tick{cfg.link_latency + cfg.router_pipeline + 256 + 1});
}

TEST(FlowNetwork, ContendersSerializeOnSharedChannel)
{
    topo::Mesh2D line(3, 1);
    EventQueue eq;
    FlowNetwork net(eq, line, {});
    int delivered = 0;
    Tick last = 0;
    net.onDeliver([&](const Message &) {
        ++delivered;
        last = eq.now();
    });
    // Two messages 0->2 share both hops; second must queue.
    net.inject(makeMsg(line, 0, 2, 4096));
    net.inject(makeMsg(line, 0, 2, 4096));
    eq.run();
    EXPECT_EQ(delivered, 2);
    NetworkConfig cfg;
    Tick hop = cfg.link_latency + cfg.router_pipeline;
    // Second message starts after the first's 272-flit serialization.
    EXPECT_EQ(last, 272 + 2 * hop + 272);
    EXPECT_GT(net.maxQueueing(), 0u);
}

TEST(FlowNetwork, DisjointPathsDoNotInterfere)
{
    topo::Torus2D t(4, 4);
    EventQueue eq;
    FlowNetwork net(eq, t, {});
    std::vector<Tick> times;
    net.onDeliver([&](const Message &) { times.push_back(eq.now()); });
    net.inject(makeMsg(t, 0, 1, 4096));
    net.inject(makeMsg(t, 4, 5, 4096));
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], times[1]);
    EXPECT_EQ(net.maxQueueing(), 0u);
}

TEST(FlitNetwork, SingleTransferBandwidthBound)
{
    topo::Mesh2D m(2, 1);
    EventQueue eq;
    NetworkConfig cfg;
    FlitNetwork net(eq, m, cfg);
    Tick delivered = 0;
    net.onDeliver([&](const Message &) { delivered = eq.now(); });
    net.inject(makeMsg(m, 0, 1, 4096));
    eq.run();
    // 272 wire flits at one per cycle, plus per-hop latency and some
    // router overhead. It can never beat serialization + wire delay.
    Tick floor = 272 + cfg.link_latency;
    EXPECT_GE(delivered, floor);
    EXPECT_LE(delivered, floor + 32);
}

TEST(FlitNetwork, TwoFlowsShareLinkFairly)
{
    topo::Mesh2D line(3, 1);
    EventQueue eq;
    FlitNetwork net(eq, line, {});
    std::vector<Tick> times;
    net.onDeliver([&](const Message &) { times.push_back(eq.now()); });
    net.inject(makeMsg(line, 0, 2, 8192));
    net.inject(makeMsg(line, 1, 2, 8192));
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    // The 1->2 channel carries both: ~2x a lone transfer's time.
    Tick lone = 8192 / 16 + 8192 / 256;
    EXPECT_GT(std::max(times[0], times[1]), 2 * lone);
}

TEST(FlitNetwork, ChannelFlitCountsConserve)
{
    topo::Torus2D t(4, 4);
    EventQueue eq;
    FlitNetwork net(eq, t, {});
    int delivered = 0;
    net.onDeliver([&](const Message &) { ++delivered; });
    auto msg = makeMsg(t, 0, 5, 1024); // 2 hops on the torus
    ASSERT_EQ(msg.route.size(), 2u);
    net.inject(msg);
    eq.run();
    EXPECT_EQ(delivered, 1);
    std::uint64_t wire = 1024 / 16 + 1024 / 256;
    EXPECT_EQ(net.channelFlits(msg.route[0]), wire);
    EXPECT_EQ(net.channelFlits(msg.route[1]), wire);
}

TEST(FlitNetwork, WrapRouteCrossesDatelineSafely)
{
    // A route across the torus wrap must still deliver (dateline VC
    // switch) — this exercises the deadlock-avoidance machinery.
    topo::Torus2D t(4, 4);
    EventQueue eq;
    FlitNetwork net(eq, t, {});
    int delivered = 0;
    net.onDeliver([&](const Message &) { ++delivered; });
    // 0 -> 3 takes the wrap channel (distance 1 the short way).
    net.inject(makeMsg(t, 0, 3, 2048));
    // And many cross flows around the X ring of row 0.
    net.inject(makeMsg(t, 1, 0, 2048));
    net.inject(makeMsg(t, 2, 1, 2048));
    net.inject(makeMsg(t, 3, 2, 2048));
    eq.run();
    EXPECT_EQ(delivered, 4);
}

TEST(FlitNetwork, PacketLatencyAndUtilizationStats)
{
    topo::Mesh2D m(2, 1);
    EventQueue eq;
    NetworkConfig cfg;
    FlitNetwork net(eq, m, cfg);
    net.onDeliver([](const Message &) {});
    auto msg = makeMsg(m, 0, 1, 4096); // 272 wire flits, 1 hop
    net.inject(msg);
    eq.run();
    ASSERT_EQ(net.packetLatency().count(), 1u);
    // Latency covers at least serialization + wire delay.
    EXPECT_GE(net.packetLatency().min(), 272.0 + cfg.link_latency);
    EXPECT_LE(net.packetLatency().max(),
              272.0 + cfg.link_latency + 64);
    // The used channel was busy a meaningful share of active time;
    // the reverse channel carried nothing.
    EXPECT_GT(net.channelUtilization(msg.route[0]), 0.4);
    EXPECT_DOUBLE_EQ(
        net.channelUtilization(m.reverseChannel(msg.route[0])), 0.0);
}

TEST(FlitNetwork, ManyRandomPairsAllDeliver)
{
    topo::Torus2D t(4, 4);
    EventQueue eq;
    FlitNetwork net(eq, t, {});
    int delivered = 0;
    net.onDeliver([&](const Message &) { ++delivered; });
    int injected = 0;
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            net.inject(makeMsg(t, s, d, 512));
            ++injected;
        }
    }
    eq.run();
    EXPECT_EQ(delivered, injected);
}

} // namespace
} // namespace multitree::net
