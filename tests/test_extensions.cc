/**
 * @file
 * Tests for the §VII extension features: reduced tree counts
 * (Blink-style trade-off), schedule export, the energy model, and
 * finite NI reduction bandwidth.
 */

#include <gtest/gtest.h>

#include "accel/model_zoo.hh"
#include "accel/systolic.hh"
#include "coll/export.hh"
#include "coll/functional.hh"
#include "coll/validate.hh"
#include "core/multitree.hh"
#include "net/energy.hh"
#include "runtime/allreduce_runtime.hh"
#include "topo/factory.hh"
#include "topo/grid.hh"

namespace multitree {
namespace {

TEST(TreeCount, ReducedTreesStayValidAndCorrect)
{
    topo::Torus2D t(4, 4);
    for (int k : {1, 2, 4, 8}) {
        core::MultiTreeOptions opts;
        opts.num_trees = k;
        core::MultiTreeAllReduce mt(opts);
        auto s = mt.build(t, 64 * 1024);
        EXPECT_EQ(s.flows.size(), static_cast<std::size_t>(k));
        auto r = coll::validateSchedule(s, t);
        ASSERT_TRUE(r.ok) << "k=" << k << ": " << r.error;
        auto c = coll::validateContentionFree(s, t);
        EXPECT_TRUE(c.ok) << "k=" << k << ": " << c.error;
        EXPECT_TRUE(coll::checkAllReduceCorrect(s, 16 * 1024))
            << "k=" << k;
    }
}

TEST(TreeCount, BandwidthLatencyTradeoff)
{
    // Fewer trees: less aggregate bandwidth at large sizes (fewer
    // concurrent chunks), but a smaller schedule. Full tree count
    // must win at large payloads.
    topo::Torus2D t(8, 8);
    core::MultiTreeOptions few_opts;
    few_opts.num_trees = 4;
    core::MultiTreeAllReduce few(few_opts);
    core::MultiTreeAllReduce full;
    std::uint64_t big = 16 * 1024 * 1024;
    auto t_few =
        runtime::runAllReduce(t, few.build(t, big)).time;
    auto t_full =
        runtime::runAllReduce(t, full.build(t, big)).time;
    EXPECT_GT(t_few, t_full);
    // And the reduced schedule is genuinely smaller.
    EXPECT_LT(few.build(t, big).stats(t).edge_count,
              full.build(t, big).stats(t).edge_count);
}

TEST(Export, DotContainsTreesAndSteps)
{
    topo::Mesh2D m(2, 2);
    core::MultiTreeAllReduce mt;
    auto s = mt.build(m, 4096);
    auto dot = coll::toDot(s);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("cluster_flow0"), std::string::npos);
    EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
    // max_flows trims output.
    auto trimmed = coll::toDot(s, 1);
    EXPECT_EQ(trimmed.find("cluster_flow1"), std::string::npos);
}

TEST(Export, CsvHasOneRowPerTransfer)
{
    topo::Mesh2D m(2, 2);
    core::MultiTreeAllReduce mt;
    auto s = mt.build(m, 4096);
    auto csv = coll::toCsv(s, m);
    std::size_t rows = 0;
    for (char c : csv)
        rows += c == '\n' ? 1 : 0;
    // header + 4 trees x (3 reduce + 3 gather)
    EXPECT_EQ(rows, 1u + 4 * 6);
}

TEST(Energy, MessageModeCutsControlEnergy)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions pkt;
    runtime::RunOptions msg;
    msg.net.mode = net::FlowControlMode::MessageBased;
    auto a = runtime::runAllReduce(*topo, "multitree", 4 * MiB, pkt);
    auto b = runtime::runAllReduce(*topo, "multitree", 4 * MiB, msg);
    auto ea = net::computeEnergy(a.flit_hops, a.head_hops);
    auto eb = net::computeEnergy(b.flit_hops, b.head_hops);
    // Control energy collapses (one head per message)...
    EXPECT_LT(eb.control_nj, 0.01 * ea.control_nj);
    // ...and the datapath also sheds the head flits' share (~6%).
    EXPECT_LT(eb.datapath_nj, ea.datapath_nj);
    EXPECT_GT(ea.total_nj(), eb.total_nj());
}

TEST(Energy, ScalesWithHops)
{
    auto e1 = net::computeEnergy(1000, 10);
    auto e2 = net::computeEnergy(2000, 20);
    EXPECT_DOUBLE_EQ(e2.total_nj(), 2 * e1.total_nj());
}

TEST(ReductionBandwidth, FiniteRateSlowsAllReduce)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions fast; // unlimited (paper assumption)
    runtime::RunOptions slow;
    slow.ni_reduction_bw = 4; // 4 B/cycle: 4 GB/s reduction logic
    auto a = runtime::runAllReduce(*topo, "multitree", 1 * MiB, fast);
    auto b = runtime::runAllReduce(*topo, "multitree", 1 * MiB, slow);
    EXPECT_GT(b.time, a.time);
    // Results still complete and deliver every message.
    EXPECT_EQ(a.messages, b.messages);
}

TEST(LockstepEstimates, BufferAdjustedVariantRunsAndOverlapsSteps)
{
    // Footnote 4's buffer-adjusted windows shorten the lockstep
    // pacing for chunks larger than the NI buffer; on the cycle-
    // level backend the run still completes, at a time no worse
    // than a small factor of the plain estimate.
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions plain;
    plain.backend = runtime::Backend::Flit;
    runtime::RunOptions adjusted = plain;
    adjusted.buffer_adjusted_estimates = true;
    auto a = runtime::runAllReduce(*topo, "multitree", 256 * KiB,
                                   plain);
    auto b = runtime::runAllReduce(*topo, "multitree", 256 * KiB,
                                   adjusted);
    EXPECT_GT(b.time, 0u);
    double ratio = static_cast<double>(b.time)
                   / static_cast<double>(a.time);
    EXPECT_LT(ratio, 1.2);
    EXPECT_GT(ratio, 0.8);
}

TEST(Dataflow, AllThreeMappingsProduceSaneCycleCounts)
{
    accel::AcceleratorConfig os;
    accel::AcceleratorConfig ws = os;
    ws.dataflow = accel::Dataflow::WeightStationary;
    accel::AcceleratorConfig is = os;
    is.dataflow = accel::Dataflow::InputStationary;

    // Square GEMM: all dataflows in the same ballpark.
    auto t_os = accel::gemmCycles(512, 512, 512, os);
    auto t_ws = accel::gemmCycles(512, 512, 512, ws);
    auto t_is = accel::gemmCycles(512, 512, 512, is);
    EXPECT_GT(t_os, 0u);
    EXPECT_LT(static_cast<double>(std::max({t_os, t_ws, t_is}))
                  / std::min({t_os, t_ws, t_is}),
              2.0);

    // Tall-skinny inference GEMM (M=1): weight stationary wastes the
    // array on a single streaming row and loses to output stationary
    // folding over N.
    auto fc_os = accel::gemmCycles(1, 4096, 4096, os);
    auto fc_ws = accel::gemmCycles(1, 4096, 4096, ws);
    EXPECT_NE(fc_os, fc_ws);
    // Zero dims short-circuit for every dataflow.
    for (const auto &cfg : {os, ws, is})
        EXPECT_EQ(accel::gemmCycles(0, 32, 32, cfg), 0u);
}

TEST(Dataflow, ChoiceChangesModelIterationTime)
{
    auto model = accel::makeResNet50();
    accel::AcceleratorConfig os;
    accel::AcceleratorConfig ws = os;
    ws.dataflow = accel::Dataflow::WeightStationary;
    auto a = accel::modelCompute(model, os);
    auto b = accel::modelCompute(model, ws);
    EXPECT_NE(a.fwd, b.fwd);
    EXPECT_GT(b.fwd, 0u);
}

TEST(Trace, DeliveriesAreRecordedInOrder)
{
    auto topo = topo::makeTopology("torus-4x4");
    std::vector<runtime::TraceRecord> trace;
    runtime::RunOptions opts;
    opts.trace = &trace;
    auto res = runtime::runAllReduce(*topo, "ring", 64 * KiB, opts);
    EXPECT_EQ(trace.size(), res.messages);
    Tick prev = 0;
    std::size_t gathers = 0;
    for (const auto &r : trace) {
        EXPECT_GE(r.delivered, prev);
        prev = r.delivered;
        gathers += r.gather ? 1 : 0;
    }
    EXPECT_EQ(gathers, trace.size() / 2); // ring: half each phase
    EXPECT_EQ(trace.back().delivered, res.time);
}

TEST(EngineStallDeath, UnsatisfiableDependencyPanics)
{
    // A hand-built schedule whose only dependency can never arrive:
    // node 1 waits for a reduce from node 0 that is never scheduled.
    topo::Mesh2D m(2, 1);
    coll::Schedule s;
    s.num_nodes = 2;
    coll::ChunkFlow f;
    f.flow_id = 0;
    f.root = 0;
    f.fraction = 1.0;
    f.reduce.push_back(coll::ScheduledEdge{1, 0, 1, {}});
    f.gather.push_back(coll::ScheduledEdge{0, 1, 2, {}});
    s.flows.push_back(f);
    s.assignBytes(64);
    // Corrupt the table source: claim node 1's send depends on a
    // child contribution from node 0 that does not exist.
    s.flows[0].reduce[0].src = 1;
    s.flows[0].reduce.push_back(coll::ScheduledEdge{0, 1, 1, {}});
    s.flows[0].reduce[1].step = 3; // after node 1 already sent
    EXPECT_DEATH(
        { runtime::runAllReduce(m, s); }, "stalled|deadlock");
}

TEST(ReductionBandwidth, GenerousRateCostsLittle)
{
    auto topo = topo::makeTopology("torus-4x4");
    runtime::RunOptions fast;
    runtime::RunOptions gen;
    gen.ni_reduction_bw = 1024; // 1 TB/s aggregation
    auto a = runtime::runAllReduce(*topo, "ring", 1 * MiB, fast);
    auto b = runtime::runAllReduce(*topo, "ring", 1 * MiB, gen);
    double ratio = static_cast<double>(b.time)
                   / static_cast<double>(a.time);
    EXPECT_LT(ratio, 1.05);
}

} // namespace
} // namespace multitree
