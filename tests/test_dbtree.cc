/**
 * @file
 * Unit tests for the double binary tree all-reduce.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "coll/dbtree.hh"
#include "coll/functional.hh"
#include "coll/validate.hh"
#include "topo/fattree.hh"
#include "topo/grid.hh"

namespace multitree::coll {
namespace {

/** Collect leaf ranks of tree @p which over @p n ranks. */
std::set<int>
leavesOf(int which, int n)
{
    std::set<int> has_child;
    for (int r = 0; r < n; ++r) {
        int p = DBTreeAllReduce::parentOf(r, which, n);
        if (p >= 0)
            has_child.insert(p);
    }
    std::set<int> leaves;
    for (int r = 0; r < n; ++r) {
        if (!has_child.count(r))
            leaves.insert(r);
    }
    return leaves;
}

TEST(DBTree, TreesAreComplementary)
{
    // Sanders' property: leaves of one tree are internal nodes of the
    // other, so both trees can stream at full node bandwidth.
    for (int n : {2, 4, 8, 16, 64}) {
        auto leaves0 = leavesOf(0, n);
        auto leaves1 = leavesOf(1, n);
        for (int leaf : leaves0)
            EXPECT_FALSE(leaves1.count(leaf))
                << "rank " << leaf << " is a leaf in both trees, n="
                << n;
    }
}

TEST(DBTree, ParentChainsReachRoot)
{
    for (int n : {2, 3, 4, 7, 16, 33, 64}) {
        for (int which : {0, 1}) {
            int roots = 0;
            for (int r = 0; r < n; ++r) {
                if (DBTreeAllReduce::parentOf(r, which, n) < 0)
                    ++roots;
                int cur = r, hops = 0;
                while (DBTreeAllReduce::parentOf(cur, which, n) >= 0) {
                    cur = DBTreeAllReduce::parentOf(cur, which, n);
                    ASSERT_LE(++hops, n);
                }
            }
            EXPECT_EQ(roots, 1) << "n=" << n << " tree " << which;
        }
    }
}

TEST(DBTree, BinaryDegreeBound)
{
    for (int n : {4, 16, 64}) {
        for (int which : {0, 1}) {
            std::vector<int> kids(static_cast<std::size_t>(n), 0);
            for (int r = 0; r < n; ++r) {
                int p = DBTreeAllReduce::parentOf(r, which, n);
                if (p >= 0)
                    ++kids[static_cast<std::size_t>(p)];
            }
            for (int r = 0; r < n; ++r)
                EXPECT_LE(kids[static_cast<std::size_t>(r)], 2);
        }
    }
}

TEST(DBTree, ScheduleValidatesAndSums)
{
    DBTreeAllReduce db;
    topo::Torus2D t(4, 4);
    auto s = db.build(t, 512 * 1024);
    auto r = validateSchedule(s, t);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(checkAllReduceCorrect(s, 512 * 1024 / 4));
}

TEST(DBTree, PipelinesLargePayloads)
{
    DBTreeAllReduce db;
    topo::FatTree2L ft(4, 4, 4);
    auto small = db.build(ft, 64 * 1024);
    auto large = db.build(ft, 16 * 1024 * 1024);
    EXPECT_GT(large.flows.size(), small.flows.size());
    // Two trees' flows: segment fractions must halve per tree.
    double frac0 = 0;
    for (const auto &f : large.flows)
        frac0 += f.fraction;
    EXPECT_NEAR(frac0, 1.0, 1e-9);
}

TEST(DBTree, EvenOddStepParitySeparatesTrees)
{
    DBTreeAllReduce db;
    topo::Torus2D t(4, 4);
    auto s = db.build(t, 1024 * 1024);
    // Flow ids below segments belong to tree 0 (odd steps), the rest
    // to tree 1 (even steps): no node serves both trees in one step.
    std::set<int> roots;
    for (const auto &f : s.flows)
        roots.insert(f.root);
    EXPECT_EQ(roots.size(), 2u);
    int parity[2] = {-1, -1};
    for (const auto &f : s.flows) {
        int tree = f.root == *roots.begin() ? 0 : 1;
        for (const auto &e : f.reduce) {
            if (parity[tree] == -1)
                parity[tree] = e.step % 2;
            EXPECT_EQ(e.step % 2, parity[tree]);
        }
    }
    EXPECT_NE(parity[0], parity[1]);
}

TEST(DBTree, MultiHopEdgesExistOnTorus)
{
    // The topology-obliviousness that hurts DBTree: logical tree
    // edges crossing multiple physical hops.
    DBTreeAllReduce db;
    topo::Torus2D t(8, 8);
    auto s = db.build(t, 1024 * 1024);
    bool any_multi_hop = false;
    for (const auto &f : s.flows) {
        for (const auto &e : f.reduce)
            any_multi_hop |= t.route(e.src, e.dst).size() > 1;
    }
    EXPECT_TRUE(any_multi_hop);
}

} // namespace
} // namespace multitree::coll
