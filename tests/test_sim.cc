/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace multitree::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> seen;
    eq.scheduleAt(30, [&] { seen.push_back(3); });
    eq.scheduleAt(10, [&] { seen.push_back(1); });
    eq.scheduleAt(20, [&] { seen.push_back(2); });
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue eq;
    std::vector<int> seen;
    for (int i = 0; i < 5; ++i)
        eq.scheduleAt(5, [&, i] { seen.push_back(i); });
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> seen;
    eq.scheduleAt(5, [&] { seen.push_back(2); }, Priority::Low);
    eq.scheduleAt(5, [&] { seen.push_back(0); }, Priority::High);
    eq.scheduleAt(5, [&] { seen.push_back(1); }, Priority::Default);
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(1, [&] {
        ++fired;
        eq.scheduleAfter(9, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(5, [&] { ++fired; });
    eq.scheduleAt(15, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunLimitCounts)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(static_cast<Tick>(i + 1), [] {});
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(eq.pending(), 6u);
    EXPECT_EQ(eq.run(), 6u);
    EXPECT_EQ(eq.executed(), 10u);
}

TEST(EventQueue, SameTickPriorityThenInsertionOrder)
{
    // Priority is the primary same-tick key; insertion order breaks
    // ties within each priority class.
    EventQueue eq;
    std::vector<int> seen;
    eq.scheduleAt(5, [&] { seen.push_back(3); }, Priority::Low);
    eq.scheduleAt(5, [&] { seen.push_back(1); }, Priority::Default);
    eq.scheduleAt(5, [&] { seen.push_back(0); }, Priority::High);
    eq.scheduleAt(5, [&] { seen.push_back(2); }, Priority::Default);
    eq.scheduleAt(5, [&] { seen.push_back(4); }, Priority::Low);
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ResetRewindsClockAndOpensNewEpoch)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(25, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(eq.now(), 25u);
    EXPECT_EQ(eq.epoch(), 0u);
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.epoch(), 1u);
    // A tick that was "the past" in the previous epoch is schedulable
    // again.
    eq.scheduleAt(5, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, LifetimeCountersSurviveReset)
{
    EventQueue eq;
    for (int i = 0; i < 3; ++i)
        eq.scheduleAt(static_cast<Tick>(i + 1), [] {});
    eq.run();
    eq.reset();
    eq.scheduleAt(1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 4u); // monotonic across epochs
    EXPECT_EQ(eq.epoch(), 1u);
    eq.reset();
    EXPECT_EQ(eq.epoch(), 2u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}

TEST(EventQueueDeath, ResetWithPendingEventsPanics)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    EXPECT_DEATH(eq.reset(), "pending");
}

} // namespace
} // namespace multitree::sim
