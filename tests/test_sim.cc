/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace multitree::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> seen;
    eq.scheduleAt(30, [&] { seen.push_back(3); });
    eq.scheduleAt(10, [&] { seen.push_back(1); });
    eq.scheduleAt(20, [&] { seen.push_back(2); });
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue eq;
    std::vector<int> seen;
    for (int i = 0; i < 5; ++i)
        eq.scheduleAt(5, [&, i] { seen.push_back(i); });
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> seen;
    eq.scheduleAt(5, [&] { seen.push_back(2); }, Priority::Low);
    eq.scheduleAt(5, [&] { seen.push_back(0); }, Priority::High);
    eq.scheduleAt(5, [&] { seen.push_back(1); }, Priority::Default);
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(1, [&] {
        ++fired;
        eq.scheduleAfter(9, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(5, [&] { ++fired; });
    eq.scheduleAt(15, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunLimitCounts)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(static_cast<Tick>(i + 1), [] {});
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(eq.pending(), 6u);
    EXPECT_EQ(eq.run(), 6u);
    EXPECT_EQ(eq.executed(), 10u);
}

TEST(EventQueue, SameTickPriorityThenInsertionOrder)
{
    // Priority is the primary same-tick key; insertion order breaks
    // ties within each priority class.
    EventQueue eq;
    std::vector<int> seen;
    eq.scheduleAt(5, [&] { seen.push_back(3); }, Priority::Low);
    eq.scheduleAt(5, [&] { seen.push_back(1); }, Priority::Default);
    eq.scheduleAt(5, [&] { seen.push_back(0); }, Priority::High);
    eq.scheduleAt(5, [&] { seen.push_back(2); }, Priority::Default);
    eq.scheduleAt(5, [&] { seen.push_back(4); }, Priority::Low);
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ResetRewindsClockAndOpensNewEpoch)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(25, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(eq.now(), 25u);
    EXPECT_EQ(eq.epoch(), 0u);
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.epoch(), 1u);
    // A tick that was "the past" in the previous epoch is schedulable
    // again.
    eq.scheduleAt(5, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, LifetimeCountersSurviveReset)
{
    EventQueue eq;
    for (int i = 0; i < 3; ++i)
        eq.scheduleAt(static_cast<Tick>(i + 1), [] {});
    eq.run();
    eq.reset();
    eq.scheduleAt(1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 4u); // monotonic across epochs
    EXPECT_EQ(eq.epoch(), 1u);
    eq.reset();
    EXPECT_EQ(eq.epoch(), 2u);
}

// --- churn coverage: locks in ordering/accounting behavior the
// flat-heap storage tuning must preserve ---

TEST(EventQueue, HeavyChurnSameTickKeepsPriorityThenFifoOrder)
{
    // Thousands of same-tick events across interleaved priorities:
    // the (tick, priority, insertion) order must hold exactly even
    // through the grow/rehash churn of the underlying storage.
    EventQueue eq;
    constexpr int kN = 10'000;
    std::vector<int> seen;
    seen.reserve(kN);
    for (int i = 0; i < kN; ++i) {
        const auto prio = static_cast<Priority>(i % 3);
        // Expected position: all High first (by insertion), then
        // Default, then Low.
        const int rank = (i % 3) * (kN / 3) + i / 3;
        eq.scheduleAt(7, [&seen, rank] { seen.push_back(rank); },
                      prio);
    }
    eq.run();
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(kN));
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    EXPECT_EQ(eq.executed(), static_cast<std::uint64_t>(kN));
}

TEST(EventQueue, CascadedSchedulingDuringExecutionStaysOrdered)
{
    // Events that schedule bursts of further events mid-execution —
    // the flit tick loop's pattern — never reorder already-queued
    // work and never lose an event while the heap regrows.
    EventQueue eq;
    std::vector<Tick> fired_at;
    std::function<void(int)> burst = [&](int depth) {
        fired_at.push_back(eq.now());
        if (depth == 0)
            return;
        for (int i = 0; i < 8; ++i) {
            eq.scheduleAfter(static_cast<Tick>(i + 1),
                             [&, depth] { burst(depth - 1); });
        }
    };
    eq.scheduleAt(1, [&] { burst(3); });
    eq.run();
    // 1 + 8 + 64 + 512 firings, in nondecreasing tick order.
    EXPECT_EQ(fired_at.size(), 585u);
    EXPECT_TRUE(std::is_sorted(fired_at.begin(), fired_at.end()));
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, EpochResetBetweenBurstsAccumulatesLifetime)
{
    // Epoch reset mid-churn: each burst drains, resets, and replays
    // from tick zero; executed() accumulates monotonically and FIFO
    // order within a tick is re-established from scratch per epoch.
    EventQueue eq;
    std::uint64_t total = 0;
    for (int epoch = 0; epoch < 5; ++epoch) {
        std::vector<int> seen;
        for (int i = 0; i < 1'000; ++i)
            eq.scheduleAt(3, [&seen, i] { seen.push_back(i); });
        eq.run();
        total += 1'000;
        EXPECT_EQ(eq.now(), 3u);
        EXPECT_EQ(eq.executed(), total);
        EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
        eq.reset();
        EXPECT_EQ(eq.now(), 0u);
        EXPECT_EQ(eq.epoch(), static_cast<std::uint64_t>(epoch + 1));
    }
}

TEST(EventQueue, ReservePreservesPendingWorkAndOrder)
{
    EventQueue eq;
    std::vector<int> seen;
    for (int i = 0; i < 100; ++i)
        eq.scheduleAt(static_cast<Tick>(100 - i),
                      [&seen, i] { seen.push_back(100 - i); });
    eq.reserve(100'000); // regrow with events in flight
    for (int i = 0; i < 100; ++i)
        eq.scheduleAt(static_cast<Tick>(i + 200),
                      [&seen, i] { seen.push_back(i + 200); });
    eq.run();
    ASSERT_EQ(seen.size(), 200u);
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}

TEST(EventQueueDeath, ResetWithPendingEventsPanics)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    EXPECT_DEATH(eq.reset(), "pending");
}

} // namespace
} // namespace multitree::sim
