/**
 * @file
 * In-network multicast / switch-resident reduction bench: the
 * broadcast-heavy phase win of one injection serving N children.
 *
 * A symmetric all-reduce is receive-bandwidth-bound — every node
 * drains N-1 chunks through its own link no matter how the senders
 * inject — so in-network replication cannot shorten it. The phase it
 * does shorten is the one the profiler blames on fan-out
 * serialization: a single root pushing the same chunk down a gather
 * tree (unicast pays one full serialization per child, multicast pays
 * one per tree level), and its mirror image, a single root draining
 * every contribution through its one link (switch-resident combining
 * collapses the converging flows to one). This bench carves exactly
 * those phases out of the MultiTree schedule — flow 0's gather tree
 * and reduce tree, re-scaled to the full payload — and runs each
 * unicast vs fused on the cycle-level backend.
 *
 * Rows land in BENCH_results.json ("mcast/..."); the process exits
 * nonzero unless multicast beats unicast by >= 1.3x on the broadcast
 * phase of both fattree-16 and torus-8x8, which is what CI gates.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "coll/schedule.hh"
#include "net/network.hh"

namespace {

using namespace multitree;

/**
 * Flow 0 of @p full as a standalone single-root schedule carrying the
 * whole payload: gather edges only (keep_gather) for the broadcast
 * phase, reduce edges only for the reduction phase. Lockstep is
 * dropped — a single tree has no peer flows to pace against.
 */
coll::Schedule
singleRootPhase(const coll::Schedule &full, std::uint64_t bytes,
                bool keep_gather)
{
    coll::Schedule phase;
    phase.algorithm = full.algorithm
                      + (keep_gather ? "-bcast" : "-reduce");
    phase.kind = keep_gather ? coll::CollectiveKind::AllGather
                             : coll::CollectiveKind::ReduceScatter;
    phase.num_nodes = full.num_nodes;
    phase.lockstep = false;
    coll::ChunkFlow f = full.flows.front();
    f.flow_id = 0;
    f.fraction = 1.0;
    if (keep_gather)
        f.reduce.clear();
    else
        f.gather.clear();
    phase.flows.push_back(std::move(f));
    phase.assignBytes(bytes);
    return phase;
}

Tick
runPoint(const std::string &topo_spec, const coll::Schedule &sched,
         std::uint64_t bytes, net::InNetworkMode mode)
{
    auto topo = topo::makeTopology(topo_spec);
    runtime::RunOptions opts;
    opts.backend = runtime::Backend::Flit;
    opts.net.in_network = mode;
    runtime::Machine machine(*topo, opts);
    auto res = machine.run(sched);

    bench::BenchRow row;
    row.name = "mcast/" + topo_spec + "/" + sched.algorithm + "/"
               + net::inNetworkModeName(mode);
    row.topo = topo_spec;
    row.algo = sched.algorithm;
    row.bytes = bytes;
    row.cycles = res.time;
    row.bandwidth_gbps = res.bandwidth;
    row.messages = res.messages;
    row.mode = std::string("in_network=")
               + net::inNetworkModeName(mode);
    bench::recordBenchRow(row);

    std::printf("%-56s %10llu cyc  %8llu msgs  %6llu mcast  "
                "%4llu combined\n",
                row.name.c_str(),
                static_cast<unsigned long long>(res.time),
                static_cast<unsigned long long>(res.messages),
                static_cast<unsigned long long>(res.mcast_injections),
                static_cast<unsigned long long>(res.combined_groups));
    return res.time;
}

} // namespace

int
main()
{
    constexpr std::uint64_t kBytes = 1 * MiB;
    constexpr double kGate = 1.3;
    bool ok = true;

    for (const std::string &topo_spec :
         {std::string("fattree-16"), std::string("torus-8x8")}) {
        auto topo = topo::makeTopology(topo_spec);
        auto algo = coll::makeAlgorithm("multitree");
        const coll::Schedule full = algo->build(*topo, kBytes);

        const coll::Schedule bcast =
            singleRootPhase(full, kBytes, true);
        const Tick uni =
            runPoint(topo_spec, bcast, kBytes,
                     net::InNetworkMode::Off);
        const Tick mc = runPoint(topo_spec, bcast, kBytes,
                                 net::InNetworkMode::Multicast);
        const double speedup = static_cast<double>(uni)
                               / static_cast<double>(mc);
        std::printf("  broadcast speedup on %-12s %.2fx "
                    "(gate %.1fx)\n",
                    topo_spec.c_str(), speedup, kGate);
        if (speedup < kGate)
            ok = false;

        const coll::Schedule red =
            singleRootPhase(full, kBytes, false);
        const Tick runi = runPoint(topo_spec, red, kBytes,
                                   net::InNetworkMode::Off);
        const Tick rcmb =
            runPoint(topo_spec, red, kBytes,
                     net::InNetworkMode::MulticastReduce);
        std::printf("  reduction speedup on %-12s %.2fx\n",
                    topo_spec.c_str(),
                    static_cast<double>(runi)
                        / static_cast<double>(rcmb));
    }

    if (!ok) {
        std::fprintf(stderr, "multicast speedup below the %.1fx "
                             "gate\n",
                     kGate);
        return 1;
    }
    return 0;
}
