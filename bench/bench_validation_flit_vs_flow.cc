/**
 * @file
 * Methodology validation — cycle-level flit simulator versus the
 * fast flow model.
 *
 * The figure sweeps run on the flow model for wall-clock reasons
 * (DESIGN.md documents the substitution); this bench quantifies the
 * agreement on all-reduce completion time across algorithms,
 * topologies and sizes. Counter `flit_over_flow` is the time ratio;
 * values near 1 justify using the fast model for the full sweeps.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

void
registerAll()
{
    const std::vector<std::pair<std::string, std::string>> configs = {
        {"ring", "torus-4x4"},      {"multitree", "torus-4x4"},
        {"ring2d", "torus-4x4"},    {"dbtree", "torus-4x4"},
        {"multitree", "mesh-4x4"},  {"ring", "fattree-16"},
        {"multitree", "fattree-16"},{"hdrm", "bigraph-4x8"},
        {"multitree", "bigraph-4x8"},
    };
    for (const auto &[algo, topo] : configs) {
        for (std::uint64_t bytes : {128 * KiB, 512 * KiB}) {
            std::string name = "validation/" + algo + "/" + topo + "/"
                               + std::to_string(bytes / KiB) + "KiB";
            std::string a = algo, t = topo;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [a, t, bytes](benchmark::State &state) {
                    auto flow = simulate(t, a, bytes,
                                         runtime::Backend::Flow);
                    auto flit = simulate(t, a, bytes,
                                         runtime::Backend::Flit);
                    for (auto _ : state) {
                        state.SetIterationTime(
                            static_cast<double>(flit.time) * 1e-9);
                        state.counters["flit_us"] =
                            static_cast<double>(flit.time) / 1e3;
                        state.counters["flow_us"] =
                            static_cast<double>(flow.time) / 1e3;
                        state.counters["flit_over_flow"] =
                            static_cast<double>(flit.time)
                            / static_cast<double>(flow.time);
                    }
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMicrosecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
