/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every figure/table benchmark reports the *simulated* time of the
 * modeled system as the benchmark time (google-benchmark manual
 * time), so the reported rows read exactly like the paper's series:
 * time per all-reduce, algorithm bandwidth in GB/s, speedups over
 * ring, and so on. Wall-clock spent running the simulator is not the
 * quantity of interest and is excluded.
 */

#ifndef MULTITREE_BENCH_BENCH_COMMON_HH
#define MULTITREE_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coll/algorithm.hh"
#include "obs/perfetto.hh"
#include "obs/trace.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

namespace multitree::bench {

/**
 * Extract a `--seed=N` (or `--seed N`) flag from argv before
 * google-benchmark parses it (unknown flags are fatal there), and
 * compact argv in place. Seeds feed deterministic fault plans so a
 * faulted sweep is reproducible: same seed, same drops.
 * @return the parsed seed, or @p fallback when the flag is absent.
 */
inline std::uint64_t
extractSeedFlag(int *argc, char **argv,
                std::uint64_t fallback = 1)
{
    std::uint64_t seed = fallback;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--seed=", 7) == 0) {
            seed = std::strtoull(a + 7, nullptr, 10);
            continue;
        }
        if (std::strcmp(a, "--seed") == 0 && i + 1 < *argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
            continue;
        }
        argv[out++] = argv[i];
    }
    *argc = out;
    return seed;
}

/** The Fig. 9 payload sweep: 32 KiB to 64 MiB. */
inline std::vector<std::uint64_t>
fig9Sizes()
{
    return {32 * KiB,       128 * KiB, 512 * KiB, 2 * MiB,
            8 * MiB,        32 * MiB,  64 * MiB};
}

/** One cached persistent fabric, with its optional trace recorder. */
struct Fabric {
    std::unique_ptr<topo::Topology> topo;
    /** Non-null when --trace-out armed tracing for this process. */
    std::unique_ptr<obs::Trace> trace;
    std::unique_ptr<runtime::Machine> machine;
};

/**
 * Cache of persistent fabrics, keyed by (topology, backend).
 * Deliberately leaked: the trace writer runs from std::atexit, which
 * interleaves with static destruction in LIFO order, and the cache is
 * first touched (hence constructed) *after* the handler registers —
 * a function-local static would already be destroyed when the
 * handler walks it.
 */
inline std::map<std::pair<std::string, runtime::Backend>, Fabric> &
fabricCache()
{
    static auto *cache = new std::map<
        std::pair<std::string, runtime::Backend>, Fabric>;
    return *cache;
}

/** Output base path set by --trace-out; empty = tracing off. */
inline std::string &
traceOutBase()
{
    static std::string base;
    return base;
}

/**
 * Write one Perfetto trace file per traced fabric, suffixed
 * "<base>.<topo>.<backend>.json". Registered via std::atexit by
 * extractTraceOutFlag so every fabric's recording — all runs of the
 * whole sweep, back to back on its shared time axis — lands on disk
 * when the benchmark process exits.
 */
inline void
writeFabricTraces()
{
    const std::string &base = traceOutBase();
    if (base.empty())
        return;
    for (const auto &[key, f] : fabricCache()) {
        if (!f.trace || f.trace->events().empty())
            continue;
        const std::string path =
            base + "." + key.first
            + (key.second == runtime::Backend::Flow ? ".flow"
                                                    : ".flit")
            + ".json";
        std::ofstream out(path);
        if (!out)
            continue;
        obs::writePerfettoTrace(out, f.machine->fabricInfo(),
                                f.trace->events());
    }
}

/**
 * Extract `--trace-out=BASE` (or `--trace-out BASE`) from argv the
 * same way extractSeedFlag does, arming per-fabric lifecycle tracing
 * for the whole benchmark process. Traces are flushed at exit.
 * @return whether tracing was armed.
 */
inline bool
extractTraceOutFlag(int *argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--trace-out=", 12) == 0) {
            traceOutBase() = a + 12;
            continue;
        }
        if (std::strcmp(a, "--trace-out") == 0 && i + 1 < *argc) {
            traceOutBase() = argv[++i];
            continue;
        }
        argv[out++] = argv[i];
    }
    *argc = out;
    if (traceOutBase().empty())
        return false;
    std::atexit(&writeFabricTraces);
    return true;
}

/**
 * The persistent fabric for one (topology, backend) pair. A sweep of
 * algorithm/size points reuses one Machine — routers and NI engines
 * are built once — instead of rebuilding the fabric per point;
 * per-run results are identical to single-shot simulations either way.
 */
inline runtime::Machine &
machineFor(const std::string &topo_spec, runtime::Backend backend)
{
    auto &cache = fabricCache();
    auto key = std::make_pair(topo_spec, backend);
    auto it = cache.find(key);
    if (it == cache.end()) {
        Fabric f;
        f.topo = topo::makeTopology(topo_spec);
        runtime::RunOptions opts;
        opts.backend = backend;
        if (!traceOutBase().empty()) {
            f.trace = std::make_unique<obs::Trace>();
            opts.sink = f.trace.get();
        }
        f.machine =
            std::make_unique<runtime::Machine>(*f.topo, opts);
        it = cache.emplace(key, std::move(f)).first;
    }
    return *it->second.machine;
}

/** Simulate one all-reduce on the cached persistent fabric. */
inline runtime::RunResult
simulate(const std::string &topo_spec, const std::string &algo,
         std::uint64_t bytes,
         runtime::Backend backend = runtime::Backend::Flow)
{
    return machineFor(topo_spec, backend).run(algo, bytes);
}

/** One registered benchmark point's simulated outcome. */
struct BenchRow {
    std::string name;
    std::string topo;
    std::string algo;
    std::uint64_t bytes = 0;
    Tick cycles = 0;
    double bandwidth_gbps = 0;
    std::uint64_t messages = 0;
    // Simulator-throughput fields (bench_simspeed): wall-clock spent
    // simulating, millions of simulated cycles per wall second, and
    // which scheduler ("active"/"dense" flit tick loop, "flow")
    // produced the row.
    double wall_ms = 0;
    double msim_cps = 0;
    std::string mode;
};

/**
 * Rows recorded by every executed all-reduce point, in execution
 * order. Leaked for the same atexit-vs-static-destruction ordering
 * reason as fabricCache().
 */
inline std::vector<BenchRow> &
benchRows()
{
    static auto *rows = new std::vector<BenchRow>;
    return *rows;
}

/**
 * Write every recorded row as machine-readable JSON. The output path
 * defaults to BENCH_results.json in the working directory; the
 * MT_BENCH_RESULTS environment variable overrides it. Speedups are
 * computed at write time against the ring row with the same
 * (topology, bytes) — null when the sweep had no ring baseline.
 */
inline void
writeBenchResults()
{
    auto &rows = benchRows();
    if (rows.empty())
        return;
    const char *env = std::getenv("MT_BENCH_RESULTS");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_results.json";
    std::ofstream out(path);
    if (!out)
        return;
    // Ring baseline per (topology, bytes) for speedup columns.
    std::map<std::pair<std::string, std::uint64_t>, Tick> ring;
    for (const auto &r : rows) {
        if (r.algo == "ring")
            ring[{r.topo, r.bytes}] = r.cycles;
    }
    out << "{\n  \"results\": [\n";
    const char *sep = "";
    for (const auto &r : rows) {
        out << sep << "    {\"name\": " << obs::jsonQuote(r.name)
            << ", \"topology\": " << obs::jsonQuote(r.topo)
            << ", \"algorithm\": " << obs::jsonQuote(r.algo)
            << ", \"bytes\": " << r.bytes
            << ", \"cycles\": " << r.cycles
            << ", \"bandwidth_gbps\": " << r.bandwidth_gbps
            << ", \"messages\": " << r.messages
            << ", \"wall_ms\": " << r.wall_ms
            << ", \"msim_cycles_per_s\": " << r.msim_cps
            << ", \"mode\": " << obs::jsonQuote(r.mode)
            << ", \"speedup_vs_ring\": ";
        auto it = ring.find({r.topo, r.bytes});
        if (it == ring.end() || r.cycles == 0) {
            out << "null";
        } else {
            out << static_cast<double>(it->second)
                       / static_cast<double>(r.cycles);
        }
        out << "}";
        sep = ",\n";
    }
    out << "\n  ]\n}\n";
}

/** Record one fully-populated row, arming the atexit writer on
 *  first use (bench_simspeed path — wall-clock fields included). */
inline void
recordBenchRow(BenchRow row)
{
    auto &rows = benchRows();
    if (rows.empty())
        std::atexit(&writeBenchResults);
    rows.push_back(std::move(row));
}

/** Record one executed point, arming the atexit writer on first use. */
inline void
recordBenchResult(const std::string &name,
                  const std::string &topo_spec,
                  const std::string &algo, std::uint64_t bytes,
                  const runtime::RunResult &res)
{
    auto &rows = benchRows();
    if (rows.empty())
        std::atexit(&writeBenchResults);
    BenchRow row;
    row.name = name;
    row.topo = topo_spec;
    row.algo = algo;
    row.bytes = bytes;
    row.cycles = res.time;
    row.bandwidth_gbps = res.bandwidth;
    row.messages = res.messages;
    rows.push_back(std::move(row));
}

/** Whether @p algo supports @p topo_spec. */
inline bool
supported(const std::string &topo_spec, const std::string &algo)
{
    auto topo = topo::makeTopology(topo_spec);
    auto a =
        coll::makeAlgorithm(coll::findAlgorithmVariant(algo).base);
    return a->supports(*topo);
}

/**
 * Register one all-reduce point: the benchmark's manual time is the
 * simulated completion time; counters carry bandwidth.
 */
inline void
registerAllReducePoint(const std::string &name,
                       const std::string &topo_spec,
                       const std::string &algo, std::uint64_t bytes)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State &state) {
            for (auto _ : state) {
                auto res = simulate(topo_spec, algo, bytes);
                recordBenchResult(name, topo_spec, algo, bytes, res);
                state.SetIterationTime(
                    static_cast<double>(res.time) * 1e-9);
                state.counters["GB/s"] = res.bandwidth;
                state.counters["sim_us"] =
                    static_cast<double>(res.time) / 1e3;
                state.counters["msgs"] =
                    static_cast<double>(res.messages);
            }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
}

} // namespace multitree::bench

#endif // MULTITREE_BENCH_BENCH_COMMON_HH
