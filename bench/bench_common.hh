/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every figure/table benchmark reports the *simulated* time of the
 * modeled system as the benchmark time (google-benchmark manual
 * time), so the reported rows read exactly like the paper's series:
 * time per all-reduce, algorithm bandwidth in GB/s, speedups over
 * ring, and so on. Wall-clock spent running the simulator is not the
 * quantity of interest and is excluded.
 */

#ifndef MULTITREE_BENCH_BENCH_COMMON_HH
#define MULTITREE_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coll/algorithm.hh"
#include "obs/perfetto.hh"
#include "obs/results.hh"
#include "obs/trace.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

namespace multitree::bench {

/** Abort flag extraction with a clear one-line diagnosis. A malformed
 *  flag must die here: left in argv it falls through to
 *  google-benchmark, which fatals with its own unrelated message. */
[[noreturn]] inline void
flagError(const char *msg, const char *arg)
{
    std::fprintf(stderr, "error: %s: '%s'\n", msg, arg);
    std::exit(2);
}

/**
 * Extract a `--seed=N` (or `--seed N`) flag from argv before
 * google-benchmark parses it (unknown flags are fatal there), and
 * compact argv in place. Seeds feed deterministic fault plans so a
 * faulted sweep is reproducible: same seed, same drops. A trailing
 * `--seed` with no value or a non-numeric value is a hard error.
 * @return the parsed seed, or @p fallback when the flag is absent.
 */
inline std::uint64_t
extractSeedFlag(int *argc, char **argv,
                std::uint64_t fallback = 1)
{
    auto parse = [](const char *flag, const char *value) {
        char *end = nullptr;
        std::uint64_t v = std::strtoull(value, &end, 10);
        if (end == value || *end != '\0')
            flagError("--seed needs an unsigned integer, got",
                      flag);
        return v;
    };
    std::uint64_t seed = fallback;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--seed=", 7) == 0) {
            seed = parse(a, a + 7);
            continue;
        }
        if (std::strcmp(a, "--seed") == 0) {
            if (i + 1 >= *argc)
                flagError("missing value after", a);
            seed = parse(argv[i + 1], argv[i + 1]);
            ++i;
            continue;
        }
        argv[out++] = argv[i];
    }
    *argc = out;
    return seed;
}

/** The Fig. 9 payload sweep: 32 KiB to 64 MiB. */
inline std::vector<std::uint64_t>
fig9Sizes()
{
    return {32 * KiB,       128 * KiB, 512 * KiB, 2 * MiB,
            8 * MiB,        32 * MiB,  64 * MiB};
}

/** One cached persistent fabric, with its optional trace recorder. */
struct Fabric {
    std::unique_ptr<topo::Topology> topo;
    /** Non-null when --trace-out armed tracing for this process. */
    std::unique_ptr<obs::Trace> trace;
    std::unique_ptr<runtime::Machine> machine;
};

/**
 * Cache of persistent fabrics, keyed by (topology, backend).
 * Deliberately leaked: the trace writer runs from std::atexit, which
 * interleaves with static destruction in LIFO order, and the cache is
 * first touched (hence constructed) *after* the handler registers —
 * a function-local static would already be destroyed when the
 * handler walks it.
 */
inline std::map<std::pair<std::string, runtime::Backend>, Fabric> &
fabricCache()
{
    static auto *cache = new std::map<
        std::pair<std::string, runtime::Backend>, Fabric>;
    return *cache;
}

/** Output base path set by --trace-out; empty = tracing off. */
inline std::string &
traceOutBase()
{
    static std::string base;
    return base;
}

/**
 * Write one Perfetto trace file per traced fabric, suffixed
 * "<base>.<topo>.<backend>.json". Registered via std::atexit by
 * extractTraceOutFlag so every fabric's recording — all runs of the
 * whole sweep, back to back on its shared time axis — lands on disk
 * when the benchmark process exits.
 */
inline void
writeFabricTraces()
{
    const std::string &base = traceOutBase();
    if (base.empty())
        return;
    for (const auto &[key, f] : fabricCache()) {
        if (!f.trace || f.trace->events().empty())
            continue;
        const std::string path =
            base + "." + key.first
            + (key.second == runtime::Backend::Flow ? ".flow"
                                                    : ".flit")
            + ".json";
        std::ofstream out(path);
        if (!out)
            continue;
        obs::writePerfettoTrace(out, f.machine->fabricInfo(),
                                f.trace->events());
    }
}

/**
 * Extract `--trace-out=BASE` (or `--trace-out BASE`) from argv the
 * same way extractSeedFlag does, arming per-fabric lifecycle tracing
 * for the whole benchmark process. Traces are flushed at exit. A
 * trailing `--trace-out` with no value is a hard error.
 * @return whether tracing was armed.
 */
inline bool
extractTraceOutFlag(int *argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--trace-out=", 12) == 0) {
            if (a[12] == '\0')
                flagError("empty path in", a);
            traceOutBase() = a + 12;
            continue;
        }
        if (std::strcmp(a, "--trace-out") == 0) {
            if (i + 1 >= *argc)
                flagError("missing value after", a);
            traceOutBase() = argv[++i];
            continue;
        }
        argv[out++] = argv[i];
    }
    *argc = out;
    if (traceOutBase().empty())
        return false;
    std::atexit(&writeFabricTraces);
    return true;
}

/**
 * The persistent fabric for one (topology, backend) pair. A sweep of
 * algorithm/size points reuses one Machine — routers and NI engines
 * are built once — instead of rebuilding the fabric per point;
 * per-run results are identical to single-shot simulations either way.
 */
inline runtime::Machine &
machineFor(const std::string &topo_spec, runtime::Backend backend)
{
    auto &cache = fabricCache();
    auto key = std::make_pair(topo_spec, backend);
    auto it = cache.find(key);
    if (it == cache.end()) {
        Fabric f;
        f.topo = topo::makeTopology(topo_spec);
        runtime::RunOptions opts;
        opts.backend = backend;
        if (!traceOutBase().empty()) {
            f.trace = std::make_unique<obs::Trace>();
            opts.sink = f.trace.get();
        }
        f.machine =
            std::make_unique<runtime::Machine>(*f.topo, opts);
        it = cache.emplace(key, std::move(f)).first;
    }
    return *it->second.machine;
}

/** Simulate one all-reduce on the cached persistent fabric. */
inline runtime::RunResult
simulate(const std::string &topo_spec, const std::string &algo,
         std::uint64_t bytes,
         runtime::Backend backend = runtime::Backend::Flow)
{
    return machineFor(topo_spec, backend).run(algo, bytes);
}

/** One registered benchmark point's simulated outcome. */
struct BenchRow {
    std::string name;
    std::string topo;
    std::string algo;
    std::uint64_t bytes = 0;
    Tick cycles = 0;
    double bandwidth_gbps = 0;
    std::uint64_t messages = 0;
    // Simulator-throughput fields (bench_simspeed): wall-clock spent
    // simulating, millions of simulated cycles per wall second, and
    // which scheduler ("active"/"dense" flit tick loop, "flow")
    // produced the row.
    double wall_ms = 0;
    double msim_cps = 0;
    std::string mode;
};

/**
 * Rows recorded by every executed all-reduce point, in execution
 * order. Leaked for the same atexit-vs-static-destruction ordering
 * reason as fabricCache().
 */
inline std::vector<BenchRow> &
benchRows()
{
    static auto *rows = new std::vector<BenchRow>;
    return *rows;
}

/**
 * Write every recorded row as machine-readable JSON. The output path
 * defaults to BENCH_results.json in the working directory; the
 * MT_BENCH_RESULTS environment variable overrides it. The write is a
 * merge: rows already in the file survive unless a new row shares
 * their name, so a suite of bench binaries run back to back
 * accumulates one results file instead of each clobbering the last.
 * Serialization (atomic tmp+rename, speedup_vs_ring derivation keyed
 * by topology/bytes/mode) lives in obs/results.hh.
 */
inline void
writeBenchResults()
{
    auto &rows = benchRows();
    if (rows.empty())
        return;
    const char *env = std::getenv("MT_BENCH_RESULTS");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_results.json";
    std::vector<obs::ResultRow> out;
    out.reserve(rows.size());
    for (const auto &r : rows) {
        obs::ResultRow row;
        row.name = r.name;
        row.topology = r.topo;
        row.algorithm = r.algo;
        row.bytes = r.bytes;
        row.cycles = r.cycles;
        row.bandwidth_gbps = r.bandwidth_gbps;
        row.messages = r.messages;
        row.wall_ms = r.wall_ms;
        row.msim_cps = r.msim_cps;
        row.mode = r.mode;
        row.commit = obs::buildCommit();
        out.push_back(std::move(row));
    }
    obs::mergeResultsFile(path, out);
}

/** Record one fully-populated row, arming the atexit writer on
 *  first use (bench_simspeed path — wall-clock fields included). */
inline void
recordBenchRow(BenchRow row)
{
    auto &rows = benchRows();
    if (rows.empty())
        std::atexit(&writeBenchResults);
    rows.push_back(std::move(row));
}

/** Record one executed point, arming the atexit writer on first use. */
inline void
recordBenchResult(const std::string &name,
                  const std::string &topo_spec,
                  const std::string &algo, std::uint64_t bytes,
                  const runtime::RunResult &res)
{
    auto &rows = benchRows();
    if (rows.empty())
        std::atexit(&writeBenchResults);
    BenchRow row;
    row.name = name;
    row.topo = topo_spec;
    row.algo = algo;
    row.bytes = bytes;
    row.cycles = res.time;
    row.bandwidth_gbps = res.bandwidth;
    row.messages = res.messages;
    rows.push_back(std::move(row));
}

/** Whether @p algo supports @p topo_spec. */
inline bool
supported(const std::string &topo_spec, const std::string &algo)
{
    auto topo = topo::makeTopology(topo_spec);
    auto a =
        coll::makeAlgorithm(coll::findAlgorithmVariant(algo).base);
    return a->supports(*topo);
}

/**
 * Register one all-reduce point: the benchmark's manual time is the
 * simulated completion time; counters carry bandwidth.
 */
inline void
registerAllReducePoint(const std::string &name,
                       const std::string &topo_spec,
                       const std::string &algo, std::uint64_t bytes)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State &state) {
            for (auto _ : state) {
                auto res = simulate(topo_spec, algo, bytes);
                recordBenchResult(name, topo_spec, algo, bytes, res);
                state.SetIterationTime(
                    static_cast<double>(res.time) * 1e-9);
                state.counters["GB/s"] = res.bandwidth;
                state.counters["sim_us"] =
                    static_cast<double>(res.time) / 1e3;
                state.counters["msgs"] =
                    static_cast<double>(res.messages);
            }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
}

} // namespace multitree::bench

#endif // MULTITREE_BENCH_BENCH_COMMON_HH
