/**
 * @file
 * Fig. 11 — DNN training time on an 8x8 Torus (64 accelerators,
 * mini-batch 16 per accelerator).
 *
 * One binary per sub-figure via a compile definition:
 *  (a) non-overlapped training: compute + one full-gradient
 *      all-reduce; counters report the compute/communication split,
 *      the communication fraction and the all-reduce speedup over
 *      Ring — the paper's headline 2.2x/2.3x (plain/msg) average.
 *  (b) overlapped training with layer-wise all-reduce: counters add
 *      the hidden vs exposed communication split; CNNs hide most of
 *      their communication while NCF/Transformer stay comm-bound.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "accel/model_zoo.hh"
#include "bench_common.hh"
#include "train/trainer.hh"

using namespace multitree;

namespace {

constexpr const char *kTopo = "torus-8x8";

const std::vector<std::string> kAlgos = {
    "ring", "dbtree", "ring2d", "multitree", "multitree-msg"};

/** Cache: evaluating an iteration simulates many all-reduces. */
std::map<std::pair<std::string, std::string>, train::IterationTiming>
    g_cache;

const train::IterationTiming &
timing(const std::string &model_name, const std::string &algo)
{
    auto key = std::make_pair(model_name, algo);
    auto it = g_cache.find(key);
    if (it != g_cache.end())
        return it->second;
    auto topo = topo::makeTopology(kTopo);
    auto model = accel::makeModel(model_name);
    train::TrainOptions opts;
    auto t = train::evaluateIteration(model, *topo, algo, opts);
    return g_cache.emplace(key, t).first->second;
}

void
registerAll()
{
    for (const auto &model : accel::modelNames()) {
        for (const auto &algo : kAlgos) {
#if defined(FIG11_NONOVERLAP)
            std::string name =
                "fig11a/" + model + "/" + algo;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [model, algo](benchmark::State &state) {
                    const auto &t = timing(model, algo);
                    const auto &ring = timing(model, "ring");
                    for (auto _ : state) {
                        state.SetIterationTime(
                            static_cast<double>(t.total_nonoverlap)
                            * 1e-9);
                        state.counters["compute_ms"] =
                            static_cast<double>(t.fwd + t.bwd) / 1e6;
                        state.counters["allreduce_ms"] =
                            static_cast<double>(t.allreduce) / 1e6;
                        state.counters["comm_frac"] =
                            static_cast<double>(t.allreduce)
                            / static_cast<double>(t.total_nonoverlap);
                        state.counters["ar_speedup_vs_ring"] =
                            static_cast<double>(ring.allreduce)
                            / static_cast<double>(t.allreduce);
                        state.counters["train_norm_vs_ring"] =
                            static_cast<double>(t.total_nonoverlap)
                            / static_cast<double>(
                                ring.total_nonoverlap);
                    }
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
#else
            std::string name =
                "fig11b/" + model + "/" + algo;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [model, algo](benchmark::State &state) {
                    const auto &t = timing(model, algo);
                    const auto &ring = timing(model, "ring");
                    for (auto _ : state) {
                        state.SetIterationTime(
                            static_cast<double>(t.total_overlap)
                            * 1e-9);
                        state.counters["compute_ms"] =
                            static_cast<double>(t.fwd + t.bwd) / 1e6;
                        state.counters["hidden_comm_ms"] =
                            static_cast<double>(t.overlap_hidden)
                            / 1e6;
                        state.counters["exposed_comm_ms"] =
                            static_cast<double>(t.exposed_comm) / 1e6;
                        state.counters["train_norm_vs_ring"] =
                            static_cast<double>(t.total_overlap)
                            / static_cast<double>(ring.total_overlap);
                    }
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
#endif
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
