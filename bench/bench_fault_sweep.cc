/**
 * @file
 * Fault sweep — all-reduce overhead under increasing message loss.
 *
 * Sweeps the per-message drop probability from 0 (reliability
 * enabled, no faults: the pure ack/timer overhead baseline) up to
 * 1e-2 for MultiTree and Ring on a 4x4 torus, with the end-to-end
 * reliability layer retransmitting every lost copy. The reported
 * manual time is the simulated completion time including ack settle,
 * so rows show directly how much a lossy fabric stretches the
 * collective; counters carry the retransmission work performed.
 *
 * The fault plan is seeded (override with --seed=N) and deterministic
 * in event order, so every row is exactly reproducible.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "fault/fault.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

std::uint64_t g_seed = 1;

/** Drop probabilities swept (0 = reliable-but-lossless baseline). */
const double kDropProbs[] = {0.0, 1e-4, 1e-3, 1e-2};

/**
 * One persistent fabric per drop probability: the plan is fixed at
 * machine construction, runs replay it identically every epoch.
 */
runtime::Machine &
faultyMachineFor(const std::string &topo_spec, double drop_prob)
{
    struct Fabric {
        std::unique_ptr<topo::Topology> topo;
        std::unique_ptr<runtime::Machine> machine;
    };
    static std::map<std::pair<std::string, double>, Fabric> cache;
    auto key = std::make_pair(topo_spec, drop_prob);
    auto it = cache.find(key);
    if (it == cache.end()) {
        Fabric f;
        f.topo = topo::makeTopology(topo_spec);
        runtime::RunOptions opts;
        opts.backend = runtime::Backend::Flow;
        opts.reliability.enabled = true;
        fault::FaultConfig fc;
        fc.seed = g_seed;
        fc.drop_prob = drop_prob;
        opts.fault = fc;
        f.machine =
            std::make_unique<runtime::Machine>(*f.topo, opts);
        it = cache.emplace(key, std::move(f)).first;
    }
    return *it->second.machine;
}

void
registerSweep()
{
    const std::string topo_spec = "torus-4x4";
    for (const std::string algo : {"multitree", "ring"}) {
        for (double p : kDropProbs) {
            for (std::uint64_t bytes :
                 {256 * KiB, std::uint64_t{2 * MiB}}) {
                std::string name =
                    "fault_sweep/" + topo_spec + "/" + algo
                    + "/drop_" + std::to_string(p) + "/"
                    + std::to_string(bytes / KiB) + "KiB";
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [=](benchmark::State &state) {
                        auto &m = faultyMachineFor(topo_spec, p);
                        for (auto _ : state) {
                            auto rep = m.tryRun(algo, bytes);
                            if (!rep.ok) {
                                state.SkipWithError(
                                    "collective wedged under "
                                    "faults");
                                break;
                            }
                            state.SetIterationTime(
                                static_cast<double>(rep.result.time)
                                * 1e-9);
                            state.counters["GB/s"] =
                                rep.result.bandwidth;
                            state.counters["sim_us"] =
                                static_cast<double>(rep.result.time)
                                / 1e3;
                            state.counters["dropped"] =
                                static_cast<double>(rep.dropped);
                            state.counters["retransmits"] =
                                static_cast<double>(
                                    rep.retransmits);
                            state.counters["acks"] =
                                static_cast<double>(rep.acks);
                        }
                    })
                    ->UseManualTime()
                    ->Iterations(1)
                    ->Unit(benchmark::kMicrosecond);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    g_seed = extractSeedFlag(&argc, argv);
    registerSweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
