/**
 * @file
 * Fault sweep — all-reduce overhead under increasing message loss.
 *
 * Sweeps the per-message drop probability from 0 (reliability
 * enabled, no faults: the pure ack/timer overhead baseline) up to
 * 1e-2 for MultiTree and Ring on a 4x4 torus, with the end-to-end
 * reliability layer retransmitting every lost copy. The reported
 * manual time is the simulated completion time including ack settle,
 * so rows show directly how much a lossy fabric stretches the
 * collective; counters carry the retransmission work performed.
 *
 * The fault plan is seeded (override with --seed=N) and deterministic
 * in event order, so every row is exactly reproducible.
 *
 * A second section quantifies the self-healing layer: a permanent
 * mid-collective kill is run once with recovery armed (the run
 * repairs and resumes to completion) and once with recovery off (the
 * run burns the retransmit budget and aborts; the realistic restart
 * cost is that detection time plus a fresh clean run). Both land in
 * BENCH_results.json as recovered-vs-abort rows, so the JSON shows
 * directly that resuming beats restarting from scratch.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "coll/algorithm.hh"
#include "fault/fault.hh"
#include "fault/health.hh"
#include "topo/hierarchical.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

std::uint64_t g_seed = 1;

/** Drop probabilities swept (0 = reliable-but-lossless baseline). */
const double kDropProbs[] = {0.0, 1e-4, 1e-3, 1e-2};

/**
 * One persistent fabric per drop probability: the plan is fixed at
 * machine construction, runs replay it identically every epoch.
 */
runtime::Machine &
faultyMachineFor(const std::string &topo_spec, double drop_prob)
{
    struct Fabric {
        std::unique_ptr<topo::Topology> topo;
        std::unique_ptr<runtime::Machine> machine;
    };
    static std::map<std::pair<std::string, double>, Fabric> cache;
    auto key = std::make_pair(topo_spec, drop_prob);
    auto it = cache.find(key);
    if (it == cache.end()) {
        Fabric f;
        f.topo = topo::makeTopology(topo_spec);
        runtime::RunOptions opts;
        opts.backend = runtime::Backend::Flow;
        opts.reliability.enabled = true;
        fault::FaultConfig fc;
        fc.seed = g_seed;
        fc.drop_prob = drop_prob;
        opts.fault = fc;
        f.machine =
            std::make_unique<runtime::Machine>(*f.topo, opts);
        it = cache.emplace(key, std::move(f)).first;
    }
    return *it->second.machine;
}

void
registerSweep()
{
    const std::string topo_spec = "torus-4x4";
    for (const std::string algo : {"multitree", "ring"}) {
        for (double p : kDropProbs) {
            for (std::uint64_t bytes :
                 {256 * KiB, std::uint64_t{2 * MiB}}) {
                std::string name =
                    "fault_sweep/" + topo_spec + "/" + algo
                    + "/drop_" + std::to_string(p) + "/"
                    + std::to_string(bytes / KiB) + "KiB";
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [=](benchmark::State &state) {
                        auto &m = faultyMachineFor(topo_spec, p);
                        for (auto _ : state) {
                            auto rep = m.tryRun(algo, bytes);
                            if (!rep.ok) {
                                state.SkipWithError(
                                    "collective wedged under "
                                    "faults");
                                break;
                            }
                            state.SetIterationTime(
                                static_cast<double>(rep.result.time)
                                * 1e-9);
                            state.counters["GB/s"] =
                                rep.result.bandwidth;
                            state.counters["sim_us"] =
                                static_cast<double>(rep.result.time)
                                / 1e3;
                            state.counters["dropped"] =
                                static_cast<double>(rep.dropped);
                            state.counters["retransmits"] =
                                static_cast<double>(
                                    rep.retransmits);
                            state.counters["acks"] =
                                static_cast<double>(rep.acks);
                        }
                    })
                    ->UseManualTime()
                    ->Iterations(1)
                    ->Unit(benchmark::kMicrosecond);
            }
        }
    }
}

// --- Recovered vs abort-and-restart -------------------------------

void
recordRecoveryRow(const std::string &name,
                  const std::string &topo_spec,
                  const std::string &algo, std::uint64_t bytes,
                  Tick cycles, double bandwidth,
                  std::uint64_t messages, const std::string &mode)
{
    bench::BenchRow row;
    row.name = name;
    row.topo = topo_spec;
    row.algo = algo;
    row.bytes = bytes;
    row.cycles = cycles;
    row.bandwidth_gbps = bandwidth;
    row.messages = messages;
    row.mode = mode;
    bench::recordBenchRow(row);
    std::printf("%-68s %12llu cyc  %s\n", name.c_str(),
                static_cast<unsigned long long>(cycles),
                mode.c_str());
}

/**
 * One permanent-kill scenario, measured three ways: the clean
 * baseline, the self-healing run (completes), and the abort path
 * (detection drain + a fresh clean run — restarting from scratch).
 */
void
runRecoveryPoint(const std::string &topo_spec,
                 const std::string &algo, std::uint64_t bytes,
                 const std::vector<int> &kill, Tick kill_at,
                 fault::RecoveryPolicy policy)
{
    auto topo = topo::makeTopology(topo_spec);
    const std::string prefix = "fault_recovery/" + topo_spec + "/"
                               + algo + "/"
                               + std::to_string(bytes / KiB)
                               + "KiB/";

    runtime::RunOptions clean_opts;
    clean_opts.backend = runtime::Backend::Flow;
    clean_opts.reliability.enabled = true;
    runtime::Machine clean(*topo, clean_opts);
    auto clean_rep = clean.tryRun(algo, bytes);
    if (!clean_rep.ok)
        return;
    recordRecoveryRow(prefix + "clean", topo_spec, algo, bytes,
                      clean_rep.result.time,
                      clean_rep.result.bandwidth,
                      clean_rep.result.messages, "clean");

    fault::FaultConfig fc;
    fc.seed = g_seed;
    for (int cid : kill) {
        fault::LinkFault lf;
        lf.channel = cid;
        lf.from = kill_at;
        lf.down = true;
        fc.links.push_back(lf);
    }

    runtime::RunOptions heal_opts = clean_opts;
    heal_opts.fault = fc;
    heal_opts.recovery.policy = policy;
    runtime::Machine healing(*topo, heal_opts);
    auto heal_rep = healing.tryRun(algo, bytes);
    if (heal_rep.ok) {
        recordRecoveryRow(
            prefix + "recovered", topo_spec, algo, bytes,
            heal_rep.result.time, heal_rep.result.bandwidth,
            heal_rep.result.messages,
            std::string("recovered,policy=")
                + fault::policyName(policy) + ",resumed="
                + std::to_string(
                    heal_rep.recovery.resumed_transfers));
    } else {
        recordRecoveryRow(prefix + "recovered", topo_spec, algo,
                          bytes, 0, 0, 0, "recovery failed");
    }

    runtime::RunOptions abort_opts = clean_opts;
    abort_opts.fault = fc;
    runtime::Machine aborting(*topo, abort_opts);
    auto abort_rep = aborting.tryRun(algo, bytes);
    if (abort_rep.ok)
        return; // the kill missed; no abort row to record
    // Restart-from-scratch pays the full detection drain (the tick
    // the watchdog declared the run dead) plus a clean rerun.
    const Tick detect = aborting.eventQueue().now();
    recordRecoveryRow(prefix + "abort_restart", topo_spec, algo,
                      bytes, detect + clean_rep.result.time, 0,
                      abort_rep.result.messages,
                      "abort@" + std::to_string(detect)
                          + "+restart");
}

void
runRecoveredVsAbort()
{
    std::printf("--- recovered vs abort-and-restart ---\n");
    // Flat torus: the MultiTree schedule pins its source routes, so
    // healing means BFS route repair around the dead link.
    {
        auto topo = topo::makeTopology("torus-4x4");
        auto sched = coll::makeAlgorithm("multitree")
                         ->build(*topo, 256 * KiB);
        const auto &edge = sched.flows[0].reduce[0];
        auto route = edge.route.empty()
                         ? topo->route(edge.src, edge.dst)
                         : edge.route;
        if (!route.empty()) {
            for (std::uint64_t bytes :
                 {256 * KiB, std::uint64_t{2 * MiB}}) {
                runRecoveryPoint(
                    "torus-4x4", "multitree", bytes, {route[0]},
                    2000, fault::RecoveryPolicy::RepairResume);
            }
        }
    }
    // Two-rail hierarchical fabric: kill one spine rail at a
    // gateway; healing means masking the rail and re-steering onto
    // its live sibling.
    {
        const std::string spec =
            "hier:torus-2x2+fattree-2:2:2,rails=2";
        auto topo = topo::makeTopology(spec);
        auto *hier =
            dynamic_cast<const topo::HierarchicalTopology *>(
                topo.get());
        if (hier != nullptr) {
            const topo::RailGroups rg =
                topo::buildRailGroups(*topo);
            const int gateway = hier->globalNode(1, 0);
            std::vector<int> rail;
            for (const auto &ch : topo->channels()) {
                if (hier->isSpineChannel(ch.id)
                    && (ch.src == gateway || ch.dst == gateway)
                    && rg.railOf(ch.id) == 1)
                    rail.push_back(ch.id);
            }
            for (std::uint64_t bytes :
                 {64 * KiB, std::uint64_t{256 * KiB}}) {
                runRecoveryPoint(spec, "hier:multitree+ring",
                                 bytes, rail, 2000,
                                 fault::RecoveryPolicy::Failover);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    g_seed = extractSeedFlag(&argc, argv);
    runRecoveredVsAbort();
    registerSweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
