/**
 * @file
 * Ablation — the NI lockstep (NOP) coordination of §IV-A.
 *
 * MultiTree's schedule is contention-free only if steps stay
 * aligned. Without the lockstep down-counter, nodes issue as soon as
 * dependencies allow, steps skew, and transfers from different steps
 * overlap on shared channels — the degradation the paper motivates
 * the mechanism with, most visible where trees are imbalanced
 * (Mesh). Counter `nolockstep_penalty` is time(no-lockstep) /
 * time(lockstep).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

void
registerAll()
{
    // Cycle-level runs: sizes kept modest so the whole ablation
    // finishes in minutes on one core; the skew effect is already
    // fully expressed once serialization dominates latency.
    const std::vector<std::string> topologies = {
        "torus-4x4", "mesh-4x4", "mesh-8x8", "bigraph-4x8"};
    for (const auto &topo : topologies) {
        for (std::uint64_t bytes : {128 * KiB, 512 * KiB}) {
            std::string name = "ablation_lockstep/" + topo + "/"
                               + std::to_string(bytes / KiB) + "KiB";
            benchmark::RegisterBenchmark(
                name.c_str(),
                [topo, bytes](benchmark::State &state) {
                    auto on = simulate(topo, "multitree", bytes,
                                       runtime::Backend::Flit);
                    auto off =
                        simulate(topo, "multitree-nolockstep", bytes,
                                 runtime::Backend::Flit);
                    for (auto _ : state) {
                        state.SetIterationTime(
                            static_cast<double>(on.time) * 1e-9);
                        state.counters["lockstep_us"] =
                            static_cast<double>(on.time) / 1e3;
                        state.counters["nolockstep_us"] =
                            static_cast<double>(off.time) / 1e3;
                        state.counters["nolockstep_penalty"] =
                            static_cast<double>(off.time)
                            / static_cast<double>(on.time);
                        state.counters["nop_windows"] =
                            static_cast<double>(on.nop_windows);
                    }
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMicrosecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
