/**
 * @file
 * Hierarchical multi-rail sweep: simulated all-reduce completion on a
 * DGX-like fabric — torus-2x2 islands on a fat-tree spine — as the
 * spine rail count grows 1 → 2 → 4 under both NIC steering policies.
 * Rows cover the flat ring baseline over the composed graph and two
 * composed hierarchical collectives, so BENCH_results.json records
 * both the hierarchy win (composed vs flat on the same fabric) and
 * the striping win (multi-rail vs single-rail spine).
 *
 * Like the figure benches this reports *simulated* time; each point
 * is one deterministic run on a fresh Machine.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "ni/nic_engine.hh"

namespace {

using namespace multitree;

struct Point {
    std::string topo;
    std::string algo;
    int rails;
    ni::RailPolicy policy;
};

const char *
policyName(ni::RailPolicy policy)
{
    return policy == ni::RailPolicy::Backlog ? "backlog" : "rr";
}

void
runPoint(const Point &p, std::uint64_t bytes)
{
    auto topo = topo::makeTopology(p.topo);
    runtime::RunOptions opts;
    opts.backend = runtime::Backend::Flow;
    opts.rail_policy = p.policy;
    runtime::Machine machine(*topo, opts);
    auto res = machine.run(p.algo, bytes);

    bench::BenchRow row;
    row.name = "hier_rails/" + p.topo + "/" + p.algo + "/"
               + std::to_string(bytes) + "/" + policyName(p.policy);
    row.topo = p.topo;
    row.algo = p.algo;
    row.bytes = bytes;
    row.cycles = res.time;
    row.bandwidth_gbps = res.bandwidth;
    row.messages = res.messages;
    row.mode = "rails=" + std::to_string(p.rails) + ","
               + policyName(p.policy);
    bench::recordBenchRow(row);

    std::printf("%-64s %10llu cyc  %6.2f GB/s\n", row.name.c_str(),
                static_cast<unsigned long long>(res.time),
                res.bandwidth);
}

} // namespace

int
main()
{
    constexpr std::uint64_t kBytes = 4 * MiB;
    const std::string base = "hier:torus-2x2+fattree-2:2:2";
    const std::vector<std::string> algos = {
        "ring", "hier:ring+ring", "hier:multitree+ring"};

    std::vector<Point> points;
    for (int rails : {1, 2, 4}) {
        const std::string spec =
            rails == 1 ? base
                       : base + ",rails=" + std::to_string(rails);
        for (const std::string &algo : algos) {
            points.push_back(
                {spec, algo, rails, ni::RailPolicy::RoundRobin});
            // Steering policy only matters with parallel rails.
            if (rails > 1) {
                points.push_back(
                    {spec, algo, rails, ni::RailPolicy::Backlog});
            }
        }
    }

    for (const Point &p : points)
        runPoint(p, kBytes);

    // Headline: multi-rail speedup over the 1-rail spine per
    // (algorithm, policy).
    auto cyclesOf = [](const std::string &topo,
                       const std::string &algo,
                       ni::RailPolicy policy) -> Tick {
        const std::string suffix =
            "/" + std::to_string(kBytes) + "/" + policyName(policy);
        for (const auto &r : bench::benchRows()) {
            if (r.topo == topo && r.algo == algo
                && r.name.size() >= suffix.size()
                && r.name.compare(r.name.size() - suffix.size(),
                                  suffix.size(), suffix)
                       == 0)
                return r.cycles;
        }
        return 0;
    };
    std::printf("\nmulti-rail speedup vs 1-rail spine:\n");
    for (const std::string &algo : algos) {
        const Tick one =
            cyclesOf(base, algo, ni::RailPolicy::RoundRobin);
        for (int rails : {2, 4}) {
            const std::string spec =
                base + ",rails=" + std::to_string(rails);
            for (auto policy : {ni::RailPolicy::RoundRobin,
                                ni::RailPolicy::Backlog}) {
                const Tick multi = cyclesOf(spec, algo, policy);
                if (one > 0 && multi > 0) {
                    std::printf("  %-24s rails=%d %-8s %6.2fx\n",
                                algo.c_str(), rails,
                                policyName(policy),
                                static_cast<double>(one)
                                    / static_cast<double>(multi));
                }
            }
        }
    }
    return 0;
}
