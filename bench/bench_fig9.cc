/**
 * @file
 * Fig. 9 — all-reduce bandwidth versus data size on every topology.
 *
 * One binary serves all four panels; a compile definition selects the
 * panel so `build/bench/` carries one executable per sub-figure:
 *   (a) 4x4 & 8x8 Torus    — Ring, DBTree, 2D-Ring, MT, MT-Msg
 *   (b) 4x4 & 8x8 Mesh     — same set
 *   (c) 16- & 64-node Fat-Tree — Ring, DBTree, HD, MT, MT-Msg
 *   (d) 4x8 & 4x16 BiGraph — Ring, DBTree, HDRM, MT, MT-Msg
 *
 * Expected shapes (paper §VI-A): MultiTree on top at every size on
 * Torus/Mesh; DBTree collapsing at large sizes there; 2D-Ring between
 * Ring and MultiTree on Torus but below Ring on the 8x8 Mesh at
 * scale; near-ties between MultiTree and Ring/HDRM at large sizes on
 * the indirect networks with MultiTree ahead at small sizes; and a
 * ~6% MultiTreeMsg bump.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

struct Panel {
    const char *name;
    std::vector<std::string> topologies;
    std::vector<std::string> algorithms;
};

Panel
panel()
{
#if defined(FIG9_TORUS)
    return {"fig9a_torus",
            {"torus-4x4", "torus-8x8"},
            {"ring", "dbtree", "ring2d", "multitree",
             "multitree-msg"}};
#elif defined(FIG9_MESH)
    return {"fig9b_mesh",
            {"mesh-4x4", "mesh-8x8"},
            {"ring", "dbtree", "ring2d", "multitree",
             "multitree-msg"}};
#elif defined(FIG9_FATTREE)
    return {"fig9c_fattree",
            {"fattree-16", "fattree-64"},
            {"ring", "dbtree", "hd", "multitree", "multitree-msg"}};
#elif defined(FIG9_BIGRAPH)
    return {"fig9d_bigraph",
            {"bigraph-4x8", "bigraph-4x16"},
            {"ring", "dbtree", "hdrm", "multitree", "multitree-msg"}};
#else
#error "define one FIG9_* panel"
#endif
}

void
registerPanel()
{
    Panel p = panel();
    for (const auto &topo : p.topologies) {
        for (const auto &algo : p.algorithms) {
            if (!supported(topo, algo))
                continue;
            for (std::uint64_t bytes : fig9Sizes()) {
                std::string name = std::string(p.name) + "/" + topo
                                   + "/" + algo + "/"
                                   + std::to_string(bytes / KiB)
                                   + "KiB";
                registerAllReducePoint(name, topo, algo, bytes);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerPanel();
    // --trace-out=BASE records every fabric's lifecycle events and
    // writes one Perfetto JSON per (topology, backend) at exit.
    multitree::bench::extractTraceOutFlag(&argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
